# Convenience targets; everything is plain cargo underneath.

.PHONY: build test bench quick full clippy fmt doc clean

build:
	cargo build --workspace --release

test:
	cargo test --workspace --release

bench:
	cargo bench --workspace

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

fmt:
	cargo fmt --all

doc:
	cargo doc --workspace --no-deps

# Smoke-reproduce every experiment (~1 minute).
quick: build
	cargo run -p rayfade-bench --release --bin all -- --quick --out results

# Full reproduction of the paper's evaluation (minutes).
full: build
	cargo run -p rayfade-bench --release --bin all -- --out results

clean:
	cargo clean
	rm -rf results
