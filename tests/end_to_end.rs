//! End-to-end integration tests across all workspace crates: generate a
//! topology, build gains, schedule, transfer to fading, learn, simulate.

use rayfade::prelude::*;

#[test]
fn full_capacity_pipeline() {
    let network = PaperTopology::figure1().generate(1);
    let params = SinrParams::figure1();
    let gain =
        GainMatrix::from_geometry(&network, &PowerAssignment::figure1_uniform(), params.alpha);
    let result = rayleigh_capacity(&gain, &params, &GreedyCapacity::new());
    assert!(!result.set.is_empty());
    assert!(result.transfer.meets_guarantee());
    assert!(result.expected_successes() > 0.0);
    assert!(result.logstar_rounds <= 9);
    // The selected set is feasible (the contract the transfer relies on).
    assert!(rayfade::sinr::is_feasible(&gain, &params, &result.set));
}

#[test]
fn latency_pipeline_under_both_models() {
    let network = PaperTopology {
        links: 40,
        ..PaperTopology::figure1()
    }
    .generate(2);
    let params = SinrParams::figure1();
    let gain =
        GainMatrix::from_geometry(&network, &PowerAssignment::figure1_uniform(), params.alpha);
    // Centralized schedule: feasible slots covering everything.
    let sol = recursive_schedule(&gain, &params, &GreedyCapacity::new());
    assert!(sol.schedule.covers_all(40));
    assert!(sol.schedule.validate(&gain, &params).is_ok());

    // Distributed ALOHA in the non-fading model.
    let mut nf = NonFadingModel::new(gain.clone(), params);
    let nf_out = run_aloha(&mut nf, &AlohaConfig::default(), None);
    assert_eq!(nf_out.finished(), 40);

    // Distributed ALOHA under Rayleigh fading with the 4x transform.
    let cfg = rayfade::fading::rayleigh_aloha_config(&AlohaConfig::default());
    assert_eq!(cfg.repeats, 4);
    let mut ray = RayleighModel::new(gain, params, 3);
    let ray_out = run_aloha(&mut ray, &cfg, None);
    assert_eq!(ray_out.finished(), 40);
}

#[test]
fn learning_pipeline_reaches_fraction_of_optimum() {
    let params = SinrParams::figure2();
    let network = PaperTopology {
        links: 60,
        ..PaperTopology::figure2()
    }
    .generate(3);
    let gain = GainMatrix::from_geometry(&network, &PowerAssignment::Uniform(2.0), params.alpha);
    let optimum = LocalSearchCapacity::default()
        .select(&CapacityInstance::unweighted(&gain, &params))
        .len();
    assert!(optimum > 0);

    let cfg = GameConfig {
        rounds: 200,
        seed: 4,
    };
    let mut nf = NonFadingModel::new(gain.clone(), params);
    let out = run_game_with_beta(&mut nf, params.beta, &cfg);
    let converged = out.converged_successes(40);
    // Theorem 3/4: a constant fraction of OPT. Require a conservative 30%.
    assert!(
        converged >= 0.3 * optimum as f64,
        "converged {converged} vs optimum {optimum}"
    );

    // Rayleigh run converges too, to a (typically slightly smaller) value.
    let mut ray = RayleighModel::new(gain, params, 8);
    let ray_out = run_game_with_beta(&mut ray, params.beta, &cfg);
    assert!(ray_out.converged_successes(40) >= 0.2 * optimum as f64);
}

#[test]
fn simulation_engine_figures_smoke() {
    let f1 = rayfade::sim::run_figure1(&Figure1Config::smoke());
    assert_eq!(f1.curves.len(), 4);
    let f2 = rayfade::sim::run_figure2(&Figure2Config::smoke());
    assert!(f2.optimum.unwrap() > 0.0);
    // Optimum line upper-bounds the converged non-fading learning curve
    // (up to round-level noise).
    let tail: f64 = f2.nonfading[f2.nonfading.len() - 5..].iter().sum::<f64>() / 5.0;
    assert!(
        f2.optimum.unwrap() + 2.0 >= tail,
        "optimum {} vs learned tail {tail}",
        f2.optimum.unwrap()
    );
}

#[test]
fn multihop_over_power_control() {
    // Cross-crate composition: power control picks powers, the multihop
    // scheduler runs over the resulting gain matrix.
    let network = PaperTopology {
        links: 24,
        ..PaperTopology::figure1()
    }
    .generate(5);
    let params = SinrParams::figure1();
    let (pc, ok) = PowerControlCapacity::default().select_verified(&network, &params);
    assert!(ok);
    let gain = GainMatrix::from_geometry(&network, &pc.powers, params.alpha);
    let requests: Vec<Request> = (0..8)
        .map(|r| Request::new(vec![3 * r, 3 * r + 1, 3 * r + 2]))
        .collect();
    let sol = multihop_schedule(&gain, &params, &requests, &GreedyCapacity::new());
    assert!(sol.completed() >= 6, "completed {}", sol.completed());
    assert!(sol.schedule.validate(&gain, &params).is_ok());
}

#[test]
fn multichannel_pipeline() {
    use rayfade::fading::transfer_multichannel;
    use rayfade::sched::multichannel_capacity;
    let network = PaperTopology {
        links: 50,
        ..PaperTopology::figure1()
    }
    .generate(9);
    let params = SinrParams::figure1();
    let gain =
        GainMatrix::from_geometry(&network, &PowerAssignment::figure1_uniform(), params.alpha);
    let single = multichannel_capacity(&gain, &params, 1, &GreedyCapacity::new());
    let quad = multichannel_capacity(&gain, &params, 4, &GreedyCapacity::new());
    assert!(quad.total() > single.total(), "channels must add capacity");
    let (nf, ray) = transfer_multichannel(&gain, &params, &quad);
    assert_eq!(nf, quad.total());
    assert!(ray >= nf as f64 / std::f64::consts::E);
    // A logistic utility validates in the paper's noise regime here.
    let u = rayfade::sinr::LogisticUtility::new(params.beta, 2.0, 1.0);
    let i = quad.all()[0];
    assert!(rayfade::sinr::is_valid_utility(
        &u,
        i,
        gain.signal(i),
        params.noise,
        2.0,
        128,
        1e3,
        1e-9
    ));
}

#[test]
fn flexible_rates_transfer() {
    let network = PaperTopology {
        links: 30,
        ..PaperTopology::figure1()
    }
    .generate(6);
    let params = SinrParams::figure1();
    let gain =
        GainMatrix::from_geometry(&network, &PowerAssignment::figure1_uniform(), params.alpha);
    let u = ShannonUtility::capped(12.0);
    let sol = FlexibleCapacity::default().select_with_utility(&gain, &params, &u);
    assert!(!sol.set.is_empty());
    let (nf, ray) = rayfade::fading::transfer_utility_mc(
        &gain,
        &params.with_beta(sol.threshold),
        &sol.set,
        &u,
        1500,
        7,
    );
    assert!(nf > 0.0);
    assert!(ray >= nf / std::f64::consts::E * 0.85, "nf {nf}, ray {ray}");
}
