//! Integration tests pinning the paper's quantitative claims on fixed
//! seeds — the executable summary of EXPERIMENTS.md.

use rayfade::prelude::*;

/// Theorem 1: the closed form matches a long Monte Carlo run.
#[test]
fn theorem1_closed_form_vs_monte_carlo() {
    let network = PaperTopology {
        links: 15,
        ..PaperTopology::figure1()
    }
    .generate(10);
    let params = SinrParams::figure1();
    let gain =
        GainMatrix::from_geometry(&network, &PowerAssignment::figure1_uniform(), params.alpha);
    let q = 0.8;
    let analytic = rayfade::sim::rayleigh_expected_successes(&gain, &params, q);
    let mc = rayfade::sim::rayleigh_success_curve_point(&gain, &params, q, 120, 40, 5);
    assert!(
        (mc - analytic).abs() < 0.3,
        "MC {mc} vs Theorem 1 {analytic}"
    );
}

/// Lemma 2: 1/e transfer floor for feasible sets (exercised over many
/// seeds; the floor is a theorem, any violation is a bug).
#[test]
fn lemma2_floor_over_many_seeds() {
    let params = SinrParams::figure1();
    for seed in 0..10 {
        let network = PaperTopology {
            links: 60,
            ..PaperTopology::figure1()
        }
        .generate(seed);
        let gain =
            GainMatrix::from_geometry(&network, &PowerAssignment::figure1_uniform(), params.alpha);
        let set = GreedyCapacity::new().select(&CapacityInstance::unweighted(&gain, &params));
        let report = transfer_set(&gain, &params, &set);
        assert!(report.meets_guarantee(), "seed {seed}");
        assert!(report.ratio() >= 1.0 / std::f64::consts::E - 1e-9);
    }
}

/// Sec. 4: the ALOHA repetition constant is exactly 4 for p <= 1/2.
#[test]
fn repetition_constant_is_four() {
    assert_eq!(rayfade::fading::min_sufficient_repeats(0.5, 500), 4);
    assert!(rayfade::fading::repetition_recovers(0.5, 4));
    assert!(!rayfade::fading::repetition_recovers(0.5, 3));
}

/// Theorem 2: the simulation uses O(log* n) rounds — single digits at any
/// practical scale — and 19 attempts per round.
#[test]
fn theorem2_round_budget() {
    assert!(rayfade::fading::simulation_rounds(100) <= 8);
    assert!(rayfade::fading::simulation_rounds(1_000_000_000) <= 9);
    let plan = SimulationPlan::build(&vec![1.0; 100]);
    assert_eq!(
        plan.total_attempts(),
        plan.rounds() * rayfade::fading::PAPER_ATTEMPTS_PER_ROUND
    );
}

/// Sec. 2's motivating asymmetry: a link hopeless in the non-fading model
/// still succeeds with positive probability under fading.
#[test]
fn fading_beats_nonfading_under_large_noise() {
    let gain = GainMatrix::from_raw(1, vec![0.5]);
    let params = SinrParams::new(2.0, 1.0, 1.0); // signal < beta*noise
    assert!(!rayfade::sinr::is_feasible(&gain, &params, &[0]));
    let q = success_probability(&gain, &params, &[1.0], 0);
    assert!(q > 0.1, "Rayleigh probability {q}");
}

/// Sec. 7 scalar: the optimum statistic lands in the paper's ballpark
/// (paper: 49.75 on its own RNG; we assert the same regime).
#[test]
fn optimum_statistic_near_paper_value() {
    let config = Figure1Config {
        networks: 6,
        ..Figure1Config::default()
    };
    let stats = rayfade::sim::optimum_statistic(&config, 6);
    let mean = stats.mean();
    assert!(
        (40.0..60.0).contains(&mean),
        "optimum statistic {mean} outside the paper's regime (49.75)"
    );
}

/// Figure 1 qualitative claims on a reduced run: (a) the Rayleigh curve is
/// a smoothed version of the non-fading one — neither dominates
/// everywhere; (b) at high interference (q = 1, dense) Rayleigh allows
/// relatively more success than at low interference.
#[test]
fn figure1_shape_smoke() {
    let cfg = Figure1Config {
        networks: 6,
        topology: PaperTopology {
            links: 60,
            ..PaperTopology::figure1()
        },
        q_grid: vec![0.1, 0.5, 1.0],
        tx_seeds: 15,
        fading_seeds: 6,
        ..Figure1Config::default()
    };
    let res = rayfade::sim::run_figure1(&cfg);
    let uniform_nf = &res.curves[0];
    let uniform_ray = &res.curves[1];
    assert!(!uniform_nf.rayleigh && uniform_ray.rayleigh);
    // Both curves are positive and of the same order everywhere.
    for (a, b) in uniform_nf.points.iter().zip(&uniform_ray.points) {
        assert!(a.mean > 0.0 && b.mean > 0.0);
        let ratio = b.mean / a.mean;
        assert!(
            (0.3..=3.0).contains(&ratio),
            "models diverge at q = {}: nf {}, ray {}",
            a.q,
            a.mean,
            b.mean
        );
    }
}

/// Figure 2 qualitative claims on a reduced run: learning converges near
/// the non-fading optimum, and the Rayleigh run reaches a smaller
/// capacity (the paper's closing observation).
#[test]
fn figure2_shape_smoke() {
    let cfg = Figure2Config {
        networks: 3,
        topology: PaperTopology {
            links: 80,
            ..PaperTopology::figure2()
        },
        rounds: 80,
        optimum_restarts: 4,
        ..Figure2Config::default()
    };
    let res = rayfade::sim::run_figure2(&cfg);
    let tail = |s: &[f64]| s[s.len() - 15..].iter().sum::<f64>() / 15.0;
    let nf_tail = tail(&res.nonfading);
    let ray_tail = tail(&res.rayleigh);
    let opt = res.optimum.unwrap();
    assert!(nf_tail > 0.5 * opt, "nf tail {nf_tail} vs optimum {opt}");
    assert!(
        ray_tail < nf_tail,
        "Rayleigh learning should reach smaller capacity: {ray_tail} vs {nf_tail}"
    );
    assert!(ray_tail > 0.3 * nf_tail, "but not collapse: {ray_tail}");
}
