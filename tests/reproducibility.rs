//! Golden reproducibility tests: pinned outputs for the smoke
//! experiments at their committed seeds. Any change to RNG streams,
//! generators, gain math, or the models shows up here as an exact-value
//! mismatch rather than a silent drift of the paper reproduction.
//!
//! If a change legitimately alters these numbers (e.g. a deliberate
//! generator fix), re-pin them and call the change out in EXPERIMENTS.md.
//!
//! Current pins are against (a) the vendored offline `rand` stub
//! (xoshiro256** behind `StdRng`, see `vendor/README.md`), whose streams
//! differ from upstream rand's ChaCha12, and (b) the SplitMix64
//! `mix_seed` stream derivations in `rayfade-sim` that replaced the old
//! collision-prone `wrapping_add`/`wrapping_mul` arithmetic. Re-pin
//! again if the registry crates are restored.

use rayfade::prelude::*;

fn assert_series(actual: impl IntoIterator<Item = f64>, expected: &[f64], label: &str) {
    let actual: Vec<f64> = actual.into_iter().collect();
    assert_eq!(actual.len(), expected.len(), "{label}: length");
    for (k, (a, e)) in actual.iter().zip(expected).enumerate() {
        assert!((a - e).abs() < 1e-9, "{label}[{k}]: got {a}, pinned {e}");
    }
}

#[test]
fn figure1_smoke_pinned() {
    let res = rayfade::sim::run_figure1(&Figure1Config::smoke());
    let means = |label: &str| -> Vec<f64> {
        res.curves
            .iter()
            .find(|c| c.label() == label)
            .unwrap_or_else(|| panic!("curve {label}"))
            .points
            .iter()
            .map(|p| p.mean)
            .collect()
    };
    assert_series(
        means("uniform/non-fading"),
        &[4.533333333333333, 9.133333333333333, 17.333333333333332],
        "uniform/non-fading",
    );
    assert_series(
        means("uniform/rayleigh"),
        &[4.333333333333334, 7.999999999999999, 13.355555555555554],
        "uniform/rayleigh",
    );
    assert_series(
        means("square-root/non-fading"),
        &[4.466666666666667, 9.066666666666666, 17.333333333333332],
        "square-root/non-fading",
    );
    assert_series(
        means("square-root/rayleigh"),
        &[4.333333333333334, 8.133333333333333, 13.711111111111112],
        "square-root/rayleigh",
    );
}

#[test]
fn figure2_smoke_pinned() {
    let res = rayfade::sim::run_figure2(&Figure2Config::smoke());
    assert_series(
        res.nonfading[..5].iter().copied(),
        &[15.5, 15.0, 16.5, 18.5, 21.5],
        "fig2 non-fading head",
    );
    assert_series(
        res.rayleigh[..5].iter().copied(),
        &[13.0, 14.5, 12.5, 14.5, 17.0],
        "fig2 rayleigh head",
    );
    assert!((res.optimum.unwrap() - 25.0).abs() < 1e-9, "fig2 optimum");
}

#[test]
fn generator_first_link_pinned() {
    // The very first link of the canonical Figure 1 network at seed
    // 0xf161 — pins the topology RNG stream end to end. The expected
    // values are printed by this test's own failure message when
    // re-pinning is needed.
    let net = PaperTopology::figure1().generate(0xf161);
    let l = net.link(0);
    let len = l.length();
    assert!(
        (20.0..=40.0).contains(&len),
        "first link length {len} out of the generator interval"
    );
    let got = (l.receiver.x, l.receiver.y, len);
    let pinned = PINNED_FIRST_LINK;
    assert!(
        (got.0 - pinned.0).abs() < 1e-9
            && (got.1 - pinned.1).abs() < 1e-9
            && (got.2 - pinned.2).abs() < 1e-9,
        "first link drifted: got {got:?}, pinned {pinned:?}"
    );
}

/// `(receiver.x, receiver.y, length)` of link 0 at seed 0xf161.
const PINNED_FIRST_LINK: (f64, f64, f64) =
    (732.3674840821341, 362.21182429258243, 36.07129312618064);

#[test]
fn theorem1_scalar_pinned() {
    // One closed-form probability at fixed inputs: pins the gain math and
    // the Theorem 1 formula.
    let net = PaperTopology::figure1().generate(2024);
    let params = SinrParams::figure1();
    let gm = GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha);
    let set = GreedyCapacity::new().select(&CapacityInstance::unweighted(&gm, &params));
    assert_eq!(set.len(), 37, "greedy selection size on seed 2024");
    let report = transfer_set(&gm, &params, &set);
    assert!(
        (report.rayleigh_expected_successes - 26.2779).abs() < 0.01,
        "expected successes drifted: {}",
        report.rayleigh_expected_successes
    );
}
