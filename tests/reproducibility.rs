//! Golden reproducibility tests: pinned outputs for the smoke
//! experiments at their committed seeds. Any change to RNG streams,
//! generators, gain math, or the models shows up here as an exact-value
//! mismatch rather than a silent drift of the paper reproduction.
//!
//! If a change legitimately alters these numbers (e.g. a deliberate
//! generator fix), re-pin them and call the change out in EXPERIMENTS.md.

use rayfade::prelude::*;

fn assert_series(actual: impl IntoIterator<Item = f64>, expected: &[f64], label: &str) {
    let actual: Vec<f64> = actual.into_iter().collect();
    assert_eq!(actual.len(), expected.len(), "{label}: length");
    for (k, (a, e)) in actual.iter().zip(expected).enumerate() {
        assert!((a - e).abs() < 1e-9, "{label}[{k}]: got {a}, pinned {e}");
    }
}

#[test]
fn figure1_smoke_pinned() {
    let res = rayfade::sim::run_figure1(&Figure1Config::smoke());
    let means = |label: &str| -> Vec<f64> {
        res.curves
            .iter()
            .find(|c| c.label() == label)
            .unwrap_or_else(|| panic!("curve {label}"))
            .points
            .iter()
            .map(|p| p.mean)
            .collect()
    };
    assert_series(
        means("uniform/non-fading"),
        &[4.6, 8.6, 13.333333333333334],
        "uniform/non-fading",
    );
    assert_series(
        means("uniform/rayleigh"),
        &[4.244444444444444, 7.688888888888889, 11.488888888888889],
        "uniform/rayleigh",
    );
    assert_series(
        means("square-root/non-fading"),
        &[4.666666666666667, 8.533333333333333, 14.0],
        "square-root/non-fading",
    );
    assert_series(
        means("square-root/rayleigh"),
        &[4.266666666666667, 7.911111111111111, 11.622222222222222],
        "square-root/rayleigh",
    );
}

#[test]
fn figure2_smoke_pinned() {
    let res = rayfade::sim::run_figure2(&Figure2Config::smoke());
    assert_series(
        res.nonfading[..5].iter().copied(),
        &[15.5, 16.0, 21.0, 21.5, 19.5],
        "fig2 non-fading head",
    );
    assert_series(
        res.rayleigh[..5].iter().copied(),
        &[11.5, 14.0, 16.0, 15.5, 16.5],
        "fig2 rayleigh head",
    );
    assert!((res.optimum.unwrap() - 24.5).abs() < 1e-9, "fig2 optimum");
}

#[test]
fn generator_first_link_pinned() {
    // The very first link of the canonical Figure 1 network at seed
    // 0xf161 — pins the topology RNG stream end to end. The expected
    // values are printed by this test's own failure message when
    // re-pinning is needed.
    let net = PaperTopology::figure1().generate(0xf161);
    let l = net.link(0);
    let len = l.length();
    assert!(
        (20.0..=40.0).contains(&len),
        "first link length {len} out of the generator interval"
    );
    let got = (l.receiver.x, l.receiver.y, len);
    let pinned = PINNED_FIRST_LINK;
    assert!(
        (got.0 - pinned.0).abs() < 1e-9
            && (got.1 - pinned.1).abs() < 1e-9
            && (got.2 - pinned.2).abs() < 1e-9,
        "first link drifted: got {got:?}, pinned {pinned:?}"
    );
}

/// `(receiver.x, receiver.y, length)` of link 0 at seed 0xf161.
const PINNED_FIRST_LINK: (f64, f64, f64) = (499.134873118918, 440.944682135497, 31.962361088731);

#[test]
fn theorem1_scalar_pinned() {
    // One closed-form probability at fixed inputs: pins the gain math and
    // the Theorem 1 formula.
    let net = PaperTopology::figure1().generate(2024);
    let params = SinrParams::figure1();
    let gm = GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha);
    let set = GreedyCapacity::new().select(&CapacityInstance::unweighted(&gm, &params));
    assert_eq!(set.len(), 37, "greedy selection size on seed 2024");
    let report = transfer_set(&gm, &params, &set);
    assert!(
        (report.rayleigh_expected_successes - 27.0964).abs() < 0.01,
        "expected successes drifted: {}",
        report.rayleigh_expected_successes
    );
}
