//! Failure-injection and degenerate-instance tests across the workspace:
//! empty networks, singleton links, hopeless noise regimes, zero noise,
//! extreme thresholds, and adversarial gain matrices. The library must
//! degrade gracefully (empty results, explicit "hopeless" reporting),
//! never panic on valid-but-extreme inputs.

use rayfade::prelude::*;

fn empty_gain() -> GainMatrix {
    GainMatrix::from_raw(0, vec![])
}

#[test]
fn empty_instance_everywhere() {
    let params = SinrParams::figure1();
    let gm = empty_gain();
    assert!(GreedyCapacity::new()
        .select(&CapacityInstance::unweighted(&gm, &params))
        .is_empty());
    assert!(LocalSearchCapacity::default()
        .select(&CapacityInstance::unweighted(&gm, &params))
        .is_empty());
    let sol = recursive_schedule(&gm, &params, &GreedyCapacity::new());
    assert_eq!(sol.makespan(), 0);
    let report = transfer_set(&gm, &params, &[]);
    assert!(report.meets_guarantee());
    let mut model = RayleighModel::new(gm, params, 0);
    assert!(SuccessModel::resolve_slot(&mut model, &[]).is_empty());
}

#[test]
fn singleton_network() {
    let params = SinrParams::figure1();
    let net = PaperTopology {
        links: 1,
        ..PaperTopology::figure1()
    }
    .generate(0);
    let gm = GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha);
    let set = GreedyCapacity::new().select(&CapacityInstance::unweighted(&gm, &params));
    assert_eq!(set, vec![0]);
    let report = transfer_set(&gm, &params, &set);
    assert!(
        report.rayleigh_expected_successes > 0.9,
        "lone paper link is near-certain"
    );
    let sol = recursive_schedule(&gm, &params, &GreedyCapacity::new());
    assert_eq!(sol.makespan(), 1);
}

#[test]
fn all_links_hopeless_against_noise() {
    // Every link below the noise floor: non-fading can do nothing.
    let gm = GainMatrix::from_raw(3, vec![0.1, 0.0, 0.0, 0.0, 0.1, 0.0, 0.0, 0.0, 0.1]);
    let params = SinrParams::new(2.0, 10.0, 1.0); // beta*nu = 10 >> 0.1
    assert!(GreedyCapacity::new()
        .select(&CapacityInstance::unweighted(&gm, &params))
        .is_empty());
    let sol = recursive_schedule(&gm, &params, &GreedyCapacity::new());
    assert_eq!(sol.hopeless, vec![0, 1, 2]);
    assert_eq!(sol.makespan(), 0);
    // Rayleigh still gives everyone a (tiny) chance — the paper's
    // "infinitely better" regime.
    let e = rayfade::fading::expected_successes_of_set(&gm, &params, &[0, 1, 2]);
    assert!(e > 0.0 && e < 1e-20, "expected {e}");
}

#[test]
fn zero_noise_figure2_regime() {
    // nu = 0 everywhere: no division by noise anywhere.
    let params = SinrParams::figure2();
    let net = PaperTopology {
        links: 20,
        ..PaperTopology::figure2()
    }
    .generate(1);
    let gm = GainMatrix::from_geometry(&net, &PowerAssignment::Uniform(2.0), params.alpha);
    let set = GreedyCapacity::new().select(&CapacityInstance::unweighted(&gm, &params));
    assert!(!set.is_empty());
    let report = transfer_set(&gm, &params, &set);
    assert!(report.meets_guarantee());
    // Lone transmitter at zero noise: infinite SINR, certain success.
    let q = success_probability(
        &gm,
        &params,
        &{
            let mut v = vec![0.0; 20];
            v[set[0]] = 1.0;
            v
        },
        set[0],
    );
    assert!((q - 1.0).abs() < 1e-12);
}

#[test]
fn extreme_thresholds() {
    let net = PaperTopology {
        links: 10,
        ..PaperTopology::figure1()
    }
    .generate(2);
    // Absurdly low threshold: everyone succeeds together.
    let easy = SinrParams::new(2.2, 1e-12, 4e-7);
    let gm = GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), easy.alpha);
    let set = GreedyCapacity::new().select(&CapacityInstance::unweighted(&gm, &easy));
    assert_eq!(set.len(), 10);
    // Absurdly high threshold: nobody can succeed, even alone (noise).
    let hard = SinrParams::new(2.2, 1e18, 4e-7);
    let set = GreedyCapacity::new().select(&CapacityInstance::unweighted(&gm, &hard));
    assert!(
        set.len() <= 1,
        "at most a lone link can clear beta=1e18: {set:?}"
    );
}

#[test]
fn adversarial_gain_matrix_asymmetric_domination() {
    // Link 0 jams everyone; nobody jams link 0.
    let n = 5;
    let mut g = vec![0.0; n * n];
    for i in 0..n {
        g[i * n + i] = 10.0;
        if i != 0 {
            g[i * n] = 1e6; // sender 0 at receiver i
        }
    }
    let gm = GainMatrix::from_raw(n, g);
    let params = SinrParams::new(2.0, 1.0, 0.1);
    let set = GreedyCapacity::new().select(&CapacityInstance::unweighted(&gm, &params));
    assert!(rayfade::sinr::is_feasible(&gm, &params, &set));
    // Either link 0 alone, or everyone but link 0.
    if set.contains(&0) {
        assert_eq!(set, vec![0]);
    } else {
        assert_eq!(set.len(), n - 1);
    }
    // The exact optimum picks the n-1 victims over the lone jammer.
    let exact = ExactCapacity::default().select(&CapacityInstance::unweighted(&gm, &params));
    assert_eq!(exact, vec![1, 2, 3, 4]);
}

#[test]
fn aloha_with_unschedulable_subset_terminates() {
    let gm = GainMatrix::from_raw(2, vec![10.0, 0.0, 0.0, 0.01]);
    let params = SinrParams::new(2.0, 5.0, 1.0); // link 1 hopeless
    let mut model = NonFadingModel::new(gm, params);
    let out = run_aloha(
        &mut model,
        &AlohaConfig {
            max_steps: 200,
            ..AlohaConfig::default()
        },
        None,
    );
    assert!(out.success_slot[0].is_some());
    assert!(out.success_slot[1].is_none());
}

#[test]
fn simulation_plan_handles_zero_probabilities() {
    let plan = SimulationPlan::build(&[0.0, 0.0, 0.0, 0.0]);
    let gm = GainMatrix::from_raw(
        4,
        vec![
            1.0, 0.0, 0.0, 0.0, //
            0.0, 1.0, 0.0, 0.0, //
            0.0, 0.0, 1.0, 0.0, //
            0.0, 0.0, 0.0, 1.0,
        ],
    );
    let params = SinrParams::new(2.0, 1.0, 0.1);
    let run = rayfade::fading::execute_plan(&gm, &params, &plan, 3);
    // Nobody ever transmits; best SINR stays at -inf.
    assert_eq!(run.count_reached(params.beta), 0);
}

#[test]
fn learning_on_two_hostile_links_splits_the_channel() {
    // Mutually exclusive pair: at most one can ever succeed per round.
    // Learning should not collapse to both-always-send.
    let gm = GainMatrix::from_raw(2, vec![10.0, 50.0, 50.0, 10.0]);
    let params = SinrParams::new(2.0, 1.0, 0.0);
    let mut model = NonFadingModel::new(gm, params);
    let out = run_game_with_beta(
        &mut model,
        params.beta,
        &GameConfig {
            rounds: 500,
            seed: 3,
        },
    );
    // Per-round successes can be at most 1.
    assert!(out.successes_per_round.iter().all(|&s| s <= 1));
}

#[test]
fn giant_weights_do_not_break_weighted_selection() {
    let gm = GainMatrix::from_raw(2, vec![10.0, 9.0, 9.0, 10.0]);
    let params = SinrParams::new(2.0, 2.0, 0.0);
    let w = vec![1e300, 1.0];
    let set = GreedyCapacity::weighted().select(&CapacityInstance::weighted(&gm, &params, &w));
    assert_eq!(set, vec![0]);
}
