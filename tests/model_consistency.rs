//! Cross-model consistency checks: the analytic layer (Theorem 1 closed
//! form, SINR CCDF, quadrature utilities) must agree with the sampled
//! channels, and the channel family must be coherent (Nakagami m=1 ≡
//! Rayleigh, m→∞ → non-fading).

use rayfade::fading::{expected_utility_exact, sinr_ccdf, NakagamiModel, QuadratureConfig};
use rayfade::prelude::*;

fn paper_case(seed: u64, n: usize) -> (GainMatrix, SinrParams) {
    let net = PaperTopology {
        links: n,
        ..PaperTopology::figure1()
    }
    .generate(seed);
    let params = SinrParams::figure1();
    let gm = GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha);
    (gm, params)
}

#[test]
fn ccdf_matches_empirical_distribution() {
    let (gm, params) = paper_case(1, 8);
    let set: Vec<usize> = (0..8).collect();
    let mask = rayfade::sinr::mask_from_set(8, &set);
    let mut model = RayleighModel::new(gm.clone(), params, 7);
    let trials = 40_000;
    // Empirical CCDF of link 0's SINR at a few levels vs the closed form.
    let levels = [0.5, 1.0, 2.5, 5.0, 10.0];
    let mut hits = [0usize; 5];
    for _ in 0..trials {
        let sinrs = SuccessModel::resolve_sinrs(&mut model, &mask);
        for (k, &x) in levels.iter().enumerate() {
            if sinrs[0] >= x {
                hits[k] += 1;
            }
        }
    }
    for (k, &x) in levels.iter().enumerate() {
        let emp = hits[k] as f64 / trials as f64;
        let analytic = sinr_ccdf(&gm, params.noise, &set, 0, x);
        assert!(
            (emp - analytic).abs() < 0.01,
            "level {x}: empirical {emp} vs analytic {analytic}"
        );
    }
}

#[test]
fn quadrature_expected_successes_match_theorem1() {
    // Integrating the binary utility must recover Sigma Q_i.
    let (gm, params) = paper_case(2, 10);
    let set: Vec<usize> = (0..10).collect();
    let u = BinaryUtility::new(params.beta);
    let quad_total: f64 = set
        .iter()
        .map(|&i| {
            expected_utility_exact(&gm, params.noise, &set, i, &u, &QuadratureConfig::default())
        })
        .sum();
    let theorem1 = rayfade::fading::expected_successes_of_set(&gm, &params, &set);
    assert!(
        (quad_total - theorem1).abs() < 0.05,
        "quadrature {quad_total} vs Theorem 1 {theorem1}"
    );
}

#[test]
fn nakagami_family_is_coherent() {
    let (gm, params) = paper_case(3, 12);
    let mask = vec![true; 12];
    let trials = 20_000;
    let mean_rate = |m: Option<f64>, seed: u64| -> f64 {
        match m {
            Some(m) => {
                let mut model = NakagamiModel::new(gm.clone(), params, m, seed);
                (0..trials)
                    .map(|_| model.resolve_slot(&mask).len())
                    .sum::<usize>() as f64
                    / trials as f64
            }
            None => {
                let mut model = RayleighModel::new(gm.clone(), params, seed);
                (0..trials)
                    .map(|_| SuccessModel::resolve_slot(&mut model, &mask).len())
                    .sum::<usize>() as f64
                    / trials as f64
            }
        }
    };
    let rayleigh = mean_rate(None, 10);
    let naka1 = mean_rate(Some(1.0), 11);
    assert!(
        (rayleigh - naka1).abs() < 0.15,
        "m=1 ({naka1}) must match Rayleigh ({rayleigh})"
    );
    // Interpolation toward non-fading.
    let naka4 = mean_rate(Some(4.0), 12);
    let nonfading = rayfade::sinr::count_successes(&gm, &params, &mask) as f64;
    assert!(
        (naka4 - nonfading).abs() < (naka1 - nonfading).abs(),
        "m=4 ({naka4}) must sit closer to non-fading ({nonfading}) than m=1 ({naka1})"
    );
}

#[test]
fn analytic_figure1_curve_matches_sampled_curve() {
    let cfg = Figure1Config {
        networks: 4,
        topology: PaperTopology {
            links: 40,
            ..PaperTopology::figure1()
        },
        q_grid: vec![0.3, 0.8],
        tx_seeds: 30,
        fading_seeds: 10,
        ..Figure1Config::default()
    };
    let sampled = rayfade::sim::run_figure1(&cfg);
    let analytic = rayfade::sim::run_figure1_analytic(&cfg, rayfade::sim::PowerFamily::Uniform);
    let mc = sampled
        .curves
        .iter()
        .find(|c| c.rayleigh && c.power == rayfade::sim::PowerFamily::Uniform)
        .unwrap();
    for (a, b) in analytic.points.iter().zip(&mc.points) {
        assert!(
            (a.mean - b.mean).abs() < 0.6,
            "q {}: analytic {} vs sampled {}",
            a.q,
            a.mean,
            b.mean
        );
    }
}

#[test]
fn spectral_threshold_consistent_with_greedy_feasibility() {
    // Any feasible set under threshold beta must have spectral max
    // threshold >= beta (power control can only help).
    let (gm, params) = paper_case(4, 30);
    let set = GreedyCapacity::new().select(&CapacityInstance::unweighted(&gm, &params));
    let beta_star = rayfade::sinr::max_feasible_threshold(&gm, &set);
    assert!(
        beta_star >= params.beta,
        "spectral threshold {beta_star} below operating beta {}",
        params.beta
    );
}
