//! The region executor behind the parallel iterators: scoped worker
//! threads, per-worker chunk deques, and lock-based work stealing.
//!
//! A *region* is one terminal parallel operation (`map`, `for_each`,
//! a `filter` predicate sweep, …). The items are split into ordered
//! chunks (at most [`CHUNKS_PER_WORKER`] per worker), the chunk ids are
//! dealt round-robin onto per-worker deques, and `threads - 1` scoped
//! helper threads are spawned while the calling thread works too. A
//! worker pops from the **back** of its own deque and, when empty,
//! steals from the **front** of a victim's — classic work stealing, so
//! an unlucky worker stuck on a slow chunk sheds the rest of its deque
//! to its peers. All of it is `std` threads plus `Mutex`/`VecDeque`:
//! no unsafe, no dependencies.
//!
//! Determinism: chunk `k` always holds the same contiguous input range
//! and its outputs are reassembled in chunk order, so the result of a
//! parallel `map` is byte-identical to the sequential one at every
//! thread count — only wall-clock time changes. Reductions that would
//! be sensitive to grouping (float `sum`/`fold`/`reduce`) deliberately
//! stay sequential in [`crate::iter`].
//!
//! Nesting: a worker (or the caller while it participates) is marked
//! in-region; parallel calls issued from inside run inline on that
//! worker. Nested `par_iter` therefore cannot deadlock or oversubscribe
//! — the outer region already owns the cores.
//!
//! Panics: a panicking chunk aborts the region (remaining chunks are
//! abandoned), the first payload is captured, every worker is joined,
//! and the payload is re-thrown on the calling thread.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Upper bound on chunks dealt per worker. Oversubscribing chunks (vs
/// one chunk per worker) is what gives stealing room to balance uneven
/// per-item cost; 4 keeps per-chunk bookkeeping negligible.
const CHUNKS_PER_WORKER: usize = 4;

thread_local! {
    /// Thread count installed by [`crate::ThreadPool::install`] for the
    /// current scope, if any.
    static INSTALLED: Cell<Option<usize>> = const { Cell::new(None) };
    /// Whether this thread is currently executing inside a parallel
    /// region (worker or participating caller).
    static IN_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Parses a `RAYFADE_THREADS`-style value: a positive integer wins,
/// anything else (absent, empty, junk, `0`) falls through to the
/// hardware default.
pub(crate) fn parse_thread_env(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// The process-wide default thread count: `RAYFADE_THREADS` if set to a
/// positive integer, otherwise `std::thread::available_parallelism()`.
/// Read once and cached — a fixed value keeps every region's chunk
/// geometry stable within a run.
pub(crate) fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        parse_thread_env(std::env::var("RAYFADE_THREADS").ok().as_deref()).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    })
}

/// The thread count the next parallel region would use on this thread:
/// an installed pool's size if inside [`crate::ThreadPool::install`],
/// the process default otherwise.
pub fn current_num_threads() -> usize {
    INSTALLED
        .with(Cell::get)
        .unwrap_or_else(default_threads)
        .max(1)
}

/// Restores the previously installed thread count on drop (so
/// `install` nests and unwinds correctly).
pub(crate) struct InstallGuard {
    prev: Option<usize>,
}

impl InstallGuard {
    /// Installs `threads` (resolved: 0 means the process default) as
    /// this thread's pool size until the guard drops.
    pub(crate) fn new(threads: usize) -> InstallGuard {
        let resolved = if threads == 0 {
            default_threads()
        } else {
            threads
        };
        InstallGuard {
            prev: INSTALLED.with(|c| c.replace(Some(resolved))),
        }
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        INSTALLED.with(|c| c.set(prev));
    }
}

/// Marks the current thread as executing inside a region; restores the
/// previous mark on drop (exception-safe via RAII).
struct RegionGuard {
    prev: bool,
}

impl RegionGuard {
    fn enter() -> RegionGuard {
        RegionGuard {
            prev: IN_REGION.with(|c| c.replace(true)),
        }
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_REGION.with(|c| c.set(prev));
    }
}

/// A poisoned mutex only means another worker panicked mid-region; the
/// protected data (taken inputs / stored outputs) is still consistent,
/// and the region is about to re-throw that panic anyway.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One chunk's in-flight state: the owned input slice (taken by the
/// claiming worker) and its output slot.
struct ChunkCell<T, O> {
    input: Mutex<Option<Vec<T>>>,
    output: Mutex<Option<Vec<O>>>,
}

/// Applies `f` to every item on the region's workers and returns the
/// outputs **in input order** — the indexed-collect determinism
/// contract every consumer in the workspace relies on.
///
/// Runs inline (no threads, no chunking — exactly the old sequential
/// stub) when the effective thread count is 1, the input has fewer than
/// two items, or the calling thread is already inside a region.
pub(crate) fn parallel_map<T, O, F>(items: Vec<T>, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    let n = items.len();
    let in_region = IN_REGION.with(Cell::get);
    let threads = if in_region { 1 } else { current_num_threads() }.min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Contiguous, order-preserving chunks; geometry depends only on
    // (n, threads), never on scheduling.
    let nchunks = n.min(threads * CHUNKS_PER_WORKER);
    let mut rest = items;
    let mut chunks: Vec<ChunkCell<T, O>> = Vec::with_capacity(nchunks);
    for k in (0..nchunks).rev() {
        let size = n / nchunks + usize::from(k < n % nchunks);
        chunks.push(ChunkCell {
            input: Mutex::new(Some(rest.split_off(rest.len() - size))),
            output: Mutex::new(None),
        });
    }
    chunks.reverse();
    debug_assert!(rest.is_empty());

    // Chunk ids dealt round-robin; each worker owns deque `w`.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| Mutex::new((0..nchunks).filter(|c| c % threads == w).collect()))
        .collect();
    let aborted = AtomicBool::new(false);
    let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    let work = |w: usize| {
        let _region = RegionGuard::enter();
        loop {
            if aborted.load(Ordering::Relaxed) {
                break;
            }
            // Own deque from the back; steal victims' fronts.
            let mut claimed = None;
            for k in 0..threads {
                let victim = (w + k) % threads;
                let mut q = lock_unpoisoned(&queues[victim]);
                claimed = if k == 0 { q.pop_back() } else { q.pop_front() };
                if claimed.is_some() {
                    break;
                }
            }
            let Some(c) = claimed else {
                break; // every deque empty: all chunks claimed
            };
            let Some(input) = lock_unpoisoned(&chunks[c].input).take() else {
                continue;
            };
            let run = AssertUnwindSafe(|| input.into_iter().map(&f).collect::<Vec<O>>());
            match catch_unwind(run) {
                Ok(out) => *lock_unpoisoned(&chunks[c].output) = Some(out),
                Err(payload) => {
                    let mut slot = lock_unpoisoned(&first_panic);
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                    aborted.store(true, Ordering::Relaxed);
                    break;
                }
            }
        }
    };

    std::thread::scope(|s| {
        let work = &work;
        for w in 1..threads {
            s.spawn(move || work(w));
        }
        work(0);
    });

    if let Some(payload) = lock_unpoisoned(&first_panic).take() {
        resume_unwind(payload);
    }
    let mut out = Vec::with_capacity(n);
    for cell in chunks {
        out.extend(
            cell.output
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("region joined without panic, so every chunk completed"),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_thread_env_accepts_positive_integers_only() {
        assert_eq!(parse_thread_env(Some("4")), Some(4));
        assert_eq!(parse_thread_env(Some(" 8 ")), Some(8));
        assert_eq!(parse_thread_env(Some("0")), None);
        assert_eq!(parse_thread_env(Some("-2")), None);
        assert_eq!(parse_thread_env(Some("many")), None);
        assert_eq!(parse_thread_env(Some("")), None);
        assert_eq!(parse_thread_env(None), None);
    }

    #[test]
    fn chunk_geometry_partitions_exactly() {
        for n in [2usize, 3, 7, 16, 1000, 1001] {
            let out = parallel_map((0..n).collect(), |x| x);
            assert_eq!(out, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn install_guard_nests_and_restores() {
        assert!(INSTALLED.with(Cell::get).is_none());
        {
            let _a = InstallGuard::new(3);
            assert_eq!(current_num_threads(), 3);
            {
                let _b = InstallGuard::new(7);
                assert_eq!(current_num_threads(), 7);
            }
            assert_eq!(current_num_threads(), 3);
        }
        assert!(INSTALLED.with(Cell::get).is_none());
    }
}
