//! The parallel-iterator API subset the workspace uses, executed on the
//! work-stealing region executor in [`crate::pool`].
//!
//! [`Par`] holds its items eagerly (`Vec<T>`); each element-wise
//! adaptor (`map`, `filter`, `flat_map`, `for_each`) is one parallel
//! region whose outputs are reassembled **in input order**, so results
//! are byte-identical to sequential execution at every thread count.
//!
//! Grouping-sensitive reductions — `sum`, `fold`, `reduce`, `max`,
//! `min`, `count` — deliberately run sequentially over the (already
//! parallel-computed) items: float addition is not associative, and the
//! workspace's committed artifacts (`stability.csv`, journals) pin the
//! sequential grouping. The heavy lifting in every consumer lives in
//! the `map` closure, so this costs no measurable wall time; it buys
//! bit-equal reductions at any pool size. `fold` therefore yields
//! exactly one accumulator, as the old sequential stand-in did.

use crate::pool;

/// A parallel iterator over eagerly materialized items (see the module
/// docs for the execution and determinism contract).
#[derive(Debug, Clone)]
pub struct Par<T> {
    items: Vec<T>,
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Par<Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    fn into_par_iter(self) -> Par<I::Item> {
        Par {
            items: self.into_iter().collect(),
        }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a reference).
    type Item: 'a;
    /// Borrowing counterpart of
    /// [`into_par_iter`](IntoParallelIterator::into_par_iter).
    fn par_iter(&'a self) -> Par<Self::Item>;
}

impl<'a, C: 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Item = <&'a C as IntoIterator>::Item;
    fn par_iter(&'a self) -> Par<Self::Item> {
        Par {
            items: self.into_iter().collect(),
        }
    }
}

impl<T> Par<T> {
    /// Maps each element on the pool's workers; output order equals
    /// input order regardless of thread count.
    pub fn map<O, F>(self, f: F) -> Par<O>
    where
        T: Send,
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        Par {
            items: pool::parallel_map(self.items, f),
        }
    }

    /// Keeps elements matching the predicate (predicate evaluated in
    /// parallel, order preserved).
    pub fn filter<F>(self, f: F) -> Par<T>
    where
        T: Send,
        F: Fn(&T) -> bool + Sync,
    {
        let flagged = pool::parallel_map(self.items, |t| (f(&t), t));
        Par {
            items: flagged
                .into_iter()
                .filter_map(|(keep, t)| keep.then_some(t))
                .collect(),
        }
    }

    /// Maps then flattens (the map runs in parallel; flattening
    /// preserves input order).
    pub fn flat_map<U, F>(self, f: F) -> Par<U::Item>
    where
        T: Send,
        U: IntoIterator,
        U::Item: Send,
        F: Fn(T) -> U + Sync,
    {
        let nested = pool::parallel_map(self.items, |t| f(t).into_iter().collect::<Vec<_>>());
        Par {
            items: nested.into_iter().flatten().collect(),
        }
    }

    /// Runs `f` on every element on the pool's workers.
    pub fn for_each<F>(self, f: F)
    where
        T: Send,
        F: Fn(T) + Sync,
    {
        pool::parallel_map(self.items, |t| f(t));
    }

    /// Collects into any `FromIterator` container (items were already
    /// produced in input order; this is a sequential move).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the elements — sequentially, left to right, so float totals
    /// are bit-identical at every thread count (see module docs).
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Counts the elements.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Rayon-style fold producing per-"split" accumulators. This
    /// implementation never splits the fold (one accumulator, built
    /// left to right) so grouping-sensitive accumulations are
    /// bit-identical at every thread count.
    pub fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> Par<A>
    where
        ID: Fn() -> A,
        F: FnMut(A, T) -> A,
    {
        Par {
            items: vec![self.items.into_iter().fold(identity(), fold_op)],
        }
    }

    /// Rayon-style reduce with an identity constructor (sequential,
    /// left to right — see module docs).
    pub fn reduce<ID, F>(self, identity: ID, mut op: F) -> T
    where
        ID: Fn() -> T,
        F: FnMut(T, T) -> T,
    {
        let mut acc = identity();
        for item in self.items {
            acc = op(acc, item);
        }
        acc
    }

    /// Maximum element.
    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().max()
    }

    /// Minimum element.
    pub fn min(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().min()
    }
}
