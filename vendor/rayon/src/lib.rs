//! Offline stand-in for the `rayon` crate.
//!
//! Exposes the parallel-iterator API subset the workspace uses —
//! `into_par_iter`, `par_iter`, `map`/`filter`/`flat_map`/`fold`/`reduce`/
//! `sum`/`collect`/`for_each`, plus [`ThreadPoolBuilder`] — but executes
//! everything **sequentially** on the calling thread. Every consumer in
//! this workspace is written to be order-deterministic (indexed collects),
//! so sequential execution produces bit-identical results; only wall-clock
//! parallel speedup is lost. When a real crates.io mirror is available,
//! deleting this stub and restoring the registry dependency restores
//! parallelism with no source changes.

#![forbid(unsafe_code)]

/// The parallel-iterator traits and adaptors (sequential implementation).
pub mod iter {
    /// A "parallel" iterator: a thin wrapper over a sequential iterator.
    #[derive(Debug, Clone)]
    pub struct Par<I>(pub(crate) I);

    /// Conversion into a parallel iterator by value.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item;
        /// Concrete iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Par<Self::Iter>;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Par<I::IntoIter> {
            Par(self.into_iter())
        }
    }

    /// Conversion into a parallel iterator over references.
    pub trait IntoParallelRefIterator<'a> {
        /// Element type (a reference).
        type Item: 'a;
        /// Concrete iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Borrowing counterpart of `into_par_iter`.
        fn par_iter(&'a self) -> Par<Self::Iter>;
    }

    impl<'a, C: 'a> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
    {
        type Item = <&'a C as IntoIterator>::Item;
        type Iter = <&'a C as IntoIterator>::IntoIter;
        fn par_iter(&'a self) -> Par<Self::Iter> {
            Par(self.into_iter())
        }
    }

    impl<I: Iterator> Par<I> {
        /// Maps each element.
        pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> Par<std::iter::Map<I, F>> {
            Par(self.0.map(f))
        }

        /// Keeps elements matching the predicate.
        pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> Par<std::iter::Filter<I, F>> {
            Par(self.0.filter(f))
        }

        /// Maps then flattens.
        pub fn flat_map<O: IntoIterator, F: FnMut(I::Item) -> O>(
            self,
            f: F,
        ) -> Par<std::iter::FlatMap<I, O, F>> {
            Par(self.0.flat_map(f))
        }

        /// Collects into any `FromIterator` container.
        pub fn collect<C: FromIterator<I::Item>>(self) -> C {
            self.0.collect()
        }

        /// Runs `f` on every element.
        pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
            self.0.for_each(f)
        }

        /// Sums the elements.
        pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
            self.0.sum()
        }

        /// Counts the elements.
        pub fn count(self) -> usize {
            self.0.count()
        }

        /// Rayon-style fold: produces per-"thread" accumulators. The
        /// sequential stub produces exactly one accumulator.
        pub fn fold<T, ID: Fn() -> T, F: FnMut(T, I::Item) -> T>(
            self,
            identity: ID,
            mut fold_op: F,
        ) -> Par<std::iter::Once<T>> {
            let mut acc = identity();
            for item in self.0 {
                acc = fold_op(acc, item);
            }
            Par(std::iter::once(acc))
        }

        /// Rayon-style reduce with an identity constructor.
        pub fn reduce<ID: Fn() -> I::Item, F: FnMut(I::Item, I::Item) -> I::Item>(
            self,
            identity: ID,
            mut op: F,
        ) -> I::Item {
            let mut acc = identity();
            for item in self.0 {
                acc = op(acc, item);
            }
            acc
        }

        /// Maximum element.
        pub fn max(self) -> Option<I::Item>
        where
            I::Item: Ord,
        {
            self.0.max()
        }

        /// Minimum element.
        pub fn min(self) -> Option<I::Item>
        where
            I::Item: Ord,
        {
            self.0.min()
        }
    }
}

/// Everything a `use rayon::prelude::*;` consumer expects in scope.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Builder for a (stub) thread pool.
///
/// `num_threads` is recorded but ignored: all work runs on the calling
/// thread, which trivially satisfies "results must match across thread
/// counts" determinism tests.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type of [`ThreadPoolBuilder::build`] (never produced).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool construction cannot fail in the sequential stub")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the requested thread count (ignored by the stub).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the (stub) pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            _threads: self.num_threads,
        })
    }
}

/// A stub thread pool: `install` simply runs the closure inline.
#[derive(Debug)]
pub struct ThreadPool {
    _threads: usize,
}

impl ThreadPool {
    /// Runs `op` "inside" the pool (inline in the stub).
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        op()
    }
}

/// Number of threads the stub executes on (always 1).
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn map_collect_matches_sequential() {
        let out: Vec<u64> = (0u64..10).into_par_iter().map(|x| x * x).collect();
        assert_eq!(out, (0u64..10).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn fold_reduce_chain() {
        let total: u64 = (1u64..=100)
            .into_par_iter()
            .fold(|| 0u64, |a, x| a + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 5050);
    }

    #[test]
    fn par_iter_over_refs() {
        let v = vec![1, 2, 3];
        let s: i32 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 6);
    }

    #[test]
    fn pool_install_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.install(|| 42), 42);
    }
}
