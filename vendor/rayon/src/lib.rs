//! Offline stand-in for the `rayon` crate — with a **real** thread pool.
//!
//! Exposes the parallel-iterator API subset the workspace uses —
//! `into_par_iter`, `par_iter`, `map`/`filter`/`flat_map`/`fold`/
//! `reduce`/`sum`/`collect`/`for_each`, plus [`ThreadPoolBuilder`] — and
//! executes element-wise work **in parallel** on a work-stealing region
//! executor (scoped `std` threads, per-worker `Mutex`-deques, no
//! unsafe; see [`pool`]). Every consumer in this workspace is written to
//! be order-deterministic (indexed collects, post-collect journaling),
//! and the executor reassembles outputs in input order while keeping
//! grouping-sensitive reductions sequential, so results are
//! **byte-identical at every thread count** — parallelism changes only
//! wall-clock time.
//!
//! Thread-count policy, outermost first:
//! 1. [`ThreadPool::install`] — a per-scope override from
//!    `ThreadPoolBuilder::new().num_threads(n).build()`.
//! 2. The `RAYFADE_THREADS` environment variable (a positive integer;
//!    read once per process). CI pins this for reproducible timings.
//! 3. `std::thread::available_parallelism()`.
//!
//! Nested parallel calls (a `par_iter` issued from inside a worker) run
//! inline on that worker — no deadlock, no oversubscription. Worker
//! panics abort the region and are re-thrown on the calling thread.
//! `num_threads(1)` runs every region inline, which is exactly the old
//! sequential stand-in's behavior.
//!
//! When a real crates.io mirror is available, deleting this stand-in and
//! restoring the registry dependency requires no consumer source
//! changes.

#![forbid(unsafe_code)]

pub mod iter;
pub mod pool;

/// Everything a `use rayon::prelude::*;` consumer expects in scope.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type of [`ThreadPoolBuilder::build`] (never produced: the
/// executor spawns its scoped workers per region, so building a pool
/// only records the requested size).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool construction cannot fail in the vendored executor")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings (thread count resolved
    /// from `RAYFADE_THREADS` / available parallelism at install time).
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests `n` worker threads for regions run under this pool's
    /// [`install`](ThreadPool::install); `0` means the process default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool handle.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.num_threads,
        })
    }
}

/// A pool handle: [`install`](Self::install) pins the thread count for
/// every parallel region entered inside the closure (on this thread).
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count installed; parallel
    /// regions inside use exactly that many workers (the caller
    /// participates as one of them).
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        let _guard = pool::InstallGuard::new(self.threads);
        op()
    }

    /// The thread count regions under this pool use.
    pub fn current_num_threads(&self) -> usize {
        self.install(current_num_threads)
    }
}

/// The thread count the next parallel region on this thread would use:
/// an installed pool's size inside [`ThreadPool::install`], else the
/// `RAYFADE_THREADS` / hardware default.
pub fn current_num_threads() -> usize {
    pool::current_num_threads()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    fn pool(n: usize) -> super::ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn map_collect_matches_sequential() {
        let out: Vec<u64> = (0u64..10).into_par_iter().map(|x| x * x).collect();
        assert_eq!(out, (0u64..10).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn fold_reduce_chain() {
        let total: u64 = (1u64..=100)
            .into_par_iter()
            .fold(|| 0u64, |a, x| a + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 5050);
    }

    #[test]
    fn par_iter_over_refs() {
        let v = vec![1, 2, 3];
        let s: i32 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 6);
    }

    #[test]
    fn pool_install_runs_inline_and_reports_threads() {
        let p = pool(4);
        assert_eq!(p.install(|| 42), 42);
        assert_eq!(p.current_num_threads(), 4);
        assert_eq!(p.install(super::current_num_threads), 4);
    }

    #[test]
    fn empty_single_and_odd_inputs() {
        for n in [0usize, 1, 3, 7, 17] {
            let out: Vec<usize> =
                pool(8).install(|| (0..n).into_par_iter().map(|x| x + 1).collect());
            assert_eq!(out, (0..n).map(|x| x + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn one_thread_pool_matches_sequential_and_spawns_nothing() {
        // num_threads(1) must behave exactly like the old sequential
        // stand-in: results identical and the whole region inline.
        let hits = AtomicUsize::new(0);
        let out: Vec<usize> = pool(1).install(|| {
            (0..1000usize)
                .into_par_iter()
                .map(|x| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    x * 3
                })
                .collect()
        });
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let reference: Vec<f64> = (0..997u64)
            .into_par_iter()
            .map(|x| (x as f64).sqrt().sin())
            .collect();
        for threads in [1, 2, 3, 8, 32] {
            let out: Vec<f64> = pool(threads).install(|| {
                (0..997u64)
                    .into_par_iter()
                    .map(|x| (x as f64).sqrt().sin())
                    .collect()
            });
            assert_eq!(
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "thread count {threads} changed map results"
            );
        }
    }

    #[test]
    fn nested_par_iter_inside_worker_does_not_deadlock() {
        let out: Vec<usize> = pool(4).install(|| {
            (0..16usize)
                .into_par_iter()
                .map(|i| {
                    // Nested region: must run inline on this worker.
                    (0..8usize)
                        .into_par_iter()
                        .map(|j| i * 8 + j)
                        .sum::<usize>()
                })
                .collect()
        });
        let want: Vec<usize> = (0..16).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn worker_panic_propagates_payload_to_caller() {
        let caught = std::panic::catch_unwind(|| {
            pool(4).install(|| {
                (0..64usize)
                    .into_par_iter()
                    .map(|x| {
                        if x == 33 {
                            panic!("chunk worker exploded on {x}");
                        }
                        x
                    })
                    .collect::<Vec<_>>()
            })
        });
        let payload = caught.expect_err("worker panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("chunk worker exploded on 33"),
            "original payload must survive: {msg:?}"
        );
        // The executor must still be usable after a panicked region.
        let ok: usize = pool(4).install(|| (0..10usize).into_par_iter().map(|x| x).sum());
        assert_eq!(ok, 45);
    }

    #[test]
    fn for_each_runs_every_item_under_contention() {
        let counter = AtomicUsize::new(0);
        pool(8).install(|| {
            (0..10_000usize).into_par_iter().for_each(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn filter_and_flat_map_preserve_order() {
        let evens: Vec<u32> =
            pool(4).install(|| (0..100u32).into_par_iter().filter(|x| x % 2 == 0).collect());
        assert_eq!(
            evens,
            (0..100u32).filter(|x| x % 2 == 0).collect::<Vec<_>>()
        );
        let pairs: Vec<u32> = pool(4).install(|| {
            (0..50u32)
                .into_par_iter()
                .flat_map(|x| [2 * x, 2 * x + 1])
                .collect()
        });
        assert_eq!(pairs, (0..100u32).collect::<Vec<_>>());
    }

    #[test]
    fn regions_run_workers_genuinely_concurrently() {
        // Eight 40 ms sleeps on eight workers must overlap: even on a
        // single hardware core, sleeping threads overlap in wall time.
        // Sequential execution would take >= 320 ms; require well under
        // half that, with margin for a loaded machine.
        let start = Instant::now();
        pool(8).install(|| {
            (0..8u32)
                .into_par_iter()
                .for_each(|_| std::thread::sleep(Duration::from_millis(40)))
        });
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(200),
            "8x40 ms sleeps took {elapsed:?}; workers are not concurrent"
        );
    }

    #[test]
    fn install_overrides_nest_and_restore() {
        let outer = pool(3);
        let inner = pool(5);
        outer.install(|| {
            assert_eq!(super::current_num_threads(), 3);
            inner.install(|| assert_eq!(super::current_num_threads(), 5));
            assert_eq!(super::current_num_threads(), 3);
        });
    }

    #[test]
    fn uneven_work_is_stolen_and_completes() {
        // One pathological item 100x costlier than the rest: stealing
        // must still return the right (ordered) answer.
        let out: Vec<u64> = pool(4).install(|| {
            (0..257u64)
                .into_par_iter()
                .map(|x| {
                    let spins = if x == 0 { 200_000 } else { 2_000 };
                    let mut acc = x;
                    for k in 0..spins {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                    }
                    std::hint::black_box(acc);
                    x * 2
                })
                .collect()
        });
        assert_eq!(out, (0..257u64).map(|x| x * 2).collect::<Vec<_>>());
    }
}
