//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//! `prop_assume!`, [`strategy::Strategy`] with `prop_map`, range and tuple
//! strategies, [`arbitrary::any`], [`collection::vec`](crate::collection::vec),
//! and [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, deliberate for an offline stub:
//! - **No shrinking.** A failing case reports its inputs verbatim.
//! - **No failure persistence** (no `proptest-regressions/` files).
//! - **Deterministic seeding**: case RNGs derive from the test's module
//!   path and name, so a failure reproduces exactly on re-run.
//!
//! None of these change whether a (deterministic) property holds, only how
//! ergonomically a failure minimizes — acceptable until the registry crate
//! is restorable.

#![forbid(unsafe_code)]

use std::fmt::Debug;

/// Strategies: composable random-value generators.
pub mod strategy {
    use super::Debug;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    ///
    /// The stub collapses proptest's `ValueTree` machinery: a strategy
    /// produces a plain value and there is no shrinking.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Draws one value from this strategy.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategies!(f64, usize, u64, u32, u16, u8, i64, i32, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident.$idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Strategy returned by [`crate::arbitrary::any`].
    #[derive(Debug)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: super::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// `any::<T>()` support: types with a canonical full-range generator.
pub mod arbitrary {
    use super::strategy::Any;
    use super::Debug;
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical "draw any value" generator.
    pub trait Arbitrary: Debug + Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u64, u32, u16, u8, usize, i64, i32, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    /// The strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A half-open size range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end().checked_add(1).expect("size range overflow"),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Test-runner configuration and the case-level error plumbing the macros
/// expand to.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Subset of proptest's `Config` that the workspace sets.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases (matching proptest's name).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; the stub matches it.
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed: the whole test fails.
        Fail(String),
        /// `prop_assume!` filtered the inputs: draw a fresh case.
        Reject(String),
    }

    /// Result type of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic per-attempt RNG: seeded from the fully-qualified test
    /// name and the attempt counter, so failures reproduce on re-run.
    pub fn case_rng(test: &str, attempt: u64) -> StdRng {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        // DefaultHasher::new() uses fixed keys — stable across runs.
        let mut h = DefaultHasher::new();
        test.hash(&mut h);
        attempt.hash(&mut h);
        StdRng::seed_from_u64(h.finish())
    }
}

/// Everything a `use proptest::prelude::*;` consumer expects in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    // Mirrors real proptest's prelude, which re-exports the crate root as
    // `prop` so tests can write `prop::collection::vec(...)`.
    pub use crate as prop;
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut passed: u32 = 0;
            let mut attempt: u64 = 0;
            // Generous rejection budget before declaring the assume
            // filter too strict (proptest errors similarly).
            let max_attempts = u64::from(config.cases) * 16 + 256;
            while passed < config.cases {
                attempt += 1;
                assert!(
                    attempt <= max_attempts,
                    "proptest stub: too many rejected cases in {}",
                    stringify!($name),
                );
                let mut __rng = $crate::test_runner::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    attempt,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                // Snapshot the inputs before the body, which may move
                // them (real proptest keeps its own copies likewise).
                let __inputs = ::std::format!("{:?}", ($( &$arg, )*));
                let result = (|| -> $crate::test_runner::TestCaseResult {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match result {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed (attempt {}): {}\ninputs: {}",
                            attempt, msg, __inputs,
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __l
        );
    }};
}

/// Rejects the current case (draws a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn range_strategies_respect_bounds(x in 3usize..10, y in 0.25f64..=0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..=0.75).contains(&y));
        }

        #[test]
        fn tuples_and_map_compose(p in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&p));
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn any_u64_varies(seed in any::<u64>(), other in any::<u64>()) {
            // Not a tautology: both draws come from one per-case RNG.
            prop_assert_ne!(seed, other);
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::RngCore;
        let mut a = crate::test_runner::case_rng("t", 1);
        let mut b = crate::test_runner::case_rng("t", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::case_rng("t", 2);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0usize..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
