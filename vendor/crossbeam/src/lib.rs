//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements only what the workspace consumes: `channel::bounded` with a
//! cloneable [`channel::Sender`] (`send` / `try_send`) and an iterable
//! [`channel::Receiver`]. Internally this wraps `std::sync::mpsc`'s
//! `sync_channel`, which has the same bounded MPSC semantics; crossbeam's
//! extras (select!, MPMC receivers, zero-capacity rendezvous tuning) are
//! deliberately absent. Swap back to the registry crate for those.

#![forbid(unsafe_code)]

/// Multi-producer channels (subset of `crossbeam-channel`).
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the channel is disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers have been dropped.
        Disconnected(T),
    }

    /// The sending half of a bounded channel. Cloneable.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    // Like crossbeam, Debug must not require `T: Debug`.
    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued (or the channel closes).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(m)| SendError(m))
        }

        /// Enqueues without blocking; fails if the channel is full or
        /// disconnected.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            self.inner.try_send(msg).map_err(|e| match e {
                mpsc::TrySendError::Full(m) => TrySendError::Full(m),
                mpsc::TrySendError::Disconnected(m) => TrySendError::Disconnected(m),
            })
        }
    }

    /// The receiving half of a bounded channel.
    ///
    /// Iterating (by value or by `&rx`) yields messages until every sender
    /// is dropped, matching crossbeam's blocking iteration semantics.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; `Err` once all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }
    }

    /// Error returned by [`Receiver::recv`] on a closed, empty channel.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.iter()
        }
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, TrySendError};

    #[test]
    fn send_and_iterate_in_order() {
        let (tx, rx) = bounded::<u32>(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<u32> = rx.into_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn try_send_full_and_disconnected() {
        let (tx, rx) = bounded::<u32>(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        drop(rx);
        assert!(matches!(tx.try_send(3), Err(TrySendError::Disconnected(3))));
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = bounded::<u32>(64);
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                for _ in 0..10 {
                    tx.send(1).unwrap();
                }
            });
            s.spawn(move || {
                for _ in 0..10 {
                    tx2.send(1).unwrap();
                }
            });
        });
        let total: u32 = rx.into_iter().sum();
        assert_eq!(total, 20);
    }
}
