//! Offline stand-in for the `serde` crate.
//!
//! Provides marker [`Serialize`] / [`Deserialize`] traits and (behind the
//! `derive` feature) re-exports the no-op derive macros from the vendored
//! `serde_derive` stub. The workspace derives these traits on config and
//! result structs as forward-looking markers but performs no actual
//! serialization, so empty traits and empty derive expansions are
//! sufficient for everything to compile and behave identically.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
///
/// The stub derive emits no impl, and nothing in the workspace bounds on
/// this trait; it exists so `use serde::Serialize;` resolves.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
///
/// See [`Serialize`] for the rationale. The real trait carries a lifetime
/// parameter; the workspace never names it in bounds, so the stub omits it.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
