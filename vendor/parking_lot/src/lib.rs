//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides [`Mutex`] with parking_lot's signature — `lock()` returns the
//! guard directly, no `Result` — implemented over `std::sync::Mutex` by
//! treating poisoning as recoverable (a panicked writer's data is still
//! returned, matching parking_lot's no-poisoning semantics). The fairness
//! and footprint advantages of the real crate are irrelevant to the
//! low-contention progress reporting that uses it here.

#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]; derefs to the protected data.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike
    /// `std::sync::Mutex`, poisoning is ignored: the guard is returned
    /// even if a previous holder panicked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn default_and_into_inner() {
        let m: Mutex<Vec<u8>> = Mutex::default();
        m.lock().push(7);
        assert_eq!(m.into_inner(), vec![7]);
    }

    #[test]
    fn survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
