//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a toy
//! measurement loop: fixed warmup, `sample_size` timed samples, one
//! mean/min/max line per benchmark. No statistical analysis, HTML
//! reports, or baseline comparison; restore the registry crate for those.
//! Passing `--test` (as `cargo test --benches` does) runs each closure
//! once and skips measurement.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque identity function that defeats constant-folding.
///
/// Forwards to `std::hint::black_box`, which is what the real criterion
/// does on modern toolchains.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `{function_name}/{parameter}`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    /// Total elapsed across all timed iterations.
    elapsed: Duration,
    /// Number of timed iterations.
    iters: u64,
    /// When true (`--test` mode), run the routine once, untimed.
    smoke_only: bool,
}

impl Bencher {
    /// Times `routine`, accumulating into this bencher's sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.smoke_only {
            black_box(routine());
            self.iters += 1;
            return;
        }
        // Fixed warmup, then a burst of timed iterations. Far cruder than
        // criterion's adaptive sampling but sufficient for "did this get
        // slower by 10×" eyeballing offline.
        for _ in 0..3 {
            black_box(routine());
        }
        let burst = 10u64;
        let start = Instant::now();
        for _ in 0..burst {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += burst;
    }

    fn per_iter_nanos(&self) -> f64 {
        if self.iters == 0 {
            return 0.0;
        }
        self.elapsed.as_nanos() as f64 / self.iters as f64
    }
}

fn fmt_nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The benchmark driver. Construct via `Criterion::default()` (what
/// [`criterion_main!`] does).
#[derive(Debug)]
pub struct Criterion {
    smoke_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` invokes harness=false bench binaries with
        // `--test`; run each routine once instead of measuring.
        let smoke_only = std::env::args().any(|a| a == "--test");
        Criterion { smoke_only }
    }
}

impl Criterion {
    /// Hook for criterion's CLI configuration; the stub ignores it.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let smoke = self.smoke_only;
        run_one(smoke, name, 10, f);
        self
    }

    /// Prints the closing summary (no-op in the stub).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(&mut self, id: I, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.smoke_only, &label, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.smoke_only, &label, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(smoke_only: bool, label: &str, sample_size: usize, mut f: F) {
    if smoke_only {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            smoke_only: true,
        };
        f(&mut b);
        println!("{label}: ok (smoke)");
        return;
    }
    let mut per_sample = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            smoke_only: false,
        };
        f(&mut b);
        per_sample.push(b.per_iter_nanos());
    }
    let mean = per_sample.iter().sum::<f64>() / per_sample.len().max(1) as f64;
    let min = per_sample.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_sample.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{label}: mean {} [min {}, max {}] over {} samples",
        fmt_nanos(mean),
        fmt_nanos(min),
        fmt_nanos(max),
        per_sample.len()
    );
}

/// Declares a group of benchmark functions (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares the `main` entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_counts_iterations() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            smoke_only: false,
        };
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        assert!(b.iters > 0);
        assert!(calls >= b.iters, "warmup calls included");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion { smoke_only: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(20);
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &n| {
            b.iter(|| black_box(n * 2));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 12).to_string(), "f/12");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
