//! Offline stand-in for the `rand` crate.
//!
//! The sandbox this repository builds in has no network access and no
//! crates.io mirror, so the real `rand` cannot be fetched. This crate
//! implements the exact API subset the workspace uses — [`rngs::StdRng`],
//! the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits, [`seq::SliceRandom`]
//! and [`rngs::mock::StepRng`] — over a xoshiro256** generator seeded via
//! SplitMix64 (the standard recipe). It is **not** the upstream `rand`:
//! streams differ from the real crate, but every consumer in this
//! workspace only relies on determinism and statistical quality, both of
//! which xoshiro256** provides.

#![forbid(unsafe_code)]

/// Low-level source of randomness: 64 fresh bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                // Widening-multiply rejection-free mapping (Lemire); the
                // tiny modulo bias at 64-bit spans is irrelevant here.
                let x = rng.next_u64() as u128;
                self.start + ((x * span) >> 64) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let x = rng.next_u64() as u128;
                lo + ((x * span) >> 64) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = rng.next_u64() as u128;
                (self.start as i128 + ((x * span) >> 64) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let x = rng.next_u64() as u128;
                (lo as i128 + ((x * span) >> 64) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i64 => u64, i32 => u32, isize => usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // Map the 53-bit grid onto [lo, hi]; the endpoint is reachable.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * u
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-samplable type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} must lie in [0, 1]");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Not the upstream ChaCha12-based `StdRng`; see the crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Mock generators for tests and benchmarks.
    pub mod mock {
        use super::RngCore;

        /// Arithmetic-sequence generator: yields `initial`, then keeps
        /// adding `increment` (wrapping). Deterministic and allocation-free
        /// — used to benchmark samplers without PRNG overhead.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a generator starting at `initial` with the given
            /// per-call increment.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            #[inline]
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::RngCore;

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                return None;
            }
            let idx = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
            self.get(idx)
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_statistics() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "{frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn int_ranges_cover_uniformly() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "{counts:?}");
        }
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..=7);
            assert!((3..=7).contains(&v));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
            let y = rng.gen_range(1.0..=2.0);
            assert!((1.0..=2.0).contains(&y));
        }
    }

    #[test]
    fn slice_choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3, 4];
        for _ in 0..100 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert_ne!(v, orig, "50 elements should not shuffle to identity");
    }

    #[test]
    fn step_rng_sequence() {
        use super::rngs::mock::StepRng;
        use super::RngCore;
        let mut s = StepRng::new(10, 3);
        assert_eq!(s.next_u64(), 10);
        assert_eq!(s.next_u64(), 13);
        assert_eq!(s.next_u64(), 16);
    }
}
