//! Offline stand-in for the `serde_derive` crate.
//!
//! The workspace applies `#[derive(Serialize, Deserialize)]` to config and
//! result structs as forward-looking markers but never calls any serde
//! serializer (all output goes through the hand-rolled CSV writer). These
//! derives therefore expand to nothing: the attribute compiles, no trait
//! impl is generated, and nothing downstream notices — until real
//! serialization is needed, at which point the genuine serde crates must
//! replace the `vendor/` stubs.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepts any item, emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepts any item, emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
