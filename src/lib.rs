//! # rayfade
//!
//! A production-quality reproduction of *"Scheduling in Wireless Networks
//! with Rayleigh-Fading Interference"* (Johannes Dams, Martin Hoefer,
//! Thomas Kesselheim; SPAA 2012): SINR scheduling algorithms, the
//! `O(log* n)` Rayleigh-fading reduction, distributed regret learning, and
//! a seeded Monte Carlo experiment engine regenerating the paper's
//! figures.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`geometry`] — points, links, networks, topology generators;
//! * [`sinr`] — the deterministic SINR substrate (gains, powers,
//!   affectance, utilities);
//! * [`sched`] — non-fading capacity and latency algorithms;
//! * [`fading`] — the paper's contribution: Rayleigh channel, Theorem 1
//!   closed form, Lemma 2 transfer, Theorem 2 simulation;
//! * [`learning`] — regret-learning dynamics (Sec. 6);
//! * [`sim`] — the experiment engine (Sec. 7);
//! * [`dynamic`] — online scheduling under stochastic arrivals with
//!   queue-stability analysis (our extension beyond the paper's
//!   one-shot setting).
//!
//! ## Quickstart
//!
//! Select a feasible set with a non-fading algorithm and transfer it to
//! the Rayleigh model — the paper's recipe in six lines:
//!
//! ```
//! use rayfade::prelude::*;
//!
//! // A random 50-link network as in the paper's Figure 1 setup.
//! let network = PaperTopology { links: 50, ..PaperTopology::figure1() }.generate(7);
//! let params = SinrParams::figure1();
//! let gain = GainMatrix::from_geometry(&network, &PowerAssignment::figure1_uniform(), params.alpha);
//!
//! // 1. Non-fading capacity maximization (feasible by construction).
//! let set = GreedyCapacity::new().select(&CapacityInstance::unweighted(&gain, &params));
//! assert!(rayfade::sinr::is_feasible(&gain, &params, &set));
//!
//! // 2. Transfer to Rayleigh fading: Lemma 2 guarantees >= 1/e survives.
//! let report = transfer_set(&gain, &params, &set);
//! assert!(report.meets_guarantee());
//! assert!(report.rayleigh_expected_successes > set.len() as f64 / std::f64::consts::E);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use rayfade_core as fading;
pub use rayfade_dynamic as dynamic;
pub use rayfade_geometry as geometry;
pub use rayfade_learning as learning;
pub use rayfade_sched as sched;
pub use rayfade_sim as sim;
pub use rayfade_sinr as sinr;

/// Convenience re-exports of the most used types across the workspace.
pub mod prelude {
    pub use rayfade_core::{
        rayleigh_capacity, success_probability, transfer_set, RayleighModel, SimulationPlan,
    };
    pub use rayfade_dynamic::{
        ArrivalProcess, DynamicConfig, DynamicEngine, LambdaSweep, PolicyKind, SlotModelKind,
        StabilityReport, StabilityVerdict, SuccessModelKind,
    };
    pub use rayfade_geometry::{
        ClusteredTopology, ExponentialChain, GridTopology, Link, LinkGeometry, Network,
        PaperTopology, Point,
    };
    pub use rayfade_learning::{run_game_with_beta, GameConfig, Rwm};
    pub use rayfade_sched::{
        multihop_schedule, recursive_schedule, run_aloha, AlohaConfig, CapacityAlgorithm,
        CapacityInstance, ExactCapacity, FlexibleCapacity, GreedyCapacity, LocalSearchCapacity,
        PowerControlCapacity, Request, Schedule,
    };
    pub use rayfade_sim::{run_figure1, run_figure2, Figure1Config, Figure2Config, Table};
    pub use rayfade_sinr::{
        Affectance, BinaryUtility, GainMatrix, NonFadingModel, PowerAssignment, ShannonUtility,
        SinrParams, SuccessModel, UtilityFunction,
    };
}
