//! Property and adversarial-input tests for the homegrown JSON parser:
//! arbitrary documents round-trip bit-faithfully through
//! serialize→parse, and hostile inputs (deep nesting, lone surrogates,
//! truncated escapes) fail cleanly with an error instead of panicking
//! or overflowing the stack.

use proptest::prelude::*;
use rayfade_telemetry::{Json, MAX_DEPTH};

/// SplitMix64 step — a tiny local PRNG so the generator below can derive
/// a whole document from one seed drawn by the proptest strategy.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A random string mixing plain ASCII, characters the serializer must
/// escape, and non-BMP scalars (which exercise the surrogate-pair path
/// when a parsed document is re-parsed from its serialized form).
fn arb_string(state: &mut u64) -> String {
    let len = (splitmix(state) % 8) as usize;
    (0..len)
        .map(|_| {
            const POOL: &[char] = &[
                'a',
                'Z',
                '0',
                ' ',
                '"',
                '\\',
                '\n',
                '\r',
                '\t',
                '\u{1}',
                '\u{1f}',
                '√',
                'é',
                '\u{1F600}',
                '\u{1D11E}',
                '\u{10FFFF}',
            ];
            POOL[(splitmix(state) % POOL.len() as u64) as usize]
        })
        .collect()
}

/// A random finite number: mixed integers (exact up to 2^53) and
/// shortest-round-trip floats.
fn arb_num(state: &mut u64) -> f64 {
    match splitmix(state) % 3 {
        0 => (splitmix(state) as i64 % 1_000_000) as f64,
        1 => f64::from_bits(0x3FF0_0000_0000_0000 | (splitmix(state) >> 12)),
        _ => {
            let mantissa = (splitmix(state) % 1_000_000) as f64 / 1_000.0;
            let exp = (splitmix(state) % 40) as i32 - 20;
            mantissa * 10f64.powi(exp)
        }
    }
}

/// Builds a random JSON document of bounded depth/width from one seed.
fn arb_json(state: &mut u64, depth: usize) -> Json {
    let variants = if depth == 0 { 4 } else { 6 };
    match splitmix(state) % variants {
        0 => Json::Null,
        1 => Json::Bool(splitmix(state).is_multiple_of(2)),
        2 => Json::Num(arb_num(state)),
        3 => Json::Str(arb_string(state)),
        4 => {
            let len = (splitmix(state) % 4) as usize;
            Json::Arr((0..len).map(|_| arb_json(state, depth - 1)).collect())
        }
        _ => {
            let len = (splitmix(state) % 4) as usize;
            Json::Obj(
                (0..len)
                    .map(|_| (arb_string(state), arb_json(state, depth - 1)))
                    .collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn serialized_documents_reparse_to_the_same_value(seed in any::<u64>()) {
        let mut state = seed;
        let doc = arb_json(&mut state, 4);
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap_or_else(|e| panic!("reparse of {text:?}: {e}"));
        prop_assert_eq!(&back, &doc, "{}", text);
        // Serialization is a fixed point: parse∘serialize is idempotent.
        prop_assert_eq!(back.to_string(), text);
    }

    #[test]
    fn random_byte_soup_never_panics(seed in any::<u64>()) {
        let mut state = seed;
        let len = (splitmix(&mut state) % 64) as usize;
        let soup: String = (0..len)
            .map(|_| {
                // Printable-ish ASCII plus JSON structural characters,
                // heavily weighted toward the latter.
                const POOL: &[u8] = b"{}[]\",:\\ud0123456789.eE+-truefalsn ";
                POOL[(splitmix(&mut state) % POOL.len() as u64) as usize] as char
            })
            .collect();
        // Must return Ok or Err; never panic, never overflow.
        let _ = Json::parse(&soup);
    }
}

#[test]
fn escaped_and_literal_forms_parse_identically() {
    // The same scalar written as a literal char and as \uXXXX escapes
    // (including a surrogate pair) must produce the same value.
    assert_eq!(
        Json::parse("\"\u{1F600}\"").unwrap(),
        Json::parse("\"\\ud83d\\ude00\"").unwrap(),
        "literal emoji vs surrogate-pair escape"
    );
    assert_eq!(
        Json::parse("\"\u{e9}\"").unwrap(),
        Json::parse("\"\\u00e9\"").unwrap(),
        "literal BMP char vs \\u escape"
    );
    assert_eq!(
        Json::parse("\"\u{1D11E}\"").unwrap(),
        Json::parse("\"\\uD834\\uDD1E\"").unwrap(),
        "the RFC 8259 G-clef example, upper-case hex"
    );
}

#[test]
fn adversarial_inputs_fail_cleanly() {
    let cases: Vec<String> = vec![
        "[".repeat(1_000_000),            // unclosed mega-nesting
        "{\"k\":[".repeat(MAX_DEPTH * 2), // alternating nesting
        format!(
            "{}0{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        ),
        r#""\u""#.to_string(),                 // truncated escape
        r#""\u12""#.to_string(),               // short escape
        r#""\uzzzz""#.to_string(),             // non-hex escape
        r#""\ud800""#.to_string(),             // lone high surrogate
        r#""\udfff""#.to_string(),             // lone low surrogate
        r#""\ud800A""#.to_string(),            // high + non-low unit
        "\"\u{7}\"".replace('\u{7}', "\u{1}"), // raw control character
        "{\"a\"}".to_string(),
        "[1 2]".to_string(),
    ];
    for text in &cases {
        assert!(
            Json::parse(text).is_err(),
            "{:?} should be rejected",
            &text[..text.len().min(40)]
        );
    }
}
