//! Concurrency tests: metric totals must be exact after parallel
//! hammering from std threads and rayon workers alike. The rayon tests
//! pin an 8-worker pool so they exercise *real* contention (the
//! vendored facade runs a genuine work-stealing pool) regardless of the
//! machine's core count or `RAYFADE_THREADS`.

use std::sync::Arc;

use rayfade_telemetry::{Registry, Telemetry, Tracer};
use rayon::prelude::*;

fn hammer_pool() -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .unwrap()
}

#[test]
fn counter_is_exact_under_std_threads() {
    let registry = Arc::new(Registry::new());
    let threads = 8;
    let per_thread = 10_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                let c = registry.counter("hammered_total");
                for _ in 0..per_thread {
                    c.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        registry.counter("hammered_total").get(),
        threads * per_thread
    );
}

#[test]
fn histogram_is_exact_under_rayon() {
    let tele = Telemetry::new();
    let hist = tele.registry().histogram("rayon_hammered");
    let n = 50_000u64;
    hammer_pool().install(|| {
        (0..n).into_par_iter().for_each(|k| {
            hist.observe(1e-9 * (k % 97) as f64);
        })
    });
    assert_eq!(hist.count(), n);
    assert_eq!(hist.bucket_counts().iter().sum::<u64>(), n);
    let expected_sum: f64 = (0..n).map(|k| 1e-9 * (k % 97) as f64).sum();
    // The CAS sum adds in nondeterministic order; tolerance covers
    // floating-point reassociation only, not lost updates.
    assert!(
        (hist.sum() - expected_sum).abs() < 1e-9,
        "sum {} vs expected {expected_sum}",
        hist.sum()
    );
}

#[test]
fn mixed_metrics_under_rayon_keep_totals() {
    let tele = Telemetry::new();
    let c = tele.registry().counter("mixed_total");
    let g = tele.registry().gauge("mixed_gauge");
    let h = tele.registry().histogram("mixed_hist");
    let n = 20_000u64;
    hammer_pool().install(|| {
        (0..n).into_par_iter().for_each(|k| {
            c.add(2);
            g.add(if k % 2 == 0 { 1 } else { -1 });
            h.observe(0.5);
        })
    });
    assert_eq!(c.get(), 2 * n);
    assert_eq!(g.get(), 0);
    assert_eq!(h.count(), n);
    assert!((h.mean() - 0.5).abs() < 1e-12);
}

#[test]
fn counter_is_exact_under_pool_workers() {
    let tele = Telemetry::new();
    let c = tele.registry().counter("pool_hammered_total");
    let n = 100_000u64;
    hammer_pool().install(|| {
        (0..n).into_par_iter().for_each(|_| c.inc());
    });
    assert_eq!(c.get(), n);
}

#[test]
fn span_rings_account_for_every_span_under_contention() {
    // Eight workers each emit spans into their per-thread rings; a
    // snapshot must account for every span exactly: records kept plus
    // the dropped-tick counter equals the number emitted, no matter how
    // the scheduler interleaved the workers.
    let tracer = Tracer::with_capacity(64);
    let id = tracer.span_id("hammer");
    let per_item = 50u64;
    let items = 200u64;
    hammer_pool().install(|| {
        (0..items).into_par_iter().for_each(|_| {
            for _ in 0..per_item {
                let _g = tracer.span(id);
            }
        })
    });
    let trace = tracer.snapshot();
    assert_eq!(
        trace.records.len() as u64 + trace.dropped,
        items * per_item,
        "span rings lost or invented spans under contention"
    );
    // With 64-slot rings and well over 64 spans per participating
    // thread, overflow must actually have happened — otherwise this
    // test isn't exercising the dropped-tick path.
    assert!(trace.dropped > 0, "ring overflow path was not exercised");
    assert!(trace.records.iter().all(|r| r.name == "hammer"));
}
