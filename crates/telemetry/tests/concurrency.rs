//! Concurrency tests: metric totals must be exact after parallel
//! hammering from std threads and rayon workers alike.

use std::sync::Arc;

use rayfade_telemetry::{Registry, Telemetry};
use rayon::prelude::*;

#[test]
fn counter_is_exact_under_std_threads() {
    let registry = Arc::new(Registry::new());
    let threads = 8;
    let per_thread = 10_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                let c = registry.counter("hammered_total");
                for _ in 0..per_thread {
                    c.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        registry.counter("hammered_total").get(),
        threads * per_thread
    );
}

#[test]
fn histogram_is_exact_under_rayon() {
    let tele = Telemetry::new();
    let hist = tele.registry().histogram("rayon_hammered");
    let n = 50_000u64;
    (0..n).into_par_iter().for_each(|k| {
        hist.observe(1e-9 * (k % 97) as f64);
    });
    assert_eq!(hist.count(), n);
    assert_eq!(hist.bucket_counts().iter().sum::<u64>(), n);
    let expected_sum: f64 = (0..n).map(|k| 1e-9 * (k % 97) as f64).sum();
    // The CAS sum adds in nondeterministic order; tolerance covers
    // floating-point reassociation only, not lost updates.
    assert!(
        (hist.sum() - expected_sum).abs() < 1e-9,
        "sum {} vs expected {expected_sum}",
        hist.sum()
    );
}

#[test]
fn mixed_metrics_under_rayon_keep_totals() {
    let tele = Telemetry::new();
    let c = tele.registry().counter("mixed_total");
    let g = tele.registry().gauge("mixed_gauge");
    let h = tele.registry().histogram("mixed_hist");
    let n = 20_000u64;
    (0..n).into_par_iter().for_each(|k| {
        c.add(2);
        g.add(if k % 2 == 0 { 1 } else { -1 });
        h.observe(0.5);
    });
    assert_eq!(c.get(), 2 * n);
    assert_eq!(g.get(), 0);
    assert_eq!(h.count(), n);
    assert!((h.mean() - 0.5).abs() < 1e-12);
}
