//! Property tests for trace export: arbitrary nested span forests
//! round-trip through the Chrome Trace JSON writer, re-parse with
//! balanced `B`/`E` pairs, and keep exclusive time ≤ inclusive time.

use proptest::prelude::*;
use rayfade_telemetry::trace::{parse_chrome_trace, validate_chrome_trace, SpanRecord, Trace};

/// Builds a properly nested span forest for one thread by interpreting a
/// random open/close program against a stack — exactly how RAII guards
/// nest in real code, so every generated forest is reachable.
fn build_forest(ops: &[u8], tid: u64) -> Vec<SpanRecord> {
    const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
    let mut now = 0u64;
    let mut open: Vec<(usize, u64)> = Vec::new();
    let mut records = Vec::new();
    for &op in ops {
        now += 1 + u64::from(op >> 3); // strictly advancing timestamps
        if op % 2 == 0 {
            open.push(((op as usize / 2) % NAMES.len(), now));
        } else if let Some((name, start_ns)) = open.pop() {
            records.push(SpanRecord {
                name: NAMES[name].to_string(),
                tid,
                start_ns,
                end_ns: now,
            });
        }
    }
    while let Some((name, start_ns)) = open.pop() {
        now += 1;
        records.push(SpanRecord {
            name: NAMES[name].to_string(),
            tid,
            start_ns,
            end_ns: now,
        });
    }
    records
}

fn sort_key(r: &SpanRecord) -> (u64, u64, u64, String) {
    (r.tid, r.start_ns, r.end_ns, r.name.clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn span_forests_round_trip_through_chrome_json(
        ops_a in prop::collection::vec(0u8..=255, 0..60),
        ops_b in prop::collection::vec(0u8..=255, 0..60),
    ) {
        let mut records = build_forest(&ops_a, 1);
        records.extend(build_forest(&ops_b, 2));
        let spans = records.len();
        let trace = Trace { records, dropped: 0 };

        let json = trace.to_chrome_json();

        // The validator accepts the document and sees every span as one
        // balanced B/E pair.
        let stats = validate_chrome_trace(&json);
        prop_assert!(stats.is_ok(), "validator rejected: {:?}", stats);
        prop_assert_eq!(stats.unwrap().spans, spans);

        // Raw event counts balance: one B and one E per span.
        let b_events = json.matches("\"ph\":\"B\"").count();
        let e_events = json.matches("\"ph\":\"E\"").count();
        prop_assert_eq!(b_events, spans);
        prop_assert_eq!(e_events, spans);

        // Parsing recovers the exact span multiset.
        let mut back = parse_chrome_trace(&json).unwrap();
        back.sort_by_key(sort_key);
        let mut want = trace.records.clone();
        want.sort_by_key(sort_key);
        prop_assert_eq!(back, want);
    }

    #[test]
    fn exclusive_time_never_exceeds_inclusive_time(
        ops in prop::collection::vec(0u8..=255, 0..80),
    ) {
        let records = build_forest(&ops, 7);
        let trace = Trace { records, dropped: 0 };
        let profile = trace.self_profile();
        let mut total_exclusive = 0u64;
        for row in &profile.rows {
            prop_assert!(
                row.exclusive_ns <= row.total_ns,
                "{}: exclusive {} > inclusive {}",
                row.name, row.exclusive_ns, row.total_ns
            );
            prop_assert!(row.count > 0);
            total_exclusive += row.exclusive_ns;
        }
        // Exclusive time partitions the forest: summed over all names it
        // equals the total time covered by root spans.
        let roots: u64 = {
            let mut spans: Vec<&SpanRecord> = trace.records.iter().collect();
            spans.sort_by_key(|r| (r.start_ns, std::cmp::Reverse(r.end_ns)));
            let mut end = 0u64;
            let mut sum = 0u64;
            for s in spans {
                if s.start_ns >= end {
                    sum += s.end_ns - s.start_ns;
                    end = s.end_ns;
                }
            }
            sum
        };
        prop_assert_eq!(total_exclusive, roots);
    }
}
