//! Property tests for the histogram: bucket counts always sum to the
//! observation count, buckets agree with their bounds, and the registry
//! expositions stay parseable.

use proptest::prelude::*;
use rayfade_telemetry::{Histogram, Json, Registry, HISTOGRAM_BUCKETS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bucket_counts_sum_to_observation_count(
        values in prop::collection::vec(-1.0e3f64..1.0e3, 0..200),
        extremes in prop::collection::vec(0usize..5, 0..10),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        // Mix in the awkward inputs regardless of what the range drew.
        let specials = [0.0, -0.0, f64::NAN, f64::INFINITY, 1e300];
        for &k in &extremes {
            h.observe(specials[k]);
        }
        let n = (values.len() + extremes.len()) as u64;
        prop_assert_eq!(h.count(), n);
        prop_assert_eq!(h.bucket_counts().iter().sum::<u64>(), n);
    }

    #[test]
    fn every_value_lands_within_its_bucket_bound(v in 1.0e-12f64..1.0e9) {
        let k = Histogram::bucket_index(v);
        prop_assert!(v <= Histogram::upper_bound(k));
        if k > 0 {
            prop_assert!(
                v > Histogram::upper_bound(k - 1),
                "value {} should exceed bucket {}'s bound", v, k - 1
            );
        }
        prop_assert!(k < HISTOGRAM_BUCKETS);
    }

    #[test]
    fn csv_exposition_row_count_tracks_registered_metrics(
        counters in 0usize..4,
        hists in 0usize..4,
    ) {
        let r = Registry::new();
        for k in 0..counters {
            r.counter(&format!("c{k}")).inc();
        }
        for k in 0..hists {
            r.histogram(&format!("h{k}")).observe(1.0);
        }
        let csv = r.csv_text();
        // Header + one row per counter + three rows per histogram.
        prop_assert_eq!(csv.lines().count(), 1 + counters + 3 * hists);
    }

    #[test]
    fn json_numbers_round_trip(n in -1.0e15f64..1.0e15) {
        let text = Json::Num(n).to_string();
        let back = Json::parse(&text).unwrap().as_f64().unwrap();
        prop_assert_eq!(n.to_bits(), back.to_bits());
    }
}
