//! Property tests for the quantile sketch: the ≤γ relative-error bound
//! holds on adversarial streams spanning twelve decades, merge is
//! associative and commutative, and a merged sketch is exactly the sketch
//! of the concatenated stream.

use proptest::prelude::*;
use rayfade_telemetry::QuantileSketch;

/// Values spanning 1e-9..1e9 — the adversarial dynamic range from the
/// acceptance criteria. Drawn as (mantissa, decade) so every decade is
/// equally likely (a plain uniform f64 over the range would almost never
/// produce small values).
fn wide_values(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((1.0f64..10.0, -9i32..9), 1..max_len)
        .prop_map(|pairs| pairs.into_iter().map(|(m, e)| m * 10f64.powi(e)).collect())
}

/// The exact nearest-rank quantile of `values` (the statistic the sketch
/// estimates).
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

const GAMMA: f64 = 0.01;

/// Slack on the γ bound for values lying within one float ulp of a bucket
/// boundary, where log rounding may pick the neighbouring bucket (the
/// documented measure-zero relaxation).
const BOUNDARY_SLACK: f64 = 1.0 + 2.0 * GAMMA;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn relative_error_bound_holds_across_twelve_decades(values in wide_values(400)) {
        let mut sketch = QuantileSketch::new(GAMMA);
        for &v in &values {
            sketch.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let estimate = sketch.quantile(q).unwrap();
            let truth = exact_quantile(&sorted, q);
            prop_assert!(
                (estimate - truth).abs() <= GAMMA * truth * BOUNDARY_SLACK,
                "q={}: estimate {} vs exact {} (relative error {})",
                q, estimate, truth, ((estimate - truth) / truth).abs()
            );
        }
        prop_assert_eq!(sketch.count(), values.len() as u64);
        prop_assert_eq!(sketch.min().unwrap().to_bits(), sorted[0].to_bits());
        prop_assert_eq!(
            sketch.max().unwrap().to_bits(),
            sorted[sorted.len() - 1].to_bits()
        );
    }

    #[test]
    fn merge_is_commutative_and_associative(
        xs in wide_values(150),
        ys in wide_values(150),
        zs in wide_values(150),
    ) {
        let build = |vals: &[f64]| {
            let mut s = QuantileSketch::new(GAMMA);
            for &v in vals {
                s.observe(v);
            }
            s
        };
        // Commutative: x∪y == y∪x.
        let mut xy = build(&xs);
        xy.merge(&build(&ys));
        let mut yx = build(&ys);
        yx.merge(&build(&xs));
        prop_assert_eq!(xy.count(), yx.count());
        for q in [0.0, 0.1, 0.5, 0.9, 1.0] {
            prop_assert_eq!(xy.quantile(q), yx.quantile(q), "commutativity at q={}", q);
        }
        // Associative: (x∪y)∪z == x∪(y∪z).
        let mut left = xy;
        left.merge(&build(&zs));
        let mut right = build(&xs);
        let mut yz = build(&ys);
        yz.merge(&build(&zs));
        right.merge(&yz);
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.bucket_len(), right.bucket_len());
        for q in [0.0, 0.1, 0.5, 0.9, 1.0] {
            prop_assert_eq!(left.quantile(q), right.quantile(q), "associativity at q={}", q);
        }
    }

    #[test]
    fn merged_sketch_equals_sketch_of_concatenated_stream(
        xs in wide_values(200),
        ys in wide_values(200),
    ) {
        let mut merged = QuantileSketch::new(GAMMA);
        for &v in &xs {
            merged.observe(v);
        }
        let mut other = QuantileSketch::new(GAMMA);
        for &v in &ys {
            other.observe(v);
        }
        merged.merge(&other);

        let mut concatenated = QuantileSketch::new(GAMMA);
        for &v in xs.iter().chain(&ys) {
            concatenated.observe(v);
        }
        // Counts and every quantile estimate match *exactly* — the merge
        // is pointwise bucket addition, stronger than the within-γ bound
        // the issue asks for. Only the float running sum is order-
        // sensitive, at ulp scale.
        prop_assert_eq!(merged.count(), concatenated.count());
        prop_assert_eq!(merged.bucket_len(), concatenated.bucket_len());
        for q in [0.0, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0] {
            prop_assert_eq!(merged.quantile(q), concatenated.quantile(q), "q={}", q);
        }
        let scale = concatenated.sum().abs().max(1.0);
        prop_assert!((merged.sum() - concatenated.sum()).abs() <= 1e-9 * scale);
    }
}
