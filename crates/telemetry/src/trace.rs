//! Hierarchical span tracing with Chrome Trace Event export and a
//! self-profile aggregation.
//!
//! A [`Tracer`] hands out RAII [`SpanGuard`]s; each guard records one
//! `(name, thread, start, end)` tuple into a per-thread lock-free ring
//! buffer when it drops. Span names are interned up front
//! ([`Tracer::span_id`]) so the hot path touches no locks, no allocation,
//! and no string hashing — just two `Instant` reads and three relaxed
//! atomic stores. Nesting needs no explicit parent bookkeeping: spans on
//! one thread follow RAII stack discipline, so any two recorded spans of
//! a thread are either disjoint in time or properly nested, and the tree
//! is rebuilt from the timestamps alone at export time.
//!
//! Exports:
//! - [`Trace::to_chrome_json`] — Chrome Trace Event Format (`ph: "B"/"E"`
//!   pairs, microsecond timestamps), loadable in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev).
//! - [`Trace::self_profile`] — per-span-name count / total / mean /
//!   p50 / p95 / p99 wall time plus child-exclusive time, as CSV or a
//!   pretty console table.
//!
//! Trace files carry real wall-clock durations, so unlike journals they
//! are *not* byte-reproducible across runs; `telemetry_lint` validates
//! their structure (balanced begin/end, monotone timestamps per thread)
//! instead of their bytes.
//!
//! ```
//! use rayfade_telemetry::trace::Tracer;
//!
//! let tracer = Tracer::new();
//! let outer = tracer.span_id("demo/outer");
//! let inner = tracer.span_id("demo/inner");
//! {
//!     let _o = tracer.span(outer);
//!     let _i = tracer.span(inner);
//! }
//! let trace = tracer.snapshot();
//! assert_eq!(trace.records.len(), 2);
//! let json = trace.to_chrome_json();
//! let back = rayfade_telemetry::trace::parse_chrome_trace(&json).unwrap();
//! assert_eq!(back.len(), 2);
//! ```

use std::cell::RefCell;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

use crate::json::Json;
use crate::metrics::Histogram;

/// Default per-thread ring capacity, in spans. At ~24 bytes per slot this
/// is ~1.5 MiB per thread — big enough that sampled instrumentation of a
/// full experiment never wraps, small enough to never matter.
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// Schema version stamped into exported trace files (in `otherData`).
pub const TRACE_SCHEMA_VERSION: u64 = 1;

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

/// One cached ring-buffer binding: (tracer id, liveness probe, buffer).
type BufferEntry = (u64, Weak<TracerInner>, Arc<ThreadBuffer>);

thread_local! {
    /// Our own dense thread ids: `std::thread::ThreadId` has no stable
    /// integer form, and trace viewers want small `tid` values.
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);

    /// Per-thread cache of this thread's ring buffer for each live
    /// tracer, keyed by tracer id. Entries whose tracer has been dropped
    /// are pruned on the next miss.
    static BUFFERS: RefCell<Vec<BufferEntry>> = const { RefCell::new(Vec::new()) };
}

/// One recorded-span slot: name id, start, end (nanoseconds since the
/// tracer's epoch). Written with relaxed stores by exactly one thread;
/// read only after writers quiesce (see [`Tracer::snapshot`]).
struct Slot {
    name: AtomicU64,
    start: AtomicU64,
    end: AtomicU64,
}

/// A single thread's span ring. Single-writer: only the owning thread
/// stores; snapshotting threads only load.
struct ThreadBuffer {
    tid: u64,
    /// Total spans ever pushed; `head % capacity` is the next write slot.
    head: AtomicU64,
    slots: Vec<Slot>,
}

impl ThreadBuffer {
    fn new(tid: u64, capacity: usize) -> ThreadBuffer {
        ThreadBuffer {
            tid,
            head: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|_| Slot {
                    name: AtomicU64::new(0),
                    start: AtomicU64::new(0),
                    end: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    #[inline]
    fn push(&self, name: u64, start_ns: u64, end_ns: u64) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head % self.slots.len() as u64) as usize];
        slot.name.store(name, Ordering::Relaxed);
        slot.start.store(start_ns, Ordering::Relaxed);
        slot.end.store(end_ns, Ordering::Relaxed);
        self.head.store(head + 1, Ordering::Release);
    }
}

struct TracerInner {
    id: u64,
    epoch: Instant,
    capacity: usize,
    names: Mutex<Vec<String>>,
    buffers: Mutex<Vec<Arc<ThreadBuffer>>>,
}

/// An interned span name, resolved once via [`Tracer::span_id`] outside
/// the hot loop; starting a span with it costs no lock and no lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u64);

/// Collects spans from RAII guards into per-thread ring buffers.
///
/// Cloning is cheap (`Arc`); all methods take `&self`, so one tracer can
/// be shared across rayon workers by reference.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("id", &self.inner.id)
            .field("capacity", &self.inner.capacity)
            .finish_non_exhaustive()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A tracer with the default per-thread capacity
    /// ([`DEFAULT_SPAN_CAPACITY`]).
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// A tracer whose per-thread rings hold `capacity` spans; once a
    /// thread exceeds it, its oldest spans are overwritten (and counted
    /// in [`Trace::dropped`]).
    pub fn with_capacity(capacity: usize) -> Tracer {
        assert!(capacity > 0, "tracer capacity must be positive");
        Tracer {
            inner: Arc::new(TracerInner {
                id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                capacity,
                names: Mutex::new(Vec::new()),
                buffers: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Interns `name` and returns its [`SpanId`]. Takes a brief mutex —
    /// resolve ids once outside hot loops, like registry metric handles.
    pub fn span_id(&self, name: &str) -> SpanId {
        let mut names = self.inner.names.lock().expect("tracer name table poisoned");
        if let Some(k) = names.iter().position(|n| n == name) {
            return SpanId(k as u64);
        }
        names.push(name.to_string());
        SpanId((names.len() - 1) as u64)
    }

    /// Starts a span; it is recorded when the returned guard drops.
    #[inline]
    pub fn span(&self, id: SpanId) -> SpanGuard {
        SpanGuard {
            buffer: self.thread_buffer(),
            epoch: self.inner.epoch,
            name: id.0,
            start: Instant::now(),
        }
    }

    /// This thread's ring for this tracer, creating and registering it on
    /// first use (and pruning cache entries of dropped tracers).
    fn thread_buffer(&self) -> Arc<ThreadBuffer> {
        BUFFERS.with(|cell| {
            let mut cache = cell.borrow_mut();
            if let Some((_, _, buf)) = cache.iter().find(|(id, _, _)| *id == self.inner.id) {
                return Arc::clone(buf);
            }
            cache.retain(|(_, weak, _)| weak.strong_count() > 0);
            let tid = THREAD_ID.with(|t| *t);
            let buf = Arc::new(ThreadBuffer::new(tid, self.inner.capacity));
            self.inner
                .buffers
                .lock()
                .expect("tracer buffer list poisoned")
                .push(Arc::clone(&buf));
            cache.push((self.inner.id, Arc::downgrade(&self.inner), Arc::clone(&buf)));
            buf
        })
    }

    /// Drains a snapshot of every recorded span. Exact once span-emitting
    /// threads have quiesced (which is when experiments export traces);
    /// spans still open at snapshot time are absent — they have not been
    /// recorded yet.
    pub fn snapshot(&self) -> Trace {
        let names = self
            .inner
            .names
            .lock()
            .expect("tracer name table poisoned")
            .clone();
        let buffers = self
            .inner
            .buffers
            .lock()
            .expect("tracer buffer list poisoned")
            .clone();
        let mut records = Vec::new();
        let mut dropped = 0u64;
        for buf in &buffers {
            let head = buf.head.load(Ordering::Acquire);
            let cap = buf.slots.len() as u64;
            let kept = head.min(cap);
            dropped += head - kept;
            // Oldest retained span first (record order == end order).
            for k in 0..kept {
                let slot = &buf.slots[((head - kept + k) % cap) as usize];
                let name_id = slot.name.load(Ordering::Relaxed) as usize;
                records.push(SpanRecord {
                    name: names
                        .get(name_id)
                        .cloned()
                        .unwrap_or_else(|| format!("<span {name_id}>")),
                    tid: buf.tid,
                    start_ns: slot.start.load(Ordering::Relaxed),
                    end_ns: slot.end.load(Ordering::Relaxed),
                });
            }
        }
        Trace { records, dropped }
    }
}

/// RAII guard for one span; records into the owning thread's ring when
/// dropped.
pub struct SpanGuard {
    buffer: Arc<ThreadBuffer>,
    epoch: Instant,
    name: u64,
    start: Instant,
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let start_ns = self.start.duration_since(self.epoch).as_nanos() as u64;
        let end_ns = self.epoch.elapsed().as_nanos() as u64;
        self.buffer.push(self.name, start_ns, end_ns.max(start_ns));
    }
}

/// Starts a span when both the tracer and the pre-resolved id are
/// present — the hot-path companion to hoisting
/// `tracer.map(|t| t.span_id(...))` outside a loop.
#[inline]
pub fn guard(tracer: Option<&Tracer>, id: Option<SpanId>) -> Option<SpanGuard> {
    match (tracer, id) {
        (Some(t), Some(id)) => Some(t.span(id)),
        _ => None,
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The interned span name.
    pub name: String,
    /// Dense thread id of the recording thread.
    pub tid: u64,
    /// Start, nanoseconds since the tracer epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the tracer epoch (`end_ns >= start_ns`).
    pub end_ns: u64,
}

impl SpanRecord {
    /// Wall-clock duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// A drained set of spans (see [`Tracer::snapshot`]).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The retained spans, per thread in end order.
    pub records: Vec<SpanRecord>,
    /// Spans lost to ring wrap-around (oldest-first per thread).
    pub dropped: u64,
}

impl Trace {
    /// Renders the trace as Chrome Trace Event Format JSON: one `"B"` /
    /// `"E"` event pair per span, microsecond timestamps, grouped by
    /// `tid`. Loadable in `chrome://tracing` and Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let mut events = Vec::new();
        for tid_records in group_by_tid(&self.records) {
            let tid = tid_records[0].tid;
            emit_thread_events(tid, tid_records, &mut events);
        }
        Json::Obj(vec![
            ("traceEvents".to_string(), Json::Arr(events)),
            ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
            (
                "otherData".to_string(),
                Json::Obj(vec![
                    (
                        "schema_version".to_string(),
                        Json::Num(TRACE_SCHEMA_VERSION as f64),
                    ),
                    ("dropped_spans".to_string(), Json::Num(self.dropped as f64)),
                ]),
            ),
        ])
        .to_string()
    }

    /// Writes [`Trace::to_chrome_json`] to `path` (creating parent
    /// directories).
    pub fn write_chrome_json<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_chrome_json())
    }

    /// Aggregates the trace into a per-span-name [`SelfProfile`].
    pub fn self_profile(&self) -> SelfProfile {
        use std::collections::BTreeMap;
        struct Agg {
            count: u64,
            total_ns: u64,
            exclusive_ns: u64,
            hist: Histogram,
        }
        let mut by_name: BTreeMap<String, Agg> = BTreeMap::new();
        for tid_records in group_by_tid(&self.records) {
            for (span, child_ns) in spans_with_child_time(tid_records) {
                let agg = by_name.entry(span.name.clone()).or_insert_with(|| Agg {
                    count: 0,
                    total_ns: 0,
                    exclusive_ns: 0,
                    hist: Histogram::new(),
                });
                let d = span.duration_ns();
                agg.count += 1;
                agg.total_ns += d;
                agg.exclusive_ns += d.saturating_sub(child_ns);
                agg.hist.observe(d as f64 * 1e-9);
            }
        }
        let mut rows: Vec<ProfileRow> = by_name
            .into_iter()
            .map(|(name, agg)| ProfileRow {
                name,
                count: agg.count,
                total_ns: agg.total_ns,
                mean_ns: agg.total_ns as f64 / agg.count as f64,
                p50_ns: agg.hist.percentile(0.50) * 1e9,
                p95_ns: agg.hist.percentile(0.95) * 1e9,
                p99_ns: agg.hist.percentile(0.99) * 1e9,
                exclusive_ns: agg.exclusive_ns,
            })
            .collect();
        rows.sort_by_key(|row| std::cmp::Reverse(row.exclusive_ns));
        SelfProfile { rows }
    }
}

/// Splits records into per-tid runs (records are contiguous by tid in
/// snapshot order; a sort makes this hold for parsed traces too).
fn group_by_tid(records: &[SpanRecord]) -> Vec<Vec<&SpanRecord>> {
    use std::collections::BTreeMap;
    let mut by_tid: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for r in records {
        by_tid.entry(r.tid).or_default().push(r);
    }
    by_tid.into_values().collect()
}

/// Sorts one thread's spans into tree order: start ascending, ties broken
/// by end descending so a parent precedes children it shares a start
/// with. RAII stack discipline guarantees any two spans of one thread are
/// disjoint or nested, so this order walks the forest depth-first.
fn tree_order<'a>(records: &[&'a SpanRecord]) -> Vec<&'a SpanRecord> {
    let mut sorted: Vec<&SpanRecord> = records.to_vec();
    sorted.sort_by(|a, b| {
        a.start_ns
            .cmp(&b.start_ns)
            .then(b.end_ns.cmp(&a.end_ns))
            .then(a.name.cmp(&b.name))
    });
    sorted
}

/// Emits balanced `B`/`E` Chrome trace events for one thread.
fn emit_thread_events(tid: u64, records: Vec<&SpanRecord>, events: &mut Vec<Json>) {
    let event = |name: &str, ph: &str, ts_ns: u64| {
        Json::Obj(vec![
            ("name".to_string(), Json::Str(name.to_string())),
            ("ph".to_string(), Json::Str(ph.to_string())),
            ("ts".to_string(), Json::Num(ts_ns as f64 / 1e3)),
            ("pid".to_string(), Json::Num(1.0)),
            ("tid".to_string(), Json::Num(tid as f64)),
        ])
    };
    let mut stack: Vec<&SpanRecord> = Vec::new();
    for span in tree_order(&records) {
        while let Some(top) = stack.last() {
            if top.end_ns <= span.start_ns {
                events.push(event(&top.name, "E", top.end_ns));
                stack.pop();
            } else {
                break;
            }
        }
        events.push(event(&span.name, "B", span.start_ns));
        stack.push(span);
    }
    while let Some(top) = stack.pop() {
        events.push(event(&top.name, "E", top.end_ns));
    }
}

/// Walks one thread's span forest and pairs every span with the summed
/// duration of its *direct* children (for exclusive-time accounting).
fn spans_with_child_time(records: Vec<&SpanRecord>) -> Vec<(&SpanRecord, u64)> {
    let sorted = tree_order(&records);
    let mut out: Vec<(&SpanRecord, u64)> = Vec::with_capacity(sorted.len());
    // Stack of indices into `out`; out[i].1 accumulates direct-child time.
    let mut stack: Vec<usize> = Vec::new();
    for span in sorted {
        while let Some(&top) = stack.last() {
            if out[top].0.end_ns <= span.start_ns {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&parent) = stack.last() {
            out[parent].1 += span.duration_ns();
        }
        out.push((span, 0));
        stack.push(out.len() - 1);
    }
    out
}

/// One aggregated row of a [`SelfProfile`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Span name.
    pub name: String,
    /// Number of recorded spans with this name.
    pub count: u64,
    /// Summed wall time, nanoseconds.
    pub total_ns: u64,
    /// Mean wall time, nanoseconds.
    pub mean_ns: f64,
    /// Median wall time, nanoseconds (histogram-interpolated).
    pub p50_ns: f64,
    /// 95th-percentile wall time, nanoseconds.
    pub p95_ns: f64,
    /// 99th-percentile wall time, nanoseconds.
    pub p99_ns: f64,
    /// Wall time not covered by direct child spans, nanoseconds.
    pub exclusive_ns: u64,
}

/// Per-span-name aggregation of a [`Trace`], sorted by exclusive time
/// descending (the profiler's "where does time actually go" order).
#[derive(Debug, Clone, Default)]
pub struct SelfProfile {
    /// Aggregated rows, hottest (by exclusive time) first.
    pub rows: Vec<ProfileRow>,
}

impl SelfProfile {
    /// Renders the profile as CSV.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("span,count,total_ns,mean_ns,p50_ns,p95_ns,p99_ns,exclusive_ns\n");
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{},{},{},{:.0},{:.0},{:.0},{:.0},{}",
                r.name,
                r.count,
                r.total_ns,
                r.mean_ns,
                r.p50_ns,
                r.p95_ns,
                r.p99_ns,
                r.exclusive_ns
            );
        }
        out
    }

    /// Writes [`SelfProfile::to_csv`] to `path` (creating parent
    /// directories).
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_csv())
    }

    /// Renders the profile as an aligned console table (times in ms).
    pub fn to_console(&self) -> String {
        let ms = |ns: f64| format!("{:.3}", ns / 1e6);
        let mut rows: Vec<[String; 8]> = vec![[
            "span".to_string(),
            "count".to_string(),
            "total_ms".to_string(),
            "mean_ms".to_string(),
            "p50_ms".to_string(),
            "p95_ms".to_string(),
            "p99_ms".to_string(),
            "excl_ms".to_string(),
        ]];
        for r in &self.rows {
            rows.push([
                r.name.clone(),
                r.count.to_string(),
                ms(r.total_ns as f64),
                ms(r.mean_ns),
                ms(r.p50_ns),
                ms(r.p95_ns),
                ms(r.p99_ns),
                ms(r.exclusive_ns as f64),
            ]);
        }
        let widths: Vec<usize> = (0..8)
            .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        for r in &rows {
            for (c, cell) in r.iter().enumerate() {
                if c == 0 {
                    let _ = write!(out, "{cell:<width$}", width = widths[0]);
                } else {
                    let _ = write!(out, "  {cell:>width$}", width = widths[c]);
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Structural statistics of a validated Chrome trace (what
/// `telemetry_lint` reports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of complete `B`/`E` span pairs.
    pub spans: usize,
    /// Number of distinct `tid`s.
    pub threads: usize,
}

/// Parses Chrome Trace Event Format JSON back into [`SpanRecord`]s,
/// validating structure along the way: every event needs `name` / `ph` /
/// `ts` / `tid`, per-`tid` timestamps must be monotone non-decreasing,
/// and `B`/`E` events must balance with matching names (stack
/// discipline). Non-duration events (`ph` other than `B`/`E`) are
/// ignored.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<SpanRecord>, String> {
    use std::collections::BTreeMap;
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        _ => return Err("top-level object lacks a traceEvents array".to_string()),
    };
    let mut records = Vec::new();
    // Per-tid: (last ts seen, open-span stack of (name, start_ns)).
    let mut threads: BTreeMap<i64, (f64, Vec<(String, u64)>)> = BTreeMap::new();
    for (k, ev) in events.iter().enumerate() {
        let field = |key: &str| ev.get(key).ok_or(format!("event {k} lacks {key:?}"));
        let name = field("name")?
            .as_str()
            .ok_or(format!("event {k}: name is not a string"))?;
        let ph = field("ph")?
            .as_str()
            .ok_or(format!("event {k}: ph is not a string"))?;
        let ts = field("ts")?
            .as_f64()
            .ok_or(format!("event {k}: ts is not a number"))?;
        let tid = field("tid")?
            .as_i64()
            .ok_or(format!("event {k}: tid is not an integer"))?;
        let (last_ts, stack) = threads
            .entry(tid)
            .or_insert((f64::NEG_INFINITY, Vec::new()));
        if ts < *last_ts {
            return Err(format!(
                "event {k}: ts {ts} goes backwards on tid {tid} (previous {last_ts})"
            ));
        }
        *last_ts = ts;
        let ts_ns = (ts * 1e3).round() as u64;
        match ph {
            "B" => stack.push((name.to_string(), ts_ns)),
            "E" => {
                let (open_name, start_ns) = stack
                    .pop()
                    .ok_or(format!("event {k}: E with no open span on tid {tid}"))?;
                if open_name != name {
                    return Err(format!(
                        "event {k}: E for {name:?} but innermost open span on tid {tid} \
                         is {open_name:?}"
                    ));
                }
                records.push(SpanRecord {
                    name: open_name,
                    tid: tid as u64,
                    start_ns,
                    end_ns: ts_ns,
                });
            }
            _ => {}
        }
    }
    for (tid, (_, stack)) in &threads {
        if let Some((name, _)) = stack.last() {
            return Err(format!("tid {tid}: span {name:?} is never closed"));
        }
    }
    Ok(records)
}

/// Validates a Chrome trace document (see [`parse_chrome_trace`] for the
/// rules) and returns its [`TraceStats`].
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let records = parse_chrome_trace(text)?;
    let mut tids: Vec<u64> = records.iter().map(|r| r.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    Ok(TraceStats {
        spans: records.len(),
        threads: tids.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, tid: u64, start_ns: u64, end_ns: u64) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            tid,
            start_ns,
            end_ns,
        }
    }

    #[test]
    fn guards_record_nested_spans() {
        let tracer = Tracer::new();
        let outer = tracer.span_id("outer");
        let inner = tracer.span_id("inner");
        assert_eq!(tracer.span_id("outer"), outer, "names intern to one id");
        {
            let _o = tracer.span(outer);
            for _ in 0..3 {
                let _i = tracer.span(inner);
            }
        }
        let trace = tracer.snapshot();
        assert_eq!(trace.dropped, 0);
        assert_eq!(trace.records.len(), 4);
        let o = trace.records.iter().find(|r| r.name == "outer").unwrap();
        for i in trace.records.iter().filter(|r| r.name == "inner") {
            assert!(i.start_ns >= o.start_ns && i.end_ns <= o.end_ns);
        }
    }

    #[test]
    fn ring_wrap_drops_oldest_and_counts() {
        let tracer = Tracer::with_capacity(4);
        let id = tracer.span_id("s");
        for _ in 0..10 {
            let _g = tracer.span(id);
        }
        let trace = tracer.snapshot();
        assert_eq!(trace.records.len(), 4);
        assert_eq!(trace.dropped, 6);
    }

    #[test]
    fn snapshot_sees_spans_from_every_thread() {
        let tracer = Tracer::new();
        let id = tracer.span_id("worker");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let tracer = tracer.clone();
                scope.spawn(move || {
                    let _g = tracer.span(id);
                });
            }
        });
        let trace = tracer.snapshot();
        assert_eq!(trace.records.len(), 4);
        let mut tids: Vec<u64> = trace.records.iter().map(|r| r.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 4, "each thread has its own tid");
        assert!(validate_chrome_trace(&trace.to_chrome_json()).is_ok());
    }

    #[test]
    fn chrome_json_round_trips_and_balances() {
        let trace = Trace {
            records: vec![
                rec("a", 1, 0, 10_000),
                rec("b", 1, 1_000, 4_000),
                rec("b", 1, 5_000, 9_000),
                rec("c", 2, 2_000, 3_000),
            ],
            dropped: 0,
        };
        let json = trace.to_chrome_json();
        let stats = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(
            stats,
            TraceStats {
                spans: 4,
                threads: 2
            }
        );
        let mut back = parse_chrome_trace(&json).unwrap();
        back.sort_by_key(|r| (r.tid, r.start_ns));
        let mut want = trace.records.clone();
        want.sort_by_key(|r| (r.tid, r.start_ns));
        assert_eq!(back, want);
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("nonsense").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        let unbalanced = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(unbalanced)
            .unwrap_err()
            .contains("never closed"));
        let mismatched = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":1,"tid":1},
            {"name":"b","ph":"E","ts":2,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(mismatched)
            .unwrap_err()
            .contains("innermost open span"));
        let backwards = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":5,"pid":1,"tid":1},
            {"name":"a","ph":"E","ts":4,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(backwards)
            .unwrap_err()
            .contains("goes backwards"));
        let orphan_end = r#"{"traceEvents":[
            {"name":"a","ph":"E","ts":1,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(orphan_end)
            .unwrap_err()
            .contains("no open span"));
    }

    #[test]
    fn self_profile_computes_exclusive_time() {
        let trace = Trace {
            // outer [0,10µs] with two direct children b [1,4] and b [5,9]
            // (the second b has its own child c [6,7], which must not
            // count against outer).
            records: vec![
                rec("outer", 1, 0, 10_000),
                rec("b", 1, 1_000, 4_000),
                rec("b", 1, 5_000, 9_000),
                rec("c", 1, 6_000, 7_000),
            ],
            dropped: 0,
        };
        let profile = trace.self_profile();
        let row = |name: &str| profile.rows.iter().find(|r| r.name == name).unwrap();
        assert_eq!(row("outer").count, 1);
        assert_eq!(row("outer").total_ns, 10_000);
        assert_eq!(row("outer").exclusive_ns, 10_000 - 3_000 - 4_000);
        assert_eq!(row("b").count, 2);
        assert_eq!(row("b").total_ns, 7_000);
        assert_eq!(row("b").exclusive_ns, 7_000 - 1_000);
        assert_eq!(row("c").exclusive_ns, 1_000);
        assert!((row("b").mean_ns - 3_500.0).abs() < 1e-9);
        let csv = profile.to_csv();
        assert!(csv.starts_with("span,count,total_ns,"));
        assert!(csv.contains("outer,1,10000,"));
        let console = profile.to_console();
        assert!(console.contains("span"));
        assert!(console.contains("outer"));
    }

    #[test]
    fn guard_helper_requires_both_halves() {
        let tracer = Tracer::new();
        let id = tracer.span_id("g");
        assert!(guard(None, Some(id)).is_none());
        assert!(guard(Some(&tracer), None).is_none());
        drop(guard(Some(&tracer), Some(id)));
        assert_eq!(tracer.snapshot().records.len(), 1);
    }

    #[test]
    fn identical_start_times_nest_by_end() {
        let trace = Trace {
            records: vec![rec("parent", 1, 100, 500), rec("child", 1, 100, 300)],
            dropped: 0,
        };
        let json = trace.to_chrome_json();
        assert!(validate_chrome_trace(&json).is_ok());
        let profile = trace.self_profile();
        let parent = profile.rows.iter().find(|r| r.name == "parent").unwrap();
        assert_eq!(parent.exclusive_ns, 200);
    }
}
