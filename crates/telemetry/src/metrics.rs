//! Lock-free metric primitives: sharded counters, gauges, and fixed-bucket
//! log-scale histograms.
//!
//! Everything here is safe to hammer concurrently from rayon workers: a
//! [`Counter`] spreads increments over cache-line-padded shards indexed by
//! a per-thread slot (no contended line on the hot path), a [`Gauge`] is a
//! single atomic, and a [`Histogram`] keeps one atomic per bucket plus a
//! CAS-updated compensating sum. Reads ([`Counter::get`],
//! [`Histogram::bucket_counts`]) are racy snapshots — exact once writers
//! quiesce, which is when registries are rendered.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Number of shards a [`Counter`] spreads its increments over.
const SHARDS: usize = 8;

/// Cache-line-padded atomic so neighbouring shards never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread gets a stable shard slot, assigned round-robin at first
    /// use; with more threads than shards, threads share slots (atomics
    /// stay correct, only padding benefit degrades).
    static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

/// A monotonically increasing counter, sharded to keep concurrent
/// increments off a single cache line.
#[derive(Debug, Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        let slot = SHARD.with(|s| *s);
        self.shards[slot].0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current total (sum over shards; exact once writers quiesce).
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A signed instantaneous value (queue depth, backlog, in-flight work).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `v` (may be negative).
    #[inline]
    pub fn add(&self, v: i64) {
        self.value.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of buckets every [`Histogram`] has.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Upper bound of bucket 0; each later bucket doubles it. `1e-9` puts
/// nanosecond-scale timings in the low buckets and still reaches ~9.2e9
/// in the last finite bucket — wide enough for durations in seconds and
/// for dimensionless tallies alike.
const MIN_UPPER_BOUND: f64 = 1e-9;

/// A fixed-bucket log-scale (base-2) histogram.
///
/// Values land in bucket `k` when `value ≤ 1e-9 · 2^k` (bucket 0 also
/// absorbs zero, negatives, and NaN; the last bucket absorbs everything
/// larger, playing the `+Inf` role). Observation is two relaxed atomic
/// increments plus one CAS loop for the running sum — lock-free and
/// allocation-free on the hot path.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
    /// Total observation count (kept separately so `count()` does not
    /// have to sum 64 cells).
    count: AtomicU64,
    /// Bit pattern of the running `f64` sum, updated by CAS.
    sum_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index a value lands in.
    pub fn bucket_index(value: f64) -> usize {
        if value.is_nan() || value <= MIN_UPPER_BOUND {
            // Covers value ≤ 1e-9, zero, negatives, and NaN.
            return 0;
        }
        let idx = (value / MIN_UPPER_BOUND).log2().ceil();
        if idx >= (HISTOGRAM_BUCKETS - 1) as f64 {
            HISTOGRAM_BUCKETS - 1
        } else {
            idx as usize
        }
    }

    /// Upper bound of bucket `k` (`f64::INFINITY` for the last bucket).
    pub fn upper_bound(k: usize) -> f64 {
        assert!(k < HISTOGRAM_BUCKETS, "bucket index out of range");
        if k == HISTOGRAM_BUCKETS - 1 {
            f64::INFINITY
        } else {
            MIN_UPPER_BOUND * (k as f64).exp2()
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: f64) {
        self.counts[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if value.is_finite() {
            let mut cur = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let new = (f64::from_bits(cur) + value).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    cur,
                    new,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    /// Records a duration, in seconds.
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all finite observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Snapshot of the per-bucket counts.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|k| self.counts[k].load(Ordering::Relaxed))
    }

    /// Folds `other`'s observations into `self` by pointwise bucket-count
    /// addition (plus the total count and the running sum).
    ///
    /// Bucket bounds are fixed and identical across all histograms, so
    /// the merge is exact on counts — merging per-shard histograms equals
    /// observing the concatenated stream, up to float addition order in
    /// `sum()`. Safe to call concurrently with writers; like every read
    /// here, the copied snapshot is exact once `other`'s writers quiesce.
    pub fn merge(&self, other: &Histogram) {
        for (k, count) in other.bucket_counts().iter().enumerate() {
            if *count > 0 {
                self.counts[k].fetch_add(*count, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        let add = other.sum();
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + add).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// The `q`-quantile estimated from the bucket counts,
    /// Prometheus-style: the bucket holding the nearest-rank order
    /// statistic `⌈q·n⌉` is located on the cumulative distribution and
    /// the value is linearly interpolated between that bucket's bounds.
    ///
    /// Boundary behavior (pinned by regression tests):
    /// - **empty histogram** → `0.0` for every `q`;
    /// - **q = 0** → the *lower* bound of the first non-empty bucket — a
    ///   guaranteed lower bound on the minimum observation, not an
    ///   interpolated point that would drift with the bucket's count;
    /// - **q = 1** → the *upper* bound of the last non-empty bucket — a
    ///   guaranteed upper bound on the maximum (the interpolation reaches
    ///   it exactly);
    /// - ranks landing in the unbounded `+Inf` bucket → its finite lower
    ///   bound (`upper_bound(HISTOGRAM_BUCKETS - 2)`);
    /// - `q` outside `[0, 1]` clamps; NaN is treated as 0.
    pub fn percentile(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (k, &c) in counts.iter().enumerate() {
            let before = cumulative;
            cumulative += c;
            if cumulative >= target {
                if k == HISTOGRAM_BUCKETS - 1 {
                    // The +Inf bucket has no width to interpolate over.
                    return Self::upper_bound(HISTOGRAM_BUCKETS - 2);
                }
                let lower = if k == 0 {
                    0.0
                } else {
                    Self::upper_bound(k - 1)
                };
                if q == 0.0 {
                    // The minimum is somewhere in this bucket; report its
                    // certain lower bound rather than a count-dependent
                    // interpolation.
                    return lower;
                }
                let upper = Self::upper_bound(k);
                let frac = (target - before) as f64 / c as f64;
                return lower + (upper - lower) * frac;
            }
        }
        unreachable!("target rank is at most the total count")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_sets_and_adds() {
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn bucket_index_is_monotone_and_clamped() {
        assert_eq!(Histogram::bucket_index(f64::NAN), 0);
        assert_eq!(Histogram::bucket_index(-1.0), 0);
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(1e-9), 0);
        assert_eq!(Histogram::bucket_index(2e-9), 1);
        assert_eq!(
            Histogram::bucket_index(f64::INFINITY),
            HISTOGRAM_BUCKETS - 1
        );
        assert_eq!(Histogram::bucket_index(1e300), HISTOGRAM_BUCKETS - 1);
        let mut prev = 0;
        for exp in -12..12 {
            let idx = Histogram::bucket_index(10f64.powi(exp));
            assert!(idx >= prev, "bucket index must be monotone in the value");
            prev = idx;
        }
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for k in 0..HISTOGRAM_BUCKETS - 1 {
            let ub = Histogram::upper_bound(k);
            assert_eq!(
                Histogram::bucket_index(ub),
                k,
                "upper bound stays in bucket {k}"
            );
            assert_eq!(
                Histogram::bucket_index(ub * 1.01),
                k + 1,
                "past the bound moves up"
            );
        }
        assert!(Histogram::upper_bound(HISTOGRAM_BUCKETS - 1).is_infinite());
    }

    #[test]
    fn percentile_of_empty_histogram_is_zero() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.percentile(q), 0.0);
        }
    }

    #[test]
    fn percentile_interpolates_within_a_single_bucket() {
        let h = Histogram::new();
        // All observations land in one bucket: (upper/2, upper].
        let k = Histogram::bucket_index(3e-9);
        let (lower, upper) = (Histogram::upper_bound(k - 1), Histogram::upper_bound(k));
        for _ in 0..100 {
            h.observe(3e-9);
        }
        for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
            let p = h.percentile(q);
            assert!(
                p > lower && p <= upper,
                "p{q} = {p} outside bucket ({lower}, {upper}]"
            );
        }
        assert!(h.percentile(0.25) < h.percentile(0.75), "monotone in q");
        assert_eq!(h.percentile(1.0), upper, "top rank hits the upper bound");
        // Out-of-range and NaN quantiles clamp instead of panicking.
        assert_eq!(h.percentile(-1.0), h.percentile(0.0));
        assert_eq!(h.percentile(2.0), h.percentile(1.0));
        assert_eq!(h.percentile(f64::NAN), h.percentile(0.0));
    }

    #[test]
    fn percentile_of_saturated_histogram_is_finite() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.observe(1e300); // lands in the +Inf bucket
        }
        let p = h.percentile(0.99);
        assert!(p.is_finite());
        assert_eq!(p, Histogram::upper_bound(HISTOGRAM_BUCKETS - 2));
    }

    #[test]
    fn percentile_splits_across_buckets() {
        let h = Histogram::new();
        // Half the mass in bucket of 1.5e-9, half in bucket of 100.0.
        for _ in 0..50 {
            h.observe(1.5e-9);
            h.observe(100.0);
        }
        assert!(h.percentile(0.25) <= 2e-9);
        assert!(h.percentile(0.75) > 64.0 && h.percentile(0.75) <= 128.0);
    }

    #[test]
    fn percentile_boundary_contract() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.observe(3e-9); // bucket (2e-9, 4e-9]
        }
        let top = Histogram::bucket_index(100.0);
        for _ in 0..5 {
            h.observe(100.0);
        }
        // q=0: the certain lower bound of the minimum's bucket, however
        // many observations that bucket holds.
        assert_eq!(h.percentile(0.0), 2e-9);
        // q=1: the certain upper bound of the maximum's bucket.
        assert_eq!(h.percentile(1.0), Histogram::upper_bound(top));
        // The q=0 answer must not drift with the bucket's count.
        let sparse = Histogram::new();
        sparse.observe(3e-9);
        sparse.observe(100.0);
        assert_eq!(sparse.percentile(0.0), h.percentile(0.0));
    }

    #[test]
    fn merge_equals_concatenated_observation() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for k in 0..200 {
            let v = 10f64.powi(k % 13 - 6) * (1.0 + k as f64 / 200.0);
            if k % 3 == 0 { &a } else { &b }.observe(v);
            all.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.bucket_counts(), all.bucket_counts());
        assert!((a.sum() - all.sum()).abs() < 1e-9 * all.sum().abs());
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            assert_eq!(a.percentile(q), all.percentile(q), "q={q}");
        }
        // Merging an empty histogram is a no-op.
        let before = a.bucket_counts();
        a.merge(&Histogram::new());
        assert_eq!(a.bucket_counts(), before);
    }

    #[test]
    fn histogram_totals_and_mean() {
        let h = Histogram::new();
        for v in [0.5, 1.5, 2.0, f64::NAN] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 4.0).abs() < 1e-12, "NaN excluded from the sum");
        assert!((h.mean() - 1.0).abs() < 1e-12);
        let buckets = h.bucket_counts();
        assert_eq!(buckets.iter().sum::<u64>(), 4);
    }
}
