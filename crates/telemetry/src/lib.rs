//! Homegrown, zero-dependency observability for the rayfade workspace.
//!
//! The hermetic build vendors only API stubs (no real `serde`, no
//! `metrics`/`tracing` ecosystem), so this crate implements the whole
//! stack itself:
//!
//! - [`Counter`] / [`Gauge`] / [`Histogram`] — lock-free metric
//!   primitives safe to hammer from rayon workers ([`metrics`]).
//! - [`Registry`] — get-or-create named metrics with Prometheus-text and
//!   CSV exposition ([`registry`]).
//! - [`Timer`] and the [`span!`] macro — RAII scope timing into
//!   histograms ([`timer`]).
//! - [`Journal`] — append-only JSONL event logs with monotone sequence
//!   numbers instead of wall-clock timestamps, so deterministic runs
//!   produce byte-identical journals — and [`JournalReader`], the
//!   constant-memory streaming consumer ([`journal`]).
//! - [`Json`] — the minimal JSON value/parser backing the journal
//!   ([`json`]).
//! - [`Tracer`] — hierarchical RAII spans in per-thread ring buffers,
//!   exported as Chrome Trace Event JSON and a self-profile table
//!   ([`trace`]).
//! - [`Ewma`] / [`SlidingWindow`] / [`QuantileSketch`] — streaming
//!   estimators, including a mergeable γ-relative-error quantile sketch
//!   ([`stream`]).
//! - [`HealthMonitor`] — online drift / delay-SLO / watermark /
//!   throughput detectors producing deterministic `health` journal
//!   events and registry metrics ([`monitor`]).
//!
//! Instrumented code takes an `Option<&Telemetry>`; `None` keeps the
//! uninstrumented fast path (see `results/telemetry_overhead.csv` for
//! the measured cost of `Some`).
//!
//! ```
//! use rayfade_telemetry::Telemetry;
//!
//! let tele = Telemetry::new(); // metrics only, no journal
//! tele.registry().counter("rayfade_example_total").add(2);
//! assert!(tele.registry().prometheus_text().contains("rayfade_example_total 2"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod json;
pub mod metrics;
pub mod monitor;
pub mod registry;
pub mod stream;
pub mod timer;
pub mod trace;

use std::io;
use std::path::Path;

pub use journal::{read_jsonl, Event, Journal, JournalReader, SCHEMA_VERSION};
pub use json::{Json, JsonError, MAX_DEPTH};
pub use metrics::{Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};
pub use monitor::{
    DelaySloTracker, HealthMonitor, HealthReport, HealthVerdict, MonitorConfig, QueueDriftDetector,
    SloConfig, SloReport, WatermarkDetector,
};
pub use registry::Registry;
pub use stream::{Ewma, OnlineSlope, QuantileSketch, SlidingWindow};
pub use timer::Timer;
pub use trace::{SpanGuard, SpanId, Tracer};

/// A run's telemetry context: a metric [`Registry`], an optional event
/// [`Journal`], and an optional span [`Tracer`].
///
/// All methods take `&self` and the internals are atomics or mutexes, so
/// one `Telemetry` can be shared across rayon workers by reference.
#[derive(Debug, Default)]
pub struct Telemetry {
    registry: Registry,
    journal: Option<Journal>,
    tracer: Option<Tracer>,
}

impl Telemetry {
    /// Metrics-only telemetry (no journal file).
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Telemetry that also journals events to `path` (JSONL, truncated).
    pub fn with_journal<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(Telemetry {
            registry: Registry::new(),
            journal: Some(Journal::create(path)?),
            tracer: None,
        })
    }

    /// Attaches a span [`Tracer`] (builder-style):
    /// `Telemetry::new().with_tracing()`.
    #[must_use]
    pub fn with_tracing(mut self) -> Self {
        self.tracer = Some(Tracer::new());
        self
    }

    /// The metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The journal, when one was attached.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// The span tracer, when tracing was enabled.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Starts a journal event of the given kind, if a journal is
    /// attached — `tele.event("slot").map(|e| e.int("slot", 3).write())`
    /// style call sites stay one-liners.
    pub fn event(&self, kind: &str) -> Option<Event<'_>> {
        self.journal.as_ref().map(|j| j.event(kind))
    }

    /// Writes the registry to `prom_path` (Prometheus text) and
    /// `csv_path` (CSV), flushing the journal first if one is attached.
    pub fn write_metrics<P: AsRef<Path>, Q: AsRef<Path>>(
        &self,
        prom_path: P,
        csv_path: Q,
    ) -> io::Result<()> {
        self.flush();
        self.registry.write_prometheus(prom_path)?;
        self.registry.write_csv(csv_path)
    }

    /// Flushes the journal (no-op without one).
    pub fn flush(&self) {
        if let Some(j) = &self.journal {
            j.flush();
        }
    }
}

/// Hashes a config's `Debug` rendering with FNV-1a, for journaling which
/// configuration produced a run. Deterministic across runs of the same
/// build; intended for journal diffing, not cryptography.
pub fn config_hash<T: std::fmt::Debug>(config: &T) -> u64 {
    let text = format!("{config:?}");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_without_journal_skips_events() {
        let tele = Telemetry::new();
        assert!(tele.journal().is_none());
        assert!(tele.tracer().is_none());
        assert!(tele.event("noop").is_none());
        tele.registry().counter("c").inc();
        tele.flush();
    }

    #[test]
    fn with_tracing_attaches_a_tracer() {
        let tele = Telemetry::new().with_tracing();
        let tracer = tele.tracer().expect("tracer attached");
        let id = tracer.span_id("rayfade_test/span");
        {
            let _g = tracer.span(id);
        }
        assert_eq!(tracer.snapshot().records.len(), 1);
    }

    #[test]
    fn config_hash_is_stable_and_discriminating() {
        #[derive(Debug)]
        #[allow(dead_code)] // fields exist only for their Debug rendering
        struct Cfg {
            links: usize,
            lambda: f64,
        }
        let a = Cfg {
            links: 20,
            lambda: 0.04,
        };
        let b = Cfg {
            links: 20,
            lambda: 0.06,
        };
        assert_eq!(config_hash(&a), config_hash(&a));
        assert_ne!(config_hash(&a), config_hash(&b));
    }

    #[test]
    fn span_macro_times_into_the_registry() {
        let tele = Telemetry::new();
        {
            let _span = span!(Some(&tele), "rayfade_test_span_seconds");
        }
        {
            // Telemetry off: no timer, no metric.
            let none: Option<&Telemetry> = None;
            let _span = span!(none, "rayfade_test_span_seconds");
        }
        assert_eq!(
            tele.registry()
                .histogram("rayfade_test_span_seconds")
                .count(),
            1
        );
    }
}
