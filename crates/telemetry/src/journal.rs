//! Structured JSONL run journals.
//!
//! A [`Journal`] appends one JSON object per line to a file. Events carry
//! a monotone sequence number instead of a wall-clock timestamp, so two
//! runs of the same deterministic experiment produce byte-identical
//! journals — `diff run_a.jsonl run_b.jsonl` is the reproducibility check.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::Json;

/// Version of the journal file format. Stamped into the first record of
/// every journal (`{"seq":0,"kind":"schema","schema_version":...}`) so
/// readers can reject files written by an incompatible layout;
/// `telemetry_lint` requires it.
///
/// History: 1 — initial layout; 2 — added `kind: "health"` monitor
/// events (every health event carries `detector` and `verdict` fields).
pub const SCHEMA_VERSION: u64 = 2;

struct Inner {
    out: BufWriter<File>,
    seq: u64,
}

/// An append-only JSONL event log.
///
/// Events are built with [`Journal::event`] and written with
/// [`Event::write`]; each line is a JSON object whose first two fields are
/// always `seq` (monotone, assigned at write time) and `kind`. Write
/// failures never panic the instrumented run — they are tallied in
/// [`Journal::write_errors`] instead.
///
/// # Example
///
/// ```
/// let dir = std::env::temp_dir().join("rayfade-telemetry-doc-journal");
/// std::fs::create_dir_all(&dir).unwrap();
/// let path = dir.join("run.jsonl");
///
/// let journal = rayfade_telemetry::Journal::create(&path).unwrap();
/// journal
///     .event("slot")
///     .int("slot", 0)
///     .num("backlog", 3.0)
///     .str("policy", "max-weight")
///     .write();
/// journal.flush();
///
/// let events = rayfade_telemetry::read_jsonl(&path).unwrap();
/// assert_eq!(events.len(), 2, "schema header plus the slot event");
/// assert_eq!(events[0].get("kind").and_then(|k| k.as_str()), Some("schema"));
/// assert_eq!(events[1].get("kind").and_then(|k| k.as_str()), Some("slot"));
/// assert_eq!(events[1].get("backlog").and_then(|b| b.as_f64()), Some(3.0));
/// ```
pub struct Journal {
    inner: Mutex<Inner>,
    write_errors: AtomicU64,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("write_errors", &self.write_errors())
            .finish_non_exhaustive()
    }
}

impl Journal {
    /// Creates (truncating) the journal file, making parent directories as
    /// needed, and writes the schema header as its first record
    /// (`kind: "schema"` carrying [`SCHEMA_VERSION`]).
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Journal> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let out = BufWriter::new(File::create(path)?);
        let journal = Journal {
            inner: Mutex::new(Inner { out, seq: 0 }),
            write_errors: AtomicU64::new(0),
        };
        journal
            .event("schema")
            .int("schema_version", SCHEMA_VERSION as i64)
            .write();
        Ok(journal)
    }

    /// Starts building an event of the given kind.
    pub fn event<'a>(&'a self, kind: &str) -> Event<'a> {
        Event {
            journal: self,
            fields: vec![("kind".to_string(), Json::Str(kind.to_string()))],
        }
    }

    /// Number of event writes that failed at the IO layer.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// Flushes buffered lines to the file.
    pub fn flush(&self) {
        let mut inner = self.inner.lock().expect("journal mutex poisoned");
        if inner.out.flush().is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn append(&self, fields: Vec<(String, Json)>) {
        let mut inner = self.inner.lock().expect("journal mutex poisoned");
        let seq = inner.seq;
        inner.seq += 1;
        let mut obj = Vec::with_capacity(fields.len() + 1);
        obj.push(("seq".to_string(), Json::Num(seq as f64)));
        obj.extend(fields);
        let line = Json::Obj(obj).to_string();
        if writeln!(inner.out, "{line}").is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        if let Ok(inner) = self.inner.get_mut() {
            let _ = inner.out.flush();
        }
    }
}

/// A journal event under construction; fields appear in insertion order.
#[must_use = "call .write() to append the event to the journal"]
pub struct Event<'a> {
    journal: &'a Journal,
    fields: Vec<(String, Json)>,
}

impl Event<'_> {
    /// Adds a float field.
    pub fn num(mut self, key: &str, value: f64) -> Self {
        self.fields.push((key.to_string(), Json::Num(value)));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: i64) -> Self {
        self.fields.push((key.to_string(), Json::Num(value as f64)));
        self
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push((key.to_string(), Json::Str(value.to_string())));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.fields.push((key.to_string(), Json::Bool(value)));
        self
    }

    /// Appends the event to the journal (IO failures are tallied, not
    /// raised).
    pub fn write(self) {
        self.journal.append(self.fields);
    }
}

/// A constant-memory streaming reader over a JSONL journal.
///
/// Iterates one parsed [`Json`] event per line without ever holding the
/// whole file in memory — the committed full-run journals are tens of
/// thousands of lines, and consumers like `telemetry_lint` or the
/// `rayfade-inspect` query engine only need one event at a time. Blank
/// lines are skipped; a malformed line yields an `InvalidData` error
/// naming the 1-based line number (iteration can continue past it, but
/// journal writers never emit such lines).
///
/// ```
/// let dir = std::env::temp_dir().join("rayfade-telemetry-doc-reader");
/// std::fs::create_dir_all(&dir).unwrap();
/// let path = dir.join("stream.jsonl");
/// std::fs::write(&path, "{\"seq\":0,\"kind\":\"schema\"}\n\n{\"seq\":1,\"kind\":\"x\"}\n").unwrap();
///
/// let mut kinds = Vec::new();
/// for event in rayfade_telemetry::JournalReader::open(&path).unwrap() {
///     let event = event.unwrap();
///     kinds.push(event.get("kind").and_then(|k| k.as_str()).unwrap().to_string());
/// }
/// assert_eq!(kinds, ["schema", "x"]);
/// ```
#[derive(Debug)]
pub struct JournalReader {
    lines: io::Lines<BufReader<File>>,
    lineno: usize,
}

impl JournalReader {
    /// Opens `path` for streaming.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<JournalReader> {
        Ok(JournalReader {
            lines: BufReader::new(File::open(path)?).lines(),
            lineno: 0,
        })
    }

    /// The 1-based line number of the most recently yielded line
    /// (0 before the first call to `next`).
    pub fn lineno(&self) -> usize {
        self.lineno
    }
}

impl Iterator for JournalReader {
    type Item = io::Result<Json>;

    fn next(&mut self) -> Option<io::Result<Json>> {
        loop {
            let line = match self.lines.next()? {
                Ok(line) => line,
                Err(e) => return Some(Err(e)),
            };
            self.lineno += 1;
            if line.trim().is_empty() {
                continue;
            }
            return Some(Json::parse(&line).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: {e}", self.lineno),
                )
            }));
        }
    }
}

/// Reads every line of a JSONL file as a [`Json`] value (blank lines
/// skipped; a malformed line is an `InvalidData` error naming the line).
///
/// Convenience eager form of [`JournalReader`] for small journals and
/// tests; prefer the streaming reader when the journal may be large.
pub fn read_jsonl<P: AsRef<Path>>(path: P) -> io::Result<Vec<Json>> {
    JournalReader::open(path)?.collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rayfade-telemetry-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn events_round_trip_with_monotone_seq() {
        let path = temp_path("round-trip");
        let journal = Journal::create(&path).unwrap();
        journal
            .event("cell")
            .num("lambda", 0.04)
            .int("net", 2)
            .str("verdict", "stable")
            .bool("holds", true)
            .write();
        journal.event("done").int("total", 1).write();
        drop(journal);

        let events = read_jsonl(&path).unwrap();
        assert_eq!(events.len(), 3, "schema header plus two events");
        for (k, ev) in events.iter().enumerate() {
            assert_eq!(ev.get("seq").and_then(Json::as_i64), Some(k as i64));
        }
        assert_eq!(events[0].get("kind").and_then(Json::as_str), Some("schema"));
        assert_eq!(
            events[0].get("schema_version").and_then(Json::as_i64),
            Some(SCHEMA_VERSION as i64)
        );
        assert_eq!(events[1].get("kind").and_then(Json::as_str), Some("cell"));
        assert_eq!(events[1].get("lambda").and_then(Json::as_f64), Some(0.04));
        assert_eq!(events[1].get("net").and_then(Json::as_i64), Some(2));
        assert_eq!(
            events[1].get("verdict").and_then(Json::as_str),
            Some("stable")
        );
        assert_eq!(events[1].get("holds").and_then(Json::as_bool), Some(true));
        assert_eq!(events[2].get("total").and_then(Json::as_i64), Some(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn identical_runs_are_byte_identical() {
        let write_one = |path: &std::path::Path| {
            let journal = Journal::create(path).unwrap();
            for slot in 0..10 {
                journal
                    .event("slot")
                    .int("slot", slot)
                    .num("backlog", slot as f64 * 0.5)
                    .write();
            }
            drop(journal);
            std::fs::read(path).unwrap()
        };
        let a = temp_path("identical-a");
        let b = temp_path("identical-b");
        assert_eq!(write_one(&a), write_one(&b));
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn malformed_line_is_reported_with_line_number() {
        let path = temp_path("malformed");
        std::fs::write(&path, "{\"seq\":0,\"kind\":\"ok\"}\nnot json\n").unwrap();
        let err = read_jsonl(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_reader_matches_eager_load_and_tracks_lines() {
        let path = temp_path("streaming");
        let journal = Journal::create(&path).unwrap();
        for slot in 0..32 {
            journal.event("slot").int("slot", slot).write();
        }
        drop(journal);

        let eager = read_jsonl(&path).unwrap();
        let mut reader = JournalReader::open(&path).unwrap();
        assert_eq!(reader.lineno(), 0);
        let mut streamed = Vec::new();
        for ev in reader.by_ref() {
            streamed.push(ev.unwrap());
        }
        assert_eq!(streamed, eager);
        assert_eq!(reader.lineno(), 33, "schema header plus 32 events");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_reader_skips_blank_lines_and_can_continue_past_errors() {
        let path = temp_path("streaming-blank");
        std::fs::write(
            &path,
            "{\"seq\":0,\"kind\":\"a\"}\n\n   \nbroken\n{\"seq\":1,\"kind\":\"b\"}\n",
        )
        .unwrap();
        let mut reader = JournalReader::open(&path).unwrap();
        assert_eq!(
            reader
                .next()
                .unwrap()
                .unwrap()
                .get("kind")
                .and_then(Json::as_str),
            Some("a")
        );
        let err = reader.next().unwrap().unwrap_err();
        assert!(err.to_string().contains("line 4"), "{err}");
        assert_eq!(
            reader
                .next()
                .unwrap()
                .unwrap()
                .get("kind")
                .and_then(Json::as_str),
            Some("b")
        );
        assert!(reader.next().is_none());
        std::fs::remove_file(&path).ok();
    }
}
