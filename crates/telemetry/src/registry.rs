//! A named-metric registry with Prometheus-text and CSV exposition.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A get-or-create registry of named metrics.
///
/// Lookup takes a brief mutex, so callers should resolve their metric
/// `Arc`s once outside a hot loop and hammer the lock-free handles inside
/// it. Metric names are sorted (BTreeMap) in every exposition, making the
/// rendered output deterministic. Registering the same name as two
/// different metric kinds panics — that is an instrumentation bug, not a
/// runtime condition.
///
/// # Example
///
/// ```
/// use rayfade_telemetry::Registry;
///
/// let registry = Registry::new();
/// let slots = registry.counter("rayfade_dynamic_slots_total");
/// let latency = registry.histogram("rayfade_dynamic_policy_seconds");
/// for _ in 0..3 {
///     slots.inc();
///     latency.observe(2e-6);
/// }
///
/// let text = registry.prometheus_text();
/// assert!(text.contains("rayfade_dynamic_slots_total 3"));
/// assert!(text.contains("rayfade_dynamic_policy_seconds_count 3"));
/// ```
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("registry mutex poisoned");
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a gauge or histogram.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("registry mutex poisoned");
        assert!(
            !inner.gauges.contains_key(name) && !inner.histograms.contains_key(name),
            "metric name {name:?} already registered as a different kind"
        );
        Arc::clone(
            inner
                .counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge named `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a counter or histogram.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("registry mutex poisoned");
        assert!(
            !inner.counters.contains_key(name) && !inner.histograms.contains_key(name),
            "metric name {name:?} already registered as a different kind"
        );
        Arc::clone(
            inner
                .gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram named `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a counter or gauge.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("registry mutex poisoned");
        assert!(
            !inner.counters.contains_key(name) && !inner.gauges.contains_key(name),
            "metric name {name:?} already registered as a different kind"
        );
        Arc::clone(
            inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Renders every metric in Prometheus text exposition format.
    ///
    /// Histograms use cumulative `_bucket{le="..."}` series (buckets past
    /// the highest non-empty one are elided, `+Inf` always present) plus
    /// `_sum` and `_count`.
    pub fn prometheus_text(&self) -> String {
        let inner = self.inner.lock().expect("registry mutex poisoned");
        let mut out = String::new();
        for (name, c) in &inner.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", c.get());
        }
        for (name, g) in &inner.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", g.get());
        }
        for (name, h) in &inner.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let counts = h.bucket_counts();
            let last_nonempty = counts.iter().rposition(|&c| c > 0).unwrap_or(0);
            let mut cumulative = 0u64;
            for (k, &c) in counts.iter().enumerate().take(HISTOGRAM_BUCKETS - 1) {
                cumulative += c;
                if k > last_nonempty {
                    break;
                }
                let _ = writeln!(
                    out,
                    "{name}_bucket{{le=\"{:e}\"}} {cumulative}",
                    Histogram::upper_bound(k)
                );
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }

    /// Renders every metric as CSV (`kind,name,value`); histograms expand
    /// to `_count`, `_sum`, and `_mean` rows.
    pub fn csv_text(&self) -> String {
        let inner = self.inner.lock().expect("registry mutex poisoned");
        let mut out = String::from("kind,name,value\n");
        for (name, c) in &inner.counters {
            let _ = writeln!(out, "counter,{name},{}", c.get());
        }
        for (name, g) in &inner.gauges {
            let _ = writeln!(out, "gauge,{name},{}", g.get());
        }
        for (name, h) in &inner.histograms {
            let _ = writeln!(out, "histogram,{name}_count,{}", h.count());
            let _ = writeln!(out, "histogram,{name}_sum,{}", h.sum());
            let _ = writeln!(out, "histogram,{name}_mean,{}", h.mean());
        }
        out
    }

    /// Writes [`Registry::prometheus_text`] to `path` (creating parent
    /// directories).
    pub fn write_prometheus<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        write_creating_dirs(path.as_ref(), &self.prometheus_text())
    }

    /// Writes [`Registry::csv_text`] to `path` (creating parent
    /// directories).
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        write_creating_dirs(path.as_ref(), &self.csv_text())
    }
}

fn write_creating_dirs(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_metric() {
        let r = Registry::new();
        r.counter("hits").inc();
        r.counter("hits").inc();
        assert_eq!(r.counter("hits").get(), 2);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn cross_kind_name_collision_panics() {
        let r = Registry::new();
        r.counter("x").inc();
        let _ = r.gauge("x");
    }

    #[test]
    fn prometheus_golden_output() {
        let r = Registry::new();
        r.counter("rayfade_slots_total").add(5);
        r.gauge("rayfade_backlog").set(-3);
        let h = r.histogram("rayfade_policy_seconds");
        h.observe(0.0); // bucket 0 (le 1e-9)
        h.observe(1.5e-9); // bucket 1 (le 2e-9)
        h.observe(3.0e-9); // bucket 2 (le 4e-9)
                           // Counters render before gauges before histograms; names sort
                           // within each kind.
        let expected = "\
# TYPE rayfade_slots_total counter
rayfade_slots_total 5
# TYPE rayfade_backlog gauge
rayfade_backlog -3
# TYPE rayfade_policy_seconds histogram
rayfade_policy_seconds_bucket{le=\"1e-9\"} 1
rayfade_policy_seconds_bucket{le=\"2e-9\"} 2
rayfade_policy_seconds_bucket{le=\"4e-9\"} 3
rayfade_policy_seconds_bucket{le=\"+Inf\"} 3
rayfade_policy_seconds_sum 0.0000000045
rayfade_policy_seconds_count 3
";
        assert_eq!(r.prometheus_text(), expected);
    }

    #[test]
    fn csv_covers_every_kind() {
        let r = Registry::new();
        r.counter("c").add(2);
        r.gauge("g").set(7);
        r.histogram("h").observe(1.0);
        let csv = r.csv_text();
        assert!(csv.starts_with("kind,name,value\n"));
        assert!(csv.contains("counter,c,2\n"));
        assert!(csv.contains("gauge,g,7\n"));
        assert!(csv.contains("histogram,h_count,1\n"));
        assert!(csv.contains("histogram,h_sum,1\n"));
        assert!(csv.contains("histogram,h_mean,1\n"));
    }
}
