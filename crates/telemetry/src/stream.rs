//! Streaming estimators: EWMA rates, ring-buffered sliding windows, and
//! a mergeable relative-error-guaranteed quantile sketch.
//!
//! Everything here is single-writer and allocation-free on the observe
//! path (the sketch allocates only when a value opens a new log bucket).
//! These are the building blocks of the online health monitor
//! ([`crate::monitor`]): the 64-bucket base-2 [`crate::Histogram`] is
//! fine for coarse latency attribution but far too coarse for p99 delay
//! SLOs — adjacent bucket bounds differ by 2×, so a "p99" read off it can
//! be wrong by 100%. The [`QuantileSketch`] bounds the *relative* error
//! of every quantile estimate by a configurable γ (default 1%).

use std::collections::BTreeMap;

/// An exponentially weighted moving average.
///
/// `value ← γ·x + (1−γ)·value`, seeded with the first observation (no
/// zero-bias warm-up). With observations once per sampling window this is
/// the classic windowed-EWMA rate estimator: feed it `Δcount/Δt` per
/// window.
#[derive(Debug, Clone, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// A new EWMA with smoothing factor `alpha` in `(0, 1]` (larger =
    /// faster to react, shorter memory).
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA smoothing factor must be in (0, 1]"
        );
        Ewma { alpha, value: None }
    }

    /// Folds one observation into the average.
    pub fn observe(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        });
    }

    /// The current average (`None` before the first observation).
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// A fixed-capacity ring buffer with O(1) windowed mean and variance.
///
/// The running `sum`/`sumsq` are updated incrementally (add the incoming
/// value, subtract the evicted one), so long streams accumulate a little
/// floating-point drift — fine for monitoring thresholds, not for
/// certified statistics. The update sequence is deterministic, so two
/// identical streams produce bit-identical windows.
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingWindow {
    buf: Vec<f64>,
    next: usize,
    filled: usize,
    sum: f64,
    sumsq: f64,
}

impl SlidingWindow {
    /// A window holding the last `capacity` observations.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingWindow {
            buf: vec![0.0; capacity],
            next: 0,
            filled: 0,
            sum: 0.0,
            sumsq: 0.0,
        }
    }

    /// Pushes one observation, evicting the oldest when full.
    pub fn observe(&mut self, x: f64) {
        if self.filled == self.buf.len() {
            let old = self.buf[self.next];
            self.sum -= old;
            self.sumsq -= old * old;
        } else {
            self.filled += 1;
        }
        self.buf[self.next] = x;
        self.sum += x;
        self.sumsq += x * x;
        self.next = (self.next + 1) % self.buf.len();
    }

    /// Number of observations currently in the window.
    pub fn len(&self) -> usize {
        self.filled
    }

    /// Whether the window has no observations yet.
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// Windowed mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.filled == 0 {
            0.0
        } else {
            self.sum / self.filled as f64
        }
    }

    /// Windowed population variance, clamped at 0 (incremental sums can
    /// go fractionally negative).
    pub fn variance(&self) -> f64 {
        if self.filled == 0 {
            return 0.0;
        }
        let n = self.filled as f64;
        ((self.sumsq - self.sum * self.sum / n) / n).max(0.0)
    }
}

/// Values at or below this threshold land in the sketch's "zero" bucket
/// and are reported as exactly 0. Delays and backlogs are ≥ 0; the
/// log-bucket index would diverge as the value approaches 0.
pub const SKETCH_MIN_VALUE: f64 = 1e-12;

/// A DDSketch-style log-bucketed quantile sketch with a guaranteed
/// relative error bound.
///
/// A positive value `v` lands in bucket `k = ⌈log_Γ v⌉` where
/// `Γ = (1+γ)/(1−γ)` and `γ` is the configured relative accuracy; bucket
/// `k` covers `(Γ^(k−1), Γ^k]` and is reported as its log-midpoint
/// `2·Γ^k/(Γ+1)`. For any `x` in the bucket the estimate `m` satisfies
/// `|m − x| ≤ γ·x`, so every quantile estimate is within γ *relative*
/// error of some value that genuinely occupies that rank's bucket —
/// at γ = 0.01 a p99 of 100 slots is reported in [99, 101], where the
/// base-2 [`crate::Histogram`] could report anything in (64, 128].
/// (Floating-point rounding of the logarithm can push a value lying
/// *exactly* on a bucket boundary into its neighbour, relaxing the bound
/// to `γ·(1+2γ)` in that measure-zero case.)
///
/// Buckets are held in a `BTreeMap<i32, u64>`, so two sketches with equal
/// contents are structurally identical regardless of insertion order:
/// [`merge`](QuantileSketch::merge) (pointwise count addition) is exactly
/// associative and commutative on counts and quantile estimates, and a
/// merged sketch's estimates equal the sketch of the concatenated stream
/// *exactly*, not just within γ. Values in `(0, SKETCH_MIN_VALUE]`, zero,
/// negatives, and NaN all count toward a dedicated zero bucket reported
/// as 0. The value range `[1e-12, 1e12]` spans ~2⁄γ·ln(10¹²)·… in theory;
/// concretely at γ = 0.01 it is ≤ 2764 buckets, so memory stays bounded
/// by the observed dynamic range without a collapse rule.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    gamma: f64,
    /// Bucket growth factor Γ = (1+γ)/(1−γ).
    factor: f64,
    inv_log_factor: f64,
    buckets: BTreeMap<i32, u64>,
    zero: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Memo of the last positive value's bucket key. Delay and backlog
    /// streams repeat exact values heavily, and an exact-match hit skips
    /// the `ln` on the observe path. Pure cache: it replays what
    /// [`key`](Self::key) returned for the same bits, so hit or miss
    /// never changes which bucket a value lands in — excluded from
    /// `PartialEq` accordingly.
    memo: Option<(f64, i32)>,
}

impl PartialEq for QuantileSketch {
    fn eq(&self, other: &Self) -> bool {
        self.gamma == other.gamma
            && self.buckets == other.buckets
            && self.zero == other.zero
            && self.count == other.count
            && self.sum == other.sum
            && self.min == other.min
            && self.max == other.max
    }
}

impl QuantileSketch {
    /// A sketch with relative accuracy `gamma` in `(0, 1)`.
    pub fn new(gamma: f64) -> Self {
        assert!(
            gamma > 0.0 && gamma < 1.0,
            "sketch relative accuracy must be in (0, 1)"
        );
        let factor = (1.0 + gamma) / (1.0 - gamma);
        QuantileSketch {
            gamma,
            factor,
            inv_log_factor: 1.0 / factor.ln(),
            buckets: BTreeMap::new(),
            zero: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            memo: None,
        }
    }

    /// The configured relative accuracy γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The bucket index of a positive value.
    fn key(&self, v: f64) -> i32 {
        (v.ln() * self.inv_log_factor).ceil() as i32
    }

    /// The representative (log-midpoint) value of bucket `k`.
    fn bucket_value(&self, k: i32) -> f64 {
        2.0 * self.factor.powi(k) / (self.factor + 1.0)
    }

    /// Records one observation. NaN, negatives, and values ≤
    /// [`SKETCH_MIN_VALUE`] count toward the zero bucket.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        if v.is_nan() || v <= SKETCH_MIN_VALUE {
            self.zero += 1;
            let v = if v.is_nan() { 0.0 } else { v.max(0.0) };
            self.min = self.min.min(v);
            self.max = self.max.max(v);
            return;
        }
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let key = match self.memo {
            Some((mv, mk)) if mv == v => mk,
            _ => {
                let k = self.key(v);
                self.memo = Some((v, k));
                k
            }
        };
        *self.buckets.entry(key).or_insert(0) += 1;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all positive observed values (zero-bucket values excluded).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observed value (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observed value (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Number of live log buckets (excluding the zero bucket).
    pub fn bucket_len(&self) -> usize {
        self.buckets.len()
    }

    /// The `q`-quantile estimate (`q` clamped into `[0, 1]`, NaN treated
    /// as 0): the representative value of the bucket containing the
    /// nearest-rank order statistic `⌈q·n⌉` (rank 1 for q = 0). `None`
    /// when the sketch is empty; exactly 0 when the rank lands in the
    /// zero bucket.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank <= self.zero {
            return Some(0.0);
        }
        let mut cumulative = self.zero;
        for (&k, &c) in &self.buckets {
            cumulative += c;
            if cumulative >= rank {
                return Some(self.bucket_value(k));
            }
        }
        unreachable!("rank is at most the total count")
    }

    /// Folds `other` into `self` by pointwise bucket-count addition.
    ///
    /// Counts and quantile estimates merge exactly (associative and
    /// commutative); the running `sum` is a float addition, so only it
    /// depends on merge order (at ulp scale).
    ///
    /// # Panics
    /// When the two sketches were built with different γ — their bucket
    /// indexes are incompatible.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            self.gamma == other.gamma,
            "cannot merge sketches with different relative accuracies \
             ({} vs {})",
            self.gamma,
            other.gamma
        );
        for (&k, &c) in &other.buckets {
            *self.buckets.entry(k).or_insert(0) += c;
        }
        self.zero += other.zero;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// An online (single-pass) least-squares slope over `(x, y)` samples.
///
/// Numerically this is the Welford-style update of the centered moments
/// `Sxx` and `Sxy`; the final `slope()` agrees with the two-pass
/// [`least-squares fit`](https://en.wikipedia.org/wiki/Simple_linear_regression)
/// to floating-point noise, which is what lets the online queue-drift
/// detector reproduce the post-hoc drift verdict bit-for-bit on every
/// committed stability cell (they see identical samples).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineSlope {
    n: u64,
    mean_x: f64,
    mean_y: f64,
    sxx: f64,
    sxy: f64,
}

impl OnlineSlope {
    /// An empty fit.
    pub fn new() -> Self {
        OnlineSlope::default()
    }

    /// Folds one `(x, y)` sample into the fit.
    pub fn observe(&mut self, x: f64, y: f64) {
        self.n += 1;
        let n = self.n as f64;
        let dx = x - self.mean_x;
        let dy = y - self.mean_y;
        self.mean_x += dx / n;
        self.mean_y += dy / n;
        // dx is pre-update, (x - mean_x) post-update: the standard
        // single-pass co-moment recurrence.
        self.sxx += dx * (x - self.mean_x);
        self.sxy += dx * (y - self.mean_y);
    }

    /// Number of samples folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The fitted slope in y-units per x-unit (0 with fewer than two
    /// distinct x values, matching the two-pass convention).
    pub fn slope(&self) -> f64 {
        if self.n < 2 || self.sxx == 0.0 {
            0.0
        } else {
            self.sxy / self.sxx
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_seeds_and_smooths() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.observe(10.0);
        assert_eq!(e.value(), Some(10.0));
        e.observe(0.0);
        assert_eq!(e.value(), Some(5.0));
        e.observe(5.0);
        assert_eq!(e.value(), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "smoothing factor")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn sliding_window_evicts_oldest() {
        let mut w = SlidingWindow::new(3);
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
        for x in [1.0, 2.0, 3.0] {
            w.observe(x);
        }
        assert_eq!(w.len(), 3);
        assert!((w.mean() - 2.0).abs() < 1e-12);
        w.observe(10.0); // evicts the 1.0
        assert_eq!(w.len(), 3);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Population variance of {2, 3, 10}: mean 5, var (9+4+25)/3.
        assert!((w.variance() - 38.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn sliding_window_constant_stream_has_zero_variance() {
        let mut w = SlidingWindow::new(8);
        for _ in 0..100 {
            w.observe(7.5);
        }
        assert!((w.mean() - 7.5).abs() < 1e-12);
        assert!(w.variance() < 1e-12);
    }

    #[test]
    fn sketch_relative_error_holds_on_a_known_stream() {
        let gamma = 0.01;
        let mut s = QuantileSketch::new(gamma);
        let values: Vec<f64> = (1..=1000).map(|k| k as f64).collect();
        for &v in &values {
            s.observe(v);
        }
        assert_eq!(s.count(), 1000);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let est = s.quantile(q).unwrap();
            let rank = ((q * 1000.0).ceil() as usize).clamp(1, 1000);
            let truth = values[rank - 1];
            assert!(
                (est - truth).abs() <= gamma * truth * 1.000_001,
                "q={q}: estimate {est} vs truth {truth}"
            );
        }
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(1000.0));
    }

    #[test]
    fn sketch_zero_and_special_values() {
        let mut s = QuantileSketch::new(0.02);
        assert_eq!(s.quantile(0.5), None, "empty sketch has no quantiles");
        for v in [0.0, -3.0, f64::NAN, 1e-15] {
            s.observe(v);
        }
        s.observe(100.0);
        assert_eq!(s.count(), 5);
        assert_eq!(s.quantile(0.0), Some(0.0));
        assert_eq!(s.quantile(0.5), Some(0.0));
        let top = s.quantile(1.0).unwrap();
        assert!((top - 100.0).abs() <= 0.02 * 100.0 * 1.000_001);
        assert_eq!(s.sum(), 100.0, "zero-bucket values excluded from sum");
    }

    #[test]
    fn sketch_merge_equals_concatenation_exactly() {
        let mut a = QuantileSketch::new(0.01);
        let mut b = QuantileSketch::new(0.01);
        let mut c = QuantileSketch::new(0.01);
        for k in 0..300 {
            let v = 10f64.powf((k % 19) as f64 - 9.0) * (1.0 + k as f64 / 300.0);
            if k % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
            c.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), c.quantile(q), "q={q}");
        }
    }

    #[test]
    #[should_panic(expected = "different relative accuracies")]
    fn sketch_merge_rejects_mismatched_gamma() {
        let mut a = QuantileSketch::new(0.01);
        a.merge(&QuantileSketch::new(0.02));
    }

    #[test]
    fn sketch_bucket_count_stays_bounded_over_twelve_decades() {
        let mut s = QuantileSketch::new(0.01);
        let mut v = 1e-9;
        while v < 1e9 {
            s.observe(v);
            v *= 1.003;
        }
        assert!(
            s.bucket_len() <= 2800,
            "bucket count {} exceeds the documented bound",
            s.bucket_len()
        );
    }

    #[test]
    fn online_slope_matches_two_pass_fit() {
        let xs: Vec<f64> = (0..50).map(|k| (k * 37) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.25 * x - 3.0 + (x % 7.0)).collect();
        let mut fit = OnlineSlope::new();
        for (&x, &y) in xs.iter().zip(&ys) {
            fit.observe(x, y);
        }
        // Two-pass reference.
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        assert!((fit.slope() - sxy / sxx).abs() < 1e-12);
        assert_eq!(fit.count(), 50);
    }

    #[test]
    fn online_slope_degenerate_cases() {
        let mut fit = OnlineSlope::new();
        assert_eq!(fit.slope(), 0.0);
        fit.observe(1.0, 5.0);
        assert_eq!(fit.slope(), 0.0, "one point has no slope");
        let mut same_x = OnlineSlope::new();
        same_x.observe(2.0, 1.0);
        same_x.observe(2.0, 9.0);
        assert_eq!(same_x.slope(), 0.0, "vertical data has no finite slope");
    }
}
