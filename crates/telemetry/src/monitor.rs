//! Online health monitoring: drift, SLO, watermark, and throughput
//! detectors over a live run, with journal + registry exposition.
//!
//! Everything the rest of the stack produces is post-hoc — you learn a
//! run went unstable after the sweep finishes. A [`HealthMonitor`] is fed
//! *during* the run (one per replication; feeding it never touches any
//! random stream, so monitored runs stay bit-equal to plain ones) and its
//! [`HealthReport`] snapshot answers, while the run is live:
//!
//! * **queue drift** — is the sampled total backlog growing? An
//!   [`OnlineSlope`] fit of (slot, backlog),
//!   alerting when the slope exceeds a threshold the caller derives from
//!   the offered load (the same `tolerance·λ·n` rule the post-hoc sweep
//!   uses, so online and post-hoc verdicts agree).
//! * **delay SLO** — is the target delay quantile under its threshold,
//!   and is the per-link violation fraction inside budget? Backed by the
//!   γ-relative-error [`QuantileSketch`],
//!   not the coarse base-2 [`Histogram`](crate::Histogram).
//! * **watermark** — has the backlog set a new all-time high on too many
//!   *consecutive* samples? A bounded process renews its maximum ever
//!   more rarely; a linearly growing one renews it every sample.
//! * **throughput** — has the departure rate collapsed relative to the
//!   arrival rate? Windowed EWMA rates over the sampled cumulative
//!   counters.
//!
//! Reports journal as deterministic `kind: "health"` events (one per
//! detector, each carrying `detector` and `verdict` fields — the contract
//! `telemetry_lint` enforces) and export through the existing
//! [`Registry`].

use crate::journal::{Event, Journal};
use crate::registry::Registry;
use crate::stream::{Ewma, OnlineSlope, QuantileSketch, SlidingWindow};

/// Number of recent backlog samples the monitor keeps for windowed
/// mean/variance.
const BACKLOG_WINDOW: usize = 64;

/// A detector's binary state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthVerdict {
    /// Within its configured envelope.
    Ok,
    /// Out of envelope — the condition the detector watches for is live.
    Alert,
}

impl HealthVerdict {
    /// Stable label used in journals and logs.
    pub fn label(&self) -> &'static str {
        match self {
            HealthVerdict::Ok => "ok",
            HealthVerdict::Alert => "alert",
        }
    }

    /// Whether this is [`HealthVerdict::Alert`].
    pub fn is_alert(&self) -> bool {
        matches!(self, HealthVerdict::Alert)
    }

    fn from_alert(alert: bool) -> Self {
        if alert {
            HealthVerdict::Alert
        } else {
            HealthVerdict::Ok
        }
    }
}

/// A per-link delay service-level objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// The delay quantile the objective constrains (e.g. 0.95).
    pub quantile: f64,
    /// Upper bound, in slots, that the quantile (and each individual
    /// delay) must respect.
    pub threshold: f64,
    /// Allowed fraction of over-threshold deliveries per link before the
    /// tracker alerts.
    pub budget: f64,
}

impl Default for SloConfig {
    /// p95 delay ≤ 500 slots, with 5% of deliveries allowed over.
    fn default() -> Self {
        SloConfig {
            quantile: 0.95,
            threshold: 500.0,
            budget: 0.05,
        }
    }
}

/// Configuration of a [`HealthMonitor`].
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Backlog slope (packets/slot, network total) above which the drift
    /// detector alerts. Callers derive it from the offered load — the
    /// dynamic engine uses `tolerance · λ · links`, mirroring the
    /// post-hoc stability test.
    pub drift_threshold: f64,
    /// Delay SLO to track (`None` disables the tracker).
    pub slo: Option<SloConfig>,
    /// Consecutive new-high-watermark samples before the watermark
    /// detector alerts.
    pub watermark_streak_limit: u64,
    /// EWMA smoothing factor for the arrival/departure rate estimators.
    pub ewma_alpha: f64,
    /// The throughput detector alerts when the departure rate falls below
    /// this fraction of the arrival rate.
    pub collapse_ratio: f64,
    /// Relative accuracy γ of the delay quantile sketch.
    pub sketch_gamma: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            drift_threshold: 0.0,
            slo: Some(SloConfig::default()),
            watermark_streak_limit: 10,
            ewma_alpha: 0.05,
            collapse_ratio: 0.5,
            sketch_gamma: 0.01,
        }
    }
}

/// Online backlog-drift detector: a streaming least-squares fit of
/// (slot, total backlog), alerting when the slope exceeds a threshold.
///
/// Fed the same sampled points the post-hoc drift test fits, its slope
/// matches the two-pass fit to floating-point noise — the basis for the
/// online/post-hoc verdict-agreement contract.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueDriftDetector {
    fit: OnlineSlope,
    threshold: f64,
}

impl QueueDriftDetector {
    /// A detector alerting above `threshold` packets/slot of drift.
    pub fn new(threshold: f64) -> Self {
        QueueDriftDetector {
            fit: OnlineSlope::new(),
            threshold,
        }
    }

    /// Folds one sampled (slot, total backlog) point into the fit.
    pub fn observe(&mut self, slot: f64, backlog: f64) {
        self.fit.observe(slot, backlog);
    }

    /// The fitted backlog slope in packets/slot.
    pub fn slope(&self) -> f64 {
        self.fit.slope()
    }

    /// The configured alert threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// `Ok` iff the slope is at most the threshold (`<=`, matching the
    /// post-hoc rule so a zero-load run with zero drift counts stable).
    pub fn verdict(&self) -> HealthVerdict {
        HealthVerdict::from_alert(self.slope() > self.threshold)
    }
}

/// Backlog high-watermark growth detector.
///
/// Tracks the all-time maximum of the sampled backlog and the longest run
/// of *consecutive* samples that each set a new maximum. A positive-
/// recurrent backlog renews its maximum ever more rarely; under linear
/// growth every sample is a new high and the streak grows without bound.
#[derive(Debug, Clone, PartialEq)]
pub struct WatermarkDetector {
    watermark: f64,
    streak: u64,
    max_streak: u64,
    limit: u64,
}

impl WatermarkDetector {
    /// A detector alerting at `limit` consecutive new highs.
    pub fn new(limit: u64) -> Self {
        WatermarkDetector {
            watermark: 0.0,
            streak: 0,
            max_streak: 0,
            limit,
        }
    }

    /// Folds one sampled backlog value in.
    pub fn observe(&mut self, backlog: f64) {
        if backlog > self.watermark {
            self.watermark = backlog;
            self.streak += 1;
            self.max_streak = self.max_streak.max(self.streak);
        } else {
            self.streak = 0;
        }
    }

    /// The all-time backlog maximum seen so far.
    pub fn watermark(&self) -> f64 {
        self.watermark
    }

    /// The longest consecutive new-high streak seen so far.
    pub fn max_streak(&self) -> u64 {
        self.max_streak
    }

    /// `Ok` iff the longest streak stayed below the limit.
    pub fn verdict(&self) -> HealthVerdict {
        HealthVerdict::from_alert(self.max_streak >= self.limit)
    }
}

/// Per-link delay-SLO tracker: one γ-accurate sketch of all delivery
/// delays plus per-link violation tallies against the threshold/budget.
#[derive(Debug, Clone, PartialEq)]
pub struct DelaySloTracker {
    cfg: SloConfig,
    sketch: QuantileSketch,
    observed: Vec<u64>,
    violations: Vec<u64>,
}

impl DelaySloTracker {
    /// A tracker over `links` links.
    pub fn new(cfg: SloConfig, sketch_gamma: f64, links: usize) -> Self {
        DelaySloTracker {
            cfg,
            sketch: QuantileSketch::new(sketch_gamma),
            observed: vec![0; links],
            violations: vec![0; links],
        }
    }

    /// Records one delivered packet's delay (in slots) on `link`.
    pub fn observe(&mut self, link: usize, delay: f64) {
        self.sketch.observe(delay);
        self.observed[link] += 1;
        if delay > self.cfg.threshold {
            self.violations[link] += 1;
        }
    }

    /// Snapshot of the objective's state.
    pub fn report(&self) -> SloReport {
        let estimate = self.sketch.quantile(self.cfg.quantile);
        let mut worst_link = None;
        let mut worst_fraction = 0.0f64;
        for (link, (&obs, &vio)) in self.observed.iter().zip(&self.violations).enumerate() {
            if obs == 0 {
                continue;
            }
            let fraction = vio as f64 / obs as f64;
            if worst_link.is_none() || fraction > worst_fraction {
                worst_link = Some(link);
                worst_fraction = fraction;
            }
        }
        let quantile_over = estimate.is_some_and(|e| e > self.cfg.threshold);
        let budget_blown = worst_fraction > self.cfg.budget;
        SloReport {
            quantile: self.cfg.quantile,
            threshold: self.cfg.threshold,
            budget: self.cfg.budget,
            estimate,
            observed: self.observed.iter().sum(),
            violations: self.violations.iter().sum(),
            worst_link,
            worst_fraction,
            verdict: HealthVerdict::from_alert(quantile_over || budget_blown),
        }
    }
}

/// Snapshot of a [`DelaySloTracker`].
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// The tracked quantile.
    pub quantile: f64,
    /// The delay threshold, in slots.
    pub threshold: f64,
    /// The allowed per-link violation fraction.
    pub budget: f64,
    /// Sketch estimate of the tracked delay quantile (`None` before any
    /// delivery).
    pub estimate: Option<f64>,
    /// Total deliveries observed.
    pub observed: u64,
    /// Total over-threshold deliveries.
    pub violations: u64,
    /// The link with the highest violation fraction (`None` before any
    /// delivery).
    pub worst_link: Option<usize>,
    /// That link's violation fraction.
    pub worst_fraction: f64,
    /// `Alert` when the quantile estimate exceeds the threshold or the
    /// worst link's violation fraction exceeds the budget.
    pub verdict: HealthVerdict,
}

/// The online health monitor for one replication: every detector behind
/// one pair of feed calls.
///
/// Feed [`observe_sample`](HealthMonitor::observe_sample) at each sampled
/// slot and [`observe_delay`](HealthMonitor::observe_delay) at each
/// delivery; take a [`report`](HealthMonitor::report) whenever a snapshot
/// is needed (the dynamic engine takes one at end of run). The monitor is
/// pure read-side state — it draws no randomness and feeds nothing back,
/// so a monitored run's outcomes are bit-equal to an unmonitored one's.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthMonitor {
    drift: QueueDriftDetector,
    watermark: WatermarkDetector,
    window: SlidingWindow,
    arrivals: Ewma,
    departures: Ewma,
    collapse_ratio: f64,
    slo: Option<DelaySloTracker>,
    /// Previous sampled (slot, cum_arrivals, cum_departures) for rate
    /// deltas.
    last: Option<(u64, u64, u64)>,
    samples: u64,
}

impl HealthMonitor {
    /// A monitor over `links` links.
    pub fn new(cfg: &MonitorConfig, links: usize) -> Self {
        HealthMonitor {
            drift: QueueDriftDetector::new(cfg.drift_threshold),
            watermark: WatermarkDetector::new(cfg.watermark_streak_limit),
            window: SlidingWindow::new(BACKLOG_WINDOW),
            arrivals: Ewma::new(cfg.ewma_alpha),
            departures: Ewma::new(cfg.ewma_alpha),
            collapse_ratio: cfg.collapse_ratio,
            slo: cfg
                .slo
                .map(|slo| DelaySloTracker::new(slo, cfg.sketch_gamma, links)),
            last: None,
            samples: 0,
        }
    }

    /// Feeds one sampled slot: the network-total backlog plus the
    /// cumulative arrival/departure counters at `slot`.
    pub fn observe_sample(
        &mut self,
        slot: u64,
        backlog: u64,
        cum_arrivals: u64,
        cum_departures: u64,
    ) {
        self.samples += 1;
        let b = backlog as f64;
        self.drift.observe(slot as f64, b);
        self.watermark.observe(b);
        self.window.observe(b);
        if let Some((prev_slot, prev_arr, prev_dep)) = self.last {
            let dt = slot.saturating_sub(prev_slot) as f64;
            if dt > 0.0 {
                self.arrivals
                    .observe(cum_arrivals.saturating_sub(prev_arr) as f64 / dt);
                self.departures
                    .observe(cum_departures.saturating_sub(prev_dep) as f64 / dt);
            }
        }
        self.last = Some((slot, cum_arrivals, cum_departures));
    }

    /// Feeds one delivered packet's delay (in slots) on `link`. No-op
    /// when no SLO is configured.
    pub fn observe_delay(&mut self, link: usize, delay: u64) {
        if let Some(slo) = &mut self.slo {
            slo.observe(link, delay as f64);
        }
    }

    /// Snapshot of every detector.
    pub fn report(&self) -> HealthReport {
        let arrival_rate = self.arrivals.value().unwrap_or(0.0);
        let departure_rate = self.departures.value().unwrap_or(0.0);
        let collapsed = arrival_rate > 0.0 && departure_rate < self.collapse_ratio * arrival_rate;
        HealthReport {
            samples: self.samples,
            drift_slope: self.drift.slope(),
            drift_threshold: self.drift.threshold(),
            drift_verdict: self.drift.verdict(),
            watermark: self.watermark.watermark(),
            growth_streak: self.watermark.max_streak(),
            watermark_verdict: self.watermark.verdict(),
            arrival_rate,
            departure_rate,
            throughput_verdict: HealthVerdict::from_alert(collapsed),
            backlog_mean: self.window.mean(),
            backlog_variance: self.window.variance(),
            slo: self.slo.as_ref().map(DelaySloTracker::report),
        }
    }
}

/// A point-in-time snapshot of every detector in a [`HealthMonitor`].
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Sampled slots folded in so far.
    pub samples: u64,
    /// Fitted backlog slope, packets/slot (network total).
    pub drift_slope: f64,
    /// The drift alert threshold.
    pub drift_threshold: f64,
    /// Drift detector state.
    pub drift_verdict: HealthVerdict,
    /// All-time backlog maximum.
    pub watermark: f64,
    /// Longest consecutive new-watermark streak.
    pub growth_streak: u64,
    /// Watermark detector state.
    pub watermark_verdict: HealthVerdict,
    /// EWMA arrival rate, packets/slot (0 before two samples).
    pub arrival_rate: f64,
    /// EWMA departure rate, packets/slot (0 before two samples).
    pub departure_rate: f64,
    /// Throughput-collapse detector state.
    pub throughput_verdict: HealthVerdict,
    /// Mean of the recent-backlog window.
    pub backlog_mean: f64,
    /// Population variance of the recent-backlog window.
    pub backlog_variance: f64,
    /// Delay-SLO snapshot, when an SLO was configured.
    pub slo: Option<SloReport>,
}

impl HealthReport {
    /// The worst verdict across all detectors: `Alert` if any alerts.
    pub fn worst(&self) -> HealthVerdict {
        let alert = self.drift_verdict.is_alert()
            || self.watermark_verdict.is_alert()
            || self.throughput_verdict.is_alert()
            || self.slo.as_ref().is_some_and(|s| s.verdict.is_alert());
        HealthVerdict::from_alert(alert)
    }

    /// Journals one `kind: "health"` event per detector.
    ///
    /// Every event carries a `detector` tag (`queue_drift`, `watermark`,
    /// `throughput`, `delay_slo`) and a `verdict` string — the fields
    /// `telemetry_lint` requires on health events. `decorate` adds caller
    /// context (policy, λ, replication index, ...) to each event before
    /// the detector fields; all values here derive from simulated state,
    /// never wall clock, so the events are deterministic.
    pub fn journal<'a>(&self, journal: &'a Journal, decorate: impl Fn(Event<'a>) -> Event<'a>) {
        decorate(journal.event("health"))
            .str("detector", "queue_drift")
            .num("slope", self.drift_slope)
            .num("threshold", self.drift_threshold)
            .int("samples", self.samples as i64)
            .str("verdict", self.drift_verdict.label())
            .write();
        decorate(journal.event("health"))
            .str("detector", "watermark")
            .num("watermark", self.watermark)
            .int("growth_streak", self.growth_streak as i64)
            .str("verdict", self.watermark_verdict.label())
            .write();
        decorate(journal.event("health"))
            .str("detector", "throughput")
            .num("arrival_rate", self.arrival_rate)
            .num("departure_rate", self.departure_rate)
            .num("backlog_mean", self.backlog_mean)
            .num("backlog_variance", self.backlog_variance)
            .str("verdict", self.throughput_verdict.label())
            .write();
        if let Some(slo) = &self.slo {
            let mut ev = decorate(journal.event("health"))
                .str("detector", "delay_slo")
                .num("quantile", slo.quantile)
                .num("threshold", slo.threshold)
                .num("budget", slo.budget);
            if let Some(estimate) = slo.estimate {
                ev = ev.num("estimate", estimate);
            }
            ev = ev
                .int("observed", slo.observed as i64)
                .int("violations", slo.violations as i64);
            if let Some(link) = slo.worst_link {
                ev = ev
                    .int("worst_link", link as i64)
                    .num("worst_fraction", slo.worst_fraction);
            }
            ev.str("verdict", slo.verdict.label()).write();
        }
    }

    /// Exports the snapshot into `registry` as `rayfade_monitor_*`
    /// metrics.
    ///
    /// Gauges are integer-valued, so float health values ride on
    /// histograms (one observation per report — `_sum`/`_mean` exposition
    /// carries the value) and counters carry totals.
    pub fn export(&self, registry: &Registry) {
        registry.counter("rayfade_monitor_reports_total").inc();
        let alerts = [
            self.drift_verdict,
            self.watermark_verdict,
            self.throughput_verdict,
        ]
        .iter()
        .filter(|v| v.is_alert())
        .count() as u64
            + u64::from(self.slo.as_ref().is_some_and(|s| s.verdict.is_alert()));
        registry.counter("rayfade_monitor_alerts_total").add(alerts);
        registry
            .histogram("rayfade_monitor_drift_slope")
            .observe(self.drift_slope);
        registry
            .histogram("rayfade_monitor_backlog_mean")
            .observe(self.backlog_mean);
        let watermark_gauge = registry.gauge("rayfade_monitor_watermark_max");
        watermark_gauge.set(watermark_gauge.get().max(self.watermark as i64));
        if let Some(slo) = &self.slo {
            registry
                .counter("rayfade_monitor_slo_observed_total")
                .add(slo.observed);
            registry
                .counter("rayfade_monitor_slo_violations_total")
                .add(slo.violations);
            if let Some(estimate) = slo.estimate {
                registry
                    .histogram("rayfade_monitor_slo_delay_quantile")
                    .observe(estimate);
            }
        }
    }
}

/// Exports a duration sketch's p50/p95/p99 (seconds in, nanoseconds out)
/// as integer gauges `{prefix}_p50_ns` / `{prefix}_p95_ns` /
/// `{prefix}_p99_ns`.
///
/// Gauges are integer-valued, so sub-second latencies ride on a
/// nanosecond scale. No-op on an empty sketch. Wall-clock quantiles
/// belong in the registry only — never in journals, whose bytes must be
/// deterministic.
pub fn export_duration_quantiles(registry: &Registry, prefix: &str, sketch: &QuantileSketch) {
    for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
        if let Some(seconds) = sketch.quantile(q) {
            registry
                .gauge(&format!("{prefix}_{label}_ns"))
                .set((seconds * 1e9) as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_quantiles_export_as_ns_gauges() {
        let registry = Registry::new();
        let mut sketch = QuantileSketch::new(0.01);
        export_duration_quantiles(&registry, "rayfade_test_phase", &sketch);
        // Empty sketch: nothing registered, prometheus text stays empty.
        assert!(registry.prometheus_text().is_empty());
        for k in 1..=100 {
            sketch.observe(k as f64 * 1e-6); // 1µs .. 100µs
        }
        export_duration_quantiles(&registry, "rayfade_test_phase", &sketch);
        let p50 = registry.gauge("rayfade_test_phase_p50_ns").get();
        let p99 = registry.gauge("rayfade_test_phase_p99_ns").get();
        assert!((49_000..=51_000).contains(&p50), "p50 {p50}");
        assert!((98_000..=101_000).contains(&p99), "p99 {p99}");
    }

    fn cfg(drift_threshold: f64) -> MonitorConfig {
        MonitorConfig {
            drift_threshold,
            ..MonitorConfig::default()
        }
    }

    #[test]
    fn flat_backlog_is_healthy() {
        let mut m = HealthMonitor::new(&cfg(0.1), 4);
        for k in 0..50u64 {
            m.observe_sample(k * 10, 3, k * 5 + 3, k * 5);
        }
        for _ in 0..20 {
            m.observe_delay(1, 2);
        }
        let r = m.report();
        assert_eq!(r.samples, 50);
        assert!(r.drift_slope.abs() < 1e-9);
        assert_eq!(r.drift_verdict, HealthVerdict::Ok);
        assert_eq!(r.watermark_verdict, HealthVerdict::Ok);
        assert_eq!(r.throughput_verdict, HealthVerdict::Ok);
        let slo = r.slo.as_ref().expect("SLO configured by default");
        assert_eq!(slo.verdict, HealthVerdict::Ok);
        assert_eq!(slo.observed, 20);
        assert_eq!(slo.violations, 0);
        assert_eq!(r.worst(), HealthVerdict::Ok);
        assert!((r.arrival_rate - 0.5).abs() < 1e-9);
        assert!((r.departure_rate - 0.5).abs() < 1e-9);
    }

    #[test]
    fn linear_growth_trips_drift_watermark_and_throughput() {
        let mut m = HealthMonitor::new(&cfg(0.1), 4);
        // One packet per slot arrives, nothing departs: slope 1, every
        // sample a new watermark, departure rate 0.
        for k in 0..40u64 {
            m.observe_sample(k * 10, k * 10, k * 10, 0);
        }
        let r = m.report();
        assert!((r.drift_slope - 1.0).abs() < 1e-9);
        assert_eq!(r.drift_verdict, HealthVerdict::Alert);
        assert_eq!(r.watermark, 390.0);
        assert!(r.growth_streak >= 10);
        assert_eq!(r.watermark_verdict, HealthVerdict::Alert);
        assert_eq!(r.throughput_verdict, HealthVerdict::Alert);
        assert_eq!(r.worst(), HealthVerdict::Alert);
    }

    #[test]
    fn slo_tracker_flags_budget_blowout_on_the_worst_link() {
        let mut t = DelaySloTracker::new(
            SloConfig {
                quantile: 0.95,
                threshold: 10.0,
                budget: 0.1,
            },
            0.01,
            3,
        );
        // Link 0: all fast. Link 2: 1 of 4 over threshold (25% > 10%).
        for _ in 0..20 {
            t.observe(0, 2.0);
        }
        for _ in 0..3 {
            t.observe(2, 5.0);
        }
        t.observe(2, 50.0);
        let r = t.report();
        assert_eq!(r.observed, 24);
        assert_eq!(r.violations, 1);
        assert_eq!(r.worst_link, Some(2));
        assert!((r.worst_fraction - 0.25).abs() < 1e-12);
        assert_eq!(r.verdict, HealthVerdict::Alert);
    }

    #[test]
    fn slo_quantile_over_threshold_alerts_even_within_budget() {
        let mut t = DelaySloTracker::new(
            SloConfig {
                quantile: 0.5,
                threshold: 10.0,
                budget: 1.0, // budget can never blow
            },
            0.01,
            1,
        );
        for _ in 0..10 {
            t.observe(0, 40.0);
        }
        let r = t.report();
        assert!(r.estimate.unwrap() > 10.0);
        assert_eq!(r.verdict, HealthVerdict::Alert);
    }

    #[test]
    fn watermark_streak_resets_on_non_record_samples() {
        let mut d = WatermarkDetector::new(3);
        for b in [1.0, 2.0, 1.0, 3.0, 4.0, 2.0, 5.0] {
            d.observe(b);
        }
        assert_eq!(d.watermark(), 5.0);
        assert_eq!(d.max_streak(), 2);
        assert_eq!(d.verdict(), HealthVerdict::Ok);
        for b in [6.0, 7.0, 8.0] {
            d.observe(b);
        }
        assert_eq!(d.verdict(), HealthVerdict::Alert);
    }

    #[test]
    fn monitor_without_slo_skips_delay_tracking() {
        let mut m = HealthMonitor::new(
            &MonitorConfig {
                slo: None,
                ..cfg(1.0)
            },
            2,
        );
        m.observe_delay(0, 9999); // must be a no-op
        m.observe_sample(0, 0, 0, 0);
        assert!(m.report().slo.is_none());
    }

    #[test]
    fn report_journals_one_event_per_detector() {
        let dir = std::env::temp_dir().join("rayfade-monitor-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("health-{}.jsonl", std::process::id()));
        let journal = Journal::create(&path).unwrap();
        let mut m = HealthMonitor::new(&cfg(0.1), 2);
        for k in 0..10u64 {
            m.observe_sample(k * 5, k, k * 2, k);
            m.observe_delay((k % 2) as usize, k + 1);
        }
        m.report().journal(&journal, |e| e.int("net", 7));
        drop(journal);

        let events = crate::read_jsonl(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let health: Vec<_> = events
            .iter()
            .filter(|e| e.get("kind").and_then(|k| k.as_str()) == Some("health"))
            .collect();
        assert_eq!(health.len(), 4, "drift, watermark, throughput, SLO");
        for ev in &health {
            assert_eq!(ev.get("net").and_then(|v| v.as_i64()), Some(7));
            assert!(ev.get("detector").and_then(|v| v.as_str()).is_some());
            let verdict = ev.get("verdict").and_then(|v| v.as_str()).unwrap();
            assert!(verdict == "ok" || verdict == "alert");
        }
        let detectors: Vec<_> = health
            .iter()
            .filter_map(|e| e.get("detector").and_then(|v| v.as_str()))
            .collect();
        assert_eq!(
            detectors,
            ["queue_drift", "watermark", "throughput", "delay_slo"]
        );
    }

    #[test]
    fn export_writes_monitor_metrics() {
        let registry = Registry::new();
        let mut m = HealthMonitor::new(&cfg(0.01), 2);
        for k in 0..30u64 {
            m.observe_sample(k * 10, k * 10, k * 10, 0); // growing: alerts
        }
        m.report().export(&registry);
        assert_eq!(registry.counter("rayfade_monitor_reports_total").get(), 1);
        assert!(registry.counter("rayfade_monitor_alerts_total").get() >= 3);
        assert_eq!(registry.gauge("rayfade_monitor_watermark_max").get(), 290);
        assert_eq!(registry.histogram("rayfade_monitor_drift_slope").count(), 1);
        // A second, larger watermark advances the max; a smaller one
        // would not.
        let mut r = m.report();
        r.watermark = 1000.0;
        r.export(&registry);
        assert_eq!(registry.gauge("rayfade_monitor_watermark_max").get(), 1000);
    }
}
