//! A minimal JSON value type, serializer, and parser.
//!
//! The hermetic workspace vendors a no-op `serde`, so the journal cannot
//! lean on `serde_json`; this module is the homegrown replacement. It
//! supports exactly the JSON the [`crate::Journal`] emits — objects,
//! arrays, strings, finite numbers, booleans, null — and parses any
//! RFC 8259 document (with `\uXXXX` escapes, surrogate pairs excluded)
//! so journals round-trip through [`Json::parse`] bit-faithfully.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (order is preserved so serialized
    /// journals are deterministic).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an integer, if it is one and integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

/// Writes a number the way the journal does: integral finite values print
/// without a fraction (round-trip exact up to 2^53), other finite values
/// use Rust's shortest round-trip formatting, and non-finite values become
/// `null` (JSON has no NaN/Inf).
fn write_num(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        return f.write_str("null");
    }
    if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

fn write_str(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write_num(f, *n),
            Json::Str(s) => write_str(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (k, (key, value)) in fields.iter().enumerate() {
                    if k > 0 {
                        f.write_str(",")?;
                    }
                    write_str(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar value"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-3", "0.25", "1e-9", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            let again = Json::parse(&v.to_string()).unwrap();
            assert_eq!(v, again, "{text}");
        }
    }

    #[test]
    fn object_preserves_field_order() {
        let v = Json::parse(r#"{"b":1,"a":[2,3],"c":{"d":null}}"#).unwrap();
        assert_eq!(v.to_string(), r#"{"b":1,"a":[2,3],"c":{"d":null}}"#);
        assert_eq!(v.get("b").and_then(Json::as_i64), Some(1));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1}f√";
        let text = Json::Str(s.to_string()).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s));
        assert_eq!(Json::parse(r#""A\n""#).unwrap().as_str(), Some("A\n"));
    }

    #[test]
    fn numbers_print_integers_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(-0.5).to_string(), "-0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn float_shortest_form_round_trips_bits() {
        for n in [0.1, 2.0 / 3.0, 1e-300, 123456.789, f64::MIN_POSITIVE] {
            let text = Json::Num(n).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(n.to_bits(), back.to_bits(), "{text}");
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Json::parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(Json::parse("[1,2,]").is_err());
        assert!(Json::parse("1 2").is_err(), "trailing garbage rejected");
        assert!(Json::parse("").is_err());
    }
}
