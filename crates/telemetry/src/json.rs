//! A minimal JSON value type, serializer, and parser.
//!
//! The hermetic workspace vendors a no-op `serde`, so the journal cannot
//! lean on `serde_json`; this module is the homegrown replacement. It
//! supports exactly the JSON the [`crate::Journal`] emits — objects,
//! arrays, strings, finite numbers, booleans, null — and parses any
//! RFC 8259 document (including `\uXXXX` escapes and UTF-16 surrogate
//! pairs) so journals round-trip through [`Json::parse`] bit-faithfully.
//!
//! Hardening choices, since the parser also consumes artifacts that may
//! not have been written by this crate:
//!
//! * Nesting deeper than [`MAX_DEPTH`] is rejected with a parse error
//!   instead of overflowing the stack on adversarial input like
//!   `[[[[…`.
//! * Duplicate object keys are retained in document order by the value
//!   type (so serialization is bit-faithful), but lookup via
//!   [`Json::get`] is **last-wins** — the same rule as `serde_json` and
//!   most RFC 8259 consumers.

use std::fmt;

/// Maximum array/object nesting depth the parser accepts. Journal events
/// nest two or three levels; 128 is far beyond anything legitimate while
/// keeping adversarial `[[[[…` inputs from overflowing the call stack.
pub const MAX_DEPTH: usize = 128;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (order is preserved so serialized
    /// journals are deterministic). Duplicate keys are kept as parsed;
    /// [`Json::get`] resolves them last-wins.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object (`None` for other variants). When the
    /// object carries duplicate keys the **last** occurrence wins, per
    /// the de-facto RFC 8259 consumer convention.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an integer, if it is one and integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser {
            bytes,
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

/// Writes a number the way the journal does: integral finite values print
/// without a fraction (round-trip exact up to 2^53), other finite values
/// use Rust's shortest round-trip formatting, and non-finite values become
/// `null` (JSON has no NaN/Inf).
fn write_num(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        return f.write_str("null");
    }
    if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

fn write_str(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write_num(f, *n),
            Json::Str(s) => write_str(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (k, (key, value)) in fields.iter().enumerate() {
                    if k > 0 {
                        f.write_str(",")?;
                    }
                    write_str(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current array/object nesting depth (guarded by [`MAX_DEPTH`]).
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    /// Bumps the nesting depth (failing past [`MAX_DEPTH`]); callers
    /// decrement on the way out.
    fn descend(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(&format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.descend()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex_unit()?;
                            match unit {
                                // High surrogate: a low surrogate escape
                                // must follow; the pair combines into one
                                // supplementary-plane scalar (RFC 8259
                                // §7 / UTF-16 decoding).
                                0xD800..=0xDBFF => {
                                    if self.peek() != Some(b'\\') {
                                        return Err(self.err("high surrogate not followed by \\u"));
                                    }
                                    self.pos += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err(self.err("high surrogate not followed by \\u"));
                                    }
                                    self.pos += 1;
                                    let low = self.hex_unit()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(
                                            self.err("high surrogate followed by a non-low unit")
                                        );
                                    }
                                    let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                    out.push(
                                        char::from_u32(code).expect(
                                            "combined surrogate pair is a valid scalar value",
                                        ),
                                    );
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(self.err("lone low surrogate"));
                                }
                                _ => out.push(
                                    char::from_u32(unit).expect("BMP non-surrogate is a scalar"),
                                ),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Parses the four hex digits of a `\uXXXX` escape (the `\u` itself
    /// already consumed) into a UTF-16 code unit.
    fn hex_unit(&mut self) -> Result<u32, JsonError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-3", "0.25", "1e-9", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            let again = Json::parse(&v.to_string()).unwrap();
            assert_eq!(v, again, "{text}");
        }
    }

    #[test]
    fn object_preserves_field_order() {
        let v = Json::parse(r#"{"b":1,"a":[2,3],"c":{"d":null}}"#).unwrap();
        assert_eq!(v.to_string(), r#"{"b":1,"a":[2,3],"c":{"d":null}}"#);
        assert_eq!(v.get("b").and_then(Json::as_i64), Some(1));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1}f√";
        let text = Json::Str(s.to_string()).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s));
        assert_eq!(Json::parse(r#""A\n""#).unwrap().as_str(), Some("A\n"));
    }

    #[test]
    fn numbers_print_integers_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(-0.5).to_string(), "-0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn float_shortest_form_round_trips_bits() {
        for n in [0.1, 2.0 / 3.0, 1e-300, 123456.789, f64::MIN_POSITIVE] {
            let text = Json::Num(n).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(n.to_bits(), back.to_bits(), "{text}");
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Json::parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(Json::parse("[1,2,]").is_err());
        assert!(Json::parse("1 2").is_err(), "trailing garbage rejected");
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn surrogate_pairs_decode_and_lone_surrogates_fail() {
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("\u{1F600}")
        );
        assert_eq!(
            Json::parse("\"\\uD834\\uDD1E\"").unwrap().as_str(),
            Some("\u{1D11E}"),
            "musical G clef (upper-case hex), the RFC 8259 example"
        );
        // A decoded pair re-serializes as the literal character and
        // round-trips.
        let v = Json::parse("\"x\\ud83d\\ude00y\"").unwrap();
        assert_eq!(v.as_str(), Some("x\u{1F600}y"));
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        for bad in [
            r#""\ud83d""#,       // lone high at end of string
            r#""\ud83dxx""#,     // high followed by plain chars
            r#""\ud83d\n""#,     // high followed by a non-\u escape
            r#""\ud83d\ud83d""#, // high followed by another high
            r#""\ude00""#,       // lone low
            r#""\ud83dA""#,      // high followed by a BMP unit
        ] {
            assert!(Json::parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn nesting_past_max_depth_is_rejected_not_overflowed() {
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok(), "exactly MAX_DEPTH levels parse");
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = Json::parse(&too_deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // Unclosed deep nesting must also fail via the guard, not the
        // stack: this is the actual adversarial shape (no closers).
        let adversarial = "[".repeat(100_000);
        assert!(Json::parse(&adversarial).is_err());
        let mixed = "{\"a\":[".repeat(MAX_DEPTH);
        assert!(Json::parse(&mixed).is_err(), "objects count toward depth");
    }

    #[test]
    fn duplicate_keys_parse_and_resolve_last_wins() {
        let v = Json::parse(r#"{"a":1,"b":2,"a":3}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_i64), Some(3), "last wins");
        assert_eq!(v.get("b").and_then(Json::as_i64), Some(2));
        // Serialization keeps the document order bit-faithfully.
        assert_eq!(v.to_string(), r#"{"a":1,"b":2,"a":3}"#);
    }
}
