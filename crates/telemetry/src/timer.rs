//! RAII scope timers feeding histograms.

use std::sync::Arc;
use std::time::Instant;

use crate::metrics::Histogram;

/// Times a scope and records the elapsed seconds into a [`Histogram`]
/// when dropped (or when [`Timer::stop`] is called explicitly).
#[derive(Debug)]
pub struct Timer {
    hist: Arc<Histogram>,
    start: Instant,
    armed: bool,
}

impl Timer {
    /// Starts timing into `hist`.
    pub fn new(hist: Arc<Histogram>) -> Timer {
        Timer {
            hist,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Stops the timer now, records the observation, and returns the
    /// elapsed seconds (Drop will not record again).
    pub fn stop(mut self) -> f64 {
        let elapsed = self.start.elapsed().as_secs_f64();
        self.hist.observe(elapsed);
        self.armed = false;
        elapsed
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if self.armed {
            self.hist.observe(self.start.elapsed().as_secs_f64());
        }
    }
}

/// Starts an optional [`Timer`] over a scope when telemetry is on.
///
/// `$tele` is an `Option<&Telemetry>`; the macro evaluates to an
/// `Option<Timer>` which records into the named histogram when the guard
/// is dropped — bind it (`let _span = span!(...)`) so it lives to the end
/// of the scope.
#[macro_export]
macro_rules! span {
    ($tele:expr, $name:expr) => {
        $tele.map(|t| $crate::Timer::new(t.registry().histogram($name)))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_one_observation() {
        let hist = Arc::new(Histogram::new());
        {
            let _t = Timer::new(Arc::clone(&hist));
        }
        assert_eq!(hist.count(), 1);
        assert!(hist.sum() >= 0.0);
    }

    #[test]
    fn stop_records_exactly_once() {
        let hist = Arc::new(Histogram::new());
        let t = Timer::new(Arc::clone(&hist));
        let elapsed = t.stop();
        assert!(elapsed >= 0.0);
        assert_eq!(hist.count(), 1, "Drop after stop must not double-count");
    }
}
