//! Property tests pinning `spectral_report` and `solve_min_powers` to an
//! inline dense `O(n³)` reference (normalized matrix squaring — Gelfand's
//! formula — sharing no code with the power iteration under test), plus
//! the `n = 0` / `n = 1` edges of both. The richer adversarial sweep
//! (extreme dynamic range, zero gains, SCC decompositions) lives in
//! `crates/conformance`; these tests keep the contract enforced from
//! inside the crate's own suite.

use proptest::prelude::*;
use rayfade_geometry::PaperTopology;
use rayfade_sinr::{
    solve_min_powers, spectral_report, GainMatrix, PowerAssignment, PowerIterationConfig,
    PowerSolve, SinrParams,
};

/// Dense spectral radius by normalized matrix squaring:
/// `s = ‖B‖_∞`, `B ← (B/s)²`, `ρ = exp(Σ log(sᵢ)/2ⁱ)`. Tail error decays
/// like `2⁻ᵏ`, so 80 squarings are far below 1e-12 relative for the
/// moderate dynamic ranges generated here.
fn dense_rho(f: &[f64], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let mut b = f.to_vec();
    let mut log_rho = 0.0f64;
    let mut weight = 1.0f64;
    for _ in 0..80 {
        let s = (0..n)
            .map(|i| b[i * n..(i + 1) * n].iter().sum::<f64>())
            .fold(0.0f64, f64::max);
        if s == 0.0 {
            return 0.0; // nilpotent iterate: true rho is exactly 0
        }
        log_rho += weight * s.ln();
        weight *= 0.5;
        let mut next = vec![0.0; n * n];
        for i in 0..n {
            for k in 0..n {
                let v = b[i * n + k] / s;
                if v == 0.0 {
                    continue;
                }
                for j in 0..n {
                    next[i * n + j] += v * (b[k * n + j] / s);
                }
            }
        }
        b = next;
    }
    log_rho.exp()
}

fn paper_gain(seed: u64, n: usize) -> GainMatrix {
    let net = PaperTopology {
        links: n,
        side: 300.0,
        min_length: 15.0,
        max_length: 45.0,
    }
    .generate(seed);
    GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), 2.2)
}

/// The normalized interference matrix `spectral_report` analyzes.
fn normalized(gm: &GainMatrix, set: &[usize]) -> Vec<f64> {
    let m = set.len();
    let mut f = vec![0.0; m * m];
    for (a, &i) in set.iter().enumerate() {
        for (b, &j) in set.iter().enumerate() {
            if a != b {
                f[a * m + b] = gm.gain(j, i) / gm.signal(i);
            }
        }
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Power iteration agrees with the dense squaring reference to 1e-9
    /// (relative to the shifted eigenvalue 1 + ρ it iterates on), and its
    /// certified Collatz–Wielandt bracket contains the reference value.
    #[test]
    fn power_iteration_matches_dense_reference(seed in any::<u64>(), m in 2usize..10) {
        let gm = paper_gain(seed, 10);
        let set: Vec<usize> = (0..m).collect();
        let rep = spectral_report(&gm, &set);
        let want = dense_rho(&normalized(&gm, &set), m);
        prop_assert!(
            rep.rho_lower - 1e-10 * (1.0 + want) <= want
                && want <= rep.rho_upper + 1e-10 * (1.0 + want),
            "dense rho {want:e} outside certified bracket [{:e}, {:e}]",
            rep.rho_lower,
            rep.rho_upper
        );
        prop_assume!(rep.iterations < 10_000); // unconverged: bracket checked above
        prop_assert!(
            (rep.rho - want).abs() <= 1e-9 * (1.0 + want),
            "power iteration {:e} vs dense reference {want:e}",
            rep.rho
        );
    }

    /// The report is internally consistent: rho inside its own bracket
    /// and max_threshold the exact reciprocal.
    #[test]
    fn spectral_report_is_internally_consistent(seed in any::<u64>(), m in 2usize..10) {
        let gm = paper_gain(seed, 10);
        let set: Vec<usize> = (0..m).collect();
        let rep = spectral_report(&gm, &set);
        prop_assert!(rep.rho_lower <= rep.rho && rep.rho <= rep.rho_upper, "{rep:?}");
        if rep.rho > 0.0 {
            prop_assert!((rep.max_threshold * rep.rho - 1.0).abs() < 1e-12, "{rep:?}");
        } else {
            prop_assert_eq!(rep.max_threshold, f64::INFINITY);
        }
    }

    /// Feasibility of the zero-noise minimum-power problem flips at
    /// β·ρ = 1, cross-checked against the dense reference rather than the
    /// power iteration's own ρ.
    #[test]
    fn dense_rho_predicts_power_control_feasibility(seed in any::<u64>(), m in 2usize..8) {
        let gm = paper_gain(seed, 8);
        let set: Vec<usize> = (0..m).collect();
        let rho = dense_rho(&normalized(&gm, &set), m);
        prop_assume!(rho > 1e-9 && rho.is_finite());
        let unit_gain = |j: usize, i: usize| gm.gain(set[j], set[i]);
        let cfg = PowerIterationConfig::default();
        // Stay a factor of 10% away from the boundary on both sides: at
        // the threshold itself the solver's own tolerances decide.
        let below = SinrParams::new(2.2, 0.9 / rho, 0.0);
        prop_assert!(matches!(
            solve_min_powers(m, unit_gain, &below, &cfg),
            PowerSolve::Feasible(_)
        ));
        let above = SinrParams::new(2.2, 1.1 / rho, 0.0);
        prop_assert!(matches!(
            solve_min_powers(m, unit_gain, &above, &cfg),
            PowerSolve::Infeasible
        ));
    }

    /// Feasible minimum powers actually satisfy every SINR constraint.
    #[test]
    fn minimum_powers_satisfy_the_constraints(seed in any::<u64>(), m in 2usize..8) {
        let gm = paper_gain(seed, 8);
        let params = SinrParams::new(2.2, 1.2, 1e-9);
        let unit_gain = |j: usize, i: usize| gm.gain(j, i);
        let cfg = PowerIterationConfig::default();
        if let PowerSolve::Feasible(p) = solve_min_powers(m, unit_gain, &params, &cfg) {
            prop_assert_eq!(p.len(), m);
            for i in 0..m {
                let interference: f64 = (0..m)
                    .filter(|&j| j != i)
                    .map(|j| p[j] * gm.gain(j, i))
                    .sum();
                let sinr = p[i] * gm.gain(i, i) / (interference + params.noise);
                prop_assert!(
                    sinr >= params.beta * (1.0 - 1e-6),
                    "link {i}: SINR {sinr} below beta {}",
                    params.beta
                );
            }
        }
    }
}

#[test]
fn empty_and_singleton_edges() {
    let gm = paper_gain(7, 3);
    // Spectral: n = 0 and n = 1 sets are interference-free by definition.
    for set in [vec![], vec![1usize]] {
        let rep = spectral_report(&gm, &set);
        assert_eq!(rep.rho, 0.0);
        assert_eq!(rep.rho_lower, 0.0);
        assert_eq!(rep.rho_upper, 0.0);
        assert_eq!(rep.max_threshold, f64::INFINITY);
        assert_eq!(rep.iterations, 0);
    }
    // Power iteration: m = 0 is trivially feasible with no powers.
    let params = SinrParams::new(2.2, 2.0, 1e-6);
    let cfg = PowerIterationConfig::default();
    let unit_gain = |j: usize, i: usize| gm.gain(j, i);
    match solve_min_powers(0, unit_gain, &params, &cfg) {
        PowerSolve::Feasible(p) => assert!(p.is_empty()),
        other => panic!("m = 0 must be Feasible(vec![]), got {other:?}"),
    }
    // m = 1: the single link needs exactly beta * noise / gain power.
    match solve_min_powers(1, unit_gain, &params, &cfg) {
        PowerSolve::Feasible(p) => {
            assert_eq!(p.len(), 1);
            let want = params.beta * params.noise / gm.signal(0);
            assert!(
                (p[0] - want).abs() <= want * 1e-6 + 1e-300,
                "minimum power {} vs closed form {want}",
                p[0]
            );
        }
        other => panic!("m = 1 must be feasible, got {other:?}"),
    }
}

/// The exact regression that motivated the certified stopping rule: a
/// small spectral gap made the successive-difference criterion stop
/// ~1.7e-6 away from the true ρ while reporting convergence. The
/// Collatz–Wielandt bracket closes only when the answer is actually
/// pinned down.
#[test]
fn slow_converging_spectrum_still_meets_tolerance() {
    // Two nearly-decoupled pairs with close couplings: the eigenvalues of
    // I + F cluster (ratio ≈ 1.88/1.9), so plain power iteration needs
    // thousands of iterations — the regime where the old criterion
    // stopped early. Still converges within the budget.
    let eps = 1e-4;
    let gm = GainMatrix::from_raw(
        4,
        vec![
            1.0, 0.9, eps, 0.0, //
            0.9, 1.0, 0.0, eps, //
            eps, 0.0, 1.0, 0.88, //
            0.0, eps, 0.88, 1.0,
        ],
    );
    let set = vec![0, 1, 2, 3];
    let rep = spectral_report(&gm, &set);
    let want = dense_rho(&normalized(&gm, &set), 4);
    assert!(
        rep.iterations > 1_000 && rep.iterations < 10_000,
        "expected slow-but-converged, got {} iterations",
        rep.iterations
    );
    assert!(
        (rep.rho - want).abs() <= 1e-9 * (1.0 + want),
        "rho {:e} vs dense {want:e} (bracket [{:e}, {:e}], {} iters)",
        rep.rho,
        rep.rho_lower,
        rep.rho_upper,
        rep.iterations
    );
}
