//! Property tests for the numerical substrate: spectral radius and the
//! Foschini–Miljanic power iteration must agree with each other and
//! behave monotonically.

use proptest::prelude::*;
use rayfade_geometry::PaperTopology;
use rayfade_sinr::{
    max_feasible_threshold, solve_min_powers, spectral_report, GainMatrix, PowerAssignment,
    PowerIterationConfig, PowerSolve, SinrParams,
};

fn paper_gain(seed: u64, n: usize) -> GainMatrix {
    let net = PaperTopology {
        links: n,
        side: 300.0,
        min_length: 20.0,
        max_length: 40.0,
    }
    .generate(seed);
    GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), 2.2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Spectral radius grows (weakly) when links are added.
    #[test]
    fn rho_monotone_under_link_addition(seed in any::<u64>()) {
        let gm = paper_gain(seed, 10);
        let mut prev = 0.0f64;
        for k in 2..=10 {
            let set: Vec<usize> = (0..k).collect();
            let rho = spectral_report(&gm, &set).rho;
            prop_assert!(rho + 1e-9 >= prev, "rho dropped from {prev} to {rho} at k={k}");
            prev = rho;
        }
    }

    /// Feasibility of the zero-noise power-control problem flips exactly
    /// at the spectral threshold.
    #[test]
    fn spectral_threshold_is_the_feasibility_boundary(seed in any::<u64>()) {
        let gm = paper_gain(seed, 6);
        let set: Vec<usize> = (0..6).collect();
        let beta_star = max_feasible_threshold(&gm, &set);
        prop_assume!(beta_star.is_finite() && beta_star > 1e-6);
        let unit_gain = |j: usize, i: usize| gm.gain(set[j], set[i]);
        let cfg = PowerIterationConfig::default();
        let below = SinrParams::new(2.2, beta_star * 0.9, 0.0);
        prop_assert!(matches!(
            solve_min_powers(6, unit_gain, &below, &cfg),
            PowerSolve::Feasible(_)
        ));
        let above = SinrParams::new(2.2, beta_star * 1.1, 0.0);
        prop_assert!(matches!(
            solve_min_powers(6, unit_gain, &above, &cfg),
            PowerSolve::Infeasible
        ));
    }

    /// Foschini–Miljanic solutions actually satisfy every SINR constraint,
    /// and scaling them up keeps them feasible (monotone constraints...
    /// for noise-limited instances scaling up helps each link's signal and
    /// interference equally, so the SINRs improve toward the zero-noise
    /// limit).
    #[test]
    fn fm_solutions_satisfy_constraints(seed in any::<u64>(), beta in 0.2f64..1.2, nu in 0.001f64..0.05) {
        let gm = paper_gain(seed, 5);
        let params = SinrParams::new(2.2, beta, nu);
        let unit_gain = |j: usize, i: usize| gm.gain(j, i);
        if let PowerSolve::Feasible(p) =
            solve_min_powers(5, unit_gain, &params, &PowerIterationConfig::default())
        {
            for scale in [1.0, 2.0, 10.0] {
                for i in 0..5 {
                    let interference: f64 = (0..5)
                        .filter(|&j| j != i)
                        .map(|j| scale * p[j] * unit_gain(j, i))
                        .sum();
                    let sinr = scale * p[i] * unit_gain(i, i) / (interference + nu);
                    prop_assert!(
                        sinr >= beta * (1.0 - 1e-6),
                        "scale {scale}, link {i}: sinr {sinr} < beta {beta}"
                    );
                }
            }
        }
    }

    /// The minimal power vector is componentwise minimal: shrinking any
    /// coordinate breaks that link's constraint.
    #[test]
    fn fm_minimality(seed in any::<u64>()) {
        let gm = paper_gain(seed, 4);
        let params = SinrParams::new(2.2, 0.8, 0.01);
        let unit_gain = |j: usize, i: usize| gm.gain(j, i);
        if let PowerSolve::Feasible(p) =
            solve_min_powers(4, unit_gain, &params, &PowerIterationConfig::default())
        {
            for i in 0..4 {
                let mut q = p.clone();
                q[i] *= 0.95;
                let interference: f64 = (0..4)
                    .filter(|&j| j != i)
                    .map(|j| q[j] * unit_gain(j, i))
                    .sum();
                let sinr = q[i] * unit_gain(i, i) / (interference + params.noise);
                prop_assert!(
                    sinr < params.beta,
                    "link {i} still feasible after 5% power cut: {sinr}"
                );
            }
        }
    }
}
