//! Property-based tests for the SINR substrate.

use proptest::prelude::*;
use rayfade_geometry::PaperTopology;
use rayfade_sinr::{
    is_feasible, mask_from_set, sinr, sinr_all, Affectance, GainMatrix, PowerAssignment, SinrParams,
};

fn paper_gain(seed: u64, n: usize) -> (GainMatrix, SinrParams) {
    let net = PaperTopology {
        links: n,
        side: 500.0,
        min_length: 10.0,
        max_length: 30.0,
    }
    .generate(seed);
    let params = SinrParams::figure1();
    let gm = GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha);
    (gm, params)
}

proptest! {
    /// Adding an interferer can only lower any link's SINR.
    #[test]
    fn sinr_monotone_in_interferers(seed in any::<u64>(), extra in 0usize..10) {
        let (gm, params) = paper_gain(seed, 12);
        let base: Vec<usize> = vec![0, 1];
        let extra = 2 + extra % 10;
        let mut bigger = base.clone();
        if !bigger.contains(&extra) {
            bigger.push(extra);
        }
        let m1 = mask_from_set(gm.len(), &base);
        let m2 = mask_from_set(gm.len(), &bigger);
        for i in 0..gm.len() {
            prop_assert!(sinr(&gm, &params, &m2, i) <= sinr(&gm, &params, &m1, i) + 1e-9);
        }
    }

    /// Subsets of feasible sets are feasible (interference only shrinks).
    #[test]
    fn feasibility_closed_under_subsets(seed in any::<u64>()) {
        let (gm, params) = paper_gain(seed, 10);
        // Find some feasible set greedily.
        let all: Vec<usize> = (0..gm.len()).collect();
        let set = rayfade_sinr::greedy_feasible_subset(&gm, &params, &all);
        prop_assert!(is_feasible(&gm, &params, &set));
        // Every prefix must remain feasible.
        for k in 0..=set.len() {
            prop_assert!(is_feasible(&gm, &params, &set[..k]));
        }
    }

    /// Affectance feasibility agrees with the direct SINR definition on
    /// random small sets.
    #[test]
    fn affectance_agrees_with_sinr(seed in any::<u64>(), picks in prop::collection::vec(0usize..10, 0..6)) {
        let (gm, params) = paper_gain(seed, 10);
        let aff = Affectance::new(&gm, &params);
        let mut set: Vec<usize> = picks;
        set.sort_unstable();
        set.dedup();
        prop_assert_eq!(aff.is_feasible(&set), is_feasible(&gm, &params, &set));
    }

    /// Affectance entries are within [0, 1] and zero on the diagonal.
    #[test]
    fn affectance_bounds(seed in any::<u64>()) {
        let (gm, params) = paper_gain(seed, 8);
        let aff = Affectance::new(&gm, &params);
        for i in 0..8 {
            prop_assert_eq!(aff.get(i, i), 0.0);
            for j in 0..8 {
                let a = aff.get(j, i);
                prop_assert!((0.0..=1.0).contains(&a));
            }
        }
    }

    /// SINR of every link is positive and finite when at least one other
    /// link transmits (interference > 0).
    #[test]
    fn sinr_finite_under_interference(seed in any::<u64>()) {
        let (gm, params) = paper_gain(seed, 8);
        let mask = vec![true; 8];
        for (i, s) in sinr_all(&gm, &params, &mask).iter().enumerate() {
            prop_assert!(*s > 0.0 && s.is_finite(), "link {i}: {s}");
        }
    }

    /// Lemma 7 filter keeps at least half of any feasible set.
    #[test]
    fn lemma7_half(seed in any::<u64>()) {
        let (gm, params) = paper_gain(seed, 14);
        let aff = Affectance::new(&gm, &params);
        let all: Vec<usize> = (0..gm.len()).collect();
        let feasible = rayfade_sinr::greedy_feasible_subset(&gm, &params, &all);
        let filtered = aff.low_out_affectance_half(&feasible);
        prop_assert!(filtered.len() * 2 >= feasible.len(),
            "filtered {} of {}", filtered.len(), feasible.len());
    }

    /// Empirical Lemma 8 (paper's [24, Lemma 11]): for a feasible set R
    /// whose members each radiate affectance <= 2 into R (the Lemma 7
    /// filter), any *other* link's total affectance onto R is bounded by
    /// a constant. We measure the constant on paper topologies.
    #[test]
    fn lemma8_outside_affectance_bounded(seed in any::<u64>()) {
        let (gm, params) = paper_gain(seed, 20);
        let aff = Affectance::new(&gm, &params);
        let all: Vec<usize> = (0..gm.len()).collect();
        let feasible = rayfade_sinr::greedy_feasible_subset(&gm, &params, &all);
        let r = aff.low_out_affectance_half(&feasible);
        for u in 0..gm.len() {
            if r.contains(&u) {
                continue;
            }
            let onto: f64 = r.iter().map(|&v| aff.get(u, v)).sum();
            // The paper's O(1); a generous concrete constant for these
            // geometric instances.
            prop_assert!(onto <= 8.0, "link {u} radiates {onto} onto R (|R|={})", r.len());
        }
    }

    /// Scaling all powers uniformly leaves zero-noise SINR invariant.
    #[test]
    fn sinr_scale_invariance_zero_noise(seed in any::<u64>(), scale in 0.1f64..10.0) {
        let net = PaperTopology { links: 6, side: 300.0, min_length: 5.0, max_length: 20.0 }
            .generate(seed);
        let params = SinrParams::new(2.2, 2.5, 0.0);
        let g1 = GainMatrix::from_geometry(&net, &PowerAssignment::Uniform(1.0), params.alpha);
        let g2 = GainMatrix::from_geometry(&net, &PowerAssignment::Uniform(scale), params.alpha);
        let mask = vec![true; 6];
        for i in 0..6 {
            let a = sinr(&g1, &params, &mask, i);
            let b = sinr(&g2, &params, &mask, i);
            prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
        }
    }
}
