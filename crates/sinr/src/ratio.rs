//! Cached interference ratios for the Theorem 1 closed form.
//!
//! Theorem 1 evaluates, for every receiver `i`, the product
//! `Π_{j≠i} (1 − β·q_j / (β + S̄_{i,i}/S̄_{j,i}))` times the noise factor
//! `exp(−β·ν / S̄_{i,i})`. Both the per-pair ratio
//!
//! ```text
//! ρ(j → i) = β / (β + S̄_{i,i}/S̄_{j,i})
//! ```
//!
//! and the noise factor depend only on `(GainMatrix, SinrParams)` — not on
//! the transmission probabilities — so hot paths that re-evaluate the
//! closed form while the probability vector changes one entry at a time
//! (greedy capacity re-scoring, game rounds, dynamic slot scheduling)
//! should precompute them once. [`InterferenceRatios`] is that cache, and
//! [`SuccessAccumulator`] maintains the per-receiver interference products
//! incrementally: toggling one sender updates every affected product in
//! O(n) instead of recomputing all of them in O(n²).
//!
//! # Log-domain vs. product accumulation
//!
//! Two accumulation strategies are provided ([`AccumMode`]):
//!
//! * **Log-domain** (default): each receiver keeps `Σ ln(1 − ρ·q_j)`;
//!   adding or removing a sender adds or subtracts one logarithm. Sums are
//!   immune to underflow (a product of 10⁵ factors of `0.99` underflows no
//!   accumulator), but every query pays one `exp` and long add/remove
//!   sequences accumulate rounding at ~1 ulp of the *sum* per operation —
//!   still far inside 1e-12 for realistic magnitudes.
//! * **Product**: each receiver keeps the raw product and multiplies or
//!   divides by single factors. Queries are a multiplication (no `exp`),
//!   and short sequences are bit-faithful to the scratch evaluation; the
//!   trade-off is that dividing by tiny factors amplifies error and long
//!   products can underflow, so the accumulator re-derives a receiver's
//!   product from scratch (exact, O(n)) whenever a guard detects either
//!   hazard.
//!
//! Factors that are exactly zero (possible when `ρ·q` rounds to 1) are
//! excluded from both accumulators and tracked by count, so removing the
//! offending sender restores the exact nonzero product instead of
//! dividing by zero.
//!
//! This module is deliberately model-agnostic plumbing: the Rayleigh
//! semantics (Theorem 1 itself) live in `rayfade-core`, whose
//! `SuccessEvaluator` wraps these types; they are exposed here so the
//! non-fading algorithm layer (`rayfade-sched`) can reuse the same cache
//! without a dependency cycle.

use crate::gain::GainMatrix;
use crate::params::SinrParams;
use serde::{Deserialize, Serialize};

/// Compensated (Kahan–Neumaier) summation.
///
/// Sums magnitudes that differ by many orders without losing the small
/// terms: the error of a 10⁴-term naive sum is `O(n·ε·Σ|x|)`, while the
/// compensated sum is exact to the final rounding. Used by
/// `rayfade-core`'s `expected_successes` and the batch evaluators.
pub fn kahan_sum<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut sum = 0.0f64;
    let mut comp = 0.0f64;
    for x in values {
        let t = sum + x;
        comp += if sum.abs() >= x.abs() {
            (sum - t) + x
        } else {
            (x - t) + sum
        };
        sum = t;
    }
    sum + comp
}

/// Precomputed interference ratios `ρ(j → i)` and noise factors for one
/// `(GainMatrix, SinrParams)` pair.
///
/// Stored receiver-major like [`GainMatrix`]: all ratios of senders onto
/// receiver `i` are contiguous. A receiver with zero own signal gets an
/// all-zero row and a zero noise factor (its success probability is zero
/// regardless of interference); a zero cross gain `S̄_{j,i} = 0`
/// contributes ratio 0 (its Theorem 1 factor is 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterferenceRatios {
    n: usize,
    beta: f64,
    /// `rho[i * n + j] = ρ(j → i)`; diagonal entries are 0.
    rho: Vec<f64>,
    /// `noise[i] = exp(−β·ν/S̄_{i,i})`, or 0 when `S̄_{i,i} = 0`.
    noise: Vec<f64>,
}

impl InterferenceRatios {
    /// Precomputes the ratio matrix and noise factors — O(n²), done once
    /// per gain matrix.
    pub fn new(gain: &GainMatrix, params: &SinrParams) -> Self {
        let n = gain.len();
        let beta = params.beta;
        let mut rho = vec![0.0; n * n];
        let mut noise = vec![0.0; n];
        for i in 0..n {
            let s_ii = gain.signal(i);
            if s_ii == 0.0 {
                continue; // dead receiver: zero row, zero noise factor
            }
            noise[i] = (-beta * params.noise / s_ii).exp();
            let row = gain.at_receiver(i);
            let out = &mut rho[i * n..(i + 1) * n];
            for (j, (&s_ji, slot)) in row.iter().zip(out.iter_mut()).enumerate() {
                if j == i || s_ji == 0.0 {
                    continue;
                }
                // Same guarded form as the scratch evaluation: s_ii/s_ji
                // may overflow to +inf for tiny s_ji, giving ratio 0.
                *slot = beta / (beta + s_ii / s_ji);
            }
        }
        // A deliberately wrong fast path for validating the conformance
        // harness end-to-end: every cached ratio is scaled by 0.999, so
        // cached evaluation diverges from the Theorem 1 formulas at ~1e-3
        // while the scratch (uncached) path stays correct. Never enabled
        // in normal builds; see TESTING.md.
        #[cfg(feature = "inject-bug")]
        for r in rho.iter_mut() {
            *r *= 0.999;
        }
        InterferenceRatios {
            n,
            beta,
            rho,
            noise,
        }
    }

    /// Number of links.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the instance has no links.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The SINR threshold `β` the ratios were built with.
    #[inline]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Ratio `ρ(j → i)` of sender `j` at receiver `i`.
    #[inline]
    pub fn rho(&self, j: usize, i: usize) -> f64 {
        self.rho[i * self.n + j]
    }

    /// All sender ratios at receiver `i` (contiguous, sender-indexed).
    #[inline]
    pub fn at_receiver(&self, i: usize) -> &[f64] {
        &self.rho[i * self.n..(i + 1) * self.n]
    }

    /// Noise factor `exp(−β·ν/S̄_{i,i})` of link `i` (0 for a dead link).
    #[inline]
    pub fn noise_factor(&self, i: usize) -> f64 {
        self.noise[i]
    }

    /// Theorem 1 factor `1 − ρ(j → i)·q_j` of sender `j` at receiver `i`.
    #[inline]
    pub fn factor(&self, j: usize, i: usize, q_j: f64) -> f64 {
        1.0 - self.rho(j, i) * q_j
    }
}

/// Accumulation strategy of a [`SuccessAccumulator`] (see the module docs
/// for the trade-off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AccumMode {
    /// Per-receiver `Σ ln(factor)` sums; underflow-proof, one `exp` per
    /// query.
    #[default]
    LogDomain,
    /// Per-receiver raw products with exact multiply/divide updates,
    /// guarded against underflow by O(n) from-scratch re-derivation.
    Product,
}

/// Product accumulator: falls back to an exact re-derivation when a
/// division would amplify error or the running product nears underflow.
const PRODUCT_UNDERFLOW_GUARD: f64 = 1e-280;
/// Dividing by factors below this loses too many bits; re-derive instead.
const DIVISOR_GUARD: f64 = 1e-140;

/// Incrementally maintained per-receiver interference products for a
/// changing transmission-probability vector.
///
/// The accumulator stores the current probabilities `q` and, per receiver
/// `i`, the product `Π_{j≠i, q_j>0} (1 − ρ(j→i)·q_j)` in the chosen
/// [`AccumMode`]. Changing one `q_j` ([`set_prob`](Self::set_prob),
/// [`insert`](Self::insert), [`remove`](Self::remove)) updates every
/// receiver's product in O(n) total. All methods take the
/// [`InterferenceRatios`] the accumulator was sized for; callers keep the
/// two together (the `rayfade-core` `SuccessEvaluator` bundles them).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuccessAccumulator {
    mode: AccumMode,
    /// Current transmission probabilities.
    q: Vec<f64>,
    /// Log-domain: `Σ ln(factor)` over nonzero factors; product mode: the
    /// running product over nonzero factors.
    acc: Vec<f64>,
    /// Number of exactly-zero factors at each receiver (the product is 0
    /// while any exist, but they never enter `acc`).
    zeros: Vec<u32>,
    /// Lifetime count of underflow/precision-guard trips (each one an O(n)
    /// [`Self::rederive_product`]); diagnostics only, excluded from
    /// equality.
    rederivations: u64,
}

/// Equality compares the semantic state (mode, probabilities, products,
/// zero counts) and deliberately ignores the [`Self::rederivations`]
/// diagnostic counter: two accumulators that answer every query
/// identically are equal regardless of how often their guards tripped.
impl PartialEq for SuccessAccumulator {
    fn eq(&self, other: &Self) -> bool {
        self.mode == other.mode
            && self.q == other.q
            && self.acc == other.acc
            && self.zeros == other.zeros
    }
}

impl SuccessAccumulator {
    /// Empty accumulator (all probabilities 0) for `n` links.
    pub fn new(n: usize, mode: AccumMode) -> Self {
        SuccessAccumulator {
            mode,
            q: vec![0.0; n],
            acc: vec![Self::identity(mode); n],
            zeros: vec![0; n],
            rederivations: 0,
        }
    }

    /// Lifetime number of underflow/precision-guard trips — from-scratch
    /// O(n) [`AccumMode::Product`] re-derivations this accumulator has
    /// performed (always 0 in log-domain mode). Cumulative: not cleared by
    /// [`reset`](Self::reset), so telemetry can report a run's total.
    #[inline]
    pub fn rederivations(&self) -> u64 {
        self.rederivations
    }

    #[inline]
    fn identity(mode: AccumMode) -> f64 {
        match mode {
            AccumMode::LogDomain => 0.0,
            AccumMode::Product => 1.0,
        }
    }

    /// The accumulation mode.
    #[inline]
    pub fn mode(&self) -> AccumMode {
        self.mode
    }

    /// Number of links.
    #[inline]
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the accumulator tracks no links.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Current transmission probability of link `j`.
    #[inline]
    pub fn prob(&self, j: usize) -> f64 {
        self.q[j]
    }

    /// Current transmission probabilities.
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.q
    }

    /// Resets every probability to 0 — O(n), no reallocation.
    pub fn reset(&mut self) {
        let id = Self::identity(self.mode);
        for ((q, acc), z) in self.q.iter_mut().zip(&mut self.acc).zip(&mut self.zeros) {
            *q = 0.0;
            *acc = id;
            *z = 0;
        }
    }

    /// Sets the whole probability vector — O(n²) rebuild.
    ///
    /// # Panics
    /// If lengths mismatch or any probability is outside `[0, 1]`.
    pub fn set_probs(&mut self, ratios: &InterferenceRatios, probs: &[f64]) {
        assert_eq!(probs.len(), self.q.len(), "one probability per link");
        self.reset();
        for (j, &p) in probs.iter().enumerate() {
            if p != 0.0 {
                self.set_prob(ratios, j, p);
            }
        }
    }

    /// Sets every probability to the same value `q` — O(n²).
    pub fn set_uniform(&mut self, ratios: &InterferenceRatios, q: f64) {
        self.reset();
        if q != 0.0 {
            for j in 0..self.q.len() {
                self.set_prob(ratios, j, q);
            }
        }
    }

    /// Changes `q_j`, updating all affected receiver products in O(n)
    /// (amortized; the product mode may re-derive a guarded receiver in
    /// O(n)).
    ///
    /// # Panics
    /// If `q` is outside `[0, 1]` or `j` is out of range.
    pub fn set_prob(&mut self, ratios: &InterferenceRatios, j: usize, q_new: f64) {
        assert!(
            (0.0..=1.0).contains(&q_new),
            "probabilities must lie in [0, 1]"
        );
        assert_eq!(ratios.len(), self.q.len(), "ratio cache size mismatch");
        let q_old = self.q[j];
        if q_old == q_new {
            return;
        }
        self.q[j] = q_new;
        let n = self.q.len();
        for i in 0..n {
            if i == j {
                continue;
            }
            let rho = ratios.rho(j, i);
            if rho == 0.0 {
                continue;
            }
            let old = if q_old == 0.0 { 1.0 } else { 1.0 - rho * q_old };
            let new = if q_new == 0.0 { 1.0 } else { 1.0 - rho * q_new };
            if old == new {
                continue;
            }
            // Retire the old factor.
            if old == 0.0 {
                self.zeros[i] -= 1;
            } else if old != 1.0 {
                match self.mode {
                    AccumMode::LogDomain => self.acc[i] -= old.ln(),
                    AccumMode::Product => {
                        if old < DIVISOR_GUARD || self.acc[i] < PRODUCT_UNDERFLOW_GUARD {
                            self.rederive_product(ratios, i);
                            continue; // rederivation already used q_new
                        }
                        self.acc[i] /= old;
                    }
                }
            }
            // Apply the new factor.
            if new == 0.0 {
                self.zeros[i] += 1;
            } else if new != 1.0 {
                match self.mode {
                    AccumMode::LogDomain => self.acc[i] += new.ln(),
                    AccumMode::Product => {
                        self.acc[i] *= new;
                        if self.acc[i] < PRODUCT_UNDERFLOW_GUARD {
                            self.rederive_product(ratios, i);
                        }
                    }
                }
            }
        }
    }

    /// Sets `q_j = 1` (link joins the transmit set).
    #[inline]
    pub fn insert(&mut self, ratios: &InterferenceRatios, j: usize) {
        self.set_prob(ratios, j, 1.0);
    }

    /// Sets `q_j = 0` (link leaves the transmit set).
    #[inline]
    pub fn remove(&mut self, ratios: &InterferenceRatios, j: usize) {
        self.set_prob(ratios, j, 0.0);
    }

    /// Exact O(n) from-scratch re-derivation of one receiver's product —
    /// the underflow/precision fallback of the product mode.
    fn rederive_product(&mut self, ratios: &InterferenceRatios, i: usize) {
        debug_assert_eq!(self.mode, AccumMode::Product);
        self.rederivations += 1;
        let mut prod = 1.0f64;
        let mut zeros = 0u32;
        let row = ratios.at_receiver(i);
        for (j, (&rho, &q)) in row.iter().zip(&self.q).enumerate() {
            if j == i || rho == 0.0 || q == 0.0 {
                continue;
            }
            let f = 1.0 - rho * q;
            if f == 0.0 {
                zeros += 1;
            } else {
                prod *= f;
            }
        }
        self.acc[i] = prod;
        self.zeros[i] = zeros;
    }

    /// The interference product `Π_{j≠i, q_j>0} (1 − ρ(j→i)·q_j)` at
    /// receiver `i` — O(1) (one `exp` in log-domain mode).
    #[inline]
    pub fn interference_product(&self, i: usize) -> f64 {
        if self.zeros[i] > 0 {
            return 0.0;
        }
        match self.mode {
            AccumMode::LogDomain => self.acc[i].exp(),
            AccumMode::Product => self.acc[i],
        }
    }

    /// Success probability of link `i` under the current probabilities
    /// (Theorem 1): `q_i · noise_i · Π factors` — O(1).
    #[inline]
    pub fn success_probability(&self, ratios: &InterferenceRatios, i: usize) -> f64 {
        let q_i = self.q[i];
        if q_i == 0.0 {
            return 0.0;
        }
        q_i * ratios.noise_factor(i) * self.interference_product(i)
    }

    /// Success probability of link `i` *conditioned on transmitting*
    /// (`q_i` overridden to 1; interference unchanged) — O(1). This is the
    /// quantity behind the Section 6 expected reward `2·Q_i − 1`.
    #[inline]
    pub fn conditional_success_probability(&self, ratios: &InterferenceRatios, i: usize) -> f64 {
        ratios.noise_factor(i) * self.interference_product(i)
    }

    /// All success probabilities — O(n).
    pub fn success_probabilities(&self, ratios: &InterferenceRatios) -> Vec<f64> {
        (0..self.q.len())
            .map(|i| self.success_probability(ratios, i))
            .collect()
    }

    /// Expected number of successes `Σ_i Q_i` under the current
    /// probabilities — O(n), compensated summation.
    pub fn expected_successes(&self, ratios: &InterferenceRatios) -> f64 {
        kahan_sum((0..self.q.len()).map(|i| self.success_probability(ratios, i)))
    }

    /// Change in *weighted* expected successes `Σ_i w_i·Q_i` if the
    /// currently-silent link `j` were activated (`q_j: 0 → 1`) — O(n),
    /// without mutating the accumulator:
    ///
    /// `Δ = w_j·Q_j|_{q_j=1} − Σ_{i≠j} w_i·Q_i·ρ(j→i)`
    ///
    /// (activating `j` multiplies every other `Q_i` by `1 − ρ(j→i)`).
    /// `weights = None` means unit weights. This is the greedy re-scoring
    /// primitive: one candidate scan costs O(n) instead of the O(n²)
    /// from-scratch evaluation.
    ///
    /// # Panics
    /// If link `j` is not currently silent (`q_j ≠ 0`).
    pub fn activation_gain(
        &self,
        ratios: &InterferenceRatios,
        weights: Option<&[f64]>,
        j: usize,
    ) -> f64 {
        assert_eq!(self.q[j], 0.0, "activation_gain requires a silent link");
        let w = |i: usize| weights.map_or(1.0, |w| w[i]);
        let own = w(j) * self.conditional_success_probability(ratios, j);
        let mut lost = 0.0;
        for i in 0..self.q.len() {
            if i == j || self.q[i] == 0.0 {
                continue;
            }
            let rho = ratios.rho(j, i);
            if rho != 0.0 {
                lost += w(i) * self.success_probability(ratios, i) * rho;
            }
        }
        own - lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ratios2() -> (GainMatrix, SinrParams, InterferenceRatios) {
        let gm = GainMatrix::from_raw(2, vec![10.0, 2.0, 2.0, 10.0]);
        let params = SinrParams::new(2.0, 2.0, 0.1);
        let r = InterferenceRatios::new(&gm, &params);
        (gm, params, r)
    }

    /// Scratch Theorem 1 evaluation (the reference the accumulator must
    /// agree with).
    fn scratch(gm: &GainMatrix, params: &SinrParams, probs: &[f64], i: usize) -> f64 {
        let s_ii = gm.signal(i);
        if s_ii == 0.0 {
            return 0.0;
        }
        let beta = params.beta;
        let mut p = probs[i] * (-beta * params.noise / s_ii).exp();
        for (j, &q_j) in probs.iter().enumerate() {
            let s_ji = gm.gain(j, i);
            if j == i || q_j == 0.0 || s_ji == 0.0 {
                continue;
            }
            p *= 1.0 - beta * q_j / (beta + s_ii / s_ji);
        }
        p
    }

    #[test]
    fn ratio_values_match_formula() {
        let (_, _, r) = ratios2();
        // rho(1 -> 0) = beta / (beta + 10/2) = 2/7.
        assert!((r.rho(1, 0) - 2.0 / 7.0).abs() < 1e-15);
        assert_eq!(r.rho(0, 0), 0.0, "diagonal is zero");
        assert!((r.noise_factor(0) - (-0.02f64).exp()).abs() < 1e-15);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.at_receiver(0).len(), 2);
        assert!((r.factor(1, 0, 1.0) - (1.0 - 2.0 / 7.0)).abs() < 1e-15);
    }

    #[test]
    fn dead_and_disconnected_links_have_zero_entries() {
        let gm = GainMatrix::from_raw(2, vec![0.0, 5.0, 0.0, 10.0]);
        let params = SinrParams::new(2.0, 2.0, 0.5);
        let r = InterferenceRatios::new(&gm, &params);
        assert_eq!(r.noise_factor(0), 0.0, "dead receiver");
        assert_eq!(r.at_receiver(0), &[0.0, 0.0], "dead receiver row");
        assert_eq!(r.rho(0, 1), 0.0, "zero cross gain contributes ratio 0");
    }

    #[test]
    fn accumulator_matches_scratch_in_both_modes() {
        let (gm, params, r) = ratios2();
        for mode in [AccumMode::LogDomain, AccumMode::Product] {
            let mut acc = SuccessAccumulator::new(2, mode);
            acc.set_probs(&r, &[0.8, 0.6]);
            for i in 0..2 {
                let got = acc.success_probability(&r, i);
                let want = scratch(&gm, &params, &[0.8, 0.6], i);
                assert!(
                    (got - want).abs() < 1e-14,
                    "{mode:?} link {i}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn incremental_updates_track_scratch() {
        let (gm, params, r) = ratios2();
        for mode in [AccumMode::LogDomain, AccumMode::Product] {
            let mut acc = SuccessAccumulator::new(2, mode);
            acc.insert(&r, 0);
            acc.insert(&r, 1);
            acc.set_prob(&r, 1, 0.25);
            acc.remove(&r, 0);
            acc.set_prob(&r, 0, 0.5);
            let probs = [0.5, 0.25];
            for i in 0..2 {
                let got = acc.success_probability(&r, i);
                let want = scratch(&gm, &params, &probs, i);
                assert!((got - want).abs() < 1e-13, "{mode:?} link {i}");
            }
            assert_eq!(acc.probs(), &probs);
        }
    }

    #[test]
    fn conditional_probability_ignores_own_q() {
        let (gm, params, r) = ratios2();
        let mut acc = SuccessAccumulator::new(2, AccumMode::LogDomain);
        acc.set_probs(&r, &[0.0, 0.7]);
        let cond = acc.conditional_success_probability(&r, 0);
        let want = scratch(&gm, &params, &[1.0, 0.7], 0);
        assert!((cond - want).abs() < 1e-14);
        assert_eq!(acc.success_probability(&r, 0), 0.0, "silent link has Q=0");
    }

    #[test]
    fn activation_gain_matches_brute_force() {
        let gm = GainMatrix::from_raw(
            3,
            vec![
                10.0, 2.0, 1.0, //
                2.0, 8.0, 0.5, //
                1.0, 0.5, 12.0,
            ],
        );
        let params = SinrParams::new(2.0, 1.5, 0.2);
        let r = InterferenceRatios::new(&gm, &params);
        let mut acc = SuccessAccumulator::new(3, AccumMode::LogDomain);
        acc.insert(&r, 0);
        let before: f64 = (0..3)
            .map(|i| scratch(&gm, &params, &[1.0, 0.0, 0.0], i))
            .sum();
        let after: f64 = (0..3)
            .map(|i| scratch(&gm, &params, &[1.0, 0.0, 1.0], i))
            .sum();
        let gain = acc.activation_gain(&r, None, 2);
        assert!((gain - (after - before)).abs() < 1e-13, "{gain}");
        // Weighted version.
        let w = [2.0, 1.0, 3.0];
        let before_w: f64 = (0..3)
            .map(|i| w[i] * scratch(&gm, &params, &[1.0, 0.0, 0.0], i))
            .sum();
        let after_w: f64 = (0..3)
            .map(|i| w[i] * scratch(&gm, &params, &[1.0, 0.0, 1.0], i))
            .sum();
        let gain_w = acc.activation_gain(&r, Some(&w), 2);
        assert!((gain_w - (after_w - before_w)).abs() < 1e-13);
    }

    #[test]
    fn zero_factor_round_trips_through_removal() {
        // rho = beta/(beta + s_ii/s_ji) rounds to 1 when s_ii/s_ji is
        // denormal-small relative to beta; force a zero factor via a huge
        // cross gain.
        let gm = GainMatrix::from_raw(2, vec![1e-300, 1e300, 0.0, 10.0]);
        let params = SinrParams::new(2.0, 2.0, 0.0);
        let r = InterferenceRatios::new(&gm, &params);
        assert_eq!(r.factor(1, 0, 1.0), 0.0, "factor must round to zero");
        for mode in [AccumMode::LogDomain, AccumMode::Product] {
            let mut acc = SuccessAccumulator::new(2, mode);
            acc.insert(&r, 0);
            acc.insert(&r, 1);
            assert_eq!(acc.success_probability(&r, 0), 0.0, "{mode:?}");
            acc.remove(&r, 1);
            let got = acc.success_probability(&r, 0);
            let want = scratch(&gm, &params, &[1.0, 0.0], 0);
            assert!((got - want).abs() < 1e-13, "{mode:?}: {got} vs {want}");
        }
    }

    #[test]
    fn product_mode_survives_underflow() {
        // 40 interferers each contributing a 1e-8 factor drive the product
        // to ~1e-320 — past the underflow guard. The rederivation keeps
        // the accumulator exact once enough of them leave.
        let n = 41;
        let mut g = vec![0.0; n * n];
        for j in 1..n {
            g[j] = 1e9; // strong interferer at receiver 0
            g[j * n + j] = 1.0;
        }
        g[0] = 1.0;
        let gm = GainMatrix::from_raw(n, g);
        let params = SinrParams::new(2.0, 1.0, 0.0);
        let r = InterferenceRatios::new(&gm, &params);
        let mut acc = SuccessAccumulator::new(n, AccumMode::Product);
        for j in 0..n {
            acc.insert(&r, j);
        }
        for j in 2..n {
            acc.remove(&r, j);
        }
        let got = acc.success_probability(&r, 0);
        let probs: Vec<f64> = (0..n).map(|j| if j < 2 { 1.0 } else { 0.0 }).collect();
        let want = scratch(&gm, &params, &probs, 0);
        assert!(want > 0.0);
        let rel = (got - want).abs() / want;
        assert!(rel < 1e-12, "relative error {rel}: {got} vs {want}");
        assert!(
            acc.rederivations() > 0,
            "driving the product past the guard must be counted as a trip"
        );
    }

    #[test]
    fn rederivation_counter_counts_guard_trips() {
        // 35 strong interferers at receiver 0 each contribute a ~5e-10
        // factor, so the running product crosses PRODUCT_UNDERFLOW_GUARD
        // (1e-280) during the inserts; once there, both the multiply-side
        // and the retire-side guards re-derive on every further update.
        let n = 36;
        let mut g = vec![0.0; n * n];
        g[0] = 1.0; // receiver 0 own signal
        for j in 1..n {
            g[j] = 1e9; // strong interferer at receiver 0
            g[j * n + j] = 1.0;
        }
        let gm = GainMatrix::from_raw(n, g);
        let params = SinrParams::new(2.0, 1.0, 0.0);
        let r = InterferenceRatios::new(&gm, &params);

        let mut acc = SuccessAccumulator::new(n, AccumMode::Product);
        assert_eq!(acc.rederivations(), 0);
        for j in 1..n {
            acc.insert(&r, j);
        }
        let after_inserts = acc.rederivations();
        assert!(
            after_inserts > 0,
            "underflow guard must trip during inserts"
        );
        acc.remove(&r, n - 1); // acc is below the guard: retire re-derives
        assert!(
            acc.rederivations() > after_inserts,
            "retire-side guard must trip on remove"
        );
        // The trips kept the state exact.
        acc.insert(&r, 0);
        let got = acc.success_probability(&r, 0);
        let probs: Vec<f64> = (0..n).map(|j| if j < n - 1 { 1.0 } else { 0.0 }).collect();
        let want = scratch(&gm, &params, &probs, 0);
        assert!(want > 0.0);
        assert!(((got - want) / want).abs() < 1e-12, "{got} vs {want}");

        // Log-domain mode never rederives.
        let mut log_acc = SuccessAccumulator::new(n, AccumMode::LogDomain);
        for j in 1..n {
            log_acc.insert(&r, j);
        }
        log_acc.remove(&r, n - 1);
        assert_eq!(log_acc.rederivations(), 0);
    }

    #[test]
    fn equality_ignores_the_rederivation_counter() {
        let (_, _, r) = ratios2();
        let mut tripped = SuccessAccumulator::new(2, AccumMode::Product);
        tripped.insert(&r, 0);
        tripped.rederivations = 17; // simulate a guard-heavy history
        let mut fresh = SuccessAccumulator::new(2, AccumMode::Product);
        fresh.insert(&r, 0);
        assert_eq!(tripped, fresh);
        assert_ne!(tripped.rederivations(), fresh.rederivations());
    }

    #[test]
    fn reset_restores_empty_state() {
        let (_, _, r) = ratios2();
        let mut acc = SuccessAccumulator::new(2, AccumMode::LogDomain);
        acc.set_probs(&r, &[1.0, 1.0]);
        acc.reset();
        assert_eq!(acc, SuccessAccumulator::new(2, AccumMode::LogDomain));
        assert_eq!(acc.expected_successes(&r), 0.0);
    }

    #[test]
    fn kahan_recovers_tiny_terms() {
        let mut values = vec![1.0f64];
        values.extend(std::iter::repeat_n(1e-16, 10_000));
        let naive: f64 = values.iter().sum();
        let comp = kahan_sum(values.iter().copied());
        let exact = 1.0 + 1e-12;
        assert_eq!(naive, 1.0, "naive summation drops every tiny term");
        assert!((comp - exact).abs() < 1e-24, "compensated sum {comp}");
    }

    #[test]
    #[should_panic(expected = "probabilities must lie in [0, 1]")]
    fn out_of_range_probability_rejected() {
        let (_, _, r) = ratios2();
        let mut acc = SuccessAccumulator::new(2, AccumMode::LogDomain);
        acc.set_prob(&r, 0, 1.5);
    }

    #[test]
    #[should_panic(expected = "activation_gain requires a silent link")]
    fn activation_gain_rejects_active_link() {
        let (_, _, r) = ratios2();
        let mut acc = SuccessAccumulator::new(2, AccumMode::LogDomain);
        acc.insert(&r, 0);
        let _ = acc.activation_gain(&r, None, 0);
    }
}
