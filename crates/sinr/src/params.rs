//! Physical-model parameters.

use serde::{Deserialize, Serialize};

/// Parameters of the SINR model (Sec. 2 of the paper).
///
/// * `alpha` — path-loss exponent `α > 0`: signal transmitted at power `p`
///   is received after distance `d` at expected strength `p / d^α`.
/// * `beta` — SINR threshold `β > 0` for binary utilities: a transmission
///   succeeds iff its SINR is at least `β`.
/// * `noise` — ambient noise `ν ≥ 0`. The paper's Figure 2 uses `ν = 0`,
///   so zero is explicitly supported everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SinrParams {
    /// Path-loss exponent `α`.
    pub alpha: f64,
    /// Success threshold `β`.
    pub beta: f64,
    /// Ambient noise `ν`.
    pub noise: f64,
}

impl SinrParams {
    /// Creates a parameter set, validating ranges.
    ///
    /// # Panics
    /// If `alpha <= 0`, `beta <= 0`, `noise < 0`, or any value is non-finite.
    pub fn new(alpha: f64, beta: f64, noise: f64) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be > 0");
        assert!(beta.is_finite() && beta > 0.0, "beta must be > 0");
        assert!(noise.is_finite() && noise >= 0.0, "noise must be >= 0");
        SinrParams { alpha, beta, noise }
    }

    /// Parameters used for the paper's Figure 1:
    /// `β = 2.5`, `α = 2.2`, `ν = 4·10⁻⁷`.
    pub fn figure1() -> Self {
        SinrParams::new(2.2, 2.5, 4e-7)
    }

    /// Parameters used for the paper's Figure 2:
    /// `β = 0.5`, `α = 2.1`, `ν = 0`.
    pub fn figure2() -> Self {
        SinrParams::new(2.1, 0.5, 0.0)
    }

    /// Returns a copy with a different SINR threshold.
    ///
    /// Flexible-data-rate algorithms sweep `β` while keeping the physical
    /// parameters fixed.
    pub fn with_beta(&self, beta: f64) -> Self {
        SinrParams::new(self.alpha, beta, self.noise)
    }
}

impl Default for SinrParams {
    /// Defaults to the Figure 1 parameters.
    fn default() -> Self {
        SinrParams::figure1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_presets_match_paper() {
        let f1 = SinrParams::figure1();
        assert_eq!((f1.alpha, f1.beta, f1.noise), (2.2, 2.5, 4e-7));
        let f2 = SinrParams::figure2();
        assert_eq!((f2.alpha, f2.beta, f2.noise), (2.1, 0.5, 0.0));
    }

    #[test]
    fn zero_noise_allowed() {
        let p = SinrParams::new(2.0, 1.0, 0.0);
        assert_eq!(p.noise, 0.0);
    }

    #[test]
    fn with_beta_changes_only_beta() {
        let p = SinrParams::figure1().with_beta(1.0);
        assert_eq!(p.beta, 1.0);
        assert_eq!(p.alpha, 2.2);
        assert_eq!(p.noise, 4e-7);
    }

    #[test]
    #[should_panic(expected = "alpha must be > 0")]
    fn zero_alpha_rejected() {
        let _ = SinrParams::new(0.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "beta must be > 0")]
    fn zero_beta_rejected() {
        let _ = SinrParams::new(2.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "noise must be >= 0")]
    fn negative_noise_rejected() {
        let _ = SinrParams::new(2.0, 1.0, -1.0);
    }
}
