//! Spectral feasibility analysis.
//!
//! For a fixed transmitting set, the zero-noise power-control constraints
//! `p_i·g_ii ≥ β·Σ_{j≠i} p_j·g_ji` are satisfiable iff `β·ρ(F) < 1`,
//! where `F` is the *normalized interference matrix*
//! `F_ij = g_{j,i}/g_{i,i}` (zero diagonal) and `ρ` its spectral radius
//! (Perron root). Equivalently, the **maximum SINR threshold** the set can
//! support with *some* power vector is exactly `β* = 1/ρ(F)` — the
//! classical Zander/Foschini characterization underlying power-control
//! capacity results like the paper's reference \[6\].
//!
//! This module computes `ρ(F)` by power iteration (the matrix is
//! non-negative, so the Perron root is the dominant eigenvalue) and
//! exposes `max_feasible_threshold`. With positive noise the achievable
//! threshold is strictly below `β*` but approaches it as the power cap
//! grows; tests cross-check against the Foschini–Miljanic solver.

use crate::gain::GainMatrix;
use serde::{Deserialize, Serialize};

/// Result of a spectral analysis of a transmitting set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectralReport {
    /// Spectral radius `ρ(F)` of the normalized interference matrix
    /// (midpoint of the certified bracket below).
    pub rho: f64,
    /// Certified lower bound on `ρ(F)` (Collatz–Wielandt).
    pub rho_lower: f64,
    /// Certified upper bound on `ρ(F)` (Collatz–Wielandt). The bracket
    /// `[rho_lower, rho_upper]` always contains the true `ρ(F)`; its
    /// width is the attained accuracy even when the iteration budget ran
    /// out before the requested tolerance was reached.
    pub rho_upper: f64,
    /// Maximum supportable SINR threshold `1/ρ(F)` under zero noise
    /// (`∞` when the set has no mutual interference at all).
    pub max_threshold: f64,
    /// Iterations the power method used.
    pub iterations: usize,
}

/// Computes the spectral radius of the normalized interference matrix of
/// `set` via power iteration.
///
/// `set` must contain at least one link with positive own-gain; entries
/// with zero own-gain are rejected (their normalization is undefined).
///
/// # Panics
/// If `set` contains an out-of-range index or a link with zero `S̄_{i,i}`.
pub fn spectral_report(gain: &GainMatrix, set: &[usize]) -> SpectralReport {
    let m = set.len();
    for &i in set {
        assert!(i < gain.len(), "link {i} out of range");
        assert!(
            gain.signal(i) > 0.0,
            "link {i} has zero own-gain; normalization undefined"
        );
    }
    if m <= 1 {
        return SpectralReport {
            rho: 0.0,
            rho_lower: 0.0,
            rho_upper: 0.0,
            max_threshold: f64::INFINITY,
            iterations: 0,
        };
    }
    // F[a][b] = g(set[b], set[a]) / g(set[a], set[a]), zero diagonal.
    let mut f = vec![0.0; m * m];
    let mut all_zero = true;
    for (a, &i) in set.iter().enumerate() {
        let own = gain.signal(i);
        for (b, &j) in set.iter().enumerate() {
            if a != b {
                let v = gain.gain(j, i) / own;
                f[a * m + b] = v;
                if v > 0.0 {
                    all_zero = false;
                }
            }
        }
    }
    if all_zero {
        return SpectralReport {
            rho: 0.0,
            rho_lower: 0.0,
            rho_upper: 0.0,
            max_threshold: f64::INFINITY,
            iterations: 0,
        };
    }
    // Power iteration on the *shifted* matrix I + F: non-negative
    // matrices can be periodic (e.g. a pure 2-cycle), on which the plain
    // power method oscillates; adding the identity makes the matrix
    // primitive without moving the Perron vector, and ρ(I + F) = 1 + ρ(F).
    //
    // Convergence is certified with Collatz–Wielandt bounds rather than
    // the successive-difference of the Rayleigh-quotient estimate: for
    // any strictly positive x, `min_a (Ax)_a/x_a ≤ ρ(A) ≤ max_a
    // (Ax)_a/x_a`, and both bounds hold at *every* iterate, so the
    // per-iterate brackets can be intersected. A successive-difference
    // test can stall far from the limit when the spectral gap of I + F
    // is small (estimates drift by < tol per step while still 10⁶·tol
    // from the answer); the bracket width is a true error bound.
    let mut x = vec![1.0 / m as f64; m];
    let mut y = vec![0.0; m];
    let mut lo = 1.0_f64; // ρ(I + F) ≥ 1: the diagonal alone gives it
    let mut hi = f64::INFINITY;
    let mut iterations = 0;
    for it in 0..10_000 {
        iterations = it + 1;
        for a in 0..m {
            let row = &f[a * m..(a + 1) * m];
            let fx: f64 = row.iter().zip(&x).map(|(&fij, &xj)| fij * xj).sum();
            y[a] = x[a] + fx;
        }
        if x.iter().all(|&v| v > 0.0) {
            let (mut l, mut h) = (f64::INFINITY, 0.0_f64);
            for a in 0..m {
                let r = y[a] / x[a];
                l = l.min(r);
                h = h.max(r);
            }
            lo = lo.max(l);
            hi = hi.min(h);
        }
        let norm: f64 = y.iter().sum();
        debug_assert!(
            norm >= 1.0 - 1e-12,
            "I + F cannot shrink an L1-normalized vector"
        );
        y.iter_mut().for_each(|v| *v /= norm);
        std::mem::swap(&mut x, &mut y);
        if hi - lo <= 1e-13 * hi {
            break;
        }
    }
    let shifted_rho = if hi.is_finite() { 0.5 * (lo + hi) } else { lo };
    let rho = (shifted_rho - 1.0).max(0.0);
    SpectralReport {
        rho,
        rho_lower: (lo - 1.0).max(0.0),
        rho_upper: if hi.is_finite() {
            hi - 1.0
        } else {
            f64::INFINITY
        },
        max_threshold: if rho > 0.0 { 1.0 / rho } else { f64::INFINITY },
        iterations,
    }
}

/// Maximum SINR threshold `β*` the set can support with power control and
/// zero noise: `1/ρ(F)`.
pub fn max_feasible_threshold(gain: &GainMatrix, set: &[usize]) -> f64 {
    spectral_report(gain, set).max_threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SinrParams;
    use crate::power_iteration::{solve_min_powers, PowerIterationConfig, PowerSolve};

    /// Symmetric pair with cross-coupling c has F = [[0, c], [c, 0]],
    /// rho = c.
    fn pair(c: f64) -> GainMatrix {
        GainMatrix::from_raw(2, vec![1.0, c, c, 1.0])
    }

    #[test]
    fn symmetric_pair_rho_is_coupling() {
        let r = spectral_report(&pair(0.25), &[0, 1]);
        assert!((r.rho - 0.25).abs() < 1e-10, "{r:?}");
        assert!((r.max_threshold - 4.0).abs() < 1e-9);
    }

    #[test]
    fn singleton_and_empty_are_unbounded() {
        let gm = pair(0.5);
        assert_eq!(max_feasible_threshold(&gm, &[0]), f64::INFINITY);
        assert_eq!(max_feasible_threshold(&gm, &[]), f64::INFINITY);
    }

    #[test]
    fn independent_links_are_unbounded() {
        let gm = GainMatrix::from_raw(2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(max_feasible_threshold(&gm, &[0, 1]), f64::INFINITY);
    }

    #[test]
    fn agrees_with_foschini_miljanic_feasibility() {
        // Just below the spectral threshold: solvable; just above: not.
        let gm = pair(0.5); // beta* = 2
        let config = PowerIterationConfig::default();
        let below = SinrParams::new(2.0, 1.9, 0.0);
        let above = SinrParams::new(2.0, 2.1, 0.0);
        let g = |j: usize, i: usize| gm.gain(j, i);
        assert!(matches!(
            solve_min_powers(2, g, &below, &config),
            PowerSolve::Feasible(_)
        ));
        assert!(matches!(
            solve_min_powers(2, g, &above, &config),
            PowerSolve::Infeasible
        ));
        let beta_star = max_feasible_threshold(&gm, &[0, 1]);
        assert!((beta_star - 2.0).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_coupling_rho_is_geometric_mean() {
        // F = [[0, a], [b, 0]] has rho = sqrt(a*b).
        let gm = GainMatrix::from_raw(2, vec![1.0, 0.4, 0.1, 1.0]);
        let r = spectral_report(&gm, &[0, 1]);
        assert!((r.rho - (0.4f64 * 0.1).sqrt()).abs() < 1e-9, "{r:?}");
    }

    #[test]
    fn three_link_ring() {
        // Cyclic interference: F is a 3-cycle with weight c; rho = c.
        let c = 0.3;
        let gm = GainMatrix::from_raw(
            3,
            vec![
                1.0, c, 0.0, //
                0.0, 1.0, c, //
                c, 0.0, 1.0,
            ],
        );
        let r = spectral_report(&gm, &[0, 1, 2]);
        assert!((r.rho - c).abs() < 1e-8, "{r:?}");
    }

    #[test]
    fn subset_thresholds_dominate_superset() {
        // Removing links can only raise the supportable threshold.
        let gm = GainMatrix::from_raw(
            3,
            vec![
                1.0, 0.3, 0.2, //
                0.3, 1.0, 0.1, //
                0.2, 0.1, 1.0,
            ],
        );
        let all = max_feasible_threshold(&gm, &[0, 1, 2]);
        let pair01 = max_feasible_threshold(&gm, &[0, 1]);
        let pair02 = max_feasible_threshold(&gm, &[0, 2]);
        assert!(pair01 >= all - 1e-12);
        assert!(pair02 >= all - 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero own-gain")]
    fn zero_own_gain_rejected() {
        let gm = GainMatrix::from_raw(2, vec![0.0, 0.1, 0.1, 1.0]);
        let _ = spectral_report(&gm, &[0, 1]);
    }
}
