//! Transmission power assignments.
//!
//! The paper's reduction is power-agnostic ("the transformation does not
//! modify transmission powers", Sec. 1.1), but every transferred algorithm
//! is tied to a power scheme: uniform \[8\], square-root/oblivious \[4\], \[7\],
//! linear, or algorithm-chosen per-link powers \[6\]. This module models all
//! of them behind one enum so gain-matrix construction and the scheduling
//! algorithms can be written once.

use rayfade_geometry::LinkGeometry;
use serde::{Deserialize, Serialize};

/// A rule assigning a transmission power `p_i > 0` to every link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PowerAssignment {
    /// Every sender transmits with the same power `p`.
    ///
    /// Figure 1 of the paper uses `Uniform(2.0)`.
    Uniform(f64),
    /// Square-root (a.k.a. "mean") power: `p_i = scale · √(d_i^α)`, i.e.
    /// `scale · d_i^(α/2)` for link length `d_i`.
    ///
    /// Figure 1's second assignment is `p_i = 2·√(d_i^2.2)`, i.e.
    /// `SquareRoot { scale: 2.0 }` with `α = 2.2`.
    SquareRoot {
        /// Multiplicative constant.
        scale: f64,
    },
    /// Oblivious monotone power of the form `p_i = scale · d_i^(τ·α)` with
    /// exponent fraction `τ ∈ [0, 1]`.
    ///
    /// `τ = 0` recovers uniform power, `τ = 1/2` square-root, `τ = 1`
    /// linear power (constant received signal strength).
    Monotone {
        /// Multiplicative constant.
        scale: f64,
        /// Fraction `τ` of the path-loss exponent.
        tau: f64,
    },
    /// Linear power: `p_i = scale · d_i^α`, yielding a received signal of
    /// exactly `scale` at the intended receiver.
    Linear {
        /// Received-signal strength (the constant signal at each receiver).
        scale: f64,
    },
    /// Arbitrary per-link powers, e.g. produced by a power-control
    /// algorithm such as \[6\].
    Custom(Vec<f64>),
}

impl PowerAssignment {
    /// Power of link `i` with length `length`, under path-loss exponent
    /// `alpha`.
    ///
    /// # Panics
    /// If a `Custom` assignment is indexed out of range, or the resulting
    /// power is not strictly positive and finite.
    pub fn power(&self, i: usize, length: f64, alpha: f64) -> f64 {
        let p = match self {
            PowerAssignment::Uniform(p) => *p,
            PowerAssignment::SquareRoot { scale } => scale * length.powf(alpha / 2.0),
            PowerAssignment::Monotone { scale, tau } => scale * length.powf(tau * alpha),
            PowerAssignment::Linear { scale } => scale * length.powf(alpha),
            PowerAssignment::Custom(powers) => powers[i],
        };
        assert!(
            p.is_finite() && p > 0.0,
            "power of link {i} must be positive and finite, got {p}"
        );
        p
    }

    /// Materializes the assignment into a per-link power vector.
    pub fn powers<G: LinkGeometry>(&self, geometry: &G, alpha: f64) -> Vec<f64> {
        (0..geometry.len())
            .map(|i| self.power(i, geometry.length(i), alpha))
            .collect()
    }

    /// Whether the assignment is *oblivious*: the power of a link depends
    /// only on its own length (not on other links). Power-control
    /// algorithms may produce non-oblivious `Custom` assignments.
    pub fn is_oblivious(&self) -> bool {
        !matches!(self, PowerAssignment::Custom(_))
    }

    /// The paper's Figure 1 uniform assignment, `p_i = 2`.
    pub fn figure1_uniform() -> Self {
        PowerAssignment::Uniform(2.0)
    }

    /// The paper's Figure 1 square-root assignment, `p_i = 2·√(d_i^α)`.
    pub fn figure1_square_root() -> Self {
        PowerAssignment::SquareRoot { scale: 2.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayfade_geometry::{Link, Network, Point};

    fn net() -> Network {
        Network::new(vec![
            Link::new(Point::new(0.0, 0.0), Point::new(4.0, 0.0)),
            Link::new(Point::new(10.0, 0.0), Point::new(10.0, 9.0)),
        ])
    }

    #[test]
    fn uniform_ignores_length() {
        let p = PowerAssignment::Uniform(2.0);
        assert_eq!(p.power(0, 4.0, 2.2), 2.0);
        assert_eq!(p.power(1, 9.0, 2.2), 2.0);
    }

    #[test]
    fn square_root_matches_paper_formula() {
        // p_i = 2 * sqrt(d^2.2) = 2 * d^1.1
        let p = PowerAssignment::figure1_square_root();
        let expected = 2.0 * 4.0f64.powf(1.1);
        assert!((p.power(0, 4.0, 2.2) - expected).abs() < 1e-12);
    }

    #[test]
    fn monotone_interpolates_uniform_and_linear() {
        let alpha = 2.0;
        let uni = PowerAssignment::Monotone {
            scale: 3.0,
            tau: 0.0,
        };
        assert!((uni.power(0, 7.0, alpha) - 3.0).abs() < 1e-12);
        let lin = PowerAssignment::Monotone {
            scale: 3.0,
            tau: 1.0,
        };
        assert!((lin.power(0, 7.0, alpha) - 3.0 * 49.0).abs() < 1e-9);
        let sqrt = PowerAssignment::Monotone {
            scale: 3.0,
            tau: 0.5,
        };
        assert!((sqrt.power(0, 7.0, alpha) - 3.0 * 7.0).abs() < 1e-9);
    }

    #[test]
    fn linear_yields_constant_received_signal() {
        let alpha = 2.5;
        let p = PowerAssignment::Linear { scale: 1.5 };
        for d in [0.5, 1.0, 10.0, 123.0] {
            let received = p.power(0, d, alpha) / d.powf(alpha);
            assert!((received - 1.5).abs() < 1e-9);
        }
    }

    #[test]
    fn custom_indexes_per_link() {
        let p = PowerAssignment::Custom(vec![1.0, 5.0]);
        assert_eq!(p.power(0, 99.0, 2.0), 1.0);
        assert_eq!(p.power(1, 99.0, 2.0), 5.0);
        assert!(!p.is_oblivious());
        assert!(PowerAssignment::Uniform(1.0).is_oblivious());
    }

    #[test]
    fn powers_vector_matches_pointwise() {
        let net = net();
        let p = PowerAssignment::figure1_square_root();
        let v = p.powers(&net, 2.2);
        assert_eq!(v.len(), 2);
        assert!((v[0] - p.power(0, 4.0, 2.2)).abs() < 1e-12);
        assert!((v[1] - p.power(1, 9.0, 2.2)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_power_rejected() {
        let _ = PowerAssignment::Uniform(0.0).power(0, 1.0, 2.0);
    }
}
