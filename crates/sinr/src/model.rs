//! Interference-model abstraction.
//!
//! The paper compares two models over the *same* instance: deterministic
//! non-fading SINR and stochastic Rayleigh fading. Algorithms that merely
//! need to ask "which of these transmissions succeeded this slot?" — ALOHA
//! latency protocols, regret-learning loops, Monte Carlo slot execution —
//! are written against [`SuccessModel`] so they run unmodified under
//! either model. The non-fading implementation lives here; the Rayleigh
//! implementation lives in `rayfade-core`.

use crate::gain::GainMatrix;
use crate::nonfading;
use crate::params::SinrParams;

/// A physical model that can resolve one time slot: given which links
/// transmit, report which succeed (reach SINR `β` at their receiver).
///
/// Implementations may be stochastic (`&mut self`): the Rayleigh model
/// draws fresh fading coefficients per slot, independent across slots, as
/// the paper assumes (Sec. 2).
pub trait SuccessModel {
    /// Number of links in the underlying instance.
    fn len(&self) -> usize;

    /// Resolves one slot: `active[i]` says whether link `i` transmits;
    /// the returned vector holds the indices of successful links, sorted.
    fn resolve_slot(&mut self, active: &[bool]) -> Vec<usize>;

    /// Whether the instance has no links.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Achieved SINR of every link this slot, for data-rate utilities.
    ///
    /// Deterministic models may compute this from the mask; stochastic
    /// models draw one realization. The default resolves successes only
    /// and is overridden by both provided models.
    fn resolve_sinrs(&mut self, active: &[bool]) -> Vec<f64>;
}

/// The deterministic non-fading SINR model (Sec. 2 of the paper).
#[derive(Debug, Clone)]
pub struct NonFadingModel {
    gain: GainMatrix,
    params: SinrParams,
}

impl NonFadingModel {
    /// Bundles a gain matrix with model parameters.
    pub fn new(gain: GainMatrix, params: SinrParams) -> Self {
        NonFadingModel { gain, params }
    }

    /// The underlying gain matrix.
    pub fn gain(&self) -> &GainMatrix {
        &self.gain
    }

    /// The model parameters.
    pub fn params(&self) -> &SinrParams {
        &self.params
    }
}

impl SuccessModel for NonFadingModel {
    fn len(&self) -> usize {
        self.gain.len()
    }

    fn resolve_slot(&mut self, active: &[bool]) -> Vec<usize> {
        nonfading::successful_links(&self.gain, &self.params, active)
    }

    fn resolve_sinrs(&mut self, active: &[bool]) -> Vec<f64> {
        nonfading::sinr_all(&self.gain, &self.params, active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonfading_model_is_deterministic() {
        let gm = GainMatrix::from_raw(2, vec![10.0, 1.0, 1.0, 10.0]);
        let mut model = NonFadingModel::new(gm, SinrParams::new(2.0, 5.0, 0.0));
        let active = vec![true, true];
        let a = model.resolve_slot(&active);
        let b = model.resolve_slot(&active);
        assert_eq!(a, b);
        assert_eq!(a, vec![0, 1]); // 10/1 = 10 >= 5 for both.
        assert_eq!(model.len(), 2);
    }

    #[test]
    fn nonfading_model_sinrs() {
        let gm = GainMatrix::from_raw(2, vec![10.0, 1.0, 1.0, 10.0]);
        let mut model = NonFadingModel::new(gm, SinrParams::new(2.0, 5.0, 0.0));
        let sinrs = model.resolve_sinrs(&[true, true]);
        assert!((sinrs[0] - 10.0).abs() < 1e-12);
        assert!((sinrs[1] - 10.0).abs() < 1e-12);
        // Lone transmitter with zero noise: infinite SINR.
        let sinrs = model.resolve_sinrs(&[true, false]);
        assert_eq!(sinrs[0], f64::INFINITY);
    }

    #[test]
    fn inactive_links_cannot_succeed() {
        let gm = GainMatrix::from_raw(2, vec![10.0, 0.0, 0.0, 10.0]);
        let mut model = NonFadingModel::new(gm, SinrParams::new(2.0, 1.0, 1.0));
        assert_eq!(model.resolve_slot(&[false, true]), vec![1]);
        assert_eq!(model.resolve_slot(&[false, false]), Vec::<usize>::new());
    }
}
