//! Utility functions over achieved SINR.
//!
//! The paper generalizes capacity maximization from binary success counting
//! to arbitrary per-link utilities `u_i(γ_i)` (Sec. 2). Its results require
//! *valid* utility functions (Definition 1): non-negative, and
//! non-decreasing + concave on `[S̄_{i,i}/(c_i·ν), ∞)` for some constant
//! `c_i > 1`. The three examples from the paper are implemented here:
//! binary thresholds, weighted thresholds, and Shannon capacity
//! `log(1 + γ)` — plus a numeric validity checker usable on any
//! implementation.

use serde::{Deserialize, Serialize};

/// A per-link utility of achieved SINR.
///
/// `value(i, sinr)` must be non-negative and finite for finite `sinr`;
/// implementations should also handle `sinr = ∞` gracefully (a lone
/// transmitter under zero noise) by returning their supremum or a saturated
/// value.
pub trait UtilityFunction {
    /// Utility obtained by link `i` when achieving SINR `sinr`.
    fn value(&self, i: usize, sinr: f64) -> f64;

    /// Total utility over per-link SINRs.
    fn total(&self, sinrs: &[f64]) -> f64 {
        sinrs
            .iter()
            .enumerate()
            .map(|(i, &s)| self.value(i, s))
            .sum()
    }
}

/// Binary utility: `1` iff SINR reaches the global threshold `β`
/// (the standard capacity-maximization objective).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinaryUtility {
    /// Success threshold `β`.
    pub beta: f64,
}

impl BinaryUtility {
    /// Creates a binary utility with threshold `beta > 0`.
    pub fn new(beta: f64) -> Self {
        assert!(beta > 0.0 && beta.is_finite(), "beta must be > 0");
        BinaryUtility { beta }
    }
}

impl UtilityFunction for BinaryUtility {
    #[inline]
    fn value(&self, _i: usize, sinr: f64) -> f64 {
        if sinr >= self.beta {
            1.0
        } else {
            0.0
        }
    }
}

/// Link-weighted binary utility: `w_i` iff SINR ≥ `β`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedUtility {
    /// Success threshold `β`.
    pub beta: f64,
    /// Per-link non-negative weights `w_i`.
    pub weights: Vec<f64>,
}

impl WeightedUtility {
    /// Creates a weighted utility.
    ///
    /// # Panics
    /// If `beta <= 0` or any weight is negative/non-finite.
    pub fn new(beta: f64, weights: Vec<f64>) -> Self {
        assert!(beta > 0.0 && beta.is_finite(), "beta must be > 0");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        WeightedUtility { beta, weights }
    }
}

impl UtilityFunction for WeightedUtility {
    #[inline]
    fn value(&self, i: usize, sinr: f64) -> f64 {
        if sinr >= self.beta {
            self.weights[i]
        } else {
            0.0
        }
    }
}

/// Shannon-capacity utility `u(γ) = log₂(1 + γ)`, optionally capped.
///
/// The cap models finite modulation/coding rates: real radios cannot
/// exploit unbounded SINR, and a cap also keeps the `sinr = ∞` case (lone
/// transmitter, zero noise) finite. An uncapped instance returns `∞` there,
/// which callers must be prepared for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShannonUtility {
    /// Maximum rate; `f64::INFINITY` for the pure `log₂(1+γ)` law.
    pub max_rate: f64,
}

impl ShannonUtility {
    /// The pure (uncapped) Shannon law.
    pub fn uncapped() -> Self {
        ShannonUtility {
            max_rate: f64::INFINITY,
        }
    }

    /// Shannon law capped at `max_rate` bits/symbol.
    pub fn capped(max_rate: f64) -> Self {
        assert!(max_rate > 0.0, "cap must be positive");
        ShannonUtility { max_rate }
    }
}

impl UtilityFunction for ShannonUtility {
    #[inline]
    fn value(&self, _i: usize, sinr: f64) -> f64 {
        if sinr == f64::INFINITY {
            return self.max_rate;
        }
        (1.0 + sinr.max(0.0)).log2().min(self.max_rate)
    }
}

/// Logistic (S-shaped) rate utility
/// `u(γ) = max / (1 + exp(−steepness·(γ − midpoint)))`.
///
/// A realistic modulation curve: almost no rate below the operating
/// point, saturation above it. Unlike the Shannon law it is **convex
/// below the midpoint**, so Definition 1 only holds when the noise-ratio
/// interval `[S̄ii/(c·ν), ∞)` starts past the inflection — exactly the
/// "noise is not too large" regime the paper assumes. The validity
/// checker below detects both cases; see the tests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogisticUtility {
    /// Inflection point (SINR at half rate).
    pub midpoint: f64,
    /// Slope parameter (> 0); larger is closer to a hard threshold.
    pub steepness: f64,
    /// Saturation rate.
    pub max: f64,
}

impl LogisticUtility {
    /// Creates a logistic utility.
    ///
    /// # Panics
    /// If any parameter is non-positive or non-finite.
    pub fn new(midpoint: f64, steepness: f64, max: f64) -> Self {
        assert!(
            midpoint > 0.0 && steepness > 0.0 && max > 0.0,
            "logistic parameters must be positive"
        );
        assert!(
            midpoint.is_finite() && steepness.is_finite() && max.is_finite(),
            "logistic parameters must be finite"
        );
        LogisticUtility {
            midpoint,
            steepness,
            max,
        }
    }
}

impl UtilityFunction for LogisticUtility {
    #[inline]
    fn value(&self, _i: usize, sinr: f64) -> f64 {
        if sinr == f64::INFINITY {
            return self.max;
        }
        self.max / (1.0 + (-self.steepness * (sinr.max(0.0) - self.midpoint)).exp())
    }
}

/// Numeric check of the paper's Definition 1 for link `i`: is there a
/// constant `c = c_i > 1` (given by the caller) such that the utility is
/// non-decreasing and concave on `[signal/(c·noise), ∞)`?
///
/// With `noise == 0` the interval start is `+∞` and the condition is
/// vacuous — every utility is valid, matching the paper's observation that
/// validity only constrains behaviour relative to the noise floor.
///
/// The check samples `samples` points geometrically spaced over
/// `[start, start · span]` and verifies discrete monotonicity and midpoint
/// concavity up to tolerance `tol`. It is a test/diagnostic aid, not a
/// proof.
#[allow(clippy::too_many_arguments)]
pub fn is_valid_utility<U: UtilityFunction>(
    u: &U,
    i: usize,
    signal: f64,
    noise: f64,
    c: f64,
    samples: usize,
    span: f64,
    tol: f64,
) -> bool {
    assert!(c > 1.0, "Definition 1 requires c > 1");
    assert!(samples >= 3 && span > 1.0);
    if noise == 0.0 {
        return true;
    }
    let start = (signal / (c * noise)).max(f64::MIN_POSITIVE);
    let ratio = span.powf(1.0 / (samples as f64 - 1.0));
    let xs: Vec<f64> = (0..samples).map(|k| start * ratio.powi(k as i32)).collect();
    let ys: Vec<f64> = xs.iter().map(|&x| u.value(i, x)).collect();
    // Non-decreasing.
    for w in ys.windows(2) {
        if w[1] < w[0] - tol {
            return false;
        }
    }
    // Midpoint concavity: u((x+z)/2) >= (u(x)+u(z))/2 on the sampled grid.
    for k in 0..samples - 2 {
        let (x, z) = (xs[k], xs[k + 2]);
        let mid = u.value(i, 0.5 * (x + z));
        if mid < 0.5 * (ys[k] + ys[k + 2]) - tol {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_threshold() {
        let u = BinaryUtility::new(2.5);
        assert_eq!(u.value(0, 2.5), 1.0);
        assert_eq!(u.value(0, 2.4999), 0.0);
        assert_eq!(u.value(0, f64::INFINITY), 1.0);
        assert_eq!(u.total(&[3.0, 1.0, 2.5]), 2.0);
    }

    #[test]
    fn weighted_threshold() {
        let u = WeightedUtility::new(1.0, vec![2.0, 0.5]);
        assert_eq!(u.value(0, 1.0), 2.0);
        assert_eq!(u.value(1, 1.0), 0.5);
        assert_eq!(u.value(1, 0.5), 0.0);
        assert_eq!(u.total(&[2.0, 2.0]), 2.5);
    }

    #[test]
    fn shannon_law() {
        let u = ShannonUtility::uncapped();
        assert_eq!(u.value(0, 0.0), 0.0);
        assert!((u.value(0, 1.0) - 1.0).abs() < 1e-12);
        assert!((u.value(0, 3.0) - 2.0).abs() < 1e-12);
        assert_eq!(u.value(0, f64::INFINITY), f64::INFINITY);
        // Negative SINR cannot occur physically; clamp to zero utility.
        assert_eq!(u.value(0, -1.0), 0.0);
    }

    #[test]
    fn shannon_cap() {
        let u = ShannonUtility::capped(4.0);
        assert!((u.value(0, 3.0) - 2.0).abs() < 1e-12);
        assert_eq!(u.value(0, 1e9), 4.0);
        assert_eq!(u.value(0, f64::INFINITY), 4.0);
    }

    #[test]
    fn binary_is_valid_when_beta_below_noise_ratio() {
        // Paper: binary utilities are valid for (c, beta) with
        // beta <= min_i S_ii / (c*nu): then u is constant (=1) on the
        // interval [S_ii/(c nu), inf).
        let signal = 10.0;
        let noise = 1.0;
        let c = 2.0;
        // Interval starts at 5.0. beta = 4 <= 5 -> constant 1 on interval.
        let u = BinaryUtility::new(4.0);
        assert!(is_valid_utility(&u, 0, signal, noise, c, 64, 1e3, 1e-9));
        // beta = 50 jumps inside the interval -> not concave there.
        let bad = BinaryUtility::new(50.0);
        assert!(!is_valid_utility(&bad, 0, signal, noise, c, 256, 1e3, 1e-9));
    }

    #[test]
    fn shannon_is_always_valid() {
        let u = ShannonUtility::uncapped();
        assert!(is_valid_utility(&u, 0, 10.0, 1.0, 2.0, 64, 1e4, 1e-9));
        assert!(is_valid_utility(&u, 0, 1.0, 5.0, 1.5, 64, 1e4, 1e-9));
    }

    #[test]
    fn logistic_basic_shape() {
        let u = LogisticUtility::new(2.0, 3.0, 10.0);
        assert!(
            (u.value(0, 2.0) - 5.0).abs() < 1e-12,
            "half rate at midpoint"
        );
        assert!(u.value(0, 0.0) < 0.5);
        assert!(u.value(0, 10.0) > 9.9);
        assert_eq!(u.value(0, f64::INFINITY), 10.0);
        // Monotone.
        let mut prev = 0.0;
        for k in 0..50 {
            let v = u.value(0, k as f64 * 0.2);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn logistic_validity_depends_on_noise_regime() {
        let u = LogisticUtility::new(2.0, 3.0, 1.0);
        // Interval starts at S/(c*nu) = 10/(2*1) = 5 > midpoint 2:
        // concave region only -> valid.
        assert!(is_valid_utility(&u, 0, 10.0, 1.0, 2.0, 128, 1e3, 1e-9));
        // Interval starts at 0.25 < midpoint: includes the convex part
        // -> invalid (the "large noise" case the paper excludes).
        assert!(!is_valid_utility(&u, 0, 0.5, 1.0, 2.0, 256, 1e3, 1e-9));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn logistic_rejects_bad_params() {
        let _ = LogisticUtility::new(0.0, 1.0, 1.0);
    }

    #[test]
    fn zero_noise_makes_everything_valid() {
        let bad = BinaryUtility::new(1e12);
        assert!(is_valid_utility(&bad, 0, 1.0, 0.0, 2.0, 16, 10.0, 1e-9));
    }

    #[test]
    #[should_panic(expected = "c > 1")]
    fn validity_requires_c_above_one() {
        let u = BinaryUtility::new(1.0);
        let _ = is_valid_utility(&u, 0, 1.0, 1.0, 1.0, 16, 10.0, 1e-9);
    }
}
