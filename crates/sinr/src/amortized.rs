//! Slot-churn-amortized Theorem 1 products with exact rebuild equality.
//!
//! The dynamic slot loop flips a handful of links in and out of the
//! transmit set every slot and then needs every receiver's interference
//! product again. [`SuccessAccumulator`](crate::SuccessAccumulator)
//! already makes one flip O(n), but its float log-sums are *order
//! dependent*: a product reached through a churn history differs in the
//! last ulps from the same product rebuilt from scratch, so "persistent
//! accumulator ≡ fresh rebuild" cannot be checked bitwise — exactly the
//! invariant a differential conformance harness wants.
//!
//! [`AmortizedAccumulator`] removes the order dependence by accumulating
//! *quantized* logarithms in 64-bit integers: each Theorem 1 factor
//! `1 − ρ(j→i)·q_j` contributes `round(ln(factor) · 2³⁸)`, and integer
//! addition is exact, associative, and commutative, so any churn history
//! that ends in the same probability vector lands on the *same bits* as a
//! from-scratch rebuild. The quantization costs at most `0.5 / 2³⁸`
//! absolute error in the log per factor (≈ 1.8·10⁻¹² relative per
//! factor, `n`× that per product) — far inside the 1e-9 conformance
//! tolerance at check sizes and statistically invisible to the Bernoulli
//! sampling the analytic slot resolver does with these probabilities.
//!
//! Layout is *sender-major* (the transpose of
//! [`InterferenceRatios`]): the full-activation log row of sender `j`
//! against every receiver is contiguous, so the common slot operations —
//! `insert(j)` / `remove(j)` on queue churn — are a single linear pass of
//! i64 adds over one row, which rustc autovectorizes; the from-scratch
//! [`set_probs`](AmortizedAccumulator::set_probs) rebuild accumulates
//! row-blocks the same way instead of striding the receiver-major matrix.
//!
//! Capacity: nonzero factors are at least `2⁻⁵³` (the smallest gap below
//! 1.0), so one quantized log is at most `37 · 2³⁸ ≈ 10¹³` in magnitude
//! and per-receiver sums stay far from `i64` overflow for every dense
//! instance below the sparse crossover (the only sizes this type is
//! routed at; overflow would need n ≈ 10⁶ all-worst-case factors).

use crate::gain::GainMatrix;
use crate::params::SinrParams;
use crate::ratio::InterferenceRatios;
use serde::{Deserialize, Serialize};

/// Fixed-point scale of the quantized logarithms: 2³⁸.
const LOG_SCALE: f64 = (1u64 << 38) as f64;

/// Quantized log of the Theorem 1 factor `1 − ρ·q`, or `None` when the
/// factor is exactly zero (tracked by count, never accumulated).
#[inline]
fn quantized_log_factor(rho: f64, q: f64) -> Option<i64> {
    let factor = 1.0 - rho * q;
    debug_assert!(factor >= 0.0, "ρ·q must not exceed 1");
    if factor == 0.0 {
        None
    } else {
        Some((factor.ln() * LOG_SCALE).round() as i64)
    }
}

/// Churn-amortized per-receiver Theorem 1 products over integer-quantized
/// logs (see the [module docs](self) for the exactness argument).
///
/// Methods take the same [`InterferenceRatios`] the accumulator was built
/// from, mirroring the [`SuccessAccumulator`](crate::SuccessAccumulator)
/// convention; the constructor additionally precomputes the sender-major
/// full-activation log rows that make [`insert`](Self::insert) /
/// [`remove`](Self::remove) a contiguous row add.
///
/// Equality compares the semantic state (probabilities, integer sums,
/// zero counts): two accumulators that agree were driven to the same
/// probability vector, regardless of the churn order — the invariant the
/// `amortized-ratios` conformance check certifies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AmortizedAccumulator {
    n: usize,
    /// Sender-major quantized logs at full activation:
    /// `qlog[j·n + i] = round(ln(1 − ρ(j→i)) · 2³⁸)`, 0 on the diagonal
    /// and wherever the factor is 1 or exactly 0 (the latter tracked in
    /// [`Self::zero_receivers`]).
    qlog: Vec<i64>,
    /// Per sender `j`: receivers whose full-activation factor is exactly
    /// zero (`ρ(j→i) = 1`), excluded from `qlog`.
    zero_receivers: Vec<Vec<u32>>,
    /// Current transmission probabilities.
    q: Vec<f64>,
    /// Per-receiver `Σ` quantized logs over senders with `q_j > 0` and a
    /// nonzero factor.
    acc: Vec<i64>,
    /// Number of exactly-zero factors at each receiver.
    zeros: Vec<u32>,
}

impl AmortizedAccumulator {
    /// Precomputes the sender-major log rows — O(n²), once per ratio
    /// cache. All probabilities start at 0.
    pub fn new(ratios: &InterferenceRatios) -> Self {
        let n = ratios.len();
        let mut qlog = vec![0i64; n * n];
        let mut zero_receivers = vec![Vec::new(); n];
        for i in 0..n {
            let row = ratios.at_receiver(i);
            for (j, &rho) in row.iter().enumerate() {
                if rho == 0.0 {
                    continue;
                }
                match quantized_log_factor(rho, 1.0) {
                    Some(ql) => qlog[j * n + i] = ql,
                    None => zero_receivers[j].push(i as u32),
                }
            }
        }
        AmortizedAccumulator {
            n,
            qlog,
            zero_receivers,
            q: vec![0.0; n],
            acc: vec![0i64; n],
            zeros: vec![0u32; n],
        }
    }

    /// Convenience: builds the ratio cache and the accumulator together.
    pub fn from_gain(gain: &GainMatrix, params: &SinrParams) -> (InterferenceRatios, Self) {
        let ratios = InterferenceRatios::new(gain, params);
        let acc = AmortizedAccumulator::new(&ratios);
        (ratios, acc)
    }

    /// Number of links.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the instance has no links.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current transmission probabilities.
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.q
    }

    /// Current transmission probability of link `j`.
    #[inline]
    pub fn prob(&self, j: usize) -> f64 {
        self.q[j]
    }

    /// Resets every probability to 0 — O(n).
    pub fn reset(&mut self) {
        self.q.fill(0.0);
        self.acc.fill(0);
        self.zeros.fill(0);
    }

    /// Adds (`sign = +1`) or retires (`sign = -1`) sender `j`'s
    /// contribution at probability `q`. The full-activation fast path is
    /// one contiguous row add; fractional probabilities quantize the row
    /// on the fly (same deterministic f64 → i64 map either way, so a
    /// retire always cancels its apply exactly).
    fn accumulate(&mut self, ratios: &InterferenceRatios, j: usize, q: f64, sign: i64) {
        if q == 0.0 {
            return;
        }
        if q == 1.0 {
            let row = &self.qlog[j * self.n..(j + 1) * self.n];
            for (a, &ql) in self.acc.iter_mut().zip(row) {
                *a += sign * ql;
            }
            for &i in &self.zero_receivers[j] {
                let i = i as usize;
                self.zeros[i] = (self.zeros[i] as i64 + sign) as u32;
            }
            return;
        }
        for i in 0..self.n {
            let rho = ratios.rho(j, i);
            if rho == 0.0 {
                continue;
            }
            match quantized_log_factor(rho, q) {
                Some(ql) => self.acc[i] += sign * ql,
                None => self.zeros[i] = (self.zeros[i] as i64 + sign) as u32,
            }
        }
    }

    /// Changes one probability — O(n), a row add per side.
    pub fn set_prob(&mut self, ratios: &InterferenceRatios, j: usize, q: f64) {
        debug_assert_eq!(ratios.len(), self.n, "ratio cache mismatch");
        assert!((0.0..=1.0).contains(&q), "probability out of range");
        let old = self.q[j];
        if old == q {
            return;
        }
        self.accumulate(ratios, j, old, -1);
        self.accumulate(ratios, j, q, 1);
        self.q[j] = q;
    }

    /// Sets `q_j = 1` (link joins the transmit set) — the slot-churn fast
    /// path: one contiguous i64 row add.
    pub fn insert(&mut self, ratios: &InterferenceRatios, j: usize) {
        self.set_prob(ratios, j, 1.0);
    }

    /// Sets `q_j = 0` (link leaves the transmit set).
    pub fn remove(&mut self, ratios: &InterferenceRatios, j: usize) {
        self.set_prob(ratios, j, 0.0);
    }

    /// Replaces the whole probability vector: reset plus a blocked
    /// sender-major rebuild (one row accumulation per active sender, in
    /// index order). Lands on exactly the bits any churn history ending
    /// in `probs` lands on.
    pub fn set_probs(&mut self, ratios: &InterferenceRatios, probs: &[f64]) {
        assert_eq!(probs.len(), self.n, "probability vector length mismatch");
        self.reset();
        for (j, &q) in probs.iter().enumerate() {
            assert!((0.0..=1.0).contains(&q), "probability out of range");
            self.accumulate(ratios, j, q, 1);
            self.q[j] = q;
        }
    }

    /// Interference product `Π_{j≠i, q_j>0} (1 − ρ(j→i)·q_j)` of receiver
    /// `i`, up to log-quantization (module docs).
    #[inline]
    pub fn interference_product(&self, i: usize) -> f64 {
        if self.zeros[i] > 0 {
            0.0
        } else {
            (self.acc[i] as f64 / LOG_SCALE).exp()
        }
    }

    /// Theorem 1 success probability of link `i` under the current
    /// probability vector.
    pub fn success_probability(&self, ratios: &InterferenceRatios, i: usize) -> f64 {
        self.q[i] * self.conditional_success_probability(ratios, i)
    }

    /// Success probability of link `i` conditioned on transmitting
    /// (`q_i` read as 1; `i`'s own diagonal ratio is 0, so its factor
    /// never enters its own product). This is the exact Bernoulli
    /// parameter of the analytic slot resolver — for active links the
    /// realized success, for idle links the counterfactual one.
    #[inline]
    pub fn conditional_success_probability(&self, ratios: &InterferenceRatios, i: usize) -> f64 {
        ratios.noise_factor(i) * self.interference_product(i)
    }

    /// All Theorem 1 success probabilities — O(n).
    pub fn success_probabilities(&self, ratios: &InterferenceRatios) -> Vec<f64> {
        (0..self.n)
            .map(|i| self.success_probability(ratios, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::{AccumMode, SuccessAccumulator};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ratios4() -> InterferenceRatios {
        let gm = GainMatrix::from_raw(
            4,
            vec![
                10.0, 2.0, 1.0, 0.0, //
                2.0, 8.0, 0.5, 1.0, //
                1.0, 0.5, 12.0, 3.0, //
                0.0, 1.0, 3.0, 9.0,
            ],
        );
        InterferenceRatios::new(&gm, &SinrParams::new(2.0, 1.5, 0.2))
    }

    #[test]
    fn matches_float_accumulator_within_quantization() {
        let ratios = ratios4();
        let mut amortized = AmortizedAccumulator::new(&ratios);
        let mut float = SuccessAccumulator::new(4, AccumMode::LogDomain);
        let probs = [0.7, 0.0, 1.0, 0.3];
        amortized.set_probs(&ratios, &probs);
        float.set_probs(&ratios, &probs);
        for i in 0..4 {
            let a = amortized.success_probability(&ratios, i);
            let f = float.success_probability(&ratios, i);
            assert!(
                (a - f).abs() <= 1e-10 * f.max(1e-12),
                "link {i}: {a} vs {f}"
            );
            let ac = amortized.conditional_success_probability(&ratios, i);
            let fc = float.conditional_success_probability(&ratios, i);
            assert!((ac - fc).abs() <= 1e-10 * fc.max(1e-12), "link {i}");
        }
    }

    #[test]
    fn churn_is_bit_equal_to_rebuild() {
        let ratios = ratios4();
        let mut churned = AmortizedAccumulator::new(&ratios);
        let mut rng = StdRng::seed_from_u64(7);
        for step in 0..200 {
            let j = rng.gen_range(0..4usize);
            match rng.gen_range(0..4) {
                0 => churned.insert(&ratios, j),
                1 => churned.remove(&ratios, j),
                2 => churned.set_prob(&ratios, j, rng.gen::<f64>()),
                _ => churned.set_prob(&ratios, j, [0.0, 1.0, 1e-12, 1.0 - 1e-12][step % 4]),
            }
            let mut rebuilt = AmortizedAccumulator::new(&ratios);
            rebuilt.set_probs(&ratios, churned.probs());
            assert_eq!(churned, rebuilt, "step {step}: churn diverged from rebuild");
        }
    }

    #[test]
    fn zero_factors_round_trip_exactly() {
        // Overwhelming cross gain drives ρ(0→1) to round to exactly 1,
        // so sender 0's factor at receiver 1 is exactly 0 at q = 1 — the
        // zero-count path must round-trip bitwise, product included.
        let gm = GainMatrix::from_raw(2, vec![1.0, 1e-30, 1e300, 1.0]);
        let ratios = InterferenceRatios::new(&gm, &SinrParams::new(2.0, 1.0, 0.0));
        assert_eq!(ratios.rho(0, 1), 1.0, "crafted exact-1 ratio");
        let mut acc = AmortizedAccumulator::new(&ratios);
        let fresh = acc.clone();
        acc.insert(&ratios, 0);
        assert_eq!(acc.conditional_success_probability(&ratios, 1), 0.0);
        acc.insert(&ratios, 1);
        acc.remove(&ratios, 0);
        assert!(acc.conditional_success_probability(&ratios, 1) > 0.0);
        acc.remove(&ratios, 1);
        assert_eq!(acc, fresh, "full churn cycle must return to the start");
    }

    #[test]
    fn mask_flip_fast_path_equals_fractional_path() {
        let ratios = ratios4();
        let mut via_insert = AmortizedAccumulator::new(&ratios);
        via_insert.insert(&ratios, 2);
        let mut via_set = AmortizedAccumulator::new(&ratios);
        via_set.set_prob(&ratios, 2, 0.5);
        via_set.set_prob(&ratios, 2, 1.0);
        assert_eq!(via_insert, via_set);
    }

    #[test]
    fn empty_set_gives_noise_only_probabilities() {
        let ratios = ratios4();
        let acc = AmortizedAccumulator::new(&ratios);
        for i in 0..4 {
            assert_eq!(acc.success_probability(&ratios, i), 0.0, "q_i = 0");
            assert_eq!(
                acc.conditional_success_probability(&ratios, i),
                ratios.noise_factor(i),
                "no interference: conditional success is the noise factor"
            );
        }
    }

    #[test]
    fn set_probs_matches_sequential_set_prob() {
        let ratios = ratios4();
        let probs = [0.25, 1.0, 0.0, 0.9];
        let mut bulk = AmortizedAccumulator::new(&ratios);
        bulk.set_probs(&ratios, &probs);
        let mut seq = AmortizedAccumulator::new(&ratios);
        for (j, &q) in probs.iter().enumerate() {
            seq.set_prob(&ratios, j, q);
        }
        assert_eq!(bulk, seq);
        assert_eq!(bulk.probs(), &probs);
    }
}
