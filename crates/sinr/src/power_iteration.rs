//! Minimal-power feasibility via Foschini–Miljanic iteration.
//!
//! For a fixed set of transmitting links, the SINR constraints
//! `p_i·g_{i,i} ≥ β(Σ_{j≠i} p_j·g_{j,i} + ν)` are linear in the power
//! vector `p`. When a feasible `p > 0` exists, the fixed-point iteration
//!
//! ```text
//! p_i ← β · (Σ_{j≠i} p_j·g_{j,i} + ν) / g_{i,i}
//! ```
//!
//! converges monotonically to the componentwise-minimal feasible power
//! vector (Foschini & Miljanic, 1993); when none exists the iterates
//! diverge. This is the classical power-control substrate the paper's
//! reference \[6\] builds on; `rayfade-sched` uses it to equip selected sets
//! with concrete feasible powers.

use crate::params::SinrParams;
use serde::{Deserialize, Serialize};

/// Outcome of a power-iteration solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PowerSolve {
    /// A feasible power vector was found (componentwise minimal up to the
    /// iteration tolerance), indexed like the input set.
    Feasible(Vec<f64>),
    /// The constraints are infeasible for every power vector (iterates
    /// diverged or exceeded the power cap).
    Infeasible,
}

/// Configuration of the iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerIterationConfig {
    /// Maximum iterations before declaring divergence.
    pub max_iters: usize,
    /// Relative convergence tolerance.
    pub tol: f64,
    /// Upper bound on any single power; exceeding it declares infeasibility.
    /// This is both a physical cap and the divergence detector.
    pub power_cap: f64,
    /// SINR slack factor: constraints are solved for `β·(1+slack)` so the
    /// returned powers satisfy the *strict* threshold with margin even
    /// after floating-point noise. Zero is allowed.
    pub slack: f64,
}

impl Default for PowerIterationConfig {
    fn default() -> Self {
        PowerIterationConfig {
            max_iters: 10_000,
            tol: 1e-12,
            power_cap: 1e12,
            slack: 1e-9,
        }
    }
}

/// Solves for minimal feasible powers of `set` under *unit-power path
/// gains* `unit_gain` (the gain each sender would have with power 1).
///
/// `unit_gain(j, i)` must return `g_{j,i} > 0` for `j, i` ranging over
/// positions *within the set* (i.e. it is called with set-local indices
/// already mapped by the caller). Noise may be zero: with `ν = 0` the
/// constraints are scale-invariant, so the iteration is seeded at 1 and a
/// feasible direction is returned with minimum component 1.
pub fn solve_min_powers<F>(
    m: usize,
    unit_gain: F,
    params: &SinrParams,
    config: &PowerIterationConfig,
) -> PowerSolve
where
    F: Fn(usize, usize) -> f64,
{
    if m == 0 {
        return PowerSolve::Feasible(Vec::new());
    }
    let beta = params.beta * (1.0 + config.slack);
    let nu = params.noise;
    // With zero noise the all-zero vector is a trivial fixed point; seed at
    // 1 and renormalize each sweep so we find a feasible *direction*.
    let zero_noise = nu == 0.0;
    let mut p = vec![1.0; m];
    let mut next = vec![0.0; m];
    for _ in 0..config.max_iters {
        for (i, slot) in next.iter_mut().enumerate() {
            let mut interference = 0.0;
            for (j, &pj) in p.iter().enumerate() {
                if j != i {
                    interference += pj * unit_gain(j, i);
                }
            }
            *slot = beta * (interference + nu) / unit_gain(i, i);
        }
        if zero_noise {
            // Renormalize so min power is 1; divergence shows up as the
            // normalized update still growing (spectral radius >= 1).
            let mx = next.iter().cloned().fold(0.0f64, f64::max);
            if mx == 0.0 {
                // No interference at all: any positive powers work.
                return PowerSolve::Feasible(vec![1.0; m]);
            }
        }
        if next.iter().any(|&v| !v.is_finite() || v > config.power_cap) {
            return PowerSolve::Infeasible;
        }
        // Convergence: relative change below tolerance.
        let mut converged = true;
        for i in 0..m {
            let scale = p[i].abs().max(1.0);
            if (next[i] - p[i]).abs() > config.tol * scale {
                converged = false;
            }
        }
        std::mem::swap(&mut p, &mut next);
        if converged {
            if zero_noise {
                // Fixed point of a linear map with rho < 1 is 0: feasible.
                // Return the *direction* from one unit: scale so min is 1.
                let dirs = feasible_direction_zero_noise(m, &unit_gain, beta);
                return match dirs {
                    Some(v) => PowerSolve::Feasible(v),
                    None => PowerSolve::Infeasible,
                };
            }
            // Nudge to guarantee constraints hold exactly (p is the limit
            // from below).
            for v in &mut p {
                *v *= 1.0 + 10.0 * config.tol;
            }
            return PowerSolve::Feasible(p);
        }
    }
    PowerSolve::Infeasible
}

/// Zero-noise case: constraints read `p ≥ β·F·p` with
/// `F_{i,j} = g_{j,i}/g_{i,i}`. Feasibility ⇔ spectral radius of `β·F`
/// is `< 1`; a feasible vector is `p = Σ_k (βF)^k · 1` (the Neumann
/// series), computed by iterating `p ← 1 + βF·p` until it stabilizes
/// (or is declared divergent).
fn feasible_direction_zero_noise<F>(m: usize, unit_gain: &F, beta: f64) -> Option<Vec<f64>>
where
    F: Fn(usize, usize) -> f64,
{
    let mut p = vec![1.0; m];
    let mut next = vec![0.0; m];
    for _ in 0..10_000 {
        for (i, slot) in next.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &pj) in p.iter().enumerate() {
                if j != i {
                    acc += pj * unit_gain(j, i);
                }
            }
            *slot = 1.0 + beta * acc / unit_gain(i, i);
        }
        if next.iter().any(|&v| !v.is_finite() || v > 1e12) {
            return None;
        }
        let converged = p
            .iter()
            .zip(&next)
            .all(|(&a, &b)| (a - b).abs() <= 1e-12 * a.abs().max(1.0));
        std::mem::swap(&mut p, &mut next);
        if converged {
            // p solves p = 1 + βF p, hence p > βF p: strictly feasible.
            return Some(p);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two links, symmetric unit gains: own 1.0, cross c.
    fn pair_gain(c: f64) -> impl Fn(usize, usize) -> f64 {
        move |j, i| if j == i { 1.0 } else { c }
    }

    #[test]
    fn single_link_needs_noise_power_only() {
        let params = SinrParams::new(2.0, 2.0, 0.5);
        let solve = solve_min_powers(1, |_, _| 4.0, &params, &PowerIterationConfig::default());
        match solve {
            PowerSolve::Feasible(p) => {
                // p * 4 >= 2 * 0.5 -> p >= 0.25.
                assert!((p[0] - 0.25).abs() < 1e-6, "{p:?}");
            }
            PowerSolve::Infeasible => panic!("single link must be feasible"),
        }
    }

    #[test]
    fn symmetric_pair_feasible_when_coupling_small() {
        // SINR: p1 >= beta (c p2 + nu); with beta=1, c=0.25, nu=1:
        // p = beta(c p + nu) -> p (1 - 0.25) = 1 -> p = 4/3.
        let params = SinrParams::new(2.0, 1.0, 1.0);
        match solve_min_powers(
            2,
            pair_gain(0.25),
            &params,
            &PowerIterationConfig::default(),
        ) {
            PowerSolve::Feasible(p) => {
                assert!((p[0] - 4.0 / 3.0).abs() < 1e-6, "{p:?}");
                assert!((p[1] - 4.0 / 3.0).abs() < 1e-6);
            }
            PowerSolve::Infeasible => panic!("should be feasible"),
        }
    }

    #[test]
    fn symmetric_pair_infeasible_when_coupling_large() {
        // beta * c = 1.0 * 1.5 > 1: spectral radius above 1, no powers work.
        let params = SinrParams::new(2.0, 1.0, 1.0);
        assert_eq!(
            solve_min_powers(2, pair_gain(1.5), &params, &PowerIterationConfig::default()),
            PowerSolve::Infeasible
        );
    }

    #[test]
    fn boundary_coupling_is_infeasible() {
        // beta * c = 1 exactly: constraints only satisfiable in the limit.
        let params = SinrParams::new(2.0, 1.0, 1.0);
        assert_eq!(
            solve_min_powers(2, pair_gain(1.0), &params, &PowerIterationConfig::default()),
            PowerSolve::Infeasible
        );
    }

    #[test]
    fn zero_noise_returns_feasible_direction() {
        let params = SinrParams::new(2.0, 1.0, 0.0);
        match solve_min_powers(
            2,
            pair_gain(0.25),
            &params,
            &PowerIterationConfig::default(),
        ) {
            PowerSolve::Feasible(p) => {
                // Verify SINR constraints directly.
                for i in 0..2 {
                    let interference: f64 = (0..2).filter(|&j| j != i).map(|j| p[j] * 0.25).sum();
                    assert!(p[i] * 1.0 >= params.beta * interference, "{p:?}");
                }
            }
            PowerSolve::Infeasible => panic!("should be feasible"),
        }
    }

    #[test]
    fn zero_noise_infeasible_detected() {
        let params = SinrParams::new(2.0, 2.0, 0.0);
        // beta*c = 2*0.8 = 1.6 > 1.
        assert_eq!(
            solve_min_powers(2, pair_gain(0.8), &params, &PowerIterationConfig::default()),
            PowerSolve::Infeasible
        );
    }

    #[test]
    fn empty_set_is_trivially_feasible() {
        let params = SinrParams::new(2.0, 1.0, 1.0);
        assert_eq!(
            solve_min_powers(0, |_, _| 1.0, &params, &PowerIterationConfig::default()),
            PowerSolve::Feasible(vec![])
        );
    }

    #[test]
    fn three_link_chain() {
        // Links 0-1 couple strongly, 2 is far from both.
        let g = move |j: usize, i: usize| -> f64 {
            if j == i {
                1.0
            } else if (j, i) == (0, 1) || (j, i) == (1, 0) {
                0.3
            } else {
                0.001
            }
        };
        let params = SinrParams::new(2.0, 1.0, 0.1);
        match solve_min_powers(3, g, &params, &PowerIterationConfig::default()) {
            PowerSolve::Feasible(p) => {
                for i in 0..3 {
                    let interference: f64 =
                        (0..3).filter(|&j| j != i).map(|j| p[j] * g(j, i)).sum();
                    let sinr = p[i] * g(i, i) / (interference + 0.1);
                    assert!(sinr >= 1.0 - 1e-9, "link {i}: sinr {sinr}");
                }
            }
            PowerSolve::Infeasible => panic!("chain should be feasible"),
        }
    }
}
