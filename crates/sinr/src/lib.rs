//! # rayfade-sinr
//!
//! Deterministic (non-fading) SINR substrate for the `rayfade` workspace.
//!
//! Everything the paper's Sec. 2 defines for the non-fading model lives
//! here:
//!
//! * [`params`] — the `(α, β, ν)` parameter triple,
//! * [`power`] — uniform / square-root / monotone / linear / custom power
//!   assignments,
//! * [`gain`] — expected signal-strength matrices `S̄_{j,i}`, either derived
//!   from geometry via path loss or supplied raw (the reduction works for
//!   arbitrary gains),
//! * [`nonfading`] — SINR evaluation, success sets, feasibility,
//! * [`affectance`] — normalized interference `a(j, i)` and the Lemma 7
//!   machinery,
//! * [`ratio`] — cached Theorem-1 interference ratios and the incremental
//!   success-probability accumulator shared by the Rayleigh hot paths,
//! * [`amortized`] — churn-amortized quantized-log mirror of the ratio
//!   accumulator whose incremental state is bit-equal to a from-scratch
//!   rebuild (the analytic slot resolver's persistent cache),
//! * [`sparse`] — ε-truncated sparse mirror of the ratio cache with a
//!   certified per-receiver error interval, for instances far beyond the
//!   dense O(n²) limit,
//! * [`utility`] — valid utility functions (Definition 1): binary,
//!   weighted, Shannon.
//!
//! The stochastic Rayleigh layer lives in `rayfade-core`, which builds on
//! the types defined here.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod affectance;
pub mod amortized;
pub mod gain;
pub mod model;
pub mod nonfading;
pub mod params;
pub mod power;
pub mod power_iteration;
pub mod ratio;
pub mod sparse;
pub mod spectral;
pub mod utility;

pub use affectance::Affectance;
pub use amortized::AmortizedAccumulator;
pub use gain::GainMatrix;
pub use model::{NonFadingModel, SuccessModel};
pub use nonfading::{
    count_successes, greedy_feasible_subset, interference_at, is_feasible, mask_from_set,
    set_from_mask, sinr, sinr_all, succeeds, successful_links,
};
pub use params::SinrParams;
pub use power::PowerAssignment;
pub use power_iteration::{solve_min_powers, PowerIterationConfig, PowerSolve};
pub use ratio::{kahan_sum, AccumMode, InterferenceRatios, SuccessAccumulator};
pub use sparse::{
    sparse_spectral_report, truncation_budget, SparseInterferenceRatios, SparseSuccessAccumulator,
};
pub use spectral::{max_feasible_threshold, spectral_report, SpectralReport};
pub use utility::{
    is_valid_utility, BinaryUtility, LogisticUtility, ShannonUtility, UtilityFunction,
    WeightedUtility,
};
