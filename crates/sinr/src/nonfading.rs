//! Deterministic (non-fading) SINR evaluation.
//!
//! In the non-fading model a signal transmitted by `s_j` is received at
//! `r_i` with exactly its expected strength `S̄_{j,i}`; the SINR of link `i`
//! against a set `S` of simultaneously transmitting links is
//!
//! ```text
//!              S̄_{i,i}
//! γ_i^nf = ----------------------
//!          Σ_{j ∈ S, j≠i} S̄_{j,i} + ν
//! ```
//!
//! (Sec. 2 of the paper). This module evaluates SINRs, success sets, and
//! feasibility of transmission sets. Transmission sets are passed as boolean
//! masks (hot paths) or index slices (convenience).

use crate::gain::GainMatrix;
use crate::params::SinrParams;

/// Converts an index set into a boolean activity mask of length `n`.
///
/// # Panics
/// If any index is out of range. Duplicate indices are idempotent.
pub fn mask_from_set(n: usize, set: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; n];
    for &i in set {
        assert!(i < n, "link index {i} out of range (n = {n})");
        mask[i] = true;
    }
    mask
}

/// Converts a boolean activity mask back into a sorted index set.
pub fn set_from_mask(mask: &[bool]) -> Vec<usize> {
    mask.iter()
        .enumerate()
        .filter_map(|(i, &on)| on.then_some(i))
        .collect()
}

/// Total interference `Σ_{j active, j≠i} S̄_{j,i}` suffered by receiver `i`.
#[inline]
pub fn interference_at(gain: &GainMatrix, active: &[bool], i: usize) -> f64 {
    let row = gain.at_receiver(i);
    debug_assert_eq!(active.len(), row.len());
    let mut sum = 0.0;
    for (j, (&g, &on)) in row.iter().zip(active).enumerate() {
        if on && j != i {
            sum += g;
        }
    }
    sum
}

/// Non-fading SINR `γ_i^nf` of link `i` against the active set.
///
/// Whether `i` itself is marked active does not matter: the value is the
/// SINR link `i` *would* obtain transmitting alongside the other active
/// links. Returns `f64::INFINITY` when there is neither interference nor
/// noise.
#[inline]
pub fn sinr(gain: &GainMatrix, params: &SinrParams, active: &[bool], i: usize) -> f64 {
    let denom = interference_at(gain, active, i) + params.noise;
    if denom == 0.0 {
        f64::INFINITY
    } else {
        gain.signal(i) / denom
    }
}

/// Non-fading SINR of every link against the active set.
pub fn sinr_all(gain: &GainMatrix, params: &SinrParams, active: &[bool]) -> Vec<f64> {
    (0..gain.len())
        .map(|i| sinr(gain, params, active, i))
        .collect()
}

/// Whether active link `i` succeeds: it transmits and `γ_i^nf ≥ β`.
#[inline]
pub fn succeeds(gain: &GainMatrix, params: &SinrParams, active: &[bool], i: usize) -> bool {
    active[i] && sinr(gain, params, active, i) >= params.beta
}

/// Indices of all links that transmit *and* reach SINR `β` under the
/// active set.
pub fn successful_links(gain: &GainMatrix, params: &SinrParams, active: &[bool]) -> Vec<usize> {
    (0..gain.len())
        .filter(|&i| succeeds(gain, params, active, i))
        .collect()
}

/// Number of successful transmissions under the active set.
pub fn count_successes(gain: &GainMatrix, params: &SinrParams, active: &[bool]) -> usize {
    (0..gain.len())
        .filter(|&i| succeeds(gain, params, active, i))
        .count()
}

/// Whether `set` is *feasible*: all its links succeed simultaneously
/// (Sec. 6's "feasible set").
pub fn is_feasible(gain: &GainMatrix, params: &SinrParams, set: &[usize]) -> bool {
    let mask = mask_from_set(gain.len(), set);
    set.iter().all(|&i| succeeds(gain, params, &mask, i))
}

/// Largest prefix-greedy feasible subset of `set`, preserving order:
/// walks `set` and keeps each link whose addition leaves every kept link
/// successful. Useful for repairing near-feasible algorithm outputs.
pub fn greedy_feasible_subset(gain: &GainMatrix, params: &SinrParams, set: &[usize]) -> Vec<usize> {
    let mut kept: Vec<usize> = Vec::with_capacity(set.len());
    let mut mask = vec![false; gain.len()];
    for &i in set {
        mask[i] = true;
        let all_ok = kept
            .iter()
            .chain(std::iter::once(&i))
            .all(|&k| succeeds(gain, params, &mask, k));
        if all_ok {
            kept.push(i);
        } else {
            mask[i] = false;
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two symmetric links: strong own signal 10, cross gain 1, no noise.
    fn symmetric_gain() -> GainMatrix {
        GainMatrix::from_raw(2, vec![10.0, 1.0, 1.0, 10.0])
    }

    #[test]
    fn masks_round_trip() {
        let mask = mask_from_set(5, &[0, 3, 3]);
        assert_eq!(mask, vec![true, false, false, true, false]);
        assert_eq!(set_from_mask(&mask), vec![0, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mask_rejects_bad_index() {
        let _ = mask_from_set(2, &[2]);
    }

    #[test]
    fn sinr_single_link_no_noise_is_infinite() {
        let gm = symmetric_gain();
        let params = SinrParams::new(2.0, 1.0, 0.0);
        let active = mask_from_set(2, &[0]);
        assert_eq!(sinr(&gm, &params, &active, 0), f64::INFINITY);
    }

    #[test]
    fn sinr_with_interference() {
        let gm = symmetric_gain();
        let params = SinrParams::new(2.0, 1.0, 0.5);
        let active = mask_from_set(2, &[0, 1]);
        // gamma_0 = 10 / (1 + 0.5)
        assert!((sinr(&gm, &params, &active, 0) - 10.0 / 1.5).abs() < 1e-12);
        assert!((sinr(&gm, &params, &active, 1) - 10.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn success_requires_transmission() {
        let gm = symmetric_gain();
        let params = SinrParams::new(2.0, 1.0, 0.5);
        let active = mask_from_set(2, &[0]);
        assert!(succeeds(&gm, &params, &active, 0));
        // Link 1 has excellent SINR but is not transmitting.
        assert!(!succeeds(&gm, &params, &active, 1));
    }

    #[test]
    fn count_and_list_successes() {
        let gm = symmetric_gain();
        // beta = 7: together each gets 10/1 = 10 >= 7 with zero noise.
        let params = SinrParams::new(2.0, 7.0, 0.0);
        let both = mask_from_set(2, &[0, 1]);
        assert_eq!(successful_links(&gm, &params, &both), vec![0, 1]);
        assert_eq!(count_successes(&gm, &params, &both), 2);
        // beta = 11: together both fail.
        let tight = params.with_beta(11.0);
        assert_eq!(count_successes(&gm, &tight, &both), 0);
    }

    #[test]
    fn feasibility() {
        let gm = symmetric_gain();
        let loose = SinrParams::new(2.0, 7.0, 0.0);
        assert!(is_feasible(&gm, &loose, &[0, 1]));
        let tight = SinrParams::new(2.0, 11.0, 0.0);
        assert!(!is_feasible(&gm, &tight, &[0, 1]));
        assert!(is_feasible(&gm, &tight, &[0]));
        // The empty set is trivially feasible.
        assert!(is_feasible(&gm, &tight, &[]));
    }

    #[test]
    fn greedy_subset_repairs_infeasible_set() {
        let gm = symmetric_gain();
        let tight = SinrParams::new(2.0, 11.0, 0.0);
        let repaired = greedy_feasible_subset(&gm, &tight, &[0, 1]);
        assert_eq!(repaired, vec![0]);
        assert!(is_feasible(&gm, &tight, &repaired));
        // A feasible set is untouched.
        let loose = SinrParams::new(2.0, 7.0, 0.0);
        assert_eq!(greedy_feasible_subset(&gm, &loose, &[0, 1]), vec![0, 1]);
    }

    #[test]
    fn asymmetric_interference() {
        // Link 1's sender blasts link 0's receiver (gain 100) but not
        // vice versa.
        let gm = GainMatrix::from_raw(2, vec![10.0, 100.0, 0.001, 10.0]);
        let params = SinrParams::new(2.0, 1.0, 0.0);
        let both = mask_from_set(2, &[0, 1]);
        assert!(!succeeds(&gm, &params, &both, 0));
        assert!(succeeds(&gm, &params, &both, 1));
        assert_eq!(successful_links(&gm, &params, &both), vec![1]);
    }

    #[test]
    fn interference_sums_only_active_others() {
        let gm = GainMatrix::from_raw(
            3,
            vec![
                5.0, 1.0, 2.0, //
                1.0, 5.0, 1.0, //
                2.0, 1.0, 5.0,
            ],
        );
        let active = mask_from_set(3, &[0, 2]);
        // Receiver 0 hears sender 2 (gain 2.0); sender 1 inactive; self excluded.
        assert!((interference_at(&gm, &active, 0) - 2.0).abs() < 1e-12);
        // Receiver 1 hears senders 0 and 2.
        assert!((interference_at(&gm, &active, 1) - 2.0).abs() < 1e-12);
    }
}
