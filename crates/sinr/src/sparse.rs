//! ε-truncated sparse interference ratios with a certified error interval.
//!
//! The dense [`InterferenceRatios`](crate::ratio::InterferenceRatios) cache
//! stores all n² Theorem 1 ratios `ρ(j → i)`; at n = 10⁵ that is ~160 GB
//! and O(n²) to build, which caps every consumer near n ≈ 10³. Under
//! power-law path loss the ratio of a far sender decays like `d^{−α}`, so
//! almost all of the per-receiver *log-mass* `Σ_j −ln(1 − ρ(j→i))` is
//! concentrated on a few nearby senders. [`SparseInterferenceRatios`]
//! exploits this: per receiver it keeps only the ratios whose combined
//! dropped log-mass stays below a budget `τ = −ln(1 − δ)` derived from a
//! caller-chosen bound `δ` on the Theorem 1 success probability, and it
//! carries the *exact* dropped mass `τᵢ ≤ τ` per receiver.
//!
//! # The certificate
//!
//! Every Theorem 1 factor satisfies `1 ≥ 1 − ρ·q ≥ 1 − ρ` for `q ∈ [0, 1]`,
//! so dropping the factor of sender `j` at receiver `i` *overestimates*
//! `Q_i` by at most the factor `1/(1 − ρ(j→i))`. Summing over all dropped
//! senders, the sparse evaluation `p` and the exact dense value `p*` obey
//!
//! ```text
//! p · e^{−τᵢ} ≤ p* ≤ p,     τᵢ = Σ_{j dropped} −ln(1 − ρ(j→i))
//! ```
//!
//! for **every** probability vector, not just the one the truncation was
//! tuned for. With `τᵢ ≤ τ = −ln(1−δ)` the relative error is at most `δ`.
//! `δ = 0` keeps every nonzero ratio and the sparse path reproduces the
//! dense one bit-for-bit.
//!
//! # Layout
//!
//! CSR by receiver (row `i` holds the retained senders of receiver `i`,
//! column-sorted), plus a transpose (CSC) with duplicated values so that
//! changing one sender's probability touches only its O(deg) receivers.
//! The own signal `S̄_{i,i}` is carried per receiver, which lets the
//! affectance row-sums ([`affectance_row_sums`]) and the spectral-radius
//! path ([`sparse_spectral_report`]) recover their matrices from the
//! stored ratios without the dense gains.
//!
//! The geometric builder that avoids materializing any dense structure
//! lives in the `rayfade-spatial` crate; [`SparseInterferenceRatios::from_gain`]
//! is the dense-input constructor used for validation and for callers that
//! already paid for a [`GainMatrix`].

use crate::gain::GainMatrix;
use crate::params::SinrParams;
use crate::ratio::kahan_sum;
use crate::spectral::SpectralReport;
use serde::{Deserialize, Serialize};

/// Truncation budget `τ = −ln(1 − δ)` for a relative error bound `δ`.
///
/// # Panics
/// If `delta` is outside `[0, 1)`.
pub fn truncation_budget(delta: f64) -> f64 {
    assert!(
        delta.is_finite() && (0.0..1.0).contains(&delta),
        "delta must lie in [0, 1)"
    );
    -(-delta).ln_1p()
}

/// Greedily drops the smallest-`ρ` entries of one receiver row while the
/// exact dropped log-mass `Σ −ln(1 − ρ)` stays within `budget`.
///
/// `entries` are `(sender, ρ)` pairs; retained entries keep their relative
/// order (callers pass column-sorted rows and get column-sorted rows
/// back). Ties on `ρ` are broken by the sender index, so the result is
/// deterministic. Returns the exact dropped log-mass (0 when
/// `budget ≤ 0`, which keeps every entry).
pub fn truncate_smallest(entries: &mut Vec<(u32, f64)>, budget: f64) -> f64 {
    if budget <= 0.0 || entries.is_empty() {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by(|&a, &b| {
        entries[a]
            .1
            .total_cmp(&entries[b].1)
            .then(entries[a].0.cmp(&entries[b].0))
    });
    let mut dropped_mass = 0.0f64;
    let mut drop = vec![false; entries.len()];
    for &k in &order {
        let rho = entries[k].1;
        // −ln(1 − ρ); +∞ when ρ rounds to 1 (such a factor is never
        // droppable).
        let mass = -(-rho).ln_1p();
        let tentative = dropped_mass + mass;
        if tentative <= budget {
            dropped_mass = tentative;
            drop[k] = true;
        } else {
            // Entries are visited smallest-first: nothing later fits.
            break;
        }
    }
    let mut k = 0;
    entries.retain(|_| {
        let keep = !drop[k];
        k += 1;
        keep
    });
    dropped_mass
}

/// ε-truncated sparse mirror of
/// [`InterferenceRatios`](crate::ratio::InterferenceRatios): per receiver,
/// only the senders whose dropped log-mass would exceed the `δ`-derived
/// budget are retained, and the exact dropped mass `τᵢ` is carried as a
/// certificate (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseInterferenceRatios {
    n: usize,
    beta: f64,
    delta: f64,
    /// CSR row offsets: row `i` is `col[row_ptr[i]..row_ptr[i+1]]`.
    row_ptr: Vec<usize>,
    /// Retained sender indices per receiver, strictly ascending per row.
    col: Vec<u32>,
    /// `rho[k] = ρ(col[k] → i)` for `k` in row `i`; bit-equal to the dense
    /// cache for retained pairs.
    rho: Vec<f64>,
    /// `noise[i] = exp(−β·ν/S̄_{i,i})`, or 0 when `S̄_{i,i} = 0`.
    noise: Vec<f64>,
    /// Own signal `S̄_{i,i}` per receiver (0 for a dead receiver).
    signal: Vec<f64>,
    /// Certified per-receiver truncated log-mass `τᵢ` (0 when nothing was
    /// dropped).
    tau: Vec<f64>,
    /// CSC transpose offsets: column `j` (sender `j`'s receivers) is
    /// `t_receiver[t_row_ptr[j]..t_row_ptr[j+1]]`.
    t_row_ptr: Vec<usize>,
    /// Receivers affected by each sender, ascending per column.
    t_receiver: Vec<u32>,
    /// Ratio values duplicated in transpose order.
    t_rho: Vec<f64>,
}

impl SparseInterferenceRatios {
    /// Assembles a sparse ratio cache from raw CSR parts, validating the
    /// layout and building the transpose.
    ///
    /// Intended for builders that compute rows without a dense gain matrix
    /// (the `rayfade-spatial` geometric builder). Rows must be
    /// column-sorted with no diagonal entries, every `ρ` in `(0, 1]`, and
    /// every `τᵢ ≥ 0`.
    ///
    /// # Panics
    /// If any of the layout invariants above is violated, or the vector
    /// lengths are inconsistent.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        beta: f64,
        delta: f64,
        row_ptr: Vec<usize>,
        col: Vec<u32>,
        #[allow(unused_mut)] mut rho: Vec<f64>,
        noise: Vec<f64>,
        signal: Vec<f64>,
        tau: Vec<f64>,
    ) -> Self {
        assert!(beta.is_finite() && beta > 0.0, "beta must be > 0");
        assert!(
            delta.is_finite() && (0.0..1.0).contains(&delta),
            "delta must lie in [0, 1)"
        );
        let n = noise.len();
        assert_eq!(signal.len(), n, "one signal per link");
        assert_eq!(tau.len(), n, "one tau per link");
        assert_eq!(row_ptr.len(), n + 1, "row_ptr must have n + 1 offsets");
        assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
        assert_eq!(*row_ptr.last().unwrap(), col.len(), "row_ptr end mismatch");
        assert_eq!(col.len(), rho.len(), "one rho per stored pair");
        for i in 0..n {
            assert!(row_ptr[i] <= row_ptr[i + 1], "row_ptr must be monotone");
            assert!(
                tau[i].is_finite() && tau[i] >= 0.0,
                "tau must be finite and >= 0"
            );
            assert!(
                signal[i].is_finite() && signal[i] >= 0.0,
                "signal must be finite and >= 0"
            );
            let row = &col[row_ptr[i]..row_ptr[i + 1]];
            for (k, &j) in row.iter().enumerate() {
                assert!((j as usize) < n, "sender {j} out of range");
                assert!(j as usize != i, "diagonal entries must not be stored");
                if k > 0 {
                    assert!(row[k - 1] < j, "row {i} senders must be ascending");
                }
            }
        }
        for &r in &rho {
            assert!(
                r > 0.0 && r <= 1.0,
                "stored ratios must lie in (0, 1], got {r}"
            );
        }
        // Same deliberate corruption as the dense cache (see
        // `InterferenceRatios::new` and TESTING.md): scaling the stored
        // ratios here keeps the sparse path bit-consistent with the dense
        // one under the `inject-bug` validation feature.
        #[cfg(feature = "inject-bug")]
        for r in rho.iter_mut() {
            *r *= 0.999;
        }
        // Transpose via counting sort over sender index: deterministic,
        // receivers ascending per column because rows are visited in
        // ascending receiver order.
        let nnz = col.len();
        let mut t_row_ptr = vec![0usize; n + 1];
        for &j in &col {
            t_row_ptr[j as usize + 1] += 1;
        }
        for j in 0..n {
            t_row_ptr[j + 1] += t_row_ptr[j];
        }
        let mut cursor = t_row_ptr.clone();
        let mut t_receiver = vec![0u32; nnz];
        let mut t_rho = vec![0.0f64; nnz];
        for i in 0..n {
            for k in row_ptr[i]..row_ptr[i + 1] {
                let j = col[k] as usize;
                let slot = cursor[j];
                t_receiver[slot] = i as u32;
                t_rho[slot] = rho[k];
                cursor[j] += 1;
            }
        }
        SparseInterferenceRatios {
            n,
            beta,
            delta,
            row_ptr,
            col,
            rho,
            noise,
            signal,
            tau,
            t_row_ptr,
            t_receiver,
            t_rho,
        }
    }

    /// Builds the truncated cache from a dense gain matrix: per receiver
    /// the full ratio row is computed with the exact dense arithmetic,
    /// then the smallest entries are greedily dropped while the exact
    /// dropped log-mass stays within `τ = −ln(1 − δ)`.
    ///
    /// `delta = 0` retains every nonzero ratio (bit-equal to the dense
    /// cache). O(n²) like the dense constructor — the point of this entry
    /// is the downstream O(nnz) evaluation, plus validation against the
    /// dense path; truly large instances should use the geometric builder
    /// in `rayfade-spatial`, which never materializes a dense row.
    ///
    /// # Panics
    /// If `delta` is outside `[0, 1)`.
    pub fn from_gain(gain: &GainMatrix, params: &SinrParams, delta: f64) -> Self {
        let budget = truncation_budget(delta);
        let n = gain.len();
        let beta = params.beta;
        let mut row_ptr = vec![0usize; n + 1];
        let mut col = Vec::new();
        let mut rho = Vec::new();
        let mut noise = vec![0.0; n];
        let mut signal = vec![0.0; n];
        let mut tau = vec![0.0; n];
        let mut entries: Vec<(u32, f64)> = Vec::new();
        for i in 0..n {
            let s_ii = gain.signal(i);
            signal[i] = s_ii;
            if s_ii == 0.0 {
                // Dead receiver: empty row, zero noise factor — mirrors
                // the dense cache's all-zero row.
                row_ptr[i + 1] = col.len();
                continue;
            }
            noise[i] = (-beta * params.noise / s_ii).exp();
            entries.clear();
            for (j, &s_ji) in gain.at_receiver(i).iter().enumerate() {
                if j == i || s_ji == 0.0 {
                    continue;
                }
                // Same guarded form as the dense cache: s_ii/s_ji may
                // overflow to +inf for tiny s_ji, giving ratio 0.
                let r = beta / (beta + s_ii / s_ji);
                if r > 0.0 {
                    entries.push((j as u32, r));
                }
            }
            tau[i] = truncate_smallest(&mut entries, budget);
            for &(j, r) in &entries {
                col.push(j);
                rho.push(r);
            }
            row_ptr[i + 1] = col.len();
        }
        Self::from_raw_parts(beta, delta, row_ptr, col, rho, noise, signal, tau)
    }

    /// Number of links.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the instance has no links.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The SINR threshold `β` the ratios were built with.
    #[inline]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The truncation bound `δ` the cache was built for.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of retained (nonzero) sender→receiver pairs.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col.len()
    }

    /// Retained senders at receiver `i` as parallel `(senders, ratios)`
    /// slices, column-sorted.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let r = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.col[r.clone()], &self.rho[r])
    }

    /// Receivers affected by sender `j` as parallel `(receivers, ratios)`
    /// slices, receiver-sorted.
    #[inline]
    pub fn column(&self, j: usize) -> (&[u32], &[f64]) {
        let r = self.t_row_ptr[j]..self.t_row_ptr[j + 1];
        (&self.t_receiver[r.clone()], &self.t_rho[r])
    }

    /// Retained ratio `ρ(j → i)`, or 0 when the pair was truncated (or
    /// was zero to begin with) — O(log deg) binary search.
    pub fn rho(&self, j: usize, i: usize) -> f64 {
        let (cols, rhos) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(k) => rhos[k],
            Err(_) => 0.0,
        }
    }

    /// Noise factor `exp(−β·ν/S̄_{i,i})` of link `i` (0 for a dead link).
    #[inline]
    pub fn noise_factor(&self, i: usize) -> f64 {
        self.noise[i]
    }

    /// Own signal `S̄_{i,i}` of link `i`.
    #[inline]
    pub fn signal(&self, i: usize) -> f64 {
        self.signal[i]
    }

    /// Certified truncated log-mass `τᵢ` at receiver `i`: the dense
    /// Theorem 1 probability lies in `[p·e^{−τᵢ}, p]` around any sparse
    /// evaluation `p`.
    #[inline]
    pub fn tau(&self, i: usize) -> f64 {
        self.tau[i]
    }

    /// Largest per-receiver certificate `max_i τᵢ` (0 for an empty
    /// instance).
    pub fn tau_max(&self) -> f64 {
        self.tau.iter().copied().fold(0.0, f64::max)
    }
}

/// Incrementally maintained per-receiver interference products over a
/// [`SparseInterferenceRatios`] cache.
///
/// The sparse mirror of
/// [`SuccessAccumulator`](crate::ratio::SuccessAccumulator), restricted to
/// log-domain accumulation (the underflow-proof default): changing one
/// `q_j` walks sender `j`'s transpose column and touches only the O(deg j)
/// receivers that retained it, instead of O(n).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseSuccessAccumulator {
    /// Current transmission probabilities.
    q: Vec<f64>,
    /// Per-receiver `Σ ln(factor)` over nonzero factors.
    acc: Vec<f64>,
    /// Number of exactly-zero factors at each receiver.
    zeros: Vec<u32>,
}

impl SparseSuccessAccumulator {
    /// Empty accumulator (all probabilities 0) for `n` links.
    pub fn new(n: usize) -> Self {
        SparseSuccessAccumulator {
            q: vec![0.0; n],
            acc: vec![0.0; n],
            zeros: vec![0; n],
        }
    }

    /// Number of links.
    #[inline]
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the accumulator tracks no links.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Current transmission probability of link `j`.
    #[inline]
    pub fn prob(&self, j: usize) -> f64 {
        self.q[j]
    }

    /// Current transmission probabilities.
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.q
    }

    /// Resets every probability to 0 — O(n), no reallocation.
    pub fn reset(&mut self) {
        for ((q, acc), z) in self.q.iter_mut().zip(&mut self.acc).zip(&mut self.zeros) {
            *q = 0.0;
            *acc = 0.0;
            *z = 0;
        }
    }

    /// Sets the whole probability vector — O(nnz) rebuild.
    ///
    /// # Panics
    /// If lengths mismatch or any probability is outside `[0, 1]`.
    pub fn set_probs(&mut self, ratios: &SparseInterferenceRatios, probs: &[f64]) {
        assert_eq!(probs.len(), self.q.len(), "one probability per link");
        self.reset();
        for (j, &p) in probs.iter().enumerate() {
            if p != 0.0 {
                self.set_prob(ratios, j, p);
            }
        }
    }

    /// Sets every probability to the same value `q` — O(nnz).
    pub fn set_uniform(&mut self, ratios: &SparseInterferenceRatios, q: f64) {
        self.reset();
        if q != 0.0 {
            for j in 0..self.q.len() {
                self.set_prob(ratios, j, q);
            }
        }
    }

    /// Changes `q_j`, updating the O(deg j) receivers that retained
    /// sender `j`.
    ///
    /// # Panics
    /// If `q` is outside `[0, 1]` or `j` is out of range.
    pub fn set_prob(&mut self, ratios: &SparseInterferenceRatios, j: usize, q_new: f64) {
        assert!(
            (0.0..=1.0).contains(&q_new),
            "probabilities must lie in [0, 1]"
        );
        assert_eq!(ratios.len(), self.q.len(), "ratio cache size mismatch");
        let q_old = self.q[j];
        if q_old == q_new {
            return;
        }
        self.q[j] = q_new;
        let (receivers, rhos) = ratios.column(j);
        for (&i, &rho) in receivers.iter().zip(rhos) {
            let i = i as usize;
            let old = if q_old == 0.0 { 1.0 } else { 1.0 - rho * q_old };
            let new = if q_new == 0.0 { 1.0 } else { 1.0 - rho * q_new };
            if old == new {
                continue;
            }
            if old == 0.0 {
                self.zeros[i] -= 1;
            } else if old != 1.0 {
                self.acc[i] -= old.ln();
            }
            if new == 0.0 {
                self.zeros[i] += 1;
            } else if new != 1.0 {
                self.acc[i] += new.ln();
            }
        }
    }

    /// Sets `q_j = 1` (link joins the transmit set).
    #[inline]
    pub fn insert(&mut self, ratios: &SparseInterferenceRatios, j: usize) {
        self.set_prob(ratios, j, 1.0);
    }

    /// Sets `q_j = 0` (link leaves the transmit set).
    #[inline]
    pub fn remove(&mut self, ratios: &SparseInterferenceRatios, j: usize) {
        self.set_prob(ratios, j, 0.0);
    }

    /// The retained interference product at receiver `i` — O(1), one
    /// `exp`.
    #[inline]
    pub fn interference_product(&self, i: usize) -> f64 {
        if self.zeros[i] > 0 {
            return 0.0;
        }
        self.acc[i].exp()
    }

    /// Sparse Theorem 1 success probability of link `i` — the **upper**
    /// end of the certified interval (truncated factors are ≤ 1).
    #[inline]
    pub fn success_probability(&self, ratios: &SparseInterferenceRatios, i: usize) -> f64 {
        let q_i = self.q[i];
        if q_i == 0.0 {
            return 0.0;
        }
        q_i * ratios.noise_factor(i) * self.interference_product(i)
    }

    /// Success probability of link `i` conditioned on transmitting
    /// (`q_i` overridden to 1; interference unchanged) — O(1).
    #[inline]
    pub fn conditional_success_probability(
        &self,
        ratios: &SparseInterferenceRatios,
        i: usize,
    ) -> f64 {
        ratios.noise_factor(i) * self.interference_product(i)
    }

    /// Certified interval `[p·e^{−τᵢ}, p]` containing the dense Theorem 1
    /// probability of link `i`, where `p` is the sparse evaluation.
    #[inline]
    pub fn success_interval(&self, ratios: &SparseInterferenceRatios, i: usize) -> (f64, f64) {
        let hi = self.success_probability(ratios, i);
        (hi * (-ratios.tau(i)).exp(), hi)
    }

    /// All sparse success probabilities — O(n).
    pub fn success_probabilities(&self, ratios: &SparseInterferenceRatios) -> Vec<f64> {
        (0..self.q.len())
            .map(|i| self.success_probability(ratios, i))
            .collect()
    }

    /// Expected number of successes `Σ_i Q_i` (upper end of the certified
    /// interval) — O(n), compensated summation.
    pub fn expected_successes(&self, ratios: &SparseInterferenceRatios) -> f64 {
        kahan_sum((0..self.q.len()).map(|i| self.success_probability(ratios, i)))
    }

    /// Certified interval containing the dense expected number of
    /// successes: lower and upper compensated sums of the per-link
    /// intervals.
    pub fn expected_successes_interval(&self, ratios: &SparseInterferenceRatios) -> (f64, f64) {
        let lo = kahan_sum((0..self.q.len()).map(|i| self.success_interval(ratios, i).0));
        let hi = kahan_sum((0..self.q.len()).map(|i| self.success_probability(ratios, i)));
        (lo, hi)
    }

    /// Change in *weighted* expected successes if the currently-silent
    /// link `j` were activated (`q_j: 0 → 1`) — O(deg j), without mutating
    /// the accumulator. Mirrors the dense
    /// [`activation_gain`](crate::ratio::SuccessAccumulator::activation_gain),
    /// evaluated on the retained pairs.
    ///
    /// # Panics
    /// If link `j` is not currently silent (`q_j ≠ 0`).
    pub fn activation_gain(
        &self,
        ratios: &SparseInterferenceRatios,
        weights: Option<&[f64]>,
        j: usize,
    ) -> f64 {
        assert_eq!(self.q[j], 0.0, "activation_gain requires a silent link");
        let w = |i: usize| weights.map_or(1.0, |w| w[i]);
        let own = w(j) * self.conditional_success_probability(ratios, j);
        let mut lost = 0.0;
        let (receivers, rhos) = ratios.column(j);
        for (&i, &rho) in receivers.iter().zip(rhos) {
            let i = i as usize;
            if self.q[i] != 0.0 {
                lost += w(i) * self.success_probability(ratios, i) * rho;
            }
        }
        own - lost
    }
}

/// Clipped affectance row-sums `Σ_j min{1, a(j, i)}` recovered from the
/// retained ratios.
///
/// `a(j,i) = β·S̄_{j,i}/(S̄_{i,i} − β·ν)` and
/// `β·S̄_{j,i} = S̄_{i,i}·ρ/(1 − ρ)`, so each retained pair contributes
/// `min{1, (S̄_{i,i}/(S̄_{i,i} − β·ν))·ρ/(1 − ρ)}`. A link with
/// non-positive margin (`S̄_{i,i} ≤ β·ν`) receives affectance 1 from every
/// other link, mirroring the dense [`Affectance`](crate::Affectance).
/// Truncated pairs are non-negative, so each sum is a **lower bound** on
/// the dense row-sum; at `δ = 0` it is exact up to recovery rounding.
pub fn affectance_row_sums(ratios: &SparseInterferenceRatios, params: &SinrParams) -> Vec<f64> {
    let n = ratios.len();
    (0..n)
        .map(|i| {
            let margin = ratios.signal(i) - params.beta * params.noise;
            if margin <= 0.0 {
                return (n - 1) as f64;
            }
            let scale = ratios.signal(i) / margin;
            let (_, rhos) = ratios.row(i);
            kahan_sum(rhos.iter().map(|&rho| {
                if rho >= 1.0 {
                    1.0
                } else {
                    (scale * (rho / (1.0 - rho))).min(1.0)
                }
            }))
        })
        .collect()
}

/// `F` saturates here when a retained ratio rounds to exactly 1 (the
/// dense gain ratio is no longer recoverable, only known to be huge).
const F_SATURATION: f64 = 1e300;

/// Spectral radius of the normalized interference matrix of `set`,
/// restricted to the retained pairs — the sparse mirror of
/// [`spectral_report`](crate::spectral::spectral_report).
///
/// The normalized interference `F(j→i) = S̄_{j,i}/S̄_{i,i}` is recovered
/// from each retained ratio as `ρ/(β·(1 − ρ))`; truncated pairs are
/// treated as 0, so the reported radius is a lower bound on the dense one
/// (exact at `δ = 0` up to recovery rounding). The power iteration, the
/// Collatz–Wielandt bracket, and every edge case mirror the dense
/// implementation.
///
/// # Panics
/// If `set` contains an out-of-range index or a link with zero
/// `S̄_{i,i}`.
pub fn sparse_spectral_report(ratios: &SparseInterferenceRatios, set: &[usize]) -> SpectralReport {
    let m = set.len();
    for &i in set {
        assert!(i < ratios.len(), "link {i} out of range");
        assert!(
            ratios.signal(i) > 0.0,
            "link {i} has zero own-gain; normalization undefined"
        );
    }
    if m <= 1 {
        return SpectralReport {
            rho: 0.0,
            rho_lower: 0.0,
            rho_upper: 0.0,
            max_threshold: f64::INFINITY,
            iterations: 0,
        };
    }
    // Sparse sub-rows of F over the set: position-mapped, retained pairs
    // only.
    let mut pos = vec![usize::MAX; ratios.len()];
    for (a, &i) in set.iter().enumerate() {
        pos[i] = a;
    }
    let beta = ratios.beta();
    let mut f_rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
    let mut all_zero = true;
    for &i in set {
        let (cols, rhos) = ratios.row(i);
        let mut row = Vec::new();
        for (&j, &rho) in cols.iter().zip(rhos) {
            let b = pos[j as usize];
            if b == usize::MAX {
                continue;
            }
            let v = if rho >= 1.0 {
                F_SATURATION
            } else {
                rho / (beta * (1.0 - rho))
            };
            if v > 0.0 {
                row.push((b, v));
                all_zero = false;
            }
        }
        f_rows.push(row);
    }
    if all_zero {
        return SpectralReport {
            rho: 0.0,
            rho_lower: 0.0,
            rho_upper: 0.0,
            max_threshold: f64::INFINITY,
            iterations: 0,
        };
    }
    // Power iteration on the shifted matrix I + F with intersected
    // Collatz–Wielandt brackets — identical to the dense path (see
    // `crate::spectral` for why the shift and the bracket are needed).
    let mut x = vec![1.0 / m as f64; m];
    let mut y = vec![0.0; m];
    let mut lo = 1.0_f64;
    let mut hi = f64::INFINITY;
    let mut iterations = 0;
    for it in 0..10_000 {
        iterations = it + 1;
        for (a, row) in f_rows.iter().enumerate() {
            let fx: f64 = row.iter().map(|&(b, fab)| fab * x[b]).sum();
            y[a] = x[a] + fx;
        }
        if x.iter().all(|&v| v > 0.0) {
            let (mut l, mut h) = (f64::INFINITY, 0.0_f64);
            for a in 0..m {
                let r = y[a] / x[a];
                l = l.min(r);
                h = h.max(r);
            }
            lo = lo.max(l);
            hi = hi.min(h);
        }
        let norm: f64 = y.iter().sum();
        debug_assert!(
            norm >= 1.0 - 1e-12,
            "I + F cannot shrink an L1-normalized vector"
        );
        y.iter_mut().for_each(|v| *v /= norm);
        std::mem::swap(&mut x, &mut y);
        if hi - lo <= 1e-13 * hi {
            break;
        }
    }
    let shifted_rho = if hi.is_finite() { 0.5 * (lo + hi) } else { lo };
    let rho = (shifted_rho - 1.0).max(0.0);
    SpectralReport {
        rho,
        rho_lower: (lo - 1.0).max(0.0),
        rho_upper: if hi.is_finite() {
            hi - 1.0
        } else {
            f64::INFINITY
        },
        max_threshold: if rho > 0.0 { 1.0 / rho } else { f64::INFINITY },
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::{AccumMode, InterferenceRatios, SuccessAccumulator};
    use crate::spectral::spectral_report;
    use crate::Affectance;

    fn gain4() -> GainMatrix {
        GainMatrix::from_raw(
            4,
            vec![
                10.0, 2.0, 0.3, 0.01, //
                2.0, 8.0, 0.5, 0.02, //
                0.3, 0.5, 12.0, 1.0, //
                0.01, 0.02, 1.0, 9.0,
            ],
        )
    }

    fn params() -> SinrParams {
        SinrParams::new(2.0, 1.5, 0.2)
    }

    #[test]
    fn delta_zero_is_bit_equal_to_dense() {
        let gm = gain4();
        let p = params();
        let dense = InterferenceRatios::new(&gm, &p);
        let sparse = SparseInterferenceRatios::from_gain(&gm, &p, 0.0);
        assert_eq!(sparse.nnz(), 12, "all off-diagonal pairs retained");
        for i in 0..4 {
            assert_eq!(sparse.noise_factor(i), dense.noise_factor(i));
            assert_eq!(sparse.tau(i), 0.0);
            for j in 0..4 {
                assert_eq!(sparse.rho(j, i), dense.rho(j, i), "rho({j},{i})");
            }
        }
        assert_eq!(sparse.tau_max(), 0.0);
    }

    #[test]
    fn truncation_drops_small_ratios_and_certifies_the_mass() {
        let gm = gain4();
        let p = params();
        let dense = InterferenceRatios::new(&gm, &p);
        let delta = 0.05;
        let sparse = SparseInterferenceRatios::from_gain(&gm, &p, delta);
        let budget = truncation_budget(delta);
        assert!(sparse.nnz() < 12, "weak pairs must be dropped");
        for i in 0..4 {
            // Certified mass equals the exact dropped mass and respects
            // the budget.
            let dropped: f64 = (0..4)
                .filter(|&j| dense.rho(j, i) > 0.0 && sparse.rho(j, i) == 0.0)
                .map(|j| -(-dense.rho(j, i)).ln_1p())
                .sum();
            assert!((sparse.tau(i) - dropped).abs() < 1e-15, "link {i}");
            assert!(sparse.tau(i) <= budget + 1e-15);
            // Retained values are bit-equal to the dense cache.
            for j in 0..4 {
                let r = sparse.rho(j, i);
                if r != 0.0 {
                    assert_eq!(r, dense.rho(j, i));
                }
            }
        }
    }

    #[test]
    fn accumulator_matches_dense_at_delta_zero() {
        let gm = gain4();
        let p = params();
        let dense_r = InterferenceRatios::new(&gm, &p);
        let sparse_r = SparseInterferenceRatios::from_gain(&gm, &p, 0.0);
        let mut dense = SuccessAccumulator::new(4, AccumMode::LogDomain);
        let mut sparse = SparseSuccessAccumulator::new(4);
        dense.set_probs(&dense_r, &[0.8, 0.0, 0.3, 1.0]);
        sparse.set_probs(&sparse_r, &[0.8, 0.0, 0.3, 1.0]);
        dense.set_prob(&dense_r, 1, 0.5);
        sparse.set_prob(&sparse_r, 1, 0.5);
        dense.remove(&dense_r, 3);
        sparse.remove(&sparse_r, 3);
        for i in 0..4 {
            let d = dense.success_probability(&dense_r, i);
            let s = sparse.success_probability(&sparse_r, i);
            assert!((d - s).abs() <= 1e-15 * d.abs().max(1.0), "link {i}");
            let (lo, hi) = sparse.success_interval(&sparse_r, i);
            assert_eq!(lo, hi, "tau = 0 collapses the interval");
        }
        assert!(
            (dense.expected_successes(&dense_r) - sparse.expected_successes(&sparse_r)).abs()
                < 1e-14
        );
    }

    #[test]
    fn certified_interval_contains_dense_value() {
        let gm = gain4();
        let p = params();
        let dense_r = InterferenceRatios::new(&gm, &p);
        for delta in [1e-6, 0.05, 0.5, 0.99] {
            let sparse_r = SparseInterferenceRatios::from_gain(&gm, &p, delta);
            let probs = [0.9, 0.4, 1.0, 0.7];
            let mut dense = SuccessAccumulator::new(4, AccumMode::LogDomain);
            let mut sparse = SparseSuccessAccumulator::new(4);
            dense.set_probs(&dense_r, &probs);
            sparse.set_probs(&sparse_r, &probs);
            for i in 0..4 {
                let d = dense.success_probability(&dense_r, i);
                let (lo, hi) = sparse.success_interval(&sparse_r, i);
                assert!(
                    lo - 1e-12 <= d && d <= hi + 1e-12,
                    "delta={delta} link {i}: {d} not in [{lo}, {hi}]"
                );
            }
            let (lo, hi) = sparse.expected_successes_interval(&sparse_r);
            let d = dense.expected_successes(&dense_r);
            assert!(lo - 1e-12 <= d && d <= hi + 1e-12, "delta={delta}");
        }
    }

    #[test]
    fn activation_gain_matches_dense_at_delta_zero() {
        let gm = gain4();
        let p = params();
        let dense_r = InterferenceRatios::new(&gm, &p);
        let sparse_r = SparseInterferenceRatios::from_gain(&gm, &p, 0.0);
        let mut dense = SuccessAccumulator::new(4, AccumMode::LogDomain);
        let mut sparse = SparseSuccessAccumulator::new(4);
        for j in [0, 2] {
            dense.insert(&dense_r, j);
            sparse.insert(&sparse_r, j);
        }
        let w = [2.0, 1.0, 3.0, 0.5];
        for j in [1, 3] {
            let d = dense.activation_gain(&dense_r, Some(&w), j);
            let s = sparse.activation_gain(&sparse_r, Some(&w), j);
            assert!((d - s).abs() < 1e-14, "candidate {j}: {d} vs {s}");
        }
    }

    #[test]
    fn transpose_round_trips_every_stored_pair() {
        let gm = gain4();
        let sparse = SparseInterferenceRatios::from_gain(&gm, &params(), 0.05);
        let mut via_rows = Vec::new();
        for i in 0..sparse.len() {
            let (cols, rhos) = sparse.row(i);
            for (&j, &r) in cols.iter().zip(rhos) {
                via_rows.push((i as u32, j, r.to_bits()));
            }
        }
        let mut via_cols = Vec::new();
        for j in 0..sparse.len() {
            let (recvs, rhos) = sparse.column(j);
            for (&i, &r) in recvs.iter().zip(rhos) {
                via_cols.push((i, j as u32, r.to_bits()));
            }
        }
        via_rows.sort_unstable();
        via_cols.sort_unstable();
        assert_eq!(via_rows, via_cols);
    }

    #[test]
    fn dead_receiver_gets_empty_row_and_zero_noise() {
        let gm = GainMatrix::from_raw(2, vec![0.0, 5.0, 0.0, 10.0]);
        let p = SinrParams::new(2.0, 2.0, 0.5);
        let sparse = SparseInterferenceRatios::from_gain(&gm, &p, 0.1);
        assert_eq!(sparse.noise_factor(0), 0.0);
        assert_eq!(sparse.row(0).0.len(), 0);
        assert_eq!(sparse.signal(0), 0.0);
        let mut acc = SparseSuccessAccumulator::new(2);
        acc.set_uniform(&sparse, 1.0);
        assert_eq!(acc.success_probability(&sparse, 0), 0.0);
    }

    #[test]
    fn empty_and_singleton_instances_work() {
        let p = params();
        for n in [0usize, 1] {
            let gm = GainMatrix::from_raw(n, vec![2.0; n * n]);
            let sparse = SparseInterferenceRatios::from_gain(&gm, &p, 0.3);
            assert_eq!(sparse.len(), n);
            assert_eq!(sparse.nnz(), 0);
            let mut acc = SparseSuccessAccumulator::new(n);
            acc.set_uniform(&sparse, 0.5);
            let (lo, hi) = acc.expected_successes_interval(&sparse);
            assert!(lo <= hi);
        }
    }

    #[test]
    fn affectance_row_sums_match_dense_at_delta_zero() {
        let gm = gain4();
        let p = params();
        let sparse = SparseInterferenceRatios::from_gain(&gm, &p, 0.0);
        let dense = Affectance::new(&gm, &p);
        let all: Vec<usize> = (0..4).collect();
        let sums = affectance_row_sums(&sparse, &p);
        for (i, &sum) in sums.iter().enumerate() {
            let want = dense.in_affectance(&all, i);
            assert!(
                (sum - want).abs() <= 1e-12 * want.max(1.0),
                "link {i}: {sum} vs {want}"
            );
        }
    }

    #[test]
    fn affectance_row_sums_handle_hopeless_links() {
        let gm = GainMatrix::from_raw(2, vec![0.5, 0.0, 0.0, 10.0]);
        let p = SinrParams::new(2.0, 1.0, 1.0); // beta*nu = 1 > 0.5
        let sparse = SparseInterferenceRatios::from_gain(&gm, &p, 0.0);
        let sums = affectance_row_sums(&sparse, &p);
        assert_eq!(sums[0], 1.0, "hopeless link: unit affectance from peer");
    }

    #[test]
    fn sparse_spectral_matches_dense_at_delta_zero() {
        let gm = gain4();
        let p = params();
        let sparse = SparseInterferenceRatios::from_gain(&gm, &p, 0.0);
        for set in [vec![0usize, 1], vec![0, 1, 2, 3], vec![1, 3]] {
            let d = spectral_report(&gm, &set);
            let s = sparse_spectral_report(&sparse, &set);
            assert!(
                (d.rho - s.rho).abs() <= 1e-10 * d.rho.max(1.0),
                "set {set:?}: {} vs {}",
                s.rho,
                d.rho
            );
            assert!(s.rho_lower <= s.rho + 1e-12 && s.rho <= s.rho_upper + 1e-12);
        }
        // Singleton and empty sets are unbounded, like the dense path.
        assert_eq!(
            sparse_spectral_report(&sparse, &[0]).max_threshold,
            f64::INFINITY
        );
        assert_eq!(
            sparse_spectral_report(&sparse, &[]).max_threshold,
            f64::INFINITY
        );
    }

    #[test]
    fn truncate_smallest_prefers_small_ratios_and_breaks_ties_by_index() {
        let mut entries = vec![(0u32, 0.5), (1, 0.01), (2, 0.01), (3, 0.3)];
        // Budget fits only one of the two tied 0.01 entries: index 1 goes.
        let budget = 0.015;
        let dropped = truncate_smallest(&mut entries, budget);
        assert_eq!(
            entries.iter().map(|e| e.0).collect::<Vec<_>>(),
            vec![0, 2, 3]
        );
        assert!((dropped - (-(-0.01f64).ln_1p())).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "senders must be ascending")]
    fn from_raw_parts_rejects_unsorted_rows() {
        let _ = SparseInterferenceRatios::from_raw_parts(
            1.0,
            0.0,
            vec![0, 2, 2, 2],
            vec![2, 1],
            vec![0.5, 0.5],
            vec![1.0; 3],
            vec![1.0; 3],
            vec![0.0; 3],
        );
    }

    #[test]
    #[should_panic(expected = "diagonal entries must not be stored")]
    fn from_raw_parts_rejects_diagonal_entries() {
        let _ = SparseInterferenceRatios::from_raw_parts(
            1.0,
            0.0,
            vec![0, 1],
            vec![0],
            vec![0.5],
            vec![1.0],
            vec![1.0],
            vec![0.0],
        );
    }

    #[test]
    #[should_panic(expected = "activation_gain requires a silent link")]
    fn activation_gain_rejects_active_link() {
        let gm = gain4();
        let sparse = SparseInterferenceRatios::from_gain(&gm, &params(), 0.0);
        let mut acc = SparseSuccessAccumulator::new(4);
        acc.insert(&sparse, 0);
        let _ = acc.activation_gain(&sparse, None, 0);
    }

    #[test]
    fn zero_factor_round_trips_through_removal() {
        // Mirror of the dense test: a ratio that rounds to exactly 1
        // yields a zero factor that must be tracked by count, not stored.
        let gm = GainMatrix::from_raw(2, vec![1e-300, 1e300, 0.0, 10.0]);
        let p = SinrParams::new(2.0, 2.0, 0.0);
        let sparse = SparseInterferenceRatios::from_gain(&gm, &p, 0.0);
        let mut acc = SparseSuccessAccumulator::new(2);
        acc.insert(&sparse, 0);
        acc.insert(&sparse, 1);
        assert_eq!(acc.success_probability(&sparse, 0), 0.0);
        acc.remove(&sparse, 1);
        assert!(acc.success_probability(&sparse, 0) > 0.0);
    }
}
