//! Expected signal-strength (gain) matrices.
//!
//! `S̄_{j,i}` is the expected strength at link `i`'s receiver of the signal
//! transmitted by link `j`'s sender. Under the geometric path-loss law this
//! is `p_j / d(s_j, r_i)^α`, but the paper's reduction (Sec. 2) holds for
//! *arbitrary* non-negative matrices — so [`GainMatrix`] can also be built
//! from raw values ([`GainMatrix::from_raw`]) to model measured or
//! adversarial propagation environments.

use crate::params::SinrParams;
use crate::power::PowerAssignment;
use rayfade_geometry::LinkGeometry;
use serde::{Deserialize, Serialize};

/// Dense matrix of expected signal strengths `S̄_{j,i}`.
///
/// Stored row-major **by receiver**: the strengths of all senders at
/// receiver `i` are contiguous, so interference sums (`Σ_j S̄_{j,i}`) walk
/// memory linearly — that sum is the innermost loop of every Monte Carlo
/// slot evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GainMatrix {
    n: usize,
    /// `g[i * n + j] = S̄_{j,i}`.
    g: Vec<f64>,
}

impl GainMatrix {
    /// Builds the matrix from link geometry, a power assignment and the
    /// path-loss exponent: `S̄_{j,i} = p_j / d(s_j, r_i)^α`.
    ///
    /// # Panics
    /// If any cross distance is zero (a sender exactly on top of a receiver
    /// has unbounded gain under the path-loss law) or any entry would be
    /// non-finite.
    pub fn from_geometry<G: LinkGeometry>(
        geometry: &G,
        power: &PowerAssignment,
        alpha: f64,
    ) -> Self {
        let n = geometry.len();
        let powers = power.powers(geometry, alpha);
        let mut g = vec![0.0; n * n];
        for i in 0..n {
            let row = &mut g[i * n..(i + 1) * n];
            for (j, slot) in row.iter_mut().enumerate() {
                let d = geometry.cross_dist(j, i);
                assert!(d > 0.0, "cross distance d(s_{j}, r_{i}) must be positive");
                let v = powers[j] / d.powf(alpha);
                assert!(v.is_finite(), "gain S({j},{i}) must be finite");
                *slot = v;
            }
        }
        GainMatrix { n, g }
    }

    /// Wraps a raw row-major-by-receiver matrix: entry `(i, j)` of the
    /// input is `S̄_{j,i}`.
    ///
    /// # Panics
    /// If dimensions mismatch or entries are negative/non-finite.
    pub fn from_raw(n: usize, g: Vec<f64>) -> Self {
        assert_eq!(g.len(), n * n, "matrix must be n*n");
        assert!(
            g.iter().all(|v| v.is_finite() && *v >= 0.0),
            "gains must be finite and non-negative"
        );
        GainMatrix { n, g }
    }

    /// Number of links.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Expected strength `S̄_{j,i}` of sender `j` at receiver `i`.
    #[inline]
    pub fn gain(&self, j: usize, i: usize) -> f64 {
        self.g[i * self.n + j]
    }

    /// Expected strength of link `i`'s own signal, `S̄_{i,i}`.
    #[inline]
    pub fn signal(&self, i: usize) -> f64 {
        self.g[i * self.n + i]
    }

    /// All sender strengths at receiver `i` (contiguous slice of length
    /// `n`, indexed by sender).
    #[inline]
    pub fn at_receiver(&self, i: usize) -> &[f64] {
        &self.g[i * self.n..(i + 1) * self.n]
    }

    /// Restriction of the matrix to a subset of links (preserving order).
    pub fn submatrix(&self, indices: &[usize]) -> GainMatrix {
        let m = indices.len();
        let mut g = vec![0.0; m * m];
        for (a, &i) in indices.iter().enumerate() {
            for (b, &j) in indices.iter().enumerate() {
                g[a * m + b] = self.gain(j, i);
            }
        }
        GainMatrix { n: m, g }
    }

    /// Whether link `i` could succeed with SINR threshold `β` even with no
    /// interference at all: `S̄_{i,i} ≥ β·ν`.
    ///
    /// Links failing this are hopeless in the non-fading model (the "large
    /// noise" case the paper excludes, Sec. 2); in the Rayleigh model they
    /// still succeed with positive probability.
    #[inline]
    pub fn feasible_alone(&self, i: usize, params: &SinrParams) -> bool {
        self.signal(i) >= params.beta * params.noise
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayfade_geometry::{Link, Network, Point};

    fn simple_net() -> Network {
        // Link 0: sender (0,0), receiver (1,0); link 1: sender (5,0), receiver (5,1).
        Network::new(vec![
            Link::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
            Link::new(Point::new(5.0, 0.0), Point::new(5.0, 1.0)),
        ])
    }

    #[test]
    fn geometry_gains_follow_path_loss() {
        let net = simple_net();
        let gm = GainMatrix::from_geometry(&net, &PowerAssignment::Uniform(2.0), 2.0);
        // S(0,0) = 2 / 1^2 = 2.
        assert!((gm.signal(0) - 2.0).abs() < 1e-12);
        // S(1,1) = 2 / 1^2 = 2.
        assert!((gm.signal(1) - 2.0).abs() < 1e-12);
        // S(0,1): sender (0,0) to receiver (5,1): d^2 = 26.
        assert!((gm.gain(0, 1) - 2.0 / 26.0).abs() < 1e-12);
        // S(1,0): sender (5,0) to receiver (1,0): d = 4.
        assert!((gm.gain(1, 0) - 2.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn at_receiver_slice_is_sender_indexed() {
        let net = simple_net();
        let gm = GainMatrix::from_geometry(&net, &PowerAssignment::Uniform(1.0), 2.0);
        let row = gm.at_receiver(0);
        assert_eq!(row.len(), 2);
        assert_eq!(row[0], gm.gain(0, 0));
        assert_eq!(row[1], gm.gain(1, 0));
    }

    #[test]
    fn raw_matrix_round_trip() {
        // Receiver-major: row i holds S(j, i) for all j.
        let gm = GainMatrix::from_raw(2, vec![10.0, 1.0, 2.0, 20.0]);
        assert_eq!(gm.signal(0), 10.0);
        assert_eq!(gm.signal(1), 20.0);
        assert_eq!(gm.gain(1, 0), 1.0);
        assert_eq!(gm.gain(0, 1), 2.0);
    }

    #[test]
    fn submatrix_preserves_entries() {
        let gm = GainMatrix::from_raw(
            3,
            vec![
                1.0, 2.0, 3.0, //
                4.0, 5.0, 6.0, //
                7.0, 8.0, 9.0,
            ],
        );
        let sub = gm.submatrix(&[0, 2]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.signal(0), gm.signal(0));
        assert_eq!(sub.signal(1), gm.signal(2));
        assert_eq!(sub.gain(1, 0), gm.gain(2, 0));
        assert_eq!(sub.gain(0, 1), gm.gain(0, 2));
    }

    #[test]
    fn feasible_alone_checks_noise_margin() {
        let gm = GainMatrix::from_raw(2, vec![10.0, 0.0, 0.0, 0.1]);
        let params = SinrParams::new(2.0, 2.0, 1.0); // beta*nu = 2.0
        assert!(gm.feasible_alone(0, &params)); // 10 >= 2
        assert!(!gm.feasible_alone(1, &params)); // 0.1 < 2
                                                 // With zero noise everyone is feasible alone.
        let no_noise = SinrParams::new(2.0, 2.0, 0.0);
        assert!(gm.feasible_alone(1, &no_noise));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_cross_distance_rejected() {
        let net = Network::new(vec![
            Link::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
            // Sender of link 1 sits exactly on receiver of link 0.
            Link::new(Point::new(1.0, 0.0), Point::new(2.0, 0.0)),
        ]);
        let _ = GainMatrix::from_geometry(&net, &PowerAssignment::Uniform(1.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "n*n")]
    fn raw_matrix_shape_checked() {
        let _ = GainMatrix::from_raw(2, vec![1.0; 3]);
    }

    #[test]
    fn square_root_power_gains() {
        let net = simple_net();
        let alpha = 2.2;
        let gm = GainMatrix::from_geometry(&net, &PowerAssignment::figure1_square_root(), alpha);
        // Both links have length 1, so p = 2 * 1^1.1 = 2 and signal = 2.
        assert!((gm.signal(0) - 2.0).abs() < 1e-12);
        assert!((gm.signal(1) - 2.0).abs() < 1e-12);
    }
}
