//! Affectance — normalized interference.
//!
//! The *affectance* of link `j` on link `i` (Halldórsson–Wattenhofer \[25\],
//! as used in the paper's Lemma 6) rescales interference so that the SINR
//! constraint of link `i` becomes "total affectance at most 1":
//!
//! ```text
//! a(j,i) = min{ 1,  β·S̄_{j,i} / (S̄_{i,i} − β·ν) }
//! ```
//!
//! For uniform power `p = 1` this specializes to the paper's formula
//! `a(j,i) = min{1, (β·d_ii^α/d_ji^α) / (1 − β·ν·d_ii^α)}`. A set `S ∋ i`
//! satisfies link `i`'s SINR constraint iff `Σ_{j∈S, j≠i} a(j,i) ≤ 1`
//! (whenever no single term clips at 1; a clipped term certifies
//! infeasibility by itself).
//!
//! Affectance is the workhorse of the capacity algorithms and of the
//! regret-learning analysis (Lemmas 6–8).

use crate::gain::GainMatrix;
use crate::params::SinrParams;
use serde::{Deserialize, Serialize};

/// Dense matrix of pairwise affectances under fixed gains and parameters.
///
/// Stored row-major by *affected* link: `a[i * n + j] = a(j, i)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Affectance {
    n: usize,
    a: Vec<f64>,
    /// Unclipped values `β·S̄_{j,i} / (S̄_{i,i} − β·ν)` — exact feasibility
    /// needs these, because a clipped entry flattens "barely infeasible"
    /// and "hopelessly infeasible" to the same 1.0.
    raw: Vec<f64>,
    /// `margin[i] = S̄_{i,i} − β·ν`; non-positive means link `i` cannot
    /// succeed even alone in the non-fading model.
    margin: Vec<f64>,
}

impl Affectance {
    /// Computes the affectance matrix from gains and model parameters.
    ///
    /// Links with non-positive noise margin (`S̄_{i,i} ≤ β·ν`) receive
    /// affectance 1 from every other link — they are infeasible regardless,
    /// and this keeps sums meaningful without special cases downstream.
    pub fn new(gain: &GainMatrix, params: &SinrParams) -> Self {
        let n = gain.len();
        let mut a = vec![0.0; n * n];
        let mut raw = vec![0.0; n * n];
        let mut margin = vec![0.0; n];
        for i in 0..n {
            let m = gain.signal(i) - params.beta * params.noise;
            margin[i] = m;
            let gains = gain.at_receiver(i);
            for j in 0..n {
                let (clipped, exact) = if j == i {
                    (0.0, 0.0)
                } else if m <= 0.0 {
                    (1.0, f64::INFINITY)
                } else {
                    let v = params.beta * gains[j] / m;
                    (v.min(1.0), v)
                };
                a[i * n + j] = clipped;
                raw[i * n + j] = exact;
            }
        }
        Affectance { n, a, raw, margin }
    }

    /// Number of links.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether there are no links.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Affectance `a(j, i)` of link `j` on link `i` (zero for `j == i`).
    #[inline]
    pub fn get(&self, j: usize, i: usize) -> f64 {
        self.a[i * self.n + j]
    }

    /// Whether link `i` can succeed alone (`S̄_{i,i} > β·ν`).
    #[inline]
    pub fn feasible_alone(&self, i: usize) -> bool {
        self.margin[i] > 0.0
    }

    /// Incoming affectance on `i` from all links in `set` (excluding `i`):
    /// `Σ_{j∈set, j≠i} a(j, i)`.
    pub fn in_affectance(&self, set: &[usize], i: usize) -> f64 {
        set.iter()
            .filter(|&&j| j != i)
            .map(|&j| self.get(j, i))
            .sum()
    }

    /// Outgoing affectance of `j` onto all links in `set` (excluding `j`):
    /// `Σ_{i∈set, i≠j} a(j, i)`.
    pub fn out_affectance(&self, j: usize, set: &[usize]) -> f64 {
        set.iter()
            .filter(|&&i| i != j)
            .map(|&i| self.get(j, i))
            .sum()
    }

    /// Incoming affectance using an activity mask instead of an index set.
    pub fn in_affectance_mask(&self, active: &[bool], i: usize) -> f64 {
        debug_assert_eq!(active.len(), self.n);
        let row = &self.a[i * self.n..(i + 1) * self.n];
        row.iter()
            .zip(active)
            .enumerate()
            .filter(|&(j, (_, &on))| on && j != i)
            .map(|(_, (&v, _))| v)
            .sum()
    }

    /// Unclipped affectance `β·S̄_{j,i} / (S̄_{i,i} − β·ν)` of `j` on `i`
    /// (`∞` when `i` is infeasible alone, `0` for `j == i`).
    #[inline]
    pub fn get_unclipped(&self, j: usize, i: usize) -> f64 {
        self.raw[i * self.n + j]
    }

    /// Whether every link of `set` meets its SINR constraint, expressed via
    /// affectance: for all `i ∈ set`, the *unclipped* incoming affectance
    /// is at most 1 and `i` is feasible alone.
    ///
    /// This is exactly equivalent to [`crate::nonfading::is_feasible`]:
    /// `Σ_{j∈S,j≠i} β·S̄_{j,i}/(S̄_{i,i} − β·ν) ≤ 1  ⇔  γ_i^nf ≥ β`.
    pub fn is_feasible(&self, set: &[usize]) -> bool {
        set.iter().all(|&i| {
            self.feasible_alone(i)
                && set
                    .iter()
                    .filter(|&&j| j != i)
                    .map(|&j| self.get_unclipped(j, i))
                    .sum::<f64>()
                    <= 1.0 + 1e-12
        })
    }

    /// The paper's Lemma 7 (= [24, Lemma 8]) filter: given a feasible set
    /// `L`, returns `L' = {u ∈ L : Σ_{v∈L} a(u, v) ≤ 2}`, which satisfies
    /// `|L'| ≥ |L|/2`.
    ///
    /// Intuition: the *total* affectance inside a feasible set is at most
    /// `|L|`, so at most half its members can radiate more than 2.
    pub fn low_out_affectance_half(&self, set: &[usize]) -> Vec<usize> {
        set.iter()
            .copied()
            .filter(|&u| self.out_affectance(u, set) <= 2.0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nonfading;

    fn gain3() -> GainMatrix {
        GainMatrix::from_raw(
            3,
            vec![
                10.0, 1.0, 0.5, //
                1.0, 10.0, 0.5, //
                0.5, 0.5, 10.0,
            ],
        )
    }

    #[test]
    fn affectance_formula() {
        let gm = gain3();
        let params = SinrParams::new(2.0, 2.0, 1.0);
        let a = Affectance::new(&gm, &params);
        // margin_0 = 10 - 2 = 8; a(1,0) = min(1, 2*1/8) = 0.25.
        assert!((a.get(1, 0) - 0.25).abs() < 1e-12);
        // a(2,0) = min(1, 2*0.5/8) = 0.125.
        assert!((a.get(2, 0) - 0.125).abs() < 1e-12);
        // Self-affectance is zero.
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    fn affectance_clips_at_one() {
        let gm = GainMatrix::from_raw(2, vec![10.0, 1000.0, 1000.0, 10.0]);
        let params = SinrParams::new(2.0, 1.0, 0.0);
        let a = Affectance::new(&gm, &params);
        assert_eq!(a.get(1, 0), 1.0);
    }

    #[test]
    fn hopeless_link_has_unit_incoming_affectance() {
        let gm = GainMatrix::from_raw(2, vec![0.5, 0.0, 0.0, 10.0]);
        let params = SinrParams::new(2.0, 1.0, 1.0); // beta*nu = 1 > 0.5
        let a = Affectance::new(&gm, &params);
        assert!(!a.feasible_alone(0));
        assert!(a.feasible_alone(1));
        assert_eq!(a.get(1, 0), 1.0);
        assert!(!a.is_feasible(&[0]));
    }

    #[test]
    fn feasibility_matches_direct_sinr_check() {
        let gm = gain3();
        for beta in [0.5, 2.0, 5.0, 9.0, 15.0] {
            let params = SinrParams::new(2.0, beta, 0.5);
            let a = Affectance::new(&gm, &params);
            for set in [
                vec![],
                vec![0],
                vec![1],
                vec![2],
                vec![0, 1],
                vec![0, 2],
                vec![1, 2],
                vec![0, 1, 2],
            ] {
                assert_eq!(
                    a.is_feasible(&set),
                    nonfading::is_feasible(&gm, &params, &set),
                    "beta={beta} set={set:?}"
                );
            }
        }
    }

    #[test]
    fn in_and_out_affectance_sums() {
        let gm = gain3();
        let params = SinrParams::new(2.0, 2.0, 1.0);
        let a = Affectance::new(&gm, &params);
        let set = vec![0, 1, 2];
        let in0 = a.in_affectance(&set, 0);
        assert!((in0 - (a.get(1, 0) + a.get(2, 0))).abs() < 1e-12);
        let out2 = a.out_affectance(2, &set);
        assert!((out2 - (a.get(2, 0) + a.get(2, 1))).abs() < 1e-12);
        // Mask variant agrees.
        let mask = nonfading::mask_from_set(3, &set);
        assert!((a.in_affectance_mask(&mask, 0) - in0).abs() < 1e-12);
    }

    #[test]
    fn lemma7_filter_keeps_at_least_half() {
        let gm = gain3();
        let params = SinrParams::new(2.0, 2.0, 0.5);
        let a = Affectance::new(&gm, &params);
        // Whole set is feasible here (small cross gains).
        let set = vec![0, 1, 2];
        assert!(a.is_feasible(&set));
        let filtered = a.low_out_affectance_half(&set);
        assert!(filtered.len() * 2 >= set.len());
        for &u in &filtered {
            assert!(a.out_affectance(u, &set) <= 2.0);
        }
    }

    #[test]
    fn empty_set_is_feasible() {
        let gm = gain3();
        let a = Affectance::new(&gm, &SinrParams::new(2.0, 1.0, 0.0));
        assert!(a.is_feasible(&[]));
    }
}
