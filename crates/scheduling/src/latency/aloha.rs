//! ALOHA-style distributed contention resolution.
//!
//! In each slot every *pending* link transmits with some probability; on
//! success it leaves the system (paper Sec. 4: "If it is successful, the
//! sender stops transmitting, otherwise it continues running the
//! algorithm"). Kesselheim–Vöcking \[9\] show an `O(log² n)`-style guarantee
//! for probabilities inversely proportional to contention.
//!
//! The protocol is model-agnostic: success resolution goes through
//! [`SuccessModel`], so the very same code executes under the non-fading
//! model and (via `rayfade-core`'s Rayleigh model) under fading. The
//! paper's 4× repetition transform (Sec. 4) is the `repeats` knob: each
//! *logical step* consists of `repeats` physical slots with independent
//! transmit draws, and a link finishes when it succeeds in any of them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayfade_sinr::SuccessModel;
use serde::{Deserialize, Serialize};

use crate::schedule::Schedule;

/// Transmission-probability policy for pending links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AlohaPolicy {
    /// Every pending link transmits with the same fixed probability.
    Fixed(f64),
    /// Probability `c / k` where `k` is the number of still-pending links —
    /// the contention-proportional choice of ALOHA analyses. Clamped to
    /// `[0, cap]`.
    InversePending {
        /// Numerator constant `c`.
        c: f64,
        /// Upper clamp; the paper's transformation assumes probabilities
        /// at most 1/2 (Sec. 4), which is the default cap.
        cap: f64,
    },
    /// Exponential backoff: start at `init`, multiply by `factor` after
    /// every unsuccessful *logical step* of that link (per-link state).
    Backoff {
        /// Initial probability.
        init: f64,
        /// Multiplicative decay per failed step, in `(0, 1]`.
        factor: f64,
        /// Lower clamp so probabilities never reach zero.
        floor: f64,
    },
    /// Sawtooth probing: every link cycles deterministically through the
    /// probability ladder `1/2, 1/4, …, 1/2^levels` and restarts. Each
    /// pending link eventually transmits at a probability matched to the
    /// true contention — with **no global knowledge at all**, the fully
    /// distributed regime of Kesselheim–Vöcking-style protocols \[9\].
    Sawtooth {
        /// Number of ladder levels (the deepest is `2^-levels`).
        levels: u32,
    },
}

impl AlohaPolicy {
    /// The `1/2`-capped contention-proportional default.
    pub fn default_inverse() -> Self {
        AlohaPolicy::InversePending { c: 1.0, cap: 0.5 }
    }
}

/// Configuration of an ALOHA run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlohaConfig {
    /// Probability policy.
    pub policy: AlohaPolicy,
    /// Physical slots per logical step (1 in the non-fading model; the
    /// paper's Rayleigh transformation uses 4).
    pub repeats: usize,
    /// Give up after this many logical steps (pending links are reported
    /// unfinished rather than looping forever).
    pub max_steps: usize,
    /// RNG seed for the transmit draws.
    pub seed: u64,
}

impl Default for AlohaConfig {
    fn default() -> Self {
        AlohaConfig {
            policy: AlohaPolicy::default_inverse(),
            repeats: 1,
            max_steps: 100_000,
            seed: 0xa10a,
        }
    }
}

/// Outcome of an ALOHA run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlohaOutcome {
    /// Physical slot (0-based) in which each link first succeeded;
    /// `None` when it never did within the budget.
    pub success_slot: Vec<Option<usize>>,
    /// Total physical slots executed.
    pub slots_used: usize,
    /// The realized schedule: per physical slot, the links that
    /// *transmitted* (successful or not) — useful for replay/inspection.
    pub transmissions: Schedule,
}

impl AlohaOutcome {
    /// Number of links that finished.
    pub fn finished(&self) -> usize {
        self.success_slot.iter().filter(|s| s.is_some()).count()
    }

    /// Latest success slot (the empirical makespan), if all links finished.
    pub fn makespan(&self) -> Option<usize> {
        let mut worst = 0;
        for s in &self.success_slot {
            worst = worst.max((*s)? + 1);
        }
        Some(worst)
    }
}

/// Runs the ALOHA protocol against an arbitrary success model.
///
/// `eligible` optionally restricts the protocol to a subset of links
/// (others are treated as already finished with `success_slot = None`);
/// pass `None` to run on all links.
pub fn run_aloha<M: SuccessModel>(
    model: &mut M,
    config: &AlohaConfig,
    eligible: Option<&[usize]>,
) -> AlohaOutcome {
    let n = model.len();
    assert!(config.repeats >= 1, "repeats must be at least 1");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut pending: Vec<bool> = match eligible {
        None => vec![true; n],
        Some(set) => {
            let mut v = vec![false; n];
            for &i in set {
                assert!(i < n, "eligible link {i} out of range");
                v[i] = true;
            }
            v
        }
    };
    let mut pending_count = pending.iter().filter(|&&p| p).count();
    let mut success_slot: Vec<Option<usize>> = vec![None; n];
    let mut backoff_prob: Vec<f64> = match &config.policy {
        AlohaPolicy::Backoff { init, .. } => vec![*init; n],
        _ => Vec::new(),
    };

    let mut transmissions = Schedule::new();
    let mut slot = 0usize;
    let mut active = vec![false; n];

    // `step` doubles as the sawtooth ladder position.
    for step_counter in 0..config.max_steps as u64 {
        if pending_count == 0 {
            break;
        }
        // One logical step = `repeats` physical slots with independent
        // transmit draws; the pending set is only updated by successes.
        for _rep in 0..config.repeats {
            if pending_count == 0 {
                break;
            }
            for i in 0..n {
                active[i] = if pending[i] {
                    let q = match &config.policy {
                        AlohaPolicy::Fixed(q) => *q,
                        AlohaPolicy::InversePending { c, cap } => {
                            (c / pending_count as f64).min(*cap)
                        }
                        AlohaPolicy::Backoff { .. } => backoff_prob[i],
                        AlohaPolicy::Sawtooth { levels } => {
                            let level = (step_counter % u64::from(*levels)) + 1;
                            0.5f64.powi(level as i32)
                        }
                    };
                    rng.gen_bool(q.clamp(0.0, 1.0))
                } else {
                    false
                };
            }
            transmissions.push_slot(
                active
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &a)| a.then_some(i))
                    .collect(),
            );
            for i in model.resolve_slot(&active) {
                if pending[i] {
                    pending[i] = false;
                    pending_count -= 1;
                    success_slot[i] = Some(slot);
                }
            }
            slot += 1;
        }
        // Backoff bookkeeping once per logical step.
        if let AlohaPolicy::Backoff { factor, floor, .. } = &config.policy {
            for i in 0..n {
                if pending[i] {
                    backoff_prob[i] = (backoff_prob[i] * factor).max(*floor);
                }
            }
        }
    }
    AlohaOutcome {
        success_slot,
        slots_used: slot,
        transmissions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayfade_geometry::PaperTopology;
    use rayfade_sinr::{GainMatrix, NonFadingModel, PowerAssignment, SinrParams};

    fn paper_model(seed: u64, n: usize) -> NonFadingModel {
        let net = PaperTopology {
            links: n,
            side: 600.0,
            min_length: 20.0,
            max_length: 40.0,
        }
        .generate(seed);
        let params = SinrParams::figure1();
        let gm = GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha);
        NonFadingModel::new(gm, params)
    }

    #[test]
    fn all_links_eventually_succeed_nonfading() {
        let mut model = paper_model(1, 30);
        let outcome = run_aloha(&mut model, &AlohaConfig::default(), None);
        assert_eq!(outcome.finished(), 30);
        let makespan = outcome.makespan().expect("all finished");
        assert!(makespan <= outcome.slots_used);
        // Success slots are consistent with the recorded transmissions.
        for (i, s) in outcome.success_slot.iter().enumerate() {
            let t = s.expect("finished");
            assert!(outcome.transmissions.slots()[t].contains(&i));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = AlohaConfig::default();
        let a = run_aloha(&mut paper_model(2, 20), &cfg, None);
        let b = run_aloha(&mut paper_model(2, 20), &cfg, None);
        assert_eq!(a, b);
        let c = run_aloha(
            &mut paper_model(2, 20),
            &AlohaConfig {
                seed: 7,
                ..cfg.clone()
            },
            None,
        );
        assert_ne!(a.success_slot, c.success_slot);
    }

    #[test]
    fn eligible_subset_only() {
        let mut model = paper_model(3, 10);
        let outcome = run_aloha(&mut model, &AlohaConfig::default(), Some(&[0, 4, 7]));
        assert_eq!(outcome.finished(), 3);
        for (i, s) in outcome.success_slot.iter().enumerate() {
            if [0, 4, 7].contains(&i) {
                assert!(s.is_some());
            } else {
                assert!(s.is_none());
            }
        }
    }

    #[test]
    fn repeats_multiply_physical_slots() {
        let mut model = paper_model(4, 8);
        let cfg = AlohaConfig {
            repeats: 4,
            max_steps: 50,
            ..AlohaConfig::default()
        };
        let outcome = run_aloha(&mut model, &cfg, None);
        assert_eq!(outcome.finished(), 8);
        // Slots used is a multiple of nothing in general (early exit), but
        // transmissions were recorded for every physical slot.
        assert_eq!(outcome.transmissions.len(), outcome.slots_used);
    }

    #[test]
    fn fixed_policy_and_backoff_terminate() {
        for policy in [
            AlohaPolicy::Fixed(0.2),
            AlohaPolicy::Backoff {
                init: 0.5,
                factor: 0.9,
                floor: 0.01,
            },
        ] {
            let mut model = paper_model(5, 12);
            let outcome = run_aloha(
                &mut model,
                &AlohaConfig {
                    policy,
                    ..AlohaConfig::default()
                },
                None,
            );
            assert_eq!(outcome.finished(), 12);
        }
    }

    #[test]
    fn sawtooth_policy_terminates_without_global_knowledge() {
        let mut model = paper_model(6, 40);
        let outcome = run_aloha(
            &mut model,
            &AlohaConfig {
                policy: AlohaPolicy::Sawtooth { levels: 7 },
                max_steps: 50_000,
                ..AlohaConfig::default()
            },
            None,
        );
        assert_eq!(outcome.finished(), 40);
    }

    #[test]
    fn sawtooth_probabilities_cycle() {
        // With a single isolated link and levels = 2, the link transmits
        // with probability alternating 1/2, 1/4; it finishes as soon as it
        // transmits at all, so this just checks validity + termination.
        let gm = GainMatrix::from_raw(1, vec![10.0]);
        let params = SinrParams::new(2.0, 1.0, 0.1);
        let mut model = NonFadingModel::new(gm, params);
        let outcome = run_aloha(
            &mut model,
            &AlohaConfig {
                policy: AlohaPolicy::Sawtooth { levels: 2 },
                max_steps: 1000,
                ..AlohaConfig::default()
            },
            None,
        );
        assert_eq!(outcome.finished(), 1);
    }

    #[test]
    fn budget_exhaustion_reports_unfinished() {
        // An impossible link (cannot beat noise) never succeeds.
        let gm = GainMatrix::from_raw(2, vec![10.0, 0.0, 0.0, 0.5]);
        let params = SinrParams::new(2.0, 1.0, 1.0);
        let mut model = NonFadingModel::new(gm, params);
        let outcome = run_aloha(
            &mut model,
            &AlohaConfig {
                max_steps: 50,
                ..AlohaConfig::default()
            },
            None,
        );
        assert!(outcome.success_slot[0].is_some());
        assert!(outcome.success_slot[1].is_none());
        assert_eq!(outcome.finished(), 1);
        assert!(outcome.makespan().is_none());
    }

    #[test]
    fn empty_model() {
        let gm = GainMatrix::from_raw(0, vec![]);
        let mut model = NonFadingModel::new(gm, SinrParams::new(2.0, 1.0, 0.0));
        let outcome = run_aloha(&mut model, &AlohaConfig::default(), None);
        assert_eq!(outcome.slots_used, 0);
        assert_eq!(outcome.finished(), 0);
        assert_eq!(outcome.makespan(), Some(0));
    }

    #[test]
    #[should_panic(expected = "repeats must be at least 1")]
    fn zero_repeats_rejected() {
        let gm = GainMatrix::from_raw(1, vec![1.0]);
        let mut model = NonFadingModel::new(gm, SinrParams::new(2.0, 1.0, 0.0));
        let _ = run_aloha(
            &mut model,
            &AlohaConfig {
                repeats: 0,
                ..AlohaConfig::default()
            },
            None,
        );
    }
}
