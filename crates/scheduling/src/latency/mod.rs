//! Latency minimization in the non-fading model.
//!
//! Minimize the number of slots until every request has been successful at
//! least once (Sec. 1.1 of the paper). The paper identifies two algorithm
//! classes (Sec. 4), both implemented here:
//!
//! * [`recursive_schedule`] — repeatedly maximize the utilization of the
//!   next slot on the remaining links (\[8\]-style); combined with a
//!   constant-factor capacity algorithm this yields an `O(log n)`
//!   approximation;
//! * [`aloha`] — ALOHA-style distributed contention resolution
//!   (\[9\]-style), where each pending link transmits with some probability
//!   each slot. This runs against any [`rayfade_sinr::SuccessModel`], so
//!   `rayfade-core` can execute the *same* protocol under Rayleigh fading
//!   (with the paper's 4× repetition transform).

pub mod aloha;

use crate::capacity::{CapacityAlgorithm, CapacityInstance};
use crate::schedule::Schedule;
use rayfade_sinr::{Affectance, GainMatrix, SinrParams};
use serde::{Deserialize, Serialize};

/// Outcome of a latency-minimization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySolution {
    /// The produced schedule; every slot is feasible.
    pub schedule: Schedule,
    /// Links that can never succeed (infeasible even alone, i.e.
    /// `S̄_{i,i} ≤ β·ν`) and were excluded from scheduling.
    pub hopeless: Vec<usize>,
}

impl LatencySolution {
    /// Latency of link `i`: the first slot it is scheduled in.
    pub fn latency_of(&self, i: usize) -> Option<usize> {
        self.schedule.first_slot_of(i)
    }

    /// Schedule length (the latency objective).
    pub fn makespan(&self) -> usize {
        self.schedule.len()
    }
}

/// Repeated single-slot maximization: run `alg` on the remaining links,
/// commit the selected set as the next slot, recurse on the rest.
///
/// Links that are infeasible alone are reported as `hopeless` and never
/// scheduled (they cannot succeed in the non-fading model at any time).
/// Termination is guaranteed: any feasible-alone link is a valid singleton
/// slot, and if `alg` ever returns an empty set for a non-empty remainder
/// the scheduler falls back to a singleton slot.
pub fn recursive_schedule<A: CapacityAlgorithm>(
    gain: &GainMatrix,
    params: &SinrParams,
    alg: &A,
) -> LatencySolution {
    let n = gain.len();
    let aff = Affectance::new(gain, params);
    let mut remaining: Vec<usize> = (0..n).filter(|&i| aff.feasible_alone(i)).collect();
    let hopeless: Vec<usize> = (0..n).filter(|&i| !aff.feasible_alone(i)).collect();
    let mut schedule = Schedule::new();
    while !remaining.is_empty() {
        let sub = gain.submatrix(&remaining);
        let inst = CapacityInstance::unweighted(&sub, params);
        let picked_local = alg.select(&inst);
        let slot: Vec<usize> = if picked_local.is_empty() {
            // Defensive fallback: schedule one link alone.
            vec![remaining[0]]
        } else {
            picked_local.iter().map(|&l| remaining[l]).collect()
        };
        remaining.retain(|i| !slot.contains(i));
        schedule.push_slot(slot);
    }
    LatencySolution { schedule, hopeless }
}

/// The trivial TDMA baseline: one link per slot, in index order, skipping
/// hopeless links. Always feasible; makespan equals the number of
/// serviceable links. Useful as the upper anchor in latency comparisons.
pub fn round_robin_schedule(gain: &GainMatrix, params: &SinrParams) -> LatencySolution {
    let aff = Affectance::new(gain, params);
    let mut schedule = Schedule::new();
    let mut hopeless = Vec::new();
    for i in 0..gain.len() {
        if aff.feasible_alone(i) {
            schedule.push_slot(vec![i]);
        } else {
            hopeless.push(i);
        }
    }
    LatencySolution { schedule, hopeless }
}

/// First-fit schedule partitioning: process links strongest-signal-first
/// and place each into the earliest slot where it fits (its insertion
/// keeps the slot feasible, tracked via unclipped affectance); open a new
/// slot when none fits.
///
/// This is the classical "coloring" style of latency minimization (cf.
/// the partitioning arguments of \[8\]); compared to
/// [`recursive_schedule`] it fills *earlier* slots greedily instead of
/// maximizing each slot, which often shortens the tail.
pub fn first_fit_schedule(
    gain: &GainMatrix,
    params: &SinrParams,
    in_budget: f64,
) -> LatencySolution {
    assert!(
        in_budget > 0.0 && in_budget <= 1.0,
        "in_budget must lie in (0, 1]"
    );
    let n = gain.len();
    let aff = Affectance::new(gain, params);
    let mut order: Vec<usize> = (0..n).filter(|&i| aff.feasible_alone(i)).collect();
    let hopeless: Vec<usize> = (0..n).filter(|&i| !aff.feasible_alone(i)).collect();
    order.sort_by(|&a, &b| {
        gain.signal(b)
            .partial_cmp(&gain.signal(a))
            .expect("signals must not be NaN")
            .then(a.cmp(&b))
    });
    let mut slots: Vec<Vec<usize>> = Vec::new();
    // cur_in[s][i]: incoming unclipped affectance of member i of slot s.
    let mut cur_in: Vec<Vec<f64>> = Vec::new();
    'links: for &i in &order {
        'slots: for (s, slot) in slots.iter_mut().enumerate() {
            let mut in_i = 0.0;
            for &j in slot.iter() {
                in_i += aff.get_unclipped(j, i);
                if in_i > in_budget {
                    continue 'slots;
                }
            }
            for (pos, &k) in slot.iter().enumerate() {
                if cur_in[s][pos] + aff.get_unclipped(i, k) > in_budget {
                    continue 'slots;
                }
            }
            for (pos, &k) in slot.iter().enumerate() {
                cur_in[s][pos] += aff.get_unclipped(i, k);
            }
            slot.push(i);
            cur_in[s].push(in_i);
            continue 'links;
        }
        slots.push(vec![i]);
        cur_in.push(vec![0.0]);
    }
    LatencySolution {
        schedule: Schedule::from_slots(slots),
        hopeless,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::greedy::GreedyCapacity;
    use rayfade_geometry::PaperTopology;
    use rayfade_sinr::PowerAssignment;

    fn paper_instance(seed: u64, n: usize) -> (GainMatrix, SinrParams) {
        let net = PaperTopology {
            links: n,
            side: 400.0,
            min_length: 20.0,
            max_length: 40.0,
        }
        .generate(seed);
        let params = SinrParams::figure1();
        let gm = GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha);
        (gm, params)
    }

    #[test]
    fn schedule_covers_all_feasible_links_with_feasible_slots() {
        for seed in 0..3 {
            let (gm, params) = paper_instance(seed, 50);
            let sol = recursive_schedule(&gm, &params, &GreedyCapacity::new());
            assert!(
                sol.hopeless.is_empty(),
                "paper instances have no hopeless links"
            );
            assert!(sol.schedule.covers_all(50), "seed {seed}");
            assert_eq!(sol.schedule.validate(&gm, &params), Ok(()), "seed {seed}");
            // Each link appears exactly once.
            let total: usize = sol.schedule.slots().iter().map(Vec::len).sum();
            assert_eq!(total, 50, "seed {seed}");
        }
    }

    #[test]
    fn hopeless_links_are_reported_not_scheduled() {
        // Link 1 cannot beat the noise.
        let gm = GainMatrix::from_raw(2, vec![10.0, 0.0, 0.0, 0.5]);
        let params = SinrParams::new(2.0, 1.0, 1.0);
        let sol = recursive_schedule(&gm, &params, &GreedyCapacity::new());
        assert_eq!(sol.hopeless, vec![1]);
        assert_eq!(sol.makespan(), 1);
        assert_eq!(sol.latency_of(0), Some(0));
        assert_eq!(sol.latency_of(1), None);
    }

    #[test]
    fn conflicting_pair_needs_two_slots() {
        let gm = GainMatrix::from_raw(2, vec![10.0, 9.0, 9.0, 10.0]);
        let params = SinrParams::new(2.0, 2.0, 0.0);
        let sol = recursive_schedule(&gm, &params, &GreedyCapacity::new());
        assert_eq!(sol.makespan(), 2);
        assert!(sol.schedule.covers_all(2));
    }

    #[test]
    fn empty_instance_gives_empty_schedule() {
        let gm = GainMatrix::from_raw(0, vec![]);
        let params = SinrParams::new(2.0, 1.0, 0.0);
        let sol = recursive_schedule(&gm, &params, &GreedyCapacity::new());
        assert_eq!(sol.makespan(), 0);
        assert!(sol.hopeless.is_empty());
    }

    #[test]
    fn round_robin_is_the_trivial_upper_anchor() {
        let (gm, params) = paper_instance(1, 20);
        let rr = round_robin_schedule(&gm, &params);
        assert_eq!(rr.makespan(), 20);
        assert!(rr.schedule.covers_all(20));
        assert_eq!(rr.schedule.validate(&gm, &params), Ok(()));
        // Any real scheduler must beat it on non-trivial instances.
        let rec = recursive_schedule(&gm, &params, &GreedyCapacity::new());
        assert!(rec.makespan() < rr.makespan());
        // Hopeless links are excluded.
        let gm2 = GainMatrix::from_raw(2, vec![10.0, 0.0, 0.0, 0.5]);
        let p2 = SinrParams::new(2.0, 1.0, 1.0);
        let rr2 = round_robin_schedule(&gm2, &p2);
        assert_eq!(rr2.makespan(), 1);
        assert_eq!(rr2.hopeless, vec![1]);
    }

    #[test]
    fn first_fit_covers_all_with_feasible_slots() {
        for seed in 0..3 {
            let (gm, params) = paper_instance(seed, 50);
            let sol = first_fit_schedule(&gm, &params, 1.0);
            assert!(sol.hopeless.is_empty());
            assert!(sol.schedule.covers_all(50), "seed {seed}");
            assert_eq!(sol.schedule.validate(&gm, &params), Ok(()), "seed {seed}");
            let total: usize = sol.schedule.slots().iter().map(Vec::len).sum();
            assert_eq!(total, 50);
        }
    }

    #[test]
    fn first_fit_competitive_with_recursive() {
        let (gm, params) = paper_instance(7, 80);
        let rec = recursive_schedule(&gm, &params, &GreedyCapacity::new());
        let ff = first_fit_schedule(&gm, &params, 1.0);
        // Neither dominates in general; both should be small here.
        assert!(ff.makespan() <= 3 * rec.makespan().max(1));
        assert!(rec.makespan() <= 3 * ff.makespan().max(1));
    }

    #[test]
    fn first_fit_reports_hopeless() {
        let gm = GainMatrix::from_raw(2, vec![10.0, 0.0, 0.0, 0.5]);
        let params = SinrParams::new(2.0, 1.0, 1.0);
        let sol = first_fit_schedule(&gm, &params, 1.0);
        assert_eq!(sol.hopeless, vec![1]);
        assert_eq!(sol.makespan(), 1);
    }

    #[test]
    #[should_panic(expected = "in_budget must lie in (0, 1]")]
    fn first_fit_budget_validated() {
        let gm = GainMatrix::from_raw(1, vec![1.0]);
        let params = SinrParams::new(2.0, 1.0, 0.0);
        let _ = first_fit_schedule(&gm, &params, 0.0);
    }

    #[test]
    fn makespan_reasonable_on_paper_instances() {
        let (gm, params) = paper_instance(4, 60);
        let sol = recursive_schedule(&gm, &params, &GreedyCapacity::new());
        // With ~50 links per slot achievable on these sparse instances the
        // schedule should be very short; sanity-bound it.
        assert!(sol.makespan() <= 20, "makespan {}", sol.makespan());
    }
}
