//! # rayfade-sched
//!
//! Non-fading SINR scheduling algorithms — the algorithm zoo that the
//! paper's reduction (implemented in `rayfade-core`) transfers to the
//! Rayleigh-fading model.
//!
//! * [`capacity`] — feasible-set selection: greedy with affectance guards
//!   (uniform/oblivious powers), joint power control, flexible data rates,
//!   and exact/local-search reference optima;
//! * [`latency`] — schedule-length minimization: repeated single-slot
//!   maximization and model-agnostic ALOHA contention resolution;
//! * [`multihop`] — layered scheduling of multi-hop requests;
//! * [`schedule`] — the validated [`schedule::Schedule`] container.
//!
//! Every selection algorithm guarantees its output is feasible in the
//! non-fading model; this is the contract the fading transfer consumes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod capacity;
pub mod channels;
pub mod latency;
pub mod multihop;
pub mod schedule;

pub use capacity::flexible::{FlexibleCapacity, FlexibleSolution};
pub use capacity::greedy::{GreedyCapacity, GreedyOrder, RayleighGreedy};
pub use capacity::optimal::{ExactCapacity, LocalSearchCapacity, RayleighLocalSearch};
pub use capacity::power_control::{PowerControlCapacity, PowerControlSolution};
pub use capacity::{CapacityAlgorithm, CapacityInstance, SelectionStats};
pub use channels::{
    assign_channels_greedy, multichannel_capacity, ChannelAssignment, MultichannelSolution,
};
pub use latency::aloha::{run_aloha, AlohaConfig, AlohaOutcome, AlohaPolicy};
pub use latency::{first_fit_schedule, recursive_schedule, round_robin_schedule, LatencySolution};
pub use multihop::{multihop_schedule, MultihopSolution, Request};
pub use schedule::{Schedule, ScheduleError};
