//! Multi-channel spectrum access.
//!
//! The paper's model is single-channel: every transmission interferes with
//! every other. Real spectrum is often split into `C` orthogonal channels
//! — links on different channels do not interfere at all. This module
//! provides the natural generalization: channel assignment (spreading
//! mutual affectance across channels) and per-channel capacity
//! maximization. Because channels are orthogonal, the union of per-channel
//! feasible sets is simultaneously successful, and the Rayleigh transfer
//! (Lemma 2) applies channel by channel — so all reduction guarantees
//! carry over with no loss.

use crate::capacity::{CapacityAlgorithm, CapacityInstance};
use rayfade_sinr::{Affectance, GainMatrix, SinrParams};
use serde::{Deserialize, Serialize};

/// An assignment of every link to one of `count` orthogonal channels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelAssignment {
    /// `channel[i]` ∈ `0..count`.
    pub channel: Vec<usize>,
    /// Number of channels.
    pub count: usize,
}

impl ChannelAssignment {
    /// Validates invariants and wraps the assignment.
    ///
    /// # Panics
    /// If `count == 0` or any entry is out of range.
    pub fn new(channel: Vec<usize>, count: usize) -> Self {
        assert!(count > 0, "need at least one channel");
        assert!(
            channel.iter().all(|&c| c < count),
            "channel index out of range"
        );
        ChannelAssignment { channel, count }
    }

    /// Links assigned to channel `c`, in index order.
    pub fn links_on(&self, c: usize) -> Vec<usize> {
        self.channel
            .iter()
            .enumerate()
            .filter_map(|(i, &ch)| (ch == c).then_some(i))
            .collect()
    }

    /// Per-channel link counts.
    pub fn loads(&self) -> Vec<usize> {
        let mut loads = vec![0; self.count];
        for &c in &self.channel {
            loads[c] += 1;
        }
        loads
    }
}

/// Greedy interference-spreading channel assignment: links are processed
/// strongest-signal-first and each goes to the channel where it currently
/// suffers the least incoming (unclipped) affectance from the links
/// already placed there, ties broken by load.
pub fn assign_channels_greedy(
    gain: &GainMatrix,
    params: &SinrParams,
    channels: usize,
) -> ChannelAssignment {
    assert!(channels > 0, "need at least one channel");
    let n = gain.len();
    let aff = Affectance::new(gain, params);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        gain.signal(b)
            .partial_cmp(&gain.signal(a))
            .expect("signals must not be NaN")
            .then(a.cmp(&b))
    });
    let mut assignment = vec![usize::MAX; n];
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); channels];
    for &i in &order {
        let mut best_c = 0;
        let mut best_key = (f64::INFINITY, usize::MAX);
        for (c, group) in members.iter().enumerate() {
            let incoming: f64 = group.iter().map(|&j| aff.get_unclipped(j, i)).sum();
            let key = (incoming, group.len());
            if key.0 < best_key.0 - 1e-15
                || ((key.0 - best_key.0).abs() <= 1e-15 && key.1 < best_key.1)
            {
                best_key = key;
                best_c = c;
            }
        }
        assignment[i] = best_c;
        members[best_c].push(i);
    }
    ChannelAssignment::new(assignment, channels)
}

/// Result of multi-channel capacity maximization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultichannelSolution {
    /// The channel assignment used.
    pub assignment: ChannelAssignment,
    /// Selected feasible set per channel (original link indices).
    pub per_channel: Vec<Vec<usize>>,
}

impl MultichannelSolution {
    /// All selected links across channels, sorted.
    pub fn all(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.per_channel.iter().flatten().copied().collect();
        v.sort_unstable();
        v
    }

    /// Total selected links.
    pub fn total(&self) -> usize {
        self.per_channel.iter().map(Vec::len).sum()
    }
}

/// Assigns channels and runs a capacity algorithm independently on every
/// channel's sub-instance. Orthogonality makes the union simultaneously
/// feasible: each channel's set passes the non-fading check on its own
/// submatrix, and cross-channel interference is zero by construction.
pub fn multichannel_capacity<A: CapacityAlgorithm>(
    gain: &GainMatrix,
    params: &SinrParams,
    channels: usize,
    alg: &A,
) -> MultichannelSolution {
    let assignment = assign_channels_greedy(gain, params, channels);
    let per_channel = (0..channels)
        .map(|c| {
            let links = assignment.links_on(c);
            if links.is_empty() {
                return Vec::new();
            }
            let sub = gain.submatrix(&links);
            let picked = alg.select(&CapacityInstance::unweighted(&sub, params));
            picked.into_iter().map(|l| links[l]).collect()
        })
        .collect();
    MultichannelSolution {
        assignment,
        per_channel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::greedy::GreedyCapacity;
    use rayfade_geometry::PaperTopology;
    use rayfade_sinr::{is_feasible, PowerAssignment};

    fn paper_gain(seed: u64, n: usize) -> (GainMatrix, SinrParams) {
        let net = PaperTopology {
            links: n,
            side: 400.0,
            min_length: 20.0,
            max_length: 40.0,
        }
        .generate(seed);
        let params = SinrParams::figure1();
        let gm = GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha);
        (gm, params)
    }

    #[test]
    fn assignment_covers_all_links_and_balances_roughly() {
        let (gm, params) = paper_gain(1, 60);
        let a = assign_channels_greedy(&gm, &params, 4);
        assert_eq!(a.channel.len(), 60);
        let loads = a.loads();
        assert_eq!(loads.iter().sum::<usize>(), 60);
        // Interference-spreading keeps loads within a loose band.
        for &l in &loads {
            assert!((5..=30).contains(&l), "loads {loads:?}");
        }
    }

    #[test]
    fn per_channel_sets_are_feasible_on_their_submatrices() {
        let (gm, params) = paper_gain(2, 50);
        let sol = multichannel_capacity(&gm, &params, 3, &GreedyCapacity::new());
        for c in 0..3 {
            let links = sol.assignment.links_on(c);
            let sub = gm.submatrix(&links);
            // Map the channel's picks into submatrix-local indices.
            let local: Vec<usize> = sol.per_channel[c]
                .iter()
                .map(|g| links.iter().position(|x| x == g).unwrap())
                .collect();
            assert!(is_feasible(&sub, &params, &local), "channel {c}");
        }
        // No link appears twice.
        let all = sol.all();
        let mut dedup = all.clone();
        dedup.dedup();
        assert_eq!(all, dedup);
    }

    #[test]
    fn more_channels_never_hurt_and_usually_help() {
        let (gm, params) = paper_gain(3, 80);
        let alg = GreedyCapacity::new();
        let c1 = multichannel_capacity(&gm, &params, 1, &alg).total();
        let c2 = multichannel_capacity(&gm, &params, 2, &alg).total();
        let c4 = multichannel_capacity(&gm, &params, 4, &alg).total();
        // Greedy is not perfectly monotone, but the trend must be clear.
        assert!(c2 + 3 >= c1, "c1={c1}, c2={c2}");
        assert!(c4 > c1, "c1={c1}, c4={c4}");
    }

    #[test]
    fn single_channel_matches_plain_capacity() {
        let (gm, params) = paper_gain(4, 30);
        let alg = GreedyCapacity::new();
        let multi = multichannel_capacity(&gm, &params, 1, &alg);
        let plain = alg.select(&CapacityInstance::unweighted(&gm, &params));
        assert_eq!(multi.all(), {
            let mut p = plain;
            p.sort_unstable();
            p
        });
    }

    #[test]
    fn enough_channels_serve_everyone() {
        // With as many channels as links, every link gets its own channel
        // and the full set is selected (no interference at all).
        let (gm, params) = paper_gain(5, 12);
        let sol = multichannel_capacity(&gm, &params, 12, &GreedyCapacity::new());
        assert_eq!(sol.total(), 12);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let (gm, params) = paper_gain(0, 5);
        let _ = assign_channels_greedy(&gm, &params, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_assignment_rejected() {
        let _ = ChannelAssignment::new(vec![0, 2], 2);
    }
}
