//! Transmission schedules.
//!
//! A schedule assigns each slot a set of simultaneously transmitting links.
//! Latency minimization (Sec. 1.1 of the paper) asks for a short schedule
//! in which every request succeeds at least once; capacity maximization is
//! the one-slot special case.

use rayfade_sinr::{is_feasible, GainMatrix, SinrParams};
use serde::{Deserialize, Serialize};

/// A slotted transmission schedule: `slots[t]` lists the links that
/// transmit in slot `t`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Schedule {
    slots: Vec<Vec<usize>>,
}

/// Validation failure of a [`Schedule`] against an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// Slot `slot` is not simultaneously feasible in the non-fading model.
    InfeasibleSlot {
        /// Index of the offending slot.
        slot: usize,
    },
    /// Slot `slot` contains link index `link ≥ n`.
    LinkOutOfRange {
        /// Index of the offending slot.
        slot: usize,
        /// Offending link index.
        link: usize,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::InfeasibleSlot { slot } => write!(f, "slot {slot} is infeasible"),
            ScheduleError::LinkOutOfRange { slot, link } => {
                write!(f, "slot {slot} references link {link} out of range")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Creates a schedule from explicit slots.
    pub fn from_slots(slots: Vec<Vec<usize>>) -> Self {
        Schedule { slots }
    }

    /// Appends a slot (a set of links transmitting together).
    pub fn push_slot(&mut self, links: Vec<usize>) {
        self.slots.push(links);
    }

    /// Number of slots — the schedule *length* (latency objective).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the schedule has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slots.
    pub fn slots(&self) -> &[Vec<usize>] {
        &self.slots
    }

    /// First slot in which `link` transmits, if any.
    pub fn first_slot_of(&self, link: usize) -> Option<usize> {
        self.slots.iter().position(|s| s.contains(&link))
    }

    /// Whether every link of `0..n` appears in some slot.
    pub fn covers_all(&self, n: usize) -> bool {
        let mut seen = vec![false; n];
        for slot in &self.slots {
            for &l in slot {
                if l < n {
                    seen[l] = true;
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// Links of `0..n` that never appear in any slot.
    pub fn uncovered(&self, n: usize) -> Vec<usize> {
        let mut seen = vec![false; n];
        for slot in &self.slots {
            for &l in slot {
                if l < n {
                    seen[l] = true;
                }
            }
        }
        seen.iter()
            .enumerate()
            .filter_map(|(i, &s)| (!s).then_some(i))
            .collect()
    }

    /// Validates every slot against the non-fading model: indices in range
    /// and each slot simultaneously feasible.
    pub fn validate(&self, gain: &GainMatrix, params: &SinrParams) -> Result<(), ScheduleError> {
        let n = gain.len();
        for (t, slot) in self.slots.iter().enumerate() {
            if let Some(&bad) = slot.iter().find(|&&l| l >= n) {
                return Err(ScheduleError::LinkOutOfRange { slot: t, link: bad });
            }
            if !is_feasible(gain, params, slot) {
                return Err(ScheduleError::InfeasibleSlot { slot: t });
            }
        }
        Ok(())
    }

    /// Average number of transmissions per slot (throughput of the
    /// schedule); zero for an empty schedule.
    pub fn mean_slot_size(&self) -> f64 {
        if self.slots.is_empty() {
            return 0.0;
        }
        let total: usize = self.slots.iter().map(Vec::len).sum();
        total as f64 / self.slots.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gain() -> GainMatrix {
        // Links 0,1 conflict heavily; link 2 is independent.
        GainMatrix::from_raw(
            3,
            vec![
                10.0, 9.0, 0.01, //
                9.0, 10.0, 0.01, //
                0.01, 0.01, 10.0,
            ],
        )
    }

    fn params() -> SinrParams {
        SinrParams::new(2.0, 2.0, 0.0)
    }

    #[test]
    fn push_and_query() {
        let mut s = Schedule::new();
        assert!(s.is_empty());
        s.push_slot(vec![0, 2]);
        s.push_slot(vec![1]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.first_slot_of(1), Some(1));
        assert_eq!(s.first_slot_of(2), Some(0));
        assert_eq!(s.first_slot_of(7), None);
        assert!(s.covers_all(3));
        assert!(s.uncovered(3).is_empty());
        assert_eq!(s.uncovered(4), vec![3]);
        assert!((s.mean_slot_size() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn validate_accepts_feasible_schedule() {
        let s = Schedule::from_slots(vec![vec![0, 2], vec![1, 2]]);
        assert_eq!(s.validate(&gain(), &params()), Ok(()));
    }

    #[test]
    fn validate_rejects_infeasible_slot() {
        // 0 and 1 together: SINR = 10/9 < 2.
        let s = Schedule::from_slots(vec![vec![0, 1]]);
        assert_eq!(
            s.validate(&gain(), &params()),
            Err(ScheduleError::InfeasibleSlot { slot: 0 })
        );
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let s = Schedule::from_slots(vec![vec![5]]);
        assert_eq!(
            s.validate(&gain(), &params()),
            Err(ScheduleError::LinkOutOfRange { slot: 0, link: 5 })
        );
    }

    #[test]
    fn empty_schedule_trivially_validates() {
        let s = Schedule::new();
        assert_eq!(s.validate(&gain(), &params()), Ok(()));
        assert_eq!(s.mean_slot_size(), 0.0);
        assert!(s.covers_all(0));
        assert!(!s.covers_all(1));
    }

    #[test]
    fn error_display() {
        assert!(ScheduleError::InfeasibleSlot { slot: 3 }
            .to_string()
            .contains("slot 3"));
        assert!(ScheduleError::LinkOutOfRange { slot: 1, link: 9 }
            .to_string()
            .contains("link 9"));
    }
}
