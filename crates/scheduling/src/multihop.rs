//! Multi-hop request scheduling.
//!
//! The paper notes (Sec. 4) that its single-hop transformations extend to
//! multi-hop scheduling \[6\], \[9\]: a multi-hop schedule is a concatenation
//! of single-hop schedules, each transformable on its own. This module
//! provides that substrate: requests are paths of links with precedence
//! (hop `h+1` may only be scheduled after hop `h` has been delivered), and
//! the scheduler repeatedly runs a capacity algorithm on the set of
//! *ready* hops.

use crate::capacity::{CapacityAlgorithm, CapacityInstance};
use crate::schedule::Schedule;
use rayfade_sinr::{Affectance, GainMatrix, SinrParams};
use serde::{Deserialize, Serialize};

/// A multi-hop communication request: an ordered path of link indices.
/// Data travels hop by hop; hop `h+1` cannot be scheduled before hop `h`
/// succeeded.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// The hops, as indices into the shared link set.
    pub hops: Vec<usize>,
}

impl Request {
    /// Creates a request from its hop sequence.
    ///
    /// # Panics
    /// If the path is empty.
    pub fn new(hops: Vec<usize>) -> Self {
        assert!(!hops.is_empty(), "a request needs at least one hop");
        Request { hops }
    }
}

/// Outcome of multi-hop scheduling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultihopSolution {
    /// The slotted schedule over link indices.
    pub schedule: Schedule,
    /// Per request: the slot in which its final hop was delivered, or
    /// `None` if the request could not be completed (some hop is
    /// infeasible even alone).
    pub completion: Vec<Option<usize>>,
}

impl MultihopSolution {
    /// Number of completed requests.
    pub fn completed(&self) -> usize {
        self.completion.iter().filter(|c| c.is_some()).count()
    }

    /// Overall makespan (slots until the last completed request finished).
    pub fn makespan(&self) -> usize {
        self.schedule.len()
    }
}

/// Schedules multi-hop requests by layered single-hop capacity rounds.
///
/// Each round gathers the next pending hop of every request ("ready"
/// links), runs `alg` on that sub-instance, commits the selected feasible
/// set as one slot, and advances the corresponding requests. Because every
/// committed slot is feasible in the non-fading model, all scheduled
/// transmissions succeed deterministically.
///
/// Hops that are infeasible even alone make their request impossible; such
/// requests are reported with `completion = None` and abandoned at the
/// blocking hop.
///
/// # Panics
/// If two requests share a link, or a hop index is out of range.
pub fn multihop_schedule<A: CapacityAlgorithm>(
    gain: &GainMatrix,
    params: &SinrParams,
    requests: &[Request],
    alg: &A,
) -> MultihopSolution {
    let n = gain.len();
    let mut owner = vec![usize::MAX; n];
    for (r, req) in requests.iter().enumerate() {
        for &h in &req.hops {
            assert!(h < n, "hop {h} out of range");
            assert!(
                owner[h] == usize::MAX,
                "link {h} appears in more than one request"
            );
            owner[h] = r;
        }
    }
    let aff = Affectance::new(gain, params);
    // Per-request pointer to the next undelivered hop; usize::MAX marks
    // abandoned requests.
    let mut next_hop = vec![0usize; requests.len()];
    let mut completion: Vec<Option<usize>> = vec![None; requests.len()];
    let mut schedule = Schedule::new();
    loop {
        // Collect ready links; abandon requests whose next hop is hopeless.
        let mut ready: Vec<usize> = Vec::new();
        for (r, req) in requests.iter().enumerate() {
            let h = next_hop[r];
            if h == usize::MAX || h >= req.hops.len() {
                continue;
            }
            let link = req.hops[h];
            if aff.feasible_alone(link) {
                ready.push(link);
            } else {
                next_hop[r] = usize::MAX; // impossible hop: abandon
            }
        }
        if ready.is_empty() {
            break;
        }
        let sub = gain.submatrix(&ready);
        let picked_local = alg.select(&CapacityInstance::unweighted(&sub, params));
        let slot: Vec<usize> = if picked_local.is_empty() {
            vec![ready[0]] // defensive: a lone feasible link is always valid
        } else {
            picked_local.iter().map(|&l| ready[l]).collect()
        };
        let t = schedule.len();
        for &link in &slot {
            let r = owner[link];
            next_hop[r] += 1;
            if next_hop[r] == requests[r].hops.len() {
                completion[r] = Some(t);
            }
        }
        schedule.push_slot(slot);
    }
    MultihopSolution {
        schedule,
        completion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::greedy::GreedyCapacity;
    use rayfade_geometry::{Link, Network, PaperTopology, Point};
    use rayfade_sinr::PowerAssignment;

    fn line_network(hops: usize, spacing: f64) -> Network {
        // A relay chain along the x-axis: link h goes from x=h*spacing to
        // x=(h+1)*spacing. Each relay's transmit antenna sits a small
        // offset from its receive antenna so cross distances stay positive.
        let links = (0..hops)
            .map(|h| {
                Link::new(
                    Point::new(h as f64 * spacing, 0.3),
                    Point::new((h + 1) as f64 * spacing, 0.0),
                )
            })
            .collect();
        Network::new(links)
    }

    #[test]
    fn single_chain_is_scheduled_in_order() {
        let net = line_network(4, 10.0);
        let params = SinrParams::new(2.5, 2.0, 1e-9);
        let gm = GainMatrix::from_geometry(&net, &PowerAssignment::Uniform(1.0), params.alpha);
        let req = vec![Request::new(vec![0, 1, 2, 3])];
        let sol = multihop_schedule(&gm, &params, &req, &GreedyCapacity::new());
        assert_eq!(sol.completed(), 1);
        // Precedence: hop h must be scheduled strictly before hop h+1.
        let slots: Vec<usize> = (0..4)
            .map(|h| sol.schedule.first_slot_of(h).expect("scheduled"))
            .collect();
        for w in slots.windows(2) {
            assert!(w[0] < w[1], "precedence violated: {slots:?}");
        }
        assert_eq!(sol.completion[0], Some(slots[3]));
        assert_eq!(sol.schedule.validate(&gm, &params), Ok(()));
    }

    #[test]
    fn parallel_requests_share_slots() {
        // Two distant 2-hop chains can run concurrently.
        let mut links = line_network(2, 10.0).links().to_vec();
        for l in line_network(2, 10.0).links() {
            links.push(Link::new(
                Point::new(l.sender.x + 10_000.0, l.sender.y),
                Point::new(l.receiver.x + 10_000.0, l.receiver.y),
            ));
        }
        let net = Network::new(links);
        let params = SinrParams::new(2.5, 2.0, 1e-9);
        let gm = GainMatrix::from_geometry(&net, &PowerAssignment::Uniform(1.0), params.alpha);
        let reqs = vec![Request::new(vec![0, 1]), Request::new(vec![2, 3])];
        let sol = multihop_schedule(&gm, &params, &reqs, &GreedyCapacity::new());
        assert_eq!(sol.completed(), 2);
        // Far-apart chains should overlap: makespan 2, not 4.
        assert_eq!(sol.makespan(), 2, "{:?}", sol.schedule);
    }

    #[test]
    fn impossible_hop_abandons_request_but_not_others() {
        // Request 0's second hop cannot beat the noise; request 1 is fine.
        let gm = GainMatrix::from_raw(
            3,
            vec![
                10.0, 0.0, 0.0, //
                0.0, 0.1, 0.0, //
                0.0, 0.0, 10.0,
            ],
        );
        let params = SinrParams::new(2.0, 1.0, 1.0);
        let reqs = vec![Request::new(vec![0, 1]), Request::new(vec![2])];
        let sol = multihop_schedule(&gm, &params, &reqs, &GreedyCapacity::new());
        assert_eq!(sol.completion[0], None);
        assert!(sol.completion[1].is_some());
        assert_eq!(sol.completed(), 1);
        // Hop 0 of the abandoned request still ran (it was feasible).
        assert!(sol.schedule.first_slot_of(0).is_some());
        assert!(sol.schedule.first_slot_of(1).is_none());
    }

    #[test]
    fn random_paths_over_paper_topology() {
        let net = PaperTopology {
            links: 30,
            side: 800.0,
            min_length: 20.0,
            max_length: 40.0,
        }
        .generate(5);
        let params = SinrParams::figure1();
        let gm = GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha);
        // Ten 3-hop requests over disjoint links.
        let reqs: Vec<Request> = (0..10)
            .map(|r| Request::new(vec![3 * r, 3 * r + 1, 3 * r + 2]))
            .collect();
        let sol = multihop_schedule(&gm, &params, &reqs, &GreedyCapacity::new());
        assert_eq!(sol.completed(), 10);
        assert_eq!(sol.schedule.validate(&gm, &params), Ok(()));
        // Lower bound: at least 3 slots (path length); upper: 30.
        assert!(sol.makespan() >= 3 && sol.makespan() <= 30);
    }

    #[test]
    #[should_panic(expected = "more than one request")]
    fn shared_link_rejected() {
        let gm = GainMatrix::from_raw(1, vec![1.0]);
        let params = SinrParams::new(2.0, 1.0, 0.0);
        let reqs = vec![Request::new(vec![0]), Request::new(vec![0])];
        let _ = multihop_schedule(&gm, &params, &reqs, &GreedyCapacity::new());
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn empty_request_rejected() {
        let _ = Request::new(vec![]);
    }
}
