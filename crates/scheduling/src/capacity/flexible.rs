//! Capacity maximization with flexible data rates (general utilities).
//!
//! Kesselheim \[22\] handles non-binary utilities by enumerating SINR
//! threshold classes: for each candidate threshold `β_k`, links are
//! weighted by the utility they would obtain *at* that threshold and a
//! weighted threshold-capacity algorithm runs; the best class wins, losing
//! `O(log n)` against the flexible optimum. Our implementation follows the
//! same scheme over a geometric threshold grid and returns both the chosen
//! set and the threshold certifying its utility.
//!
//! Combined with the paper's reduction this yields the Rayleigh-fading
//! guarantee for valid utility functions (paper Sec. 4, first paragraph).

use super::greedy::GreedyCapacity;
use super::{CapacityAlgorithm, CapacityInstance};
use rayfade_sinr::{mask_from_set, sinr, GainMatrix, SinrParams, UtilityFunction};
use serde::{Deserialize, Serialize};

/// Result of a flexible-rate selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlexibleSolution {
    /// Selected (feasible at `threshold`) links, sorted.
    pub set: Vec<usize>,
    /// SINR threshold at which the set is simultaneously feasible.
    pub threshold: f64,
    /// Total utility *guaranteed* at the threshold:
    /// `Σ_{i∈set} u_i(threshold)`.
    pub guaranteed_utility: f64,
    /// Total utility at the actually achieved SINRs (≥ guaranteed).
    pub achieved_utility: f64,
}

/// Threshold-enumeration algorithm for general utility functions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlexibleCapacity {
    /// Smallest threshold tried.
    pub min_threshold: f64,
    /// Largest threshold tried.
    pub max_threshold: f64,
    /// Multiplicative step between consecutive thresholds (> 1).
    pub step: f64,
}

impl Default for FlexibleCapacity {
    fn default() -> Self {
        FlexibleCapacity {
            min_threshold: 1.0 / 1024.0,
            max_threshold: 1024.0 * 1024.0,
            step: 2.0,
        }
    }
}

impl FlexibleCapacity {
    /// Runs the threshold enumeration for utility `u` on the given gains.
    ///
    /// The `params.beta` field is ignored (each class supplies its own
    /// threshold); `alpha` and `noise` are used as-is.
    pub fn select_with_utility<U: UtilityFunction>(
        &self,
        gain: &GainMatrix,
        params: &SinrParams,
        u: &U,
    ) -> FlexibleSolution {
        assert!(self.step > 1.0, "threshold step must exceed 1");
        assert!(
            self.min_threshold > 0.0 && self.max_threshold >= self.min_threshold,
            "invalid threshold range"
        );
        let n = gain.len();
        let mut best = FlexibleSolution {
            set: Vec::new(),
            threshold: self.min_threshold,
            guaranteed_utility: 0.0,
            achieved_utility: 0.0,
        };
        let mut beta = self.min_threshold;
        while beta <= self.max_threshold {
            let class_params = params.with_beta(beta);
            let weights: Vec<f64> = (0..n).map(|i| u.value(i, beta)).collect();
            if weights.iter().any(|w| *w > 0.0) {
                let inst = CapacityInstance::weighted(gain, &class_params, &weights);
                let set = GreedyCapacity::weighted().select(&inst);
                let guaranteed: f64 = set.iter().map(|&i| weights[i]).sum();
                if guaranteed > best.guaranteed_utility {
                    let mask = mask_from_set(n, &set);
                    let achieved: f64 = set
                        .iter()
                        .map(|&i| u.value(i, sinr(gain, &class_params, &mask, i)))
                        .sum();
                    best = FlexibleSolution {
                        set: set.clone(),
                        threshold: beta,
                        guaranteed_utility: guaranteed,
                        achieved_utility: achieved,
                    };
                }
            }
            beta *= self.step;
        }
        best.set.sort_unstable();
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayfade_geometry::PaperTopology;
    use rayfade_sinr::{is_feasible, BinaryUtility, PowerAssignment, ShannonUtility};

    fn paper_gain(seed: u64, n: usize) -> (GainMatrix, SinrParams) {
        let net = PaperTopology {
            links: n,
            side: 600.0,
            min_length: 20.0,
            max_length: 40.0,
        }
        .generate(seed);
        let params = SinrParams::figure1();
        let gm = GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha);
        (gm, params)
    }

    #[test]
    fn shannon_solution_is_feasible_at_its_threshold() {
        let (gm, params) = paper_gain(1, 40);
        let sol = FlexibleCapacity::default().select_with_utility(
            &gm,
            &params,
            &ShannonUtility::uncapped(),
        );
        assert!(!sol.set.is_empty());
        let class = params.with_beta(sol.threshold);
        assert!(is_feasible(&gm, &class, &sol.set));
        assert!(sol.achieved_utility >= sol.guaranteed_utility - 1e-9);
        assert!(sol.guaranteed_utility > 0.0);
    }

    #[test]
    fn binary_utility_recovers_threshold_capacity() {
        let (gm, params) = paper_gain(2, 30);
        let u = BinaryUtility::new(params.beta);
        let sol = FlexibleCapacity {
            min_threshold: params.beta,
            max_threshold: params.beta,
            step: 2.0,
        }
        .select_with_utility(&gm, &params, &u);
        // With a single class at beta this is exactly weighted greedy.
        use crate::capacity::greedy::GreedyCapacity;
        let weights = vec![1.0; gm.len()];
        let inst = CapacityInstance::weighted(&gm, &params, &weights);
        let mut greedy = GreedyCapacity::weighted().select(&inst);
        greedy.sort_unstable();
        assert_eq!(sol.set, greedy);
        assert!((sol.guaranteed_utility - sol.set.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn higher_rates_win_on_sparse_instances() {
        // Two far-apart links: the algorithm should pick a high threshold
        // (both links still feasible) and harvest large Shannon utility.
        let gm = GainMatrix::from_raw(2, vec![100.0, 1e-9, 1e-9, 100.0]);
        let params = SinrParams::new(2.0, 1.0, 1e-3);
        let sol = FlexibleCapacity::default().select_with_utility(
            &gm,
            &params,
            &ShannonUtility::uncapped(),
        );
        assert_eq!(sol.set, vec![0, 1]);
        // Achievable SINR alone is 100/1e-3 = 1e5; threshold grid should
        // have climbed well past beta = 1.
        assert!(sol.threshold > 100.0, "threshold {}", sol.threshold);
        assert!(sol.guaranteed_utility > 2.0 * (1.0 + 100.0f64).log2());
    }

    #[test]
    fn empty_gain_yields_empty_solution() {
        let gm = GainMatrix::from_raw(0, vec![]);
        let params = SinrParams::new(2.0, 1.0, 0.0);
        let sol = FlexibleCapacity::default().select_with_utility(
            &gm,
            &params,
            &ShannonUtility::uncapped(),
        );
        assert!(sol.set.is_empty());
        assert_eq!(sol.guaranteed_utility, 0.0);
    }

    #[test]
    #[should_panic(expected = "step must exceed 1")]
    fn bad_step_rejected() {
        let gm = GainMatrix::from_raw(1, vec![1.0]);
        let params = SinrParams::new(2.0, 1.0, 0.0);
        let _ = FlexibleCapacity {
            step: 1.0,
            ..FlexibleCapacity::default()
        }
        .select_with_utility(&gm, &params, &ShannonUtility::uncapped());
    }
}
