//! Reference optima: exact branch-and-bound and randomized local search.
//!
//! The paper benchmarks its learning dynamics against "the optimal set of
//! sending links under uniform powers" (Sec. 7, 49.75 successes on the
//! Figure 1 networks). The paper does not say how that optimum was
//! computed; we provide an exact solver for small instances and a strong
//! multi-restart local search for the 100-link networks (see DESIGN.md,
//! substitution notes).

use super::{CapacityAlgorithm, CapacityInstance};
use crate::capacity::greedy::RayleighGreedy;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayfade_sinr::{AccumMode, Affectance, InterferenceRatios, SuccessAccumulator};
use serde::{Deserialize, Serialize};

/// Exact maximum-weight feasible set via depth-first branch-and-bound.
///
/// Feasibility is tracked incrementally through unclipped affectance sums,
/// which is exact (see `rayfade_sinr::affectance`). Worst-case exponential;
/// intended for `n ≲ 30`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExactCapacity {
    /// Hard limit on instance size; larger instances panic rather than
    /// silently hang. Defaults to 30.
    pub max_links: usize,
}

impl Default for ExactCapacity {
    fn default() -> Self {
        ExactCapacity { max_links: 30 }
    }
}

struct BnB<'a> {
    inst: &'a CapacityInstance<'a>,
    aff: Affectance,
    order: Vec<usize>,
    /// Suffix weight sums for pruning: `suffix[k]` = total weight of
    /// `order[k..]` (counting only links feasible alone).
    suffix: Vec<f64>,
    best: Vec<usize>,
    best_weight: f64,
}

impl BnB<'_> {
    fn run(&mut self) {
        let mut chosen = Vec::new();
        let mut cur_in = vec![0.0; self.inst.len()];
        self.dfs(0, 0.0, &mut chosen, &mut cur_in);
    }

    fn dfs(&mut self, k: usize, weight: f64, chosen: &mut Vec<usize>, cur_in: &mut [f64]) {
        if weight > self.best_weight {
            self.best_weight = weight;
            self.best = chosen.clone();
        }
        if k == self.order.len() {
            return;
        }
        // Prune: even taking every remaining link cannot beat the best.
        if weight + self.suffix[k] <= self.best_weight {
            return;
        }
        let i = self.order[k];
        // Branch 1: include i, if it keeps the partial set feasible.
        if self.aff.feasible_alone(i) && self.inst.weight(i) > 0.0 {
            let mut in_i = 0.0;
            let mut ok = true;
            for &j in chosen.iter() {
                in_i += self.aff.get_unclipped(j, i);
                if in_i > 1.0 {
                    ok = false;
                    break;
                }
            }
            if ok {
                for &j in chosen.iter() {
                    if cur_in[j] + self.aff.get_unclipped(i, j) > 1.0 {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                for &j in chosen.iter() {
                    cur_in[j] += self.aff.get_unclipped(i, j);
                }
                cur_in[i] = in_i;
                chosen.push(i);
                self.dfs(k + 1, weight + self.inst.weight(i), chosen, cur_in);
                chosen.pop();
                for &j in chosen.iter() {
                    cur_in[j] -= self.aff.get_unclipped(i, j);
                }
                cur_in[i] = 0.0;
            }
        }
        // Branch 2: exclude i.
        self.dfs(k + 1, weight, chosen, cur_in);
    }
}

impl CapacityAlgorithm for ExactCapacity {
    fn name(&self) -> &str {
        "exact-bnb"
    }

    fn select(&self, inst: &CapacityInstance<'_>) -> Vec<usize> {
        assert!(
            inst.len() <= self.max_links,
            "exact solver limited to {} links (got {}); raise max_links explicitly if you \
             accept exponential runtime",
            self.max_links,
            inst.len()
        );
        let aff = Affectance::new(inst.gain, inst.params);
        // Heaviest-first ordering makes the weight bound bite early.
        let mut order: Vec<usize> = (0..inst.len()).collect();
        // total_cmp: NaN weights order deterministically instead of
        // aborting; the include-branch guard (`weight(i) > 0.0`) already
        // keeps them out of the solution.
        order.sort_by(|&a, &b| inst.weight(b).total_cmp(&inst.weight(a)).then(a.cmp(&b)));
        let mut suffix = vec![0.0; order.len() + 1];
        for k in (0..order.len()).rev() {
            let i = order[k];
            let w = if aff.feasible_alone(i) {
                inst.weight(i)
            } else {
                0.0
            };
            suffix[k] = suffix[k + 1] + w;
        }
        let mut bnb = BnB {
            inst,
            aff,
            order,
            suffix,
            best: Vec::new(),
            best_weight: 0.0,
        };
        bnb.run();
        let mut best = bnb.best;
        best.sort_unstable();
        best
    }
}

/// Multi-restart randomized local search for large instances.
///
/// Each restart builds a feasible set greedily in a random order, then
/// alternates add-moves (insert any link that keeps the set feasible) and
/// 1-swap moves (replace one member by one non-member of strictly larger
/// weight, or of equal weight to diversify) until no move improves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalSearchCapacity {
    /// Number of random restarts.
    pub restarts: usize,
    /// RNG seed (restarts derive their own streams).
    pub seed: u64,
    /// Maximum improvement sweeps per restart.
    pub max_sweeps: usize,
}

impl Default for LocalSearchCapacity {
    fn default() -> Self {
        LocalSearchCapacity {
            restarts: 8,
            seed: 0x5eed,
            max_sweeps: 50,
        }
    }
}

impl LocalSearchCapacity {
    fn greedy_in_order(
        inst: &CapacityInstance<'_>,
        aff: &Affectance,
        order: &[usize],
    ) -> (Vec<usize>, Vec<f64>) {
        let mut chosen: Vec<usize> = Vec::new();
        let mut cur_in = vec![0.0; inst.len()];
        for &i in order {
            Self::try_add(inst, aff, i, &mut chosen, &mut cur_in);
        }
        (chosen, cur_in)
    }

    fn greedy_random_order(
        inst: &CapacityInstance<'_>,
        aff: &Affectance,
        rng: &mut StdRng,
    ) -> (Vec<usize>, Vec<f64>) {
        let n = inst.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        Self::greedy_in_order(inst, aff, &order)
    }

    /// Peeling construction: start from every eligible link and repeatedly
    /// evict the worst offender (the link radiating the most affectance
    /// onto currently-violated links, plus its own violation) until the
    /// set is feasible. On dense instances with a low threshold this lands
    /// much closer to the maximum than any insertion order.
    fn greedy_peel(inst: &CapacityInstance<'_>, aff: &Affectance) -> (Vec<usize>, Vec<f64>) {
        let n = inst.len();
        let mut member: Vec<bool> = (0..n)
            .map(|i| aff.feasible_alone(i) && inst.weight(i) > 0.0)
            .collect();
        // Incoming unclipped affectance of each member from all members.
        let mut cur_in = vec![0.0; n];
        for i in 0..n {
            if member[i] {
                cur_in[i] = (0..n)
                    .filter(|&j| member[j] && j != i)
                    .map(|j| aff.get_unclipped(j, i))
                    .sum();
            }
        }
        loop {
            let violated: Vec<usize> = (0..n).filter(|&i| member[i] && cur_in[i] > 1.0).collect();
            if violated.is_empty() {
                break;
            }
            // Evict the member most responsible for the violations,
            // discounted by its weight.
            let mut worst = usize::MAX;
            let mut worst_score = f64::NEG_INFINITY;
            for i in 0..n {
                if !member[i] {
                    continue;
                }
                let mut s: f64 = violated
                    .iter()
                    .filter(|&&v| v != i)
                    .map(|&v| aff.get_unclipped(i, v))
                    .sum();
                if cur_in[i] > 1.0 {
                    s += cur_in[i] - 1.0;
                }
                let s = s / inst.weight(i).max(1e-12);
                if s > worst_score {
                    worst_score = s;
                    worst = i;
                }
            }
            debug_assert!(worst != usize::MAX);
            member[worst] = false;
            cur_in[worst] = 0.0;
            for i in 0..n {
                if member[i] && i != worst {
                    cur_in[i] -= aff.get_unclipped(worst, i);
                }
            }
        }
        let chosen: Vec<usize> = (0..n).filter(|&i| member[i]).collect();
        (chosen, cur_in)
    }

    /// Least-conflicting-first construction: links are added in ascending
    /// order of their total (clipped) affectance exchange with all other
    /// links. On dense instances this beats random orders by a wide
    /// margin — low-conflict links block few others.
    fn greedy_conflict_order(
        inst: &CapacityInstance<'_>,
        aff: &Affectance,
    ) -> (Vec<usize>, Vec<f64>) {
        let n = inst.len();
        let mut score = vec![0.0f64; n];
        for (i, s) in score.iter_mut().enumerate() {
            for j in 0..n {
                if j != i {
                    *s += aff.get(j, i) + aff.get(i, j);
                }
            }
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| score[a].total_cmp(&score[b]).then(a.cmp(&b)));
        Self::greedy_in_order(inst, aff, &order)
    }

    /// Adds `i` to the set when feasible; returns whether it was added.
    fn try_add(
        inst: &CapacityInstance<'_>,
        aff: &Affectance,
        i: usize,
        chosen: &mut Vec<usize>,
        cur_in: &mut [f64],
    ) -> bool {
        // `strictly_positive` rather than `w <= 0`: it also rejects NaN weights.
        if chosen.contains(&i)
            || !aff.feasible_alone(i)
            || !crate::capacity::strictly_positive(inst.weight(i))
        {
            return false;
        }
        let mut in_i = 0.0;
        for &j in chosen.iter() {
            in_i += aff.get_unclipped(j, i);
            if in_i > 1.0 {
                return false;
            }
        }
        for &j in chosen.iter() {
            if cur_in[j] + aff.get_unclipped(i, j) > 1.0 {
                return false;
            }
        }
        for &j in chosen.iter() {
            cur_in[j] += aff.get_unclipped(i, j);
        }
        cur_in[i] = in_i;
        chosen.push(i);
        true
    }

    fn remove(aff: &Affectance, i: usize, chosen: &mut Vec<usize>, cur_in: &mut [f64]) {
        let pos = chosen.iter().position(|&x| x == i).expect("member");
        chosen.swap_remove(pos);
        for &j in chosen.iter() {
            cur_in[j] -= aff.get_unclipped(i, j);
        }
        cur_in[i] = 0.0;
    }
}

impl CapacityAlgorithm for LocalSearchCapacity {
    fn name(&self) -> &str {
        "local-search"
    }

    fn select(&self, inst: &CapacityInstance<'_>) -> Vec<usize> {
        let n = inst.len();
        if n == 0 {
            return Vec::new();
        }
        let aff = Affectance::new(inst.gain, inst.params);
        let mut best: Vec<usize> = Vec::new();
        let mut best_weight = -1.0;
        for r in 0..self.restarts.max(1) {
            let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(r as u64));
            // The first restarts use deterministic constructions
            // (least-conflicting-first insertion, then peeling); later
            // restarts explore random insertion orders.
            let (mut chosen, mut cur_in) = match r {
                0 => Self::greedy_conflict_order(inst, &aff),
                1 => Self::greedy_peel(inst, &aff),
                _ => Self::greedy_random_order(inst, &aff, &mut rng),
            };
            for _sweep in 0..self.max_sweeps {
                let mut improved = false;
                // Add moves.
                let mut outside: Vec<usize> = (0..n).filter(|i| !chosen.contains(i)).collect();
                outside.shuffle(&mut rng);
                for i in outside {
                    if Self::try_add(inst, &aff, i, &mut chosen, &mut cur_in) {
                        improved = true;
                    }
                }
                // 1-swap moves: pull one member, try to add two (or one
                // heavier) outsiders.
                let members = chosen.clone();
                for &m in &members {
                    if !chosen.contains(&m) {
                        continue;
                    }
                    Self::remove(&aff, m, &mut chosen, &mut cur_in);
                    let before = inst.total_weight(&chosen) + inst.weight(m);
                    let mut added = Vec::new();
                    let mut outside: Vec<usize> =
                        (0..n).filter(|i| !chosen.contains(i) && *i != m).collect();
                    outside.shuffle(&mut rng);
                    for i in outside {
                        if Self::try_add(inst, &aff, i, &mut chosen, &mut cur_in) {
                            added.push(i);
                        }
                    }
                    let after = inst.total_weight(&chosen);
                    if after > before + 1e-12 {
                        improved = true;
                    } else {
                        // Roll back: remove what we added, re-insert m.
                        for &i in &added {
                            Self::remove(&aff, i, &mut chosen, &mut cur_in);
                        }
                        let ok = Self::try_add(inst, &aff, m, &mut chosen, &mut cur_in);
                        debug_assert!(ok, "re-inserting a removed member must succeed");
                    }
                }
                if !improved {
                    break;
                }
            }
            let w = inst.total_weight(&chosen);
            if w > best_weight {
                best_weight = w;
                best = chosen;
            }
        }
        best.sort_unstable();
        best
    }
}

/// Local search on the *Rayleigh* objective `Σ_i w_i·Q_i` (Theorem 1):
/// greedy construction ([`RayleighGreedy`]) followed by add and 1-swap
/// improvement sweeps, all scored incrementally through the cached
/// [`InterferenceRatios`] so one candidate evaluation costs O(n).
///
/// Like [`RayleighGreedy`] this maximizes a stochastic objective and does
/// not promise non-fading feasibility, so it is not a
/// [`CapacityAlgorithm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RayleighLocalSearch {
    /// Maximum improvement sweeps after the greedy construction.
    pub max_sweeps: usize,
}

impl Default for RayleighLocalSearch {
    fn default() -> Self {
        RayleighLocalSearch { max_sweeps: 50 }
    }
}

impl RayleighLocalSearch {
    /// Local search with the default sweep budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects a transmit set by greedy construction plus add/1-swap
    /// improvement on `Σ w_i·Q_i`. NaN or non-positive weights exclude a
    /// link.
    pub fn select(&self, inst: &CapacityInstance<'_>) -> Vec<usize> {
        let ratios = InterferenceRatios::new(inst.gain, inst.params);
        let n = inst.len();
        let mut acc = SuccessAccumulator::new(n, AccumMode::LogDomain);
        for &i in &RayleighGreedy::new().select_with_ratios(&ratios, inst) {
            acc.insert(&ratios, i);
        }
        for _sweep in 0..self.max_sweeps {
            let mut improved = false;
            // Add moves: any silent link with a positive marginal gain.
            for j in 0..n {
                if acc.prob(j) != 0.0 || !crate::capacity::strictly_positive(inst.weight(j)) {
                    continue;
                }
                if acc.activation_gain(&ratios, inst.weights, j) > 1e-12 {
                    acc.insert(&ratios, j);
                    improved = true;
                }
            }
            // 1-swap moves: for each member, check whether some outsider
            // is worth strictly more in its place.
            for m in 0..n {
                if acc.prob(m) == 0.0 {
                    continue;
                }
                acc.remove(&ratios, m);
                let regain = acc.activation_gain(&ratios, inst.weights, m);
                let mut best: Option<(usize, f64)> = None;
                for j in 0..n {
                    if j == m
                        || acc.prob(j) != 0.0
                        || !crate::capacity::strictly_positive(inst.weight(j))
                    {
                        continue;
                    }
                    let g = acc.activation_gain(&ratios, inst.weights, j);
                    if best.is_none_or(|(_, b)| g.total_cmp(&b).is_gt()) {
                        best = Some((j, g));
                    }
                }
                match best {
                    Some((j, g)) if g > regain + 1e-12 => {
                        acc.insert(&ratios, j);
                        improved = true;
                    }
                    _ => {
                        acc.insert(&ratios, m);
                    }
                }
            }
            if !improved {
                break;
            }
        }
        (0..n).filter(|&i| acc.prob(i) != 0.0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayfade_geometry::PaperTopology;
    use rayfade_sinr::{is_feasible, GainMatrix, PowerAssignment, SinrParams};

    fn paper_instance(seed: u64, n: usize) -> (GainMatrix, SinrParams) {
        let net = PaperTopology {
            links: n,
            side: 400.0,
            min_length: 20.0,
            max_length: 40.0,
        }
        .generate(seed);
        let params = SinrParams::figure1();
        let gm = GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha);
        (gm, params)
    }

    #[test]
    fn exact_solves_tiny_instances() {
        // 0-1 conflict, 2 free: optimum is {0 or 1} + {2} -> size 2.
        let gm = GainMatrix::from_raw(
            3,
            vec![
                10.0, 9.0, 1e-6, //
                9.0, 10.0, 1e-6, //
                1e-6, 1e-6, 5.0,
            ],
        );
        let params = SinrParams::new(2.0, 2.0, 0.0);
        let set = ExactCapacity::default().select(&CapacityInstance::unweighted(&gm, &params));
        assert_eq!(set.len(), 2);
        assert!(set.contains(&2));
        assert!(is_feasible(&gm, &params, &set));
    }

    #[test]
    fn exact_respects_weights() {
        // Link 0 alone outweighs {1, 2} together.
        let gm = GainMatrix::from_raw(
            3,
            vec![
                10.0, 9.0, 9.0, //
                9.0, 10.0, 1e-6, //
                9.0, 1e-6, 10.0,
            ],
        );
        let params = SinrParams::new(2.0, 2.0, 0.0);
        let w = vec![10.0, 1.0, 1.0];
        let set = ExactCapacity::default().select(&CapacityInstance::weighted(&gm, &params, &w));
        assert_eq!(set, vec![0]);
        // With unit weights the pair {1, 2} wins.
        let set = ExactCapacity::default().select(&CapacityInstance::unweighted(&gm, &params));
        assert_eq!(set, vec![1, 2]);
    }

    #[test]
    fn exact_beats_or_matches_greedy_and_local_search() {
        use crate::capacity::greedy::GreedyCapacity;
        for seed in 0..4 {
            let (gm, params) = paper_instance(seed, 14);
            let inst = CapacityInstance::unweighted(&gm, &params);
            let exact = ExactCapacity::default().select(&inst);
            let greedy = GreedyCapacity::new().select(&inst);
            let ls = LocalSearchCapacity::default().select(&inst);
            assert!(is_feasible(&gm, &params, &exact));
            assert!(exact.len() >= greedy.len(), "seed {seed}");
            assert!(exact.len() >= ls.len(), "seed {seed}");
            // Local search should also never lose to plain greedy by much;
            // on these small instances it typically matches the optimum.
            assert!(ls.len() + 2 >= exact.len(), "seed {seed}");
        }
    }

    #[test]
    fn local_search_output_is_feasible() {
        let (gm, params) = paper_instance(5, 60);
        let inst = CapacityInstance::unweighted(&gm, &params);
        let set = LocalSearchCapacity {
            restarts: 3,
            ..LocalSearchCapacity::default()
        }
        .select(&inst);
        assert!(is_feasible(&gm, &params, &set));
        assert!(!set.is_empty());
    }

    #[test]
    fn local_search_is_deterministic_per_seed() {
        let (gm, params) = paper_instance(6, 40);
        let inst = CapacityInstance::unweighted(&gm, &params);
        let alg = LocalSearchCapacity {
            restarts: 2,
            seed: 99,
            max_sweeps: 10,
        };
        assert_eq!(alg.select(&inst), alg.select(&inst));
    }

    #[test]
    fn nan_weight_does_not_abort_solvers() {
        // Regression: the BnB weight sort and the conflict-order score
        // sort both panicked on NaN via partial_cmp().expect(...).
        let gm = GainMatrix::from_raw(
            3,
            vec![
                10.0, 1e-6, 1e-6, //
                1e-6, 10.0, 1e-6, //
                1e-6, 1e-6, 10.0,
            ],
        );
        let params = SinrParams::new(2.0, 2.0, 0.1);
        let w = vec![2.0, f64::NAN, 1.0];
        let inst = CapacityInstance::weighted(&gm, &params, &w);
        let mut exact = ExactCapacity::default().select(&inst);
        exact.sort_unstable();
        assert_eq!(exact, vec![0, 2], "NaN-weighted link must be dropped");
        let mut ls = LocalSearchCapacity::default().select(&inst);
        ls.sort_unstable();
        assert_eq!(ls, vec![0, 2]);
    }

    #[test]
    fn rayleigh_local_search_never_loses_to_rayleigh_greedy() {
        use crate::capacity::greedy::RayleighGreedy;
        /// Scratch Theorem 1 objective, independent of the accumulator.
        fn objective(gm: &GainMatrix, params: &SinrParams, set: &[usize]) -> f64 {
            let beta = params.beta;
            set.iter()
                .map(|&i| {
                    let s_ii = gm.signal(i);
                    if s_ii == 0.0 {
                        return 0.0;
                    }
                    let mut p = (-beta * params.noise / s_ii).exp();
                    for &j in set {
                        let s_ji = gm.gain(j, i);
                        if j != i && s_ji != 0.0 {
                            p *= 1.0 - beta / (beta + s_ii / s_ji);
                        }
                    }
                    p
                })
                .sum()
        }
        for seed in 0..3 {
            let (gm, params) = paper_instance(seed, 25);
            let inst = CapacityInstance::unweighted(&gm, &params);
            let greedy = RayleighGreedy::new().select(&inst);
            let ls = RayleighLocalSearch::new().select(&inst);
            let g_obj = objective(&gm, &params, &greedy);
            let ls_obj = objective(&gm, &params, &ls);
            assert!(
                ls_obj >= g_obj - 1e-9,
                "seed {seed}: local search {ls_obj} < greedy {g_obj}"
            );
            assert_eq!(
                ls,
                RayleighLocalSearch::new().select(&inst),
                "deterministic"
            );
        }
    }

    #[test]
    fn rayleigh_local_search_skips_nan_weights() {
        let gm = GainMatrix::from_raw(
            2,
            vec![
                10.0, 1e-6, //
                1e-6, 10.0,
            ],
        );
        let params = SinrParams::new(2.0, 2.0, 0.0);
        let w = vec![f64::NAN, 1.0];
        let inst = CapacityInstance::weighted(&gm, &params, &w);
        assert_eq!(RayleighLocalSearch::new().select(&inst), vec![1]);
    }

    #[test]
    #[should_panic(expected = "exact solver limited")]
    fn exact_guards_instance_size() {
        let (gm, params) = paper_instance(0, 40);
        let _ = ExactCapacity { max_links: 30 }.select(&CapacityInstance::unweighted(&gm, &params));
    }

    #[test]
    fn empty_instances() {
        let gm = GainMatrix::from_raw(0, vec![]);
        let params = SinrParams::new(2.0, 1.0, 0.0);
        let inst = CapacityInstance::unweighted(&gm, &params);
        assert!(ExactCapacity::default().select(&inst).is_empty());
        assert!(LocalSearchCapacity::default().select(&inst).is_empty());
    }
}
