//! Capacity maximization in the non-fading model.
//!
//! Given an instance (gains, parameters, optional weights), select a
//! *feasible* set of links maximizing total weight — the paper's standard
//! objective (Sec. 1.1). These are exactly the algorithms the paper's
//! reduction transfers to the Rayleigh-fading model (Sec. 4): their output
//! is consumed as-is by `rayfade-core`'s transfer lemma.
//!
//! Implemented families:
//! * [`greedy`] — affectance-guarded greedy for fixed (uniform/oblivious)
//!   powers, in the spirit of Goussevskaia et al. \[8\] and
//!   Halldórsson–Mitra \[7\];
//! * [`power_control`] — joint selection + power assignment, in the spirit
//!   of Kesselheim \[6\], with Foschini–Miljanic minimal powers;
//! * [`flexible`] — general (non-binary) utilities via threshold
//!   enumeration, in the spirit of Kesselheim \[22\];
//! * [`optimal`] — exact branch-and-bound and local-search reference
//!   optima for benchmarking.
//!
//! Every algorithm in this module **guarantees** the returned set is
//! feasible in the non-fading model; property tests enforce this.

pub mod flexible;
pub mod greedy;
pub mod optimal;
pub mod power_control;

use rayfade_sinr::{GainMatrix, SinrParams};

/// `true` iff `x` is strictly positive — rejects NaN (unlike `x <= 0.0`,
/// whose negation silently admits it). The selection loops use this to
/// skip degenerate weights/lengths instead of propagating NaN scores.
pub(crate) fn strictly_positive(x: f64) -> bool {
    matches!(x.partial_cmp(&0.0), Some(std::cmp::Ordering::Greater))
}

/// Work tally of one capacity-selection invocation, for observability:
/// how many candidate links were scored, how many were accepted into the
/// transmit set vs. rejected, and how many times an incremental
/// evaluator's underflow guard forced an O(n) product re-derivation
/// (always 0 for selectors that keep no accumulator). Metrics stay the
/// caller's job — the dynamic engine and bench binaries fold these
/// tallies into their own counters — but the selectors optionally emit
/// wall-time spans via the `*_traced` variants (e.g.
/// [`greedy::GreedyCapacity::select_with_stats_traced`]) so profiles can
/// attribute slot time to candidate scoring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectionStats {
    /// Candidate links examined/scored across all rounds.
    pub candidates_scored: u64,
    /// Links accepted into the returned set.
    pub accepted: u64,
    /// Scored candidates not part of the returned set (guard failures,
    /// insufficient marginal gain, or losing the per-round argmax).
    pub rejected: u64,
    /// Underflow/precision-guard trips in the incremental evaluator.
    pub rederivations: u64,
}

impl SelectionStats {
    /// Accumulates another invocation's tallies into this one.
    pub fn merge(&mut self, other: &SelectionStats) {
        self.candidates_scored += other.candidates_scored;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.rederivations += other.rederivations;
    }
}

/// A capacity-maximization instance with fixed transmission powers
/// (already folded into the gain matrix).
#[derive(Debug, Clone, Copy)]
pub struct CapacityInstance<'a> {
    /// Expected signal strengths `S̄_{j,i}`.
    pub gain: &'a GainMatrix,
    /// Model parameters `(α, β, ν)` (only `β` and `ν` matter here — the
    /// path-loss exponent is already folded into the gains).
    pub params: &'a SinrParams,
    /// Optional per-link weights; `None` means unit weights.
    pub weights: Option<&'a [f64]>,
}

impl<'a> CapacityInstance<'a> {
    /// Creates an unweighted instance.
    pub fn unweighted(gain: &'a GainMatrix, params: &'a SinrParams) -> Self {
        CapacityInstance {
            gain,
            params,
            weights: None,
        }
    }

    /// Creates a weighted instance.
    ///
    /// # Panics
    /// If the weight vector length does not match the gain matrix.
    pub fn weighted(gain: &'a GainMatrix, params: &'a SinrParams, weights: &'a [f64]) -> Self {
        assert_eq!(weights.len(), gain.len(), "one weight per link");
        CapacityInstance {
            gain,
            params,
            weights: Some(weights),
        }
    }

    /// Weight of link `i` (1 when unweighted).
    #[inline]
    pub fn weight(&self, i: usize) -> f64 {
        self.weights.map_or(1.0, |w| w[i])
    }

    /// Total weight of a set.
    pub fn total_weight(&self, set: &[usize]) -> f64 {
        set.iter().map(|&i| self.weight(i)).sum()
    }

    /// Number of links.
    #[inline]
    pub fn len(&self) -> usize {
        self.gain.len()
    }

    /// Whether the instance has no links.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gain.is_empty()
    }
}

/// A fixed-power capacity-maximization algorithm.
pub trait CapacityAlgorithm {
    /// Human-readable algorithm name (for reports).
    fn name(&self) -> &str;

    /// Selects a feasible set of links. Implementations must return a set
    /// that passes [`rayfade_sinr::is_feasible`].
    fn select(&self, instance: &CapacityInstance<'_>) -> Vec<usize>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_weights() {
        let gm = GainMatrix::from_raw(2, vec![1.0, 0.0, 0.0, 1.0]);
        let params = SinrParams::new(2.0, 1.0, 0.0);
        let inst = CapacityInstance::unweighted(&gm, &params);
        assert_eq!(inst.weight(0), 1.0);
        assert_eq!(inst.total_weight(&[0, 1]), 2.0);
        let w = vec![3.0, 0.5];
        let inst = CapacityInstance::weighted(&gm, &params, &w);
        assert_eq!(inst.weight(1), 0.5);
        assert_eq!(inst.total_weight(&[0, 1]), 3.5);
        assert_eq!(inst.len(), 2);
        assert!(!inst.is_empty());
    }

    #[test]
    #[should_panic(expected = "one weight per link")]
    fn mismatched_weights_rejected() {
        let gm = GainMatrix::from_raw(2, vec![1.0, 0.0, 0.0, 1.0]);
        let params = SinrParams::new(2.0, 1.0, 0.0);
        let w = vec![1.0];
        let _ = CapacityInstance::weighted(&gm, &params, &w);
    }
}
