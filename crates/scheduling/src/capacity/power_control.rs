//! Capacity maximization with power control.
//!
//! Kesselheim's SODA'11 algorithm (the paper's reference \[6\]) achieves a
//! constant-factor approximation when the algorithm may choose transmission
//! powers itself. Its selection rule processes links shortest-first and
//! admits a link when the accumulated "relative interference" from already
//! admitted (shorter) links stays below a constant; feasible powers for the
//! admitted set are then constructed explicitly.
//!
//! We implement the same selection rule and replace the paper-specific
//! power construction with the classical Foschini–Miljanic iteration from
//! `rayfade-sinr`, which returns the componentwise-minimal feasible powers
//! for the admitted set (and certifies feasibility). If the minimal-power
//! solve fails — possible because our admission rule is used on arbitrary
//! instances, not just the metric ones of \[6\] — links with the highest
//! incoming relative interference are dropped until it succeeds, so the
//! algorithm's contract (a feasible set *with* its powers) always holds.
//! See DESIGN.md's substitution notes.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rayfade_geometry::LinkGeometry;
use rayfade_sinr::{
    solve_min_powers, GainMatrix, PowerAssignment, PowerIterationConfig, PowerSolve, SinrParams,
};
use serde::{Deserialize, Serialize};

/// Result of a power-control selection: the admitted links plus concrete
/// feasible powers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerControlSolution {
    /// Admitted links, sorted.
    pub set: Vec<usize>,
    /// Transmission power for every link of the original instance; links
    /// outside `set` carry the placeholder power 1 (they do not transmit).
    pub powers: PowerAssignment,
}

/// Joint link-selection + power-assignment algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerControlCapacity {
    /// Admission budget `τ` for accumulated relative interference; \[6\]
    /// uses a small constant. Larger admits more links but forces more
    /// repair drops.
    pub tau: f64,
    /// Power-iteration configuration for the feasibility solve.
    pub iteration: PowerIterationConfig,
}

impl Default for PowerControlCapacity {
    fn default() -> Self {
        PowerControlCapacity {
            tau: 0.5,
            iteration: PowerIterationConfig::default(),
        }
    }
}

impl PowerControlCapacity {
    /// Runs selection and power assignment on a geometric instance.
    ///
    /// # Panics
    /// If any cross distance is zero.
    pub fn select<G: LinkGeometry>(
        &self,
        geometry: &G,
        params: &SinrParams,
    ) -> PowerControlSolution {
        let n = geometry.len();
        // Shortest-first admission, the order of [6].
        let mut order: Vec<usize> = (0..n).collect();
        // total_cmp: a NaN length orders deterministically (last, in
        // ascending order) instead of aborting; the degenerate-link guard
        // below keeps such links out of the admission.
        order.sort_by(|&a, &b| {
            geometry
                .length(a)
                .total_cmp(&geometry.length(b))
                .then(a.cmp(&b))
        });
        let mut admitted: Vec<usize> = Vec::new();
        for &i in &order {
            // `strictly_positive` also skips NaN lengths, not just non-positive.
            if !crate::capacity::strictly_positive(geometry.length(i)) {
                continue; // degenerate link, cannot assign path-loss power
            }
            // Relative interference of already-admitted (shorter) links on
            // the candidate: sum of min{1, (len(j) / d(s_j, r_i))^alpha}.
            let mut w = 0.0;
            for &j in &admitted {
                let d = geometry.cross_dist(j, i);
                assert!(d > 0.0, "cross distance must be positive");
                w += (geometry.length(j) / d).powf(params.alpha).min(1.0);
                if w > self.tau {
                    break;
                }
            }
            if w <= self.tau {
                admitted.push(i);
            }
        }
        // Equip the admitted set with minimal feasible powers; drop the
        // most-interfered link on failure and retry.
        loop {
            match self.solve_powers(geometry, params, &admitted) {
                Some(powers) => {
                    // `powers` is aligned with the current `admitted`
                    // order; scatter into link-indexed positions before
                    // sorting the set for the caller.
                    let mut all = vec![1.0; n];
                    for (slot, &link) in admitted.iter().enumerate() {
                        all[link] = powers[slot];
                    }
                    admitted.sort_unstable();
                    return PowerControlSolution {
                        set: admitted,
                        powers: PowerAssignment::Custom(all),
                    };
                }
                None => {
                    if admitted.is_empty() {
                        return PowerControlSolution {
                            set: Vec::new(),
                            powers: PowerAssignment::Custom(vec![1.0; n]),
                        };
                    }
                    let victim = self.most_interfered(geometry, params, &admitted);
                    admitted.remove(victim);
                }
            }
        }
    }

    /// Minimal feasible powers for `set` (set-local order), or `None`.
    fn solve_powers<G: LinkGeometry>(
        &self,
        geometry: &G,
        params: &SinrParams,
        set: &[usize],
    ) -> Option<Vec<f64>> {
        let m = set.len();
        let unit_gain = |j: usize, i: usize| -> f64 {
            let d = geometry.cross_dist(set[j], set[i]);
            1.0 / d.powf(params.alpha)
        };
        match solve_min_powers(m, unit_gain, params, &self.iteration) {
            PowerSolve::Feasible(p) => Some(p),
            PowerSolve::Infeasible => None,
        }
    }

    /// Index *within `set`* of the link with the largest incoming relative
    /// interference — the repair victim.
    fn most_interfered<G: LinkGeometry>(
        &self,
        geometry: &G,
        params: &SinrParams,
        set: &[usize],
    ) -> usize {
        let mut worst = 0;
        let mut worst_val = -1.0;
        for (a, &i) in set.iter().enumerate() {
            let mut w = 0.0;
            for &j in set.iter() {
                if j != i {
                    let d = geometry.cross_dist(j, i);
                    w += (geometry.length(j) / d).powf(params.alpha).min(1.0);
                }
            }
            if w > worst_val {
                worst_val = w;
                worst = a;
            }
        }
        worst
    }

    /// Convenience wrapper: verifies the produced solution by rebuilding
    /// the gain matrix under the chosen powers and checking feasibility.
    pub fn select_verified<G: LinkGeometry>(
        &self,
        geometry: &G,
        params: &SinrParams,
    ) -> (PowerControlSolution, bool) {
        let sol = self.select(geometry, params);
        if geometry.len() == 0 {
            return (sol, true);
        }
        let gm = GainMatrix::from_geometry(geometry, &sol.powers, params.alpha);
        let ok = rayfade_sinr::is_feasible(&gm, params, &sol.set);
        (sol, ok)
    }
}

/// Generates a reference uniform-random probe used by tests and benches:
/// a seeded permutation of `0..n`.
pub fn random_order(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayfade_geometry::{ExponentialChain, PaperTopology};

    #[test]
    fn paper_topology_solution_is_feasible_under_chosen_powers() {
        for seed in 0..4 {
            let net = PaperTopology {
                links: 40,
                side: 600.0,
                min_length: 20.0,
                max_length: 40.0,
            }
            .generate(seed);
            let params = SinrParams::figure1();
            let (sol, ok) = PowerControlCapacity::default().select_verified(&net, &params);
            assert!(ok, "seed {seed}: infeasible under chosen powers");
            assert!(!sol.set.is_empty(), "seed {seed}: empty selection");
        }
    }

    #[test]
    fn exponential_chain_benefits_from_power_control() {
        // The classical hard case for uniform powers: exponentially growing
        // chain. Power control should still admit several links.
        let net = ExponentialChain {
            links: 12,
            base: 1.0,
            growth: 2.0,
        }
        .generate();
        let params = SinrParams::new(3.0, 1.5, 1e-9);
        let (sol, ok) = PowerControlCapacity::default().select_verified(&net, &params);
        assert!(ok);
        assert!(sol.set.len() >= 3, "only {} admitted", sol.set.len());
    }

    #[test]
    fn nan_length_is_skipped_not_fatal() {
        // Regression: the shortest-first sort used partial_cmp().expect,
        // so a single NaN length (e.g. from corrupted coordinates)
        // aborted the whole schedule. It must now be ordered
        // deterministically and excluded by the degenerate-link guard.
        struct NanLink;
        impl LinkGeometry for NanLink {
            fn len(&self) -> usize {
                3
            }
            fn cross_dist(&self, j: usize, i: usize) -> f64 {
                if j == i {
                    if i == 1 {
                        f64::NAN
                    } else {
                        10.0
                    }
                } else {
                    1e6 // far apart: no meaningful interference
                }
            }
        }
        let params = SinrParams::new(2.5, 1.5, 1e-12);
        let sol = PowerControlCapacity::default().select(&NanLink, &params);
        assert_eq!(sol.set, vec![0, 2], "NaN-length link must be dropped");
    }

    #[test]
    fn powers_align_with_links() {
        let net = PaperTopology {
            links: 15,
            side: 300.0,
            min_length: 10.0,
            max_length: 20.0,
        }
        .generate(9);
        let params = SinrParams::figure1();
        let sol = PowerControlCapacity::default().select(&net, &params);
        match &sol.powers {
            PowerAssignment::Custom(p) => assert_eq!(p.len(), 15),
            other => panic!("expected custom powers, got {other:?}"),
        }
        // Set must be sorted and unique.
        let mut sorted = sol.set.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, sol.set);
    }

    #[test]
    fn empty_instance() {
        let net = rayfade_geometry::Network::default();
        let params = SinrParams::figure1();
        let (sol, ok) = PowerControlCapacity::default().select_verified(&net, &params);
        assert!(ok);
        assert!(sol.set.is_empty());
    }

    #[test]
    fn tighter_tau_admits_fewer() {
        let net = PaperTopology {
            links: 50,
            side: 500.0,
            min_length: 20.0,
            max_length: 40.0,
        }
        .generate(3);
        let params = SinrParams::figure1();
        let loose = PowerControlCapacity::default().select(&net, &params);
        let strict = PowerControlCapacity {
            tau: 0.05,
            ..PowerControlCapacity::default()
        }
        .select(&net, &params);
        assert!(strict.set.len() <= loose.set.len());
    }

    #[test]
    fn random_order_is_permutation() {
        let v = random_order(20, 7);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_eq!(v, random_order(20, 7));
        assert_ne!(v, random_order(20, 8));
    }
}
