//! Affectance-guarded greedy capacity maximization.
//!
//! The constant-factor algorithms for fixed powers — Goussevskaia,
//! Wattenhofer, Halldórsson & Welzl \[8\] for uniform powers and
//! Halldórsson–Mitra \[7\] for oblivious (e.g. square-root) powers — share
//! one skeleton: process links from strongest to weakest and accept a link
//! when its mutual affectance with the already-accepted set stays below a
//! constant guard. Our implementation generalizes the skeleton to arbitrary
//! gain matrices while keeping the guarantee that matters downstream:
//! **the returned set is always feasible**, by checking both the incoming
//! affectance of the candidate and the headroom of every accepted link.
//!
//! For geometric instances with the referenced power schemes this is the
//! transferred algorithm of the paper's Sec. 4; for arbitrary gains it
//! degrades gracefully into a feasibility-preserving heuristic.

use super::{CapacityAlgorithm, CapacityInstance, SelectionStats};
use rayfade_sinr::{
    AccumMode, Affectance, InterferenceRatios, SparseInterferenceRatios, SparseSuccessAccumulator,
    SuccessAccumulator,
};
use rayfade_telemetry::trace::{self, Tracer};
use serde::{Deserialize, Serialize};

/// Link processing order for [`GreedyCapacity`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GreedyOrder {
    /// Strongest own signal first (ties by index). Under uniform or
    /// square-root powers this equals shortest-link-first, the order the
    /// referenced algorithms use.
    SignalDescending,
    /// Highest weight first (ties by signal, then index) — for weighted
    /// instances.
    WeightDescending,
    /// Caller-provided order (a permutation of `0..n`).
    Explicit(Vec<usize>),
}

/// Greedy capacity maximization with an affectance guard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GreedyCapacity {
    /// Maximum incoming (unclipped) affectance a candidate may already
    /// suffer from the accepted set. The referenced algorithms use a
    /// constant `< 1`; `1/2` leaves headroom for links accepted later.
    pub in_budget: f64,
    /// Hard cap on the incoming affectance of *accepted* links; `1.0` is
    /// exactly the feasibility boundary. Lower values trade capacity for
    /// interference slack.
    pub acceptance_cap: f64,
    /// Processing order.
    pub order: GreedyOrder,
}

impl Default for GreedyCapacity {
    fn default() -> Self {
        GreedyCapacity {
            in_budget: 0.5,
            acceptance_cap: 1.0,
            order: GreedyOrder::SignalDescending,
        }
    }
}

impl GreedyCapacity {
    /// Greedy with default guards and signal-descending order.
    pub fn new() -> Self {
        Self::default()
    }

    /// Greedy in weight-descending order (for weighted instances).
    pub fn weighted() -> Self {
        GreedyCapacity {
            order: GreedyOrder::WeightDescending,
            ..Self::default()
        }
    }

    fn ordering(&self, inst: &CapacityInstance<'_>) -> Vec<usize> {
        let n = inst.len();
        match &self.order {
            GreedyOrder::Explicit(order) => {
                assert_eq!(order.len(), n, "explicit order must cover all links");
                order.clone()
            }
            GreedyOrder::SignalDescending => {
                let mut idx: Vec<usize> = (0..n).collect();
                // total_cmp: a NaN entry must not abort the whole
                // schedule; it sorts deterministically (first, in
                // descending order) and is skipped by the select() guard.
                idx.sort_by(|&a, &b| {
                    inst.gain
                        .signal(b)
                        .total_cmp(&inst.gain.signal(a))
                        .then(a.cmp(&b))
                });
                idx
            }
            GreedyOrder::WeightDescending => {
                // Non-positive (and NaN) weights are skipped by the
                // select() guard no matter where they sort, so drop them
                // before sorting: queue-weighted slot loops call this
                // every slot with mostly-empty queues, and sorting the
                // handful of backlogged links instead of all n is the
                // difference between O(k log k) and O(n log n) per slot.
                // The surviving order — and hence the selection and its
                // stats — is bit-identical to sorting the full range.
                let mut idx: Vec<usize> = (0..n)
                    .filter(|&i| crate::capacity::strictly_positive(inst.weight(i)))
                    .collect();
                idx.sort_by(|&a, &b| {
                    inst.weight(b)
                        .total_cmp(&inst.weight(a))
                        .then(inst.gain.signal(b).total_cmp(&inst.gain.signal(a)))
                        .then(a.cmp(&b))
                });
                idx
            }
        }
    }
}

/// Marginal-gain greedy on the *Rayleigh* objective `Σ_i w_i·Q_i`
/// (Theorem 1), powered by the incremental ratio-cache accumulator.
///
/// Each round activates the silent link with the largest exact change in
/// weighted expected successes and stops when no activation improves the
/// objective by more than [`min_gain`](Self::min_gain). With the cached
/// [`InterferenceRatios`] a candidate is scored in O(n) (vs. the O(n²)
/// from-scratch Theorem 1 evaluation), so a full run costs O(n³) instead
/// of O(n⁴) — the benchmark in `rayfade-bench` (`evaluator_bench`)
/// measures the re-scoring speedup directly.
///
/// Unlike [`GreedyCapacity`] this does **not** implement
/// [`CapacityAlgorithm`]: its output maximizes a stochastic objective and
/// is deliberately *not* required to be feasible in the non-fading model
/// (a set can be worth transmitting even when every link only succeeds
/// with probability 1/2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RayleighGreedy {
    /// Stop once the best marginal gain drops to this value or below
    /// (0 accepts any strict improvement).
    pub min_gain: f64,
    /// Optional cap on the number of activated links.
    pub max_links: Option<usize>,
}

impl Default for RayleighGreedy {
    fn default() -> Self {
        RayleighGreedy {
            min_gain: 0.0,
            max_links: None,
        }
    }
}

impl RayleighGreedy {
    /// Greedy accepting any strict improvement, no size cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects a transmit set maximizing `Σ w_i·Q_i` greedily, in
    /// activation order. NaN or non-positive weights exclude a link.
    pub fn select(&self, inst: &CapacityInstance<'_>) -> Vec<usize> {
        let ratios = InterferenceRatios::new(inst.gain, inst.params);
        self.select_with_ratios(&ratios, inst)
    }

    /// [`select`](Self::select) against a prebuilt ratio cache — the
    /// entry point for callers re-solving many weight vectors on one
    /// gain matrix (e.g. queue-weighted scheduling slot loops).
    ///
    /// # Panics
    /// If the cache size does not match the instance.
    pub fn select_with_ratios(
        &self,
        ratios: &InterferenceRatios,
        inst: &CapacityInstance<'_>,
    ) -> Vec<usize> {
        self.select_with_ratios_stats(ratios, inst).0
    }

    /// [`select_with_ratios`](Self::select_with_ratios) that also returns
    /// the work tally: candidates scored per round, accepted vs. rejected,
    /// and accumulator guard trips (always 0 here — the selector runs in
    /// log-domain mode — but reported uniformly for telemetry).
    ///
    /// # Panics
    /// If the cache size does not match the instance.
    pub fn select_with_ratios_stats(
        &self,
        ratios: &InterferenceRatios,
        inst: &CapacityInstance<'_>,
    ) -> (Vec<usize>, SelectionStats) {
        assert_eq!(ratios.len(), inst.len(), "ratio cache size mismatch");
        let n = inst.len();
        let mut acc = SuccessAccumulator::new(n, AccumMode::LogDomain);
        let mut selected: Vec<usize> = Vec::new();
        let mut stats = SelectionStats::default();
        let cap = self.max_links.unwrap_or(n);
        while selected.len() < cap {
            let mut best: Option<(usize, f64)> = None;
            for j in 0..n {
                // `strictly_positive` also rejects NaN weights.
                if acc.prob(j) != 0.0 || !crate::capacity::strictly_positive(inst.weight(j)) {
                    continue;
                }
                stats.candidates_scored += 1;
                let gain = acc.activation_gain(ratios, inst.weights, j);
                if best.is_none_or(|(_, g)| gain.total_cmp(&g).is_gt()) {
                    best = Some((j, gain));
                }
            }
            match best {
                Some((j, gain)) if gain > self.min_gain => {
                    acc.insert(ratios, j);
                    selected.push(j);
                }
                _ => break,
            }
        }
        stats.accepted = selected.len() as u64;
        stats.rejected = stats.candidates_scored.saturating_sub(stats.accepted);
        stats.rederivations = acc.rederivations();
        (selected, stats)
    }

    /// [`select_with_ratios_stats`](Self::select_with_ratios_stats) under
    /// an optional `selector/rayleigh_greedy` span covering the whole
    /// candidate-scoring loop. Callers that invoke the selector every
    /// slot should gate the tracer on their sampling policy — a span per
    /// selection is cheap, but only when it is not one per microsecond.
    pub fn select_with_ratios_stats_traced(
        &self,
        ratios: &InterferenceRatios,
        inst: &CapacityInstance<'_>,
        tracer: Option<&Tracer>,
    ) -> (Vec<usize>, SelectionStats) {
        let _g = trace::guard(
            tracer,
            tracer.map(|tr| tr.span_id("selector/rayleigh_greedy")),
        );
        self.select_with_ratios_stats(ratios, inst)
    }

    /// [`select`](Self::select) against an ε-truncated sparse ratio
    /// cache — the large-instance path. With truncation bound `δ = 0`
    /// the cache is bit-equal to the dense one and so is the selection;
    /// for `δ > 0` the selector greedily maximizes the certified sparse
    /// objective, whose per-link values sit within `[Q·e^{−τᵢ}, Q]` of
    /// the exact dense ones. A candidate is scored in O(deg) instead of
    /// O(n), so a full run costs O(rounds · n + Σ deg) — this is what
    /// makes queue-weighted scheduling feasible at n ≈ 10⁵.
    pub fn select_sparse(&self, ratios: &SparseInterferenceRatios) -> Vec<usize> {
        self.select_sparse_stats(ratios, None).0
    }

    /// [`select_sparse`](Self::select_sparse) with optional per-link
    /// weights and the same work tally as the dense variant. NaN or
    /// non-positive weights exclude a link.
    ///
    /// # Panics
    /// If a weight vector is given and its length does not match the cache.
    pub fn select_sparse_stats(
        &self,
        ratios: &SparseInterferenceRatios,
        weights: Option<&[f64]>,
    ) -> (Vec<usize>, SelectionStats) {
        let n = ratios.len();
        if let Some(w) = weights {
            assert_eq!(w.len(), n, "weight vector size mismatch");
        }
        let weight = |j: usize| weights.map_or(1.0, |w| w[j]);
        let mut acc = SparseSuccessAccumulator::new(n);
        let mut selected: Vec<usize> = Vec::new();
        let mut stats = SelectionStats::default();
        let cap = self.max_links.unwrap_or(n);
        while selected.len() < cap {
            let mut best: Option<(usize, f64)> = None;
            for j in 0..n {
                // `strictly_positive` also rejects NaN weights.
                if acc.prob(j) != 0.0 || !crate::capacity::strictly_positive(weight(j)) {
                    continue;
                }
                stats.candidates_scored += 1;
                let gain = acc.activation_gain(ratios, weights, j);
                if best.is_none_or(|(_, g)| gain.total_cmp(&g).is_gt()) {
                    best = Some((j, gain));
                }
            }
            match best {
                Some((j, gain)) if gain > self.min_gain => {
                    acc.insert(ratios, j);
                    selected.push(j);
                }
                _ => break,
            }
        }
        stats.accepted = selected.len() as u64;
        stats.rejected = stats.candidates_scored.saturating_sub(stats.accepted);
        (selected, stats)
    }

    /// [`select_sparse_stats`](Self::select_sparse_stats) under the same
    /// optional `selector/rayleigh_greedy` span as the dense variant.
    pub fn select_sparse_stats_traced(
        &self,
        ratios: &SparseInterferenceRatios,
        weights: Option<&[f64]>,
        tracer: Option<&Tracer>,
    ) -> (Vec<usize>, SelectionStats) {
        let _g = trace::guard(
            tracer,
            tracer.map(|tr| tr.span_id("selector/rayleigh_greedy")),
        );
        self.select_sparse_stats(ratios, weights)
    }
}

impl GreedyCapacity {
    /// [`CapacityAlgorithm::select`] that also returns the work tally:
    /// every link whose affectance guards were evaluated counts as
    /// scored, and scored − accepted as rejected (`rederivations` is
    /// always 0 — this selector keeps no incremental evaluator).
    pub fn select_with_stats(&self, inst: &CapacityInstance<'_>) -> (Vec<usize>, SelectionStats) {
        let aff = Affectance::new(inst.gain, inst.params);
        self.select_with_affectance_stats(&aff, inst)
    }

    /// [`select_with_stats`](Self::select_with_stats) against a prebuilt
    /// [`Affectance`] cache — the entry point for callers re-solving many
    /// weight vectors on one gain matrix (e.g. queue-weighted scheduling
    /// slot loops), where rebuilding the O(n²) cache per call dominates
    /// the selection itself. `Affectance` is a pure function of
    /// `(gain, params)`, so the selection is bit-identical to the
    /// per-call path.
    ///
    /// # Panics
    /// If the cache size does not match the instance.
    pub fn select_with_affectance_stats(
        &self,
        aff: &Affectance,
        inst: &CapacityInstance<'_>,
    ) -> (Vec<usize>, SelectionStats) {
        assert!(self.in_budget >= 0.0 && self.acceptance_cap <= 1.0 + 1e-12);
        assert_eq!(aff.len(), inst.len(), "affectance cache size mismatch");
        let order = self.ordering(inst);
        let mut accepted: Vec<usize> = Vec::new();
        let mut stats = SelectionStats::default();
        // Incoming unclipped affectance currently suffered by each accepted
        // link (indexed by link id for O(1) updates).
        let mut cur_in = vec![0.0; inst.len()];
        'cand: for &i in &order {
            // `strictly_positive` rather than `w <= 0`: it also skips NaN weights.
            if !aff.feasible_alone(i) || !crate::capacity::strictly_positive(inst.weight(i)) {
                continue;
            }
            stats.candidates_scored += 1;
            // Incoming affectance the candidate would suffer.
            let mut in_i = 0.0;
            for &j in &accepted {
                in_i += aff.get_unclipped(j, i);
                if in_i > self.in_budget {
                    continue 'cand;
                }
            }
            // Headroom of every accepted link must survive the newcomer.
            for &k in &accepted {
                if cur_in[k] + aff.get_unclipped(i, k) > self.acceptance_cap {
                    continue 'cand;
                }
            }
            for &k in &accepted {
                cur_in[k] += aff.get_unclipped(i, k);
            }
            cur_in[i] = in_i;
            accepted.push(i);
        }
        stats.accepted = accepted.len() as u64;
        stats.rejected = stats.candidates_scored - stats.accepted;
        (accepted, stats)
    }

    /// [`select_with_stats`](Self::select_with_stats) under an optional
    /// `selector/greedy` span covering the whole affectance-guarded scan
    /// (same sampling caveat as
    /// [`RayleighGreedy::select_with_ratios_stats_traced`]).
    pub fn select_with_stats_traced(
        &self,
        inst: &CapacityInstance<'_>,
        tracer: Option<&Tracer>,
    ) -> (Vec<usize>, SelectionStats) {
        let _g = trace::guard(tracer, tracer.map(|tr| tr.span_id("selector/greedy")));
        self.select_with_stats(inst)
    }

    /// [`select_with_affectance_stats`](Self::select_with_affectance_stats)
    /// under the same optional `selector/greedy` span.
    pub fn select_with_affectance_stats_traced(
        &self,
        aff: &Affectance,
        inst: &CapacityInstance<'_>,
        tracer: Option<&Tracer>,
    ) -> (Vec<usize>, SelectionStats) {
        let _g = trace::guard(tracer, tracer.map(|tr| tr.span_id("selector/greedy")));
        self.select_with_affectance_stats(aff, inst)
    }
}

impl CapacityAlgorithm for GreedyCapacity {
    fn name(&self) -> &str {
        "greedy-affectance"
    }

    fn select(&self, inst: &CapacityInstance<'_>) -> Vec<usize> {
        self.select_with_stats(inst).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayfade_geometry::PaperTopology;
    use rayfade_sinr::{is_feasible, GainMatrix, PowerAssignment, SinrParams};

    fn paper_instance(seed: u64, n: usize) -> (GainMatrix, SinrParams) {
        let net = PaperTopology {
            links: n,
            side: 1000.0,
            min_length: 20.0,
            max_length: 40.0,
        }
        .generate(seed);
        let params = SinrParams::figure1();
        let gm = GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha);
        (gm, params)
    }

    #[test]
    fn output_is_feasible() {
        for seed in 0..5 {
            let (gm, params) = paper_instance(seed, 60);
            let set = GreedyCapacity::new().select(&CapacityInstance::unweighted(&gm, &params));
            assert!(
                is_feasible(&gm, &params, &set),
                "seed {seed}: infeasible output {set:?}"
            );
            assert!(!set.is_empty(), "seed {seed}: nothing selected");
        }
    }

    #[test]
    fn selects_isolated_links() {
        // Three mutually distant links: all should be kept.
        let gm = GainMatrix::from_raw(
            3,
            vec![
                10.0, 1e-6, 1e-6, //
                1e-6, 10.0, 1e-6, //
                1e-6, 1e-6, 10.0,
            ],
        );
        let params = SinrParams::new(2.0, 2.0, 0.1);
        let mut set = GreedyCapacity::new().select(&CapacityInstance::unweighted(&gm, &params));
        set.sort_unstable();
        assert_eq!(set, vec![0, 1, 2]);
    }

    #[test]
    fn drops_conflicting_links() {
        // 0 and 1 kill each other; 2 is free.
        let gm = GainMatrix::from_raw(
            3,
            vec![
                10.0, 9.0, 1e-6, //
                9.0, 10.0, 1e-6, //
                1e-6, 1e-6, 5.0,
            ],
        );
        let params = SinrParams::new(2.0, 2.0, 0.0);
        let set = GreedyCapacity::new().select(&CapacityInstance::unweighted(&gm, &params));
        assert!(set.len() == 2, "{set:?}");
        assert!(set.contains(&2));
        assert!(is_feasible(&gm, &params, &set));
    }

    #[test]
    fn skips_hopeless_and_zero_weight_links() {
        let gm = GainMatrix::from_raw(2, vec![0.5, 0.0, 0.0, 10.0]);
        let params = SinrParams::new(2.0, 1.0, 1.0); // link 0: 0.5 < beta*nu = 1
        let set = GreedyCapacity::new().select(&CapacityInstance::unweighted(&gm, &params));
        assert_eq!(set, vec![1]);
        // Zero-weight link is skipped too.
        let gm2 = GainMatrix::from_raw(2, vec![10.0, 0.0, 0.0, 10.0]);
        let w = vec![0.0, 1.0];
        let set = GreedyCapacity::weighted().select(&CapacityInstance::weighted(&gm2, &params, &w));
        assert_eq!(set, vec![1]);
    }

    #[test]
    fn weighted_order_prefers_heavy_links() {
        // 0 and 1 mutually exclusive; 1 has more weight.
        let gm = GainMatrix::from_raw(2, vec![10.0, 9.0, 9.0, 10.0]);
        let params = SinrParams::new(2.0, 2.0, 0.0);
        let w = vec![1.0, 5.0];
        let set = GreedyCapacity::weighted().select(&CapacityInstance::weighted(&gm, &params, &w));
        assert_eq!(set, vec![1]);
    }

    #[test]
    fn explicit_order_is_respected() {
        let gm = GainMatrix::from_raw(2, vec![10.0, 9.0, 9.0, 10.0]);
        let params = SinrParams::new(2.0, 2.0, 0.0);
        let alg = GreedyCapacity {
            order: GreedyOrder::Explicit(vec![1, 0]),
            ..GreedyCapacity::default()
        };
        let set = alg.select(&CapacityInstance::unweighted(&gm, &params));
        assert_eq!(set, vec![1]);
    }

    #[test]
    fn tighter_budget_selects_fewer_links() {
        let (gm, params) = paper_instance(11, 80);
        let inst = CapacityInstance::unweighted(&gm, &params);
        let loose = GreedyCapacity::new().select(&inst);
        let strict = GreedyCapacity {
            in_budget: 0.05,
            acceptance_cap: 0.1,
            ..GreedyCapacity::default()
        }
        .select(&inst);
        assert!(strict.len() <= loose.len());
        assert!(is_feasible(&gm, &params, &strict));
    }

    #[test]
    fn empty_instance() {
        let gm = GainMatrix::from_raw(0, vec![]);
        let params = SinrParams::new(2.0, 1.0, 0.0);
        let set = GreedyCapacity::new().select(&CapacityInstance::unweighted(&gm, &params));
        assert!(set.is_empty());
    }

    #[test]
    fn traced_selects_match_untraced_and_emit_spans() {
        let (gm, params) = paper_instance(7, 40);
        let inst = CapacityInstance::unweighted(&gm, &params);
        let tracer = Tracer::new();
        let greedy = GreedyCapacity::new();
        assert_eq!(
            greedy.select_with_stats_traced(&inst, Some(&tracer)),
            greedy.select_with_stats(&inst),
            "tracing must not change the selection"
        );
        assert_eq!(
            greedy.select_with_stats_traced(&inst, None),
            greedy.select_with_stats(&inst)
        );
        let ratios = InterferenceRatios::new(&gm, &params);
        let rayleigh = RayleighGreedy::new();
        assert_eq!(
            rayleigh.select_with_ratios_stats_traced(&ratios, &inst, Some(&tracer)),
            rayleigh.select_with_ratios_stats(&ratios, &inst)
        );
        let trace = tracer.snapshot();
        assert_eq!(trace.dropped, 0);
        let count = |name: &str| trace.records.iter().filter(|r| r.name == name).count();
        assert_eq!(count("selector/greedy"), 1);
        assert_eq!(count("selector/rayleigh_greedy"), 1);
    }

    #[test]
    fn prebuilt_affectance_path_is_bit_identical() {
        let (gm, params) = paper_instance(17, 50);
        let aff = Affectance::new(&gm, &params);
        let greedy = GreedyCapacity::weighted();
        for round in 0..4u64 {
            // Fresh weights per round, same cache: the slot-loop shape.
            let w: Vec<f64> = (0..50)
                .map(|i| 1.0 + ((i as u64 * 7 + round) % 11) as f64)
                .collect();
            let inst = CapacityInstance::weighted(&gm, &params, &w);
            assert_eq!(
                greedy.select_with_affectance_stats(&aff, &inst),
                greedy.select_with_stats(&inst),
                "round {round}: cached affectance must not change the selection"
            );
        }
        let tracer = Tracer::new();
        let inst = CapacityInstance::unweighted(&gm, &params);
        assert_eq!(
            greedy.select_with_affectance_stats_traced(&aff, &inst, Some(&tracer)),
            greedy.select_with_stats(&inst)
        );
        assert_eq!(
            tracer
                .snapshot()
                .records
                .iter()
                .filter(|r| r.name == "selector/greedy")
                .count(),
            1
        );
    }

    #[test]
    #[should_panic(expected = "affectance cache size mismatch")]
    fn prebuilt_affectance_size_mismatch_rejected() {
        let gm = GainMatrix::from_raw(2, vec![10.0, 0.0, 0.0, 10.0]);
        let gm3 = GainMatrix::from_raw(3, vec![10.0, 0.0, 0.0, 0.0, 10.0, 0.0, 0.0, 0.0, 10.0]);
        let params = SinrParams::new(2.0, 1.0, 0.0);
        let aff = Affectance::new(&gm3, &params);
        let _ = GreedyCapacity::new()
            .select_with_affectance_stats(&aff, &CapacityInstance::unweighted(&gm, &params));
    }

    #[test]
    fn nan_weight_is_skipped_not_fatal() {
        // Regression: the weight sort used partial_cmp().expect(...), so a
        // single NaN weight aborted the whole schedule. It must now be
        // ordered deterministically and excluded from the selection.
        let gm = GainMatrix::from_raw(
            3,
            vec![
                10.0, 1e-6, 1e-6, //
                1e-6, 10.0, 1e-6, //
                1e-6, 1e-6, 10.0,
            ],
        );
        let params = SinrParams::new(2.0, 2.0, 0.1);
        let w = vec![1.0, f64::NAN, 2.0];
        let mut set =
            GreedyCapacity::weighted().select(&CapacityInstance::weighted(&gm, &params, &w));
        set.sort_unstable();
        assert_eq!(set, vec![0, 2], "NaN-weighted link must be dropped");
    }

    /// Scratch Theorem 1 objective `Σ_{i∈set} Q_i` for reference checks
    /// (kept independent of the accumulator under test).
    fn scratch_objective(gm: &GainMatrix, params: &SinrParams, set: &[usize]) -> f64 {
        let beta = params.beta;
        set.iter()
            .map(|&i| {
                let s_ii = gm.signal(i);
                if s_ii == 0.0 {
                    return 0.0;
                }
                let mut p = (-beta * params.noise / s_ii).exp();
                for &j in set {
                    let s_ji = gm.gain(j, i);
                    if j != i && s_ji != 0.0 {
                        p *= 1.0 - beta / (beta + s_ii / s_ji);
                    }
                }
                p
            })
            .sum()
    }

    #[test]
    fn rayleigh_greedy_is_deterministic_and_locally_maximal() {
        let (gm, params) = paper_instance(3, 10);
        let inst = CapacityInstance::unweighted(&gm, &params);
        let set = RayleighGreedy::new().select(&inst);
        assert!(!set.is_empty());
        assert_eq!(set, RayleighGreedy::new().select(&inst), "deterministic");
        // No silent link may improve the objective (greedy stops only
        // when every marginal gain is <= 0).
        let base = scratch_objective(&gm, &params, &set);
        for j in 0..inst.len() {
            if set.contains(&j) {
                continue;
            }
            let mut bigger = set.clone();
            bigger.push(j);
            let with_j = scratch_objective(&gm, &params, &bigger);
            assert!(
                with_j <= base + 1e-9,
                "link {j} would improve {base} -> {with_j}"
            );
        }
        // And greedy must beat every singleton.
        for j in 0..inst.len() {
            assert!(scratch_objective(&gm, &params, &[j]) <= base + 1e-12);
        }
    }

    #[test]
    fn rayleigh_greedy_first_pick_is_best_singleton() {
        // With min_gain = 0 and max_links = 1, the selection is exactly
        // the argmax of w_i * Q_i({i}).
        let gm = GainMatrix::from_raw(
            3,
            vec![
                10.0, 2.0, 1.0, //
                2.0, 8.0, 0.5, //
                1.0, 0.5, 12.0,
            ],
        );
        let params = SinrParams::new(2.0, 1.5, 0.2);
        let inst = CapacityInstance::unweighted(&gm, &params);
        let alg = RayleighGreedy {
            max_links: Some(1),
            ..RayleighGreedy::default()
        };
        let set = alg.select(&inst);
        // Q_i({i}) = exp(-beta*nu/S_ii): maximized by the largest signal.
        assert_eq!(set, vec![2]);
    }

    #[test]
    fn rayleigh_greedy_skips_nan_and_nonpositive_weights() {
        let gm = GainMatrix::from_raw(
            3,
            vec![
                10.0, 1e-6, 1e-6, //
                1e-6, 10.0, 1e-6, //
                1e-6, 1e-6, 10.0,
            ],
        );
        let params = SinrParams::new(2.0, 2.0, 0.0);
        let w = vec![f64::NAN, 0.0, 1.0];
        let inst = CapacityInstance::weighted(&gm, &params, &w);
        let set = RayleighGreedy::new().select(&inst);
        assert_eq!(set, vec![2]);
    }

    #[test]
    fn rayleigh_greedy_reuses_prebuilt_ratio_cache() {
        use rayfade_sinr::InterferenceRatios;
        let (gm, params) = paper_instance(7, 20);
        let inst = CapacityInstance::unweighted(&gm, &params);
        let ratios = InterferenceRatios::new(&gm, &params);
        let direct = RayleighGreedy::new().select(&inst);
        let cached = RayleighGreedy::new().select_with_ratios(&ratios, &inst);
        assert_eq!(direct, cached);
    }

    #[test]
    fn sparse_selection_matches_dense_at_delta_zero() {
        let (gm, params) = paper_instance(9, 30);
        let inst = CapacityInstance::unweighted(&gm, &params);
        let dense = InterferenceRatios::new(&gm, &params);
        let sparse = SparseInterferenceRatios::from_gain(&gm, &params, 0.0);
        let alg = RayleighGreedy::new();
        let (dense_set, dense_stats) = alg.select_with_ratios_stats(&dense, &inst);
        let (sparse_set, sparse_stats) = alg.select_sparse_stats(&sparse, None);
        assert_eq!(dense_set, sparse_set, "delta = 0 must reproduce dense");
        assert_eq!(
            dense_stats.candidates_scored,
            sparse_stats.candidates_scored
        );
        assert_eq!(dense_stats.accepted, sparse_stats.accepted);

        // Weighted variant too.
        let w: Vec<f64> = (0..30).map(|i| 1.0 + (i % 5) as f64).collect();
        let winst = CapacityInstance::weighted(&gm, &params, &w);
        assert_eq!(
            alg.select_with_ratios(&dense, &winst),
            alg.select_sparse_stats(&sparse, Some(&w)).0
        );
    }

    #[test]
    fn sparse_selection_skips_nan_and_nonpositive_weights() {
        let gm = GainMatrix::from_raw(
            3,
            vec![
                10.0, 1e-6, 1e-6, //
                1e-6, 10.0, 1e-6, //
                1e-6, 1e-6, 10.0,
            ],
        );
        let params = SinrParams::new(2.0, 2.0, 0.0);
        let sparse = SparseInterferenceRatios::from_gain(&gm, &params, 0.0);
        let w = vec![f64::NAN, 0.0, 1.0];
        let set = RayleighGreedy::new()
            .select_sparse_stats(&sparse, Some(&w))
            .0;
        assert_eq!(set, vec![2]);
    }

    #[test]
    fn sparse_traced_selects_match_untraced_and_emit_span() {
        let (gm, params) = paper_instance(13, 25);
        let sparse = SparseInterferenceRatios::from_gain(&gm, &params, 1e-3);
        let alg = RayleighGreedy::new();
        let tracer = Tracer::new();
        assert_eq!(
            alg.select_sparse_stats_traced(&sparse, None, Some(&tracer)),
            alg.select_sparse_stats(&sparse, None),
            "tracing must not change the selection"
        );
        let trace = tracer.snapshot();
        assert_eq!(
            trace
                .records
                .iter()
                .filter(|r| r.name == "selector/rayleigh_greedy")
                .count(),
            1
        );
    }

    #[test]
    fn selection_stats_balance() {
        let (gm, params) = paper_instance(5, 40);
        let inst = CapacityInstance::unweighted(&gm, &params);

        let (set, stats) = GreedyCapacity::new().select_with_stats(&inst);
        assert_eq!(set, GreedyCapacity::new().select(&inst), "same selection");
        assert_eq!(stats.accepted, set.len() as u64);
        assert_eq!(stats.candidates_scored, stats.accepted + stats.rejected);
        assert_eq!(stats.rederivations, 0, "no incremental evaluator here");
        assert!(stats.candidates_scored >= set.len() as u64);

        let ratios = InterferenceRatios::new(&gm, &params);
        let (rset, rstats) = RayleighGreedy::new().select_with_ratios_stats(&ratios, &inst);
        assert_eq!(rset, RayleighGreedy::new().select(&inst), "same selection");
        assert_eq!(rstats.accepted, rset.len() as u64);
        assert_eq!(rstats.candidates_scored, rstats.accepted + rstats.rejected);
        // Each of the (accepted + 1 final) rounds scores every silent link.
        assert!(rstats.candidates_scored > rstats.accepted);

        let mut merged = stats;
        merged.merge(&rstats);
        assert_eq!(
            merged.candidates_scored,
            stats.candidates_scored + rstats.candidates_scored
        );
        assert_eq!(merged.accepted, stats.accepted + rstats.accepted);
    }

    #[test]
    #[should_panic(expected = "explicit order must cover all links")]
    fn bad_explicit_order_rejected() {
        let gm = GainMatrix::from_raw(2, vec![1.0, 0.0, 0.0, 1.0]);
        let params = SinrParams::new(2.0, 1.0, 0.0);
        let alg = GreedyCapacity {
            order: GreedyOrder::Explicit(vec![0]),
            ..GreedyCapacity::default()
        };
        let _ = alg.select(&CapacityInstance::unweighted(&gm, &params));
    }
}
