//! Property-based tests for the scheduling algorithms.
//!
//! The central invariant: every capacity algorithm returns a set feasible
//! in the non-fading model, and every latency schedule has only feasible
//! slots — this is exactly what the Rayleigh transfer (rayfade-core)
//! relies on.

use proptest::prelude::*;
use rayfade_geometry::{LinkGeometry, PaperTopology};
use rayfade_sched::{
    multihop_schedule, recursive_schedule, CapacityAlgorithm, CapacityInstance, ExactCapacity,
    FlexibleCapacity, GreedyCapacity, LocalSearchCapacity, PowerControlCapacity, Request,
};
use rayfade_sinr::{is_feasible, GainMatrix, PowerAssignment, ShannonUtility, SinrParams};

fn paper_net(seed: u64, n: usize) -> rayfade_geometry::Network {
    PaperTopology {
        links: n,
        side: 600.0,
        min_length: 20.0,
        max_length: 40.0,
    }
    .generate(seed)
}

fn uniform_gain(net: &rayfade_geometry::Network, params: &SinrParams) -> GainMatrix {
    GainMatrix::from_geometry(net, &PowerAssignment::figure1_uniform(), params.alpha)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Greedy output is always feasible and never empty on nontrivial
    /// paper instances.
    #[test]
    fn greedy_feasible(seed in any::<u64>()) {
        let params = SinrParams::figure1();
        let net = paper_net(seed, 40);
        let gm = uniform_gain(&net, &params);
        let set = GreedyCapacity::new().select(&CapacityInstance::unweighted(&gm, &params));
        prop_assert!(is_feasible(&gm, &params, &set));
        prop_assert!(!set.is_empty());
    }

    /// Greedy under square-root power is feasible too (the oblivious
    /// power family of Figure 1).
    #[test]
    fn greedy_sqrt_power_feasible(seed in any::<u64>()) {
        let params = SinrParams::figure1();
        let net = paper_net(seed, 40);
        let gm = GainMatrix::from_geometry(
            &net, &PowerAssignment::figure1_square_root(), params.alpha);
        let set = GreedyCapacity::new().select(&CapacityInstance::unweighted(&gm, &params));
        prop_assert!(is_feasible(&gm, &params, &set));
    }

    /// Local search dominates greedy in cardinality and stays feasible.
    #[test]
    fn local_search_dominates_greedy(seed in any::<u64>()) {
        let params = SinrParams::figure1();
        let net = paper_net(seed, 30);
        let gm = uniform_gain(&net, &params);
        let inst = CapacityInstance::unweighted(&gm, &params);
        let greedy = GreedyCapacity::new().select(&inst);
        let ls = LocalSearchCapacity { restarts: 3, seed: seed ^ 1, max_sweeps: 20 }
            .select(&inst);
        prop_assert!(is_feasible(&gm, &params, &ls));
        prop_assert!(ls.len() >= greedy.len());
    }

    /// Exact optimum dominates every heuristic on small instances.
    #[test]
    fn exact_dominates(seed in any::<u64>()) {
        let params = SinrParams::figure1();
        let net = paper_net(seed, 12);
        let gm = uniform_gain(&net, &params);
        let inst = CapacityInstance::unweighted(&gm, &params);
        let exact = ExactCapacity::default().select(&inst);
        prop_assert!(is_feasible(&gm, &params, &exact));
        let greedy: &dyn CapacityAlgorithm = &GreedyCapacity::new();
        prop_assert!(exact.len() >= greedy.select(&inst).len());
    }

    /// Recursive latency schedules cover everything with feasible slots,
    /// and each link appears exactly once.
    #[test]
    fn recursive_latency_valid(seed in any::<u64>()) {
        let params = SinrParams::figure1();
        let net = paper_net(seed, 35);
        let gm = uniform_gain(&net, &params);
        let sol = recursive_schedule(&gm, &params, &GreedyCapacity::new());
        prop_assert!(sol.schedule.covers_all(35));
        prop_assert_eq!(sol.schedule.validate(&gm, &params), Ok(()));
        let total: usize = sol.schedule.slots().iter().map(Vec::len).sum();
        prop_assert_eq!(total, 35);
    }

    /// Power control always produces a set feasible under its own powers.
    #[test]
    fn power_control_feasible(seed in any::<u64>()) {
        let params = SinrParams::figure1();
        let net = paper_net(seed, 25);
        let (sol, ok) = PowerControlCapacity::default().select_verified(&net, &params);
        prop_assert!(ok);
        // Power control with freedom of powers should do at least as well
        // as... at minimum, it admits one link.
        prop_assert!(!sol.set.is_empty());
    }

    /// Flexible-rate solutions are feasible at their certified threshold.
    #[test]
    fn flexible_feasible_at_threshold(seed in any::<u64>()) {
        let params = SinrParams::figure1();
        let net = paper_net(seed, 25);
        let gm = uniform_gain(&net, &params);
        let sol = FlexibleCapacity::default()
            .select_with_utility(&gm, &params, &ShannonUtility::uncapped());
        let class = params.with_beta(sol.threshold);
        prop_assert!(is_feasible(&gm, &class, &sol.set));
        prop_assert!(sol.achieved_utility + 1e-9 >= sol.guaranteed_utility);
    }

    /// Multi-hop scheduling respects precedence on random disjoint paths.
    #[test]
    fn multihop_precedence(seed in any::<u64>()) {
        let params = SinrParams::figure1();
        let net = paper_net(seed, 24);
        let gm = uniform_gain(&net, &params);
        let reqs: Vec<Request> = (0..8)
            .map(|r| Request::new(vec![3 * r, 3 * r + 1, 3 * r + 2]))
            .collect();
        let sol = multihop_schedule(&gm, &params, &reqs, &GreedyCapacity::new());
        prop_assert_eq!(sol.completed(), 8);
        for req in &reqs {
            let mut prev = None;
            for &h in &req.hops {
                let t = sol.schedule.first_slot_of(h).expect("scheduled");
                if let Some(p) = prev {
                    prop_assert!(t > p, "precedence violated");
                }
                prev = Some(t);
            }
        }
    }

    /// Greedy capacity is monotone-ish under link removal: removing links
    /// never makes the instance infeasible (sanity of submatrix plumbing).
    #[test]
    fn submatrix_selection_feasible(seed in any::<u64>(), keep in 5usize..20) {
        let params = SinrParams::figure1();
        let net = paper_net(seed, 30);
        let gm = uniform_gain(&net, &params);
        let subset: Vec<usize> = (0..keep.min(30)).collect();
        let sub = gm.submatrix(&subset);
        let set = GreedyCapacity::new().select(&CapacityInstance::unweighted(&sub, &params));
        prop_assert!(is_feasible(&sub, &params, &set));
        // Map back to original indices and re-check.
        let mapped: Vec<usize> = set.iter().map(|&l| subset[l]).collect();
        prop_assert!(is_feasible(&gm, &params, &mapped));
    }

    /// The length-diversity of paper topologies stays within the generator
    /// interval (supports the O(log Δ) discussion).
    #[test]
    fn diversity_bounded(seed in any::<u64>()) {
        let net = paper_net(seed, 20);
        let delta = net.length_diversity().unwrap();
        prop_assert!((1.0..=2.0 + 1e-9).contains(&delta));
    }
}
