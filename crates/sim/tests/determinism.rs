//! Determinism and parallel-safety tests for the experiment engine:
//! results must be bit-identical across runs and across thread counts
//! (rayon parallelism must never change outcomes).

use rayfade_sim::{
    optimum_statistic, run_figure1, run_figure1_analytic, run_figure2, Figure1Config,
    Figure2Config, PowerFamily,
};

#[test]
fn figure1_bitwise_deterministic() {
    let cfg = Figure1Config::smoke();
    let a = run_figure1(&cfg);
    let b = run_figure1(&cfg);
    assert_eq!(a, b);
}

#[test]
fn figure1_independent_of_thread_count() {
    let cfg = Figure1Config::smoke();
    let default_pool = run_figure1(&cfg);
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(|| run_figure1(&cfg));
    assert_eq!(default_pool, single);
    let two = rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build()
        .unwrap()
        .install(|| run_figure1(&cfg));
    assert_eq!(default_pool, two);
}

#[test]
fn figure2_independent_of_thread_count() {
    let cfg = Figure2Config::smoke();
    let default_pool = run_figure2(&cfg);
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(|| run_figure2(&cfg));
    assert_eq!(default_pool, single);
}

#[test]
fn optimum_statistic_thread_invariant() {
    let mut cfg = Figure1Config::smoke();
    cfg.networks = 3;
    let a = optimum_statistic(&cfg, 2);
    let b = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(|| optimum_statistic(&cfg, 2));
    // RunningStats merge order may differ across pools; compare moments,
    // not internal state.
    assert_eq!(a.count(), b.count());
    assert!((a.mean() - b.mean()).abs() < 1e-9);
    assert!((a.variance() - b.variance()).abs() < 1e-9);
}

#[test]
fn analytic_curve_deterministic() {
    let cfg = Figure1Config::smoke();
    let a = run_figure1_analytic(&cfg, PowerFamily::SquareRoot);
    let b = run_figure1_analytic(&cfg, PowerFamily::SquareRoot);
    assert_eq!(a, b);
}

#[test]
fn seed_changes_results() {
    let base = Figure1Config::smoke();
    let mut other = base.clone();
    other.seed ^= 0xdead;
    assert_ne!(run_figure1(&base), run_figure1(&other));
}
