//! Slot-level Monte Carlo primitives.
//!
//! The Figure 1 experiment asks: with every link transmitting
//! independently with probability `q`, how many transmissions succeed on
//! average? In the Rayleigh model this has a closed form (Theorem 1,
//! `rayfade-core`), but the paper *measures* it with seeded draws (25
//! transmit seeds × 10 fading seeds); we provide both so they can be
//! cross-checked.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayfade_core::{mix_seed, mix_seed2, NetworkEvaluator, RayleighModel};
use rayfade_sinr::{count_successes, GainMatrix, SinrParams};

/// Draws one Bernoulli(q) activation mask.
pub fn draw_activation(n: usize, q: f64, rng: &mut StdRng) -> Vec<bool> {
    assert!((0.0..=1.0).contains(&q), "q must lie in [0, 1]");
    (0..n).map(|_| rng.gen_bool(q)).collect()
}

/// Mean non-fading successes over `tx_seeds` activation draws with
/// per-link transmission probability `q`.
pub fn nonfading_success_curve_point(
    gain: &GainMatrix,
    params: &SinrParams,
    q: f64,
    tx_seeds: u64,
    seed_base: u64,
) -> f64 {
    assert!(tx_seeds > 0, "need at least one transmit seed");
    let n = gain.len();
    let mut total = 0usize;
    for s in 0..tx_seeds {
        let mut rng = StdRng::seed_from_u64(mix_seed(seed_base, s));
        let active = draw_activation(n, q, &mut rng);
        total += count_successes(gain, params, &active);
    }
    total as f64 / tx_seeds as f64
}

/// Mean Rayleigh successes over `tx_seeds` activation draws ×
/// `fading_seeds` fading realizations each (the paper's 25 × 10 scheme).
pub fn rayleigh_success_curve_point(
    gain: &GainMatrix,
    params: &SinrParams,
    q: f64,
    tx_seeds: u64,
    fading_seeds: u64,
    seed_base: u64,
) -> f64 {
    assert!(tx_seeds > 0 && fading_seeds > 0, "need at least one seed");
    let n = gain.len();
    let mut total = 0usize;
    for s in 0..tx_seeds {
        let mut rng = StdRng::seed_from_u64(mix_seed(seed_base, s));
        let active = draw_activation(n, q, &mut rng);
        for f in 0..fading_seeds {
            // `mix_seed2` keeps the (s, f) grid collision-free — the old
            // `base*φ + s*1e6+f` arithmetic could collide across bases.
            let mut model = RayleighModel::new(gain.clone(), *params, mix_seed2(seed_base, s, f));
            total += rayfade_sinr::SuccessModel::resolve_slot(&mut model, &active).len();
        }
    }
    total as f64 / (tx_seeds * fading_seeds) as f64
}

/// Exact expected Rayleigh successes at transmission probability `q`
/// (Theorem 1 closed form) — the analytic counterpart of
/// [`rayleigh_success_curve_point`].
pub fn rayleigh_expected_successes(gain: &GainMatrix, params: &SinrParams, q: f64) -> f64 {
    rayleigh_expected_successes_grid(gain, params, &[q])[0]
}

/// Exact expected Rayleigh successes for a whole grid of uniform
/// transmission probabilities, sharing one interference-ratio cache
/// across all grid points (the Figure 1 analytic sweep evaluates 50
/// points per network; rebuilding the ratios per point is pure waste).
///
/// Routes through [`NetworkEvaluator`]: instances at or above
/// [`rayfade_core::SPARSE_CROSSOVER`] links evaluate on the ε-truncated
/// sparse cache (certified to `rayfade_core::DEFAULT_SPARSE_DELTA`
/// relative error) instead of the dense O(n²) one; paper-scale
/// instances stay on the exact dense path.
pub fn rayleigh_expected_successes_grid(
    gain: &GainMatrix,
    params: &SinrParams,
    qs: &[f64],
) -> Vec<f64> {
    let mut ev = NetworkEvaluator::from_gain(gain, params);
    qs.iter()
        .map(|&q| {
            ev.set_uniform(q);
            ev.expected_successes()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayfade_geometry::PaperTopology;
    use rayfade_sinr::PowerAssignment;

    fn paper_gain(seed: u64, n: usize) -> (GainMatrix, SinrParams) {
        let net = PaperTopology {
            links: n,
            side: 500.0,
            min_length: 20.0,
            max_length: 40.0,
        }
        .generate(seed);
        let params = SinrParams::figure1();
        let gm = GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha);
        (gm, params)
    }

    #[test]
    fn activation_draw_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let mask = draw_activation(20_000, 0.3, &mut rng);
        let frac = mask.iter().filter(|&&b| b).count() as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "{frac}");
        // Extremes.
        assert!(draw_activation(100, 0.0, &mut rng).iter().all(|&b| !b));
        assert!(draw_activation(100, 1.0, &mut rng).iter().all(|&b| b));
    }

    #[test]
    fn nonfading_point_zero_probability_is_zero() {
        let (gm, params) = paper_gain(0, 20);
        assert_eq!(nonfading_success_curve_point(&gm, &params, 0.0, 5, 0), 0.0);
    }

    #[test]
    fn points_are_deterministic_per_seed_base() {
        let (gm, params) = paper_gain(1, 15);
        let a = nonfading_success_curve_point(&gm, &params, 0.5, 10, 7);
        let b = nonfading_success_curve_point(&gm, &params, 0.5, 10, 7);
        assert_eq!(a, b);
        let r1 = rayleigh_success_curve_point(&gm, &params, 0.5, 5, 3, 7);
        let r2 = rayleigh_success_curve_point(&gm, &params, 0.5, 5, 3, 7);
        assert_eq!(r1, r2);
    }

    #[test]
    fn rayleigh_monte_carlo_matches_closed_form() {
        let (gm, params) = paper_gain(2, 12);
        let q = 0.6;
        let analytic = rayleigh_expected_successes(&gm, &params, q);
        let mc = rayleigh_success_curve_point(&gm, &params, q, 60, 40, 11);
        assert!(
            (mc - analytic).abs() < 0.35,
            "MC {mc} vs closed form {analytic}"
        );
    }

    #[test]
    fn grid_matches_per_point_evaluation() {
        let (gm, params) = paper_gain(4, 18);
        let qs = [0.0, 0.1, 0.35, 0.7, 1.0];
        let grid = rayleigh_expected_successes_grid(&gm, &params, &qs);
        for (k, &q) in qs.iter().enumerate() {
            let probs = vec![q; gm.len()];
            let want = rayfade_core::expected_successes(&gm, &params, &probs);
            assert!(
                (grid[k] - want).abs() < 1e-12,
                "q = {q}: {} vs {want}",
                grid[k]
            );
        }
    }

    #[test]
    fn sparse_network_all_succeed_at_full_probability() {
        // Far-apart links: q = 1 should give ~n successes non-fading.
        let net = PaperTopology {
            links: 5,
            side: 100_000.0,
            min_length: 20.0,
            max_length: 40.0,
        }
        .generate(3);
        let params = SinrParams::figure1();
        let gm = GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha);
        let mean = nonfading_success_curve_point(&gm, &params, 1.0, 3, 0);
        assert!((mean - 5.0).abs() < 1e-12, "{mean}");
        // And Rayleigh should sit below but within a constant factor.
        let ray = rayleigh_expected_successes(&gm, &params, 1.0);
        assert!(ray > 5.0 / std::f64::consts::E && ray <= 5.0);
    }
}
