//! Streaming statistics for Monte Carlo aggregation.

use serde::{Deserialize, Serialize};

/// Welford-style running mean/variance accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "observations must be finite");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Half-width of the ~95% normal confidence interval.
    pub fn ci95(&self) -> f64 {
        1.96 * self.std_err()
    }

    /// Smallest observation (`∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = RunningStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!(s.std_err() > 0.0 && s.ci95() > s.std_err());
    }

    #[test]
    fn empty_and_singleton() {
        let e = RunningStats::new();
        assert_eq!(e.count(), 0);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.variance(), 0.0);
        assert_eq!(e.std_err(), 0.0);
        let s: RunningStats = [3.5].into_iter().collect();
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole: RunningStats = data.iter().copied().collect();
        let mut left: RunningStats = data[..37].iter().copied().collect();
        let right: RunningStats = data[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: RunningStats = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&RunningStats::new());
        assert_eq!(s, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }
}
