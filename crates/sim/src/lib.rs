//! # rayfade-sim
//!
//! Seeded, parallel Monte Carlo experiment engine for the `rayfade`
//! workspace.
//!
//! * [`slots`] — slot-level primitives: Bernoulli activations, success
//!   curve points in both models, and the Theorem 1 closed-form
//!   counterpart;
//! * [`stats`] — streaming mean/variance with parallel merge;
//! * [`engine`] — the experiments of the paper's Sec. 7: Figure 1
//!   ([`engine::run_figure1`]), Figure 2 ([`engine::run_figure2`]) and the
//!   optimum statistic ([`engine::optimum_statistic`]), parallelized over
//!   networks with rayon;
//! * [`report`] — CSV files and fixed-width console tables.
//!
//! Every run is bit-reproducible given its config (all RNG streams derive
//! from the config seed).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod progress;
pub mod report;
pub mod slots;
pub mod stats;

pub use engine::{
    optimum_statistic, run_figure1, run_figure1_analytic, run_figure1_with_progress,
    run_figure1_with_telemetry, run_figure2, run_figure2_with_progress, run_figure2_with_telemetry,
    Curve, CurvePoint, Figure1Config, Figure1Result, Figure2Config, Figure2Result, PowerFamily,
};
pub use progress::{ProgressHandle, ProgressSink};
pub use report::{fmt_f, gnuplot_script, sparkline, write_gnuplot_script, Table};
pub use slots::{
    draw_activation, nonfading_success_curve_point, rayleigh_expected_successes,
    rayleigh_expected_successes_grid, rayleigh_success_curve_point,
};
pub use stats::RunningStats;
