//! Experiment engines regenerating the paper's figures.
//!
//! The engines are deterministic given their configuration (all seeds are
//! derived from the config) and parallelized over networks with rayon —
//! the sweeps are embarrassingly parallel, exactly the pattern the
//! hpc-parallel guides prescribe.

use crate::slots::{nonfading_success_curve_point, rayleigh_success_curve_point};
use crate::stats::RunningStats;
use rayfade_core::{mix_seed2, RayleighModel};
use rayfade_geometry::PaperTopology;
use rayfade_learning::{run_game_with_beta, GameConfig};
use rayfade_sched::{CapacityAlgorithm, CapacityInstance, LocalSearchCapacity};
use rayfade_sinr::{GainMatrix, NonFadingModel, PowerAssignment, SinrParams};
use rayfade_telemetry::monitor::export_duration_quantiles;
use rayfade_telemetry::{QuantileSketch, Telemetry};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use std::time::Instant;

/// Stream tags for [`mix_seed2`]-derived RNG streams. Topology seeds
/// deliberately stay `seed + net` so networks remain shared with
/// `figure1_instance`-style helpers elsewhere in the workspace.
const GAME_STREAM: u64 = 0x6a;
const FADING_STREAM: u64 = 0xfa;

/// Which power assignments Figure 1 compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerFamily {
    /// Uniform power `p = 2`.
    Uniform,
    /// Square-root power `p = 2·√(d^α)`.
    SquareRoot,
}

impl PowerFamily {
    /// The concrete assignment of this family (Figure 1 constants).
    pub fn assignment(self) -> PowerAssignment {
        match self {
            PowerFamily::Uniform => PowerAssignment::figure1_uniform(),
            PowerFamily::SquareRoot => PowerAssignment::figure1_square_root(),
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            PowerFamily::Uniform => "uniform",
            PowerFamily::SquareRoot => "square-root",
        }
    }
}

/// Configuration of the Figure 1 experiment. Defaults reproduce the
/// paper exactly: 40 networks × 100 links, β=2.5, α=2.2, ν=4e−7,
/// lengths ∈ [20, 40], 25 transmit seeds, 10 fading seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure1Config {
    /// Number of random networks to average over.
    pub networks: u64,
    /// Topology generator settings.
    pub topology: PaperTopology,
    /// SINR parameters.
    pub params: SinrParams,
    /// Transmission probabilities to sweep.
    pub q_grid: Vec<f64>,
    /// Random activations per (network, q) pair.
    pub tx_seeds: u64,
    /// Fading realizations per activation (Rayleigh curves only).
    pub fading_seeds: u64,
    /// Base seed from which all network seeds derive.
    pub seed: u64,
}

impl Default for Figure1Config {
    fn default() -> Self {
        Figure1Config {
            networks: 40,
            topology: PaperTopology::figure1(),
            params: SinrParams::figure1(),
            q_grid: (1..=20).map(|k| k as f64 / 20.0).collect(),
            tx_seeds: 25,
            fading_seeds: 10,
            seed: 0xf161,
        }
    }
}

impl Figure1Config {
    /// A reduced configuration for tests and smoke runs.
    pub fn smoke() -> Self {
        Figure1Config {
            networks: 3,
            topology: PaperTopology {
                links: 20,
                ..PaperTopology::figure1()
            },
            q_grid: vec![0.25, 0.5, 1.0],
            tx_seeds: 5,
            fading_seeds: 3,
            ..Figure1Config::default()
        }
    }
}

/// One point of a Figure 1 curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Transmission probability.
    pub q: f64,
    /// Mean successful transmissions (over networks and seeds).
    pub mean: f64,
    /// Standard error of the per-network means.
    pub std_err: f64,
}

/// One of the four Figure 1 curves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Curve {
    /// Power family of this curve.
    pub power: PowerFamily,
    /// Whether this is the Rayleigh (true) or non-fading (false) curve.
    pub rayleigh: bool,
    /// The sweep, ordered by `q`.
    pub points: Vec<CurvePoint>,
}

impl Curve {
    /// Display label, e.g. `"uniform/rayleigh"`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}",
            self.power.label(),
            if self.rayleigh {
                "rayleigh"
            } else {
                "non-fading"
            }
        )
    }

    /// The q maximizing the mean curve (the curves of Figure 1 are
    /// unimodal: too few transmitters waste slots, too many jam).
    pub fn argmax(&self) -> Option<CurvePoint> {
        self.points
            .iter()
            .copied()
            .max_by(|a, b| a.mean.partial_cmp(&b.mean).expect("finite"))
    }
}

/// The full Figure 1 result: four curves over the same networks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure1Result {
    /// Configuration that produced the result.
    pub config: Figure1Config,
    /// The four curves: (uniform, sqrt) × (non-fading, Rayleigh).
    pub curves: Vec<Curve>,
}

/// Runs the Figure 1 experiment (parallel over networks).
pub fn run_figure1(config: &Figure1Config) -> Figure1Result {
    run_figure1_with_progress(config, |_| {})
}

/// [`run_figure1`] with a per-network completion callback (e.g. a
/// [`crate::progress::ProgressHandle`] tick). The callback runs on rayon
/// worker threads and must be cheap.
pub fn run_figure1_with_progress<F>(config: &Figure1Config, on_network_done: F) -> Figure1Result
where
    F: Fn(u64) + Sync,
{
    run_figure1_with_telemetry(config, on_network_done, None)
}

/// [`run_figure1_with_progress`] plus optional telemetry: per-curve-point
/// timings and success tallies go to the registry during the parallel
/// sweep, and the finished curves are journaled afterwards (`fig1_config`,
/// `fig1_point`, `fig1_argmax` events, in deterministic order). `None` is
/// the uninstrumented fast path; the result is bit-identical either way.
pub fn run_figure1_with_telemetry<F>(
    config: &Figure1Config,
    on_network_done: F,
    tele: Option<&Telemetry>,
) -> Figure1Result
where
    F: Fn(u64) + Sync,
{
    assert!(config.networks > 0, "need at least one network");
    let families = [PowerFamily::Uniform, PowerFamily::SquareRoot];
    let point_seconds = tele.map(|t| t.registry().histogram("rayfade_fig1_point_seconds"));
    // γ-accurate latency quantiles alongside the coarse base-2 histogram:
    // exported post-sweep as ns gauges (registry only — wall-clock values
    // never enter journals).
    let point_sketch = tele.map(|_| Mutex::new(QuantileSketch::new(0.01)));
    // Span ids interned once; per-network and per-point spans are chunky
    // enough (many slots each) to trace unsampled.
    let tracer = tele.and_then(Telemetry::tracer);
    let network_span = tracer.map(|tr| tr.span_id("fig1/network"));
    let point_span = tracer.map(|tr| tr.span_id("fig1/point"));
    // per_network[net] -> per (family, rayleigh?, q) mean successes.
    let per_network: Vec<Vec<f64>> = (0..config.networks)
        .into_par_iter()
        .map(|net_idx| {
            let _net_span = rayfade_telemetry::trace::guard(tracer, network_span);
            let net = config.topology.generate(config.seed.wrapping_add(net_idx));
            let mut row = Vec::with_capacity(families.len() * 2 * config.q_grid.len());
            for family in families {
                let gain =
                    GainMatrix::from_geometry(&net, &family.assignment(), config.params.alpha);
                for rayleigh in [false, true] {
                    for (qi, &q) in config.q_grid.iter().enumerate() {
                        // Collision-free (net, q) stream separation; the
                        // old `seed*31 + net*10_007 + qi` arithmetic
                        // aliased across nearby seeds.
                        let seed_base = mix_seed2(config.seed, net_idx, qi as u64);
                        let _point_span = rayfade_telemetry::trace::guard(tracer, point_span);
                        let start = point_seconds.as_ref().map(|_| Instant::now());
                        let v = if rayleigh {
                            rayleigh_success_curve_point(
                                &gain,
                                &config.params,
                                q,
                                config.tx_seeds,
                                config.fading_seeds,
                                seed_base,
                            )
                        } else {
                            nonfading_success_curve_point(
                                &gain,
                                &config.params,
                                q,
                                config.tx_seeds,
                                seed_base,
                            )
                        };
                        if let (Some(hist), Some(t0)) = (&point_seconds, start) {
                            let elapsed = t0.elapsed();
                            hist.observe_duration(elapsed);
                            if let Some(sketch) = &point_sketch {
                                sketch
                                    .lock()
                                    .expect("sketch mutex poisoned")
                                    .observe(elapsed.as_secs_f64());
                            }
                        }
                        row.push(v);
                    }
                }
            }
            if let Some(t) = tele {
                t.registry().counter("rayfade_fig1_networks_total").inc();
                t.registry()
                    .counter("rayfade_fig1_points_total")
                    .add((families.len() * 2 * config.q_grid.len()) as u64);
            }
            on_network_done(net_idx);
            row
        })
        .collect();

    let mut curves = Vec::new();
    let mut col = 0usize;
    for family in families {
        for rayleigh in [false, true] {
            let mut points = Vec::with_capacity(config.q_grid.len());
            for (qi, &q) in config.q_grid.iter().enumerate() {
                let stats: RunningStats = per_network.iter().map(|row| row[col + qi]).collect();
                points.push(CurvePoint {
                    q,
                    mean: stats.mean(),
                    std_err: stats.std_err(),
                });
            }
            curves.push(Curve {
                power: family,
                rayleigh,
                points,
            });
            col += config.q_grid.len();
        }
    }
    if let (Some(t), Some(sketch)) = (tele, &point_sketch) {
        export_duration_quantiles(
            t.registry(),
            "rayfade_fig1_point",
            &sketch.lock().expect("sketch mutex poisoned"),
        );
    }
    let result = Figure1Result {
        config: config.clone(),
        curves,
    };
    journal_figure1(tele, &result);
    result
}

/// Journals a finished Figure 1 result (`fig1_config` header, one
/// `fig1_point` per (curve, q), one `fig1_argmax` per curve). Runs after
/// the parallel sweep so journal bytes are deterministic; no-op when
/// `tele` is `None` or journal-less.
fn journal_figure1(tele: Option<&Telemetry>, result: &Figure1Result) {
    let Some(t) = tele.filter(|t| t.journal().is_some()) else {
        return;
    };
    let config = &result.config;
    t.event("fig1_config")
        .expect("journal present")
        .int("networks", config.networks as i64)
        .int("links", config.topology.links as i64)
        .int("q_steps", config.q_grid.len() as i64)
        .int("tx_seeds", config.tx_seeds as i64)
        .int("fading_seeds", config.fading_seeds as i64)
        .str("seed", &format!("{:#x}", config.seed))
        .str(
            "config_hash",
            &format!("{:016x}", rayfade_telemetry::config_hash(config)),
        )
        .write();
    for curve in &result.curves {
        let label = curve.label();
        for p in &curve.points {
            t.event("fig1_point")
                .expect("journal present")
                .str("curve", &label)
                .num("q", p.q)
                .num("mean", p.mean)
                .num("std_err", p.std_err)
                .write();
        }
        if let Some(best) = curve.argmax() {
            t.event("fig1_argmax")
                .expect("journal present")
                .str("curve", &label)
                .num("q", best.q)
                .num("mean", best.mean)
                .write();
        }
    }
    t.flush();
}

/// Analytic (Theorem 1) counterpart of the Rayleigh curves of Figure 1:
/// the exact expected successes at each q, averaged over the same
/// networks — no Monte Carlo. Cross-validates the sampled pipeline.
pub fn run_figure1_analytic(config: &Figure1Config, family: PowerFamily) -> Curve {
    assert!(config.networks > 0, "need at least one network");
    let per_network: Vec<Vec<f64>> = (0..config.networks)
        .into_par_iter()
        .map(|net_idx| {
            let net = config.topology.generate(config.seed.wrapping_add(net_idx));
            let gain = GainMatrix::from_geometry(&net, &family.assignment(), config.params.alpha);
            // One ratio cache per network, shared across the whole q-grid.
            crate::slots::rayleigh_expected_successes_grid(&gain, &config.params, &config.q_grid)
        })
        .collect();
    let points = config
        .q_grid
        .iter()
        .enumerate()
        .map(|(qi, &q)| {
            let stats: RunningStats = per_network.iter().map(|row| row[qi]).collect();
            CurvePoint {
                q,
                mean: stats.mean(),
                std_err: stats.std_err(),
            }
        })
        .collect();
    Curve {
        power: family,
        rayleigh: true,
        points,
    }
}

/// Configuration of the Figure 2 experiment (no-regret learning).
/// Defaults: 200 links, lengths ∈ (0, 100], β=0.5, α=2.1, ν=0, p=2,
/// 100 rounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure2Config {
    /// Number of networks to average over.
    pub networks: u64,
    /// Topology generator settings.
    pub topology: PaperTopology,
    /// SINR parameters.
    pub params: SinrParams,
    /// Uniform transmission power.
    pub power: f64,
    /// Learning rounds per run.
    pub rounds: usize,
    /// Base seed.
    pub seed: u64,
    /// Local-search restarts for the reference optimum line (0 disables
    /// the optimum computation).
    pub optimum_restarts: usize,
}

impl Default for Figure2Config {
    fn default() -> Self {
        Figure2Config {
            networks: 10,
            topology: PaperTopology::figure2(),
            params: SinrParams::figure2(),
            power: 2.0,
            rounds: 100,
            seed: 0xf162,
            optimum_restarts: 4,
        }
    }
}

impl Figure2Config {
    /// Reduced configuration for tests.
    pub fn smoke() -> Self {
        Figure2Config {
            networks: 2,
            topology: PaperTopology {
                links: 30,
                ..PaperTopology::figure2()
            },
            rounds: 40,
            optimum_restarts: 1,
            ..Figure2Config::default()
        }
    }
}

/// The Figure 2 result: per-round mean successes in both models plus the
/// non-fading reference optimum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure2Result {
    /// Configuration that produced the result.
    pub config: Figure2Config,
    /// Mean successes per round, non-fading model.
    pub nonfading: Vec<f64>,
    /// Mean successes per round, Rayleigh model.
    pub rayleigh: Vec<f64>,
    /// Mean size of the non-fading reference optimum (local search), or
    /// `None` when disabled.
    pub optimum: Option<f64>,
    /// Mean of the maximum per-link average regret, non-fading runs.
    pub mean_max_regret_nonfading: f64,
    /// Mean of the maximum per-link average regret, Rayleigh runs.
    pub mean_max_regret_rayleigh: f64,
}

/// Runs the Figure 2 experiment (parallel over networks).
pub fn run_figure2(config: &Figure2Config) -> Figure2Result {
    run_figure2_with_progress(config, |_| {})
}

/// [`run_figure2`] with a per-network completion callback.
pub fn run_figure2_with_progress<F>(config: &Figure2Config, on_network_done: F) -> Figure2Result
where
    F: Fn(u64) + Sync,
{
    run_figure2_with_telemetry(config, on_network_done, None)
}

/// [`run_figure2_with_progress`] plus optional telemetry: per-network
/// game timings and learning tallies go to the registry; the averaged
/// per-round series and regret summary are journaled post-collect
/// (`fig2_config`, `fig2_round`, `fig2_summary` events, deterministic
/// order). Per-network games themselves run uninstrumented — their
/// `learn_round` journal events would interleave nondeterministically
/// under rayon; use [`rayfade_learning::run_game_instrumented`] directly
/// for a single game's round-by-round trace.
pub fn run_figure2_with_telemetry<F>(
    config: &Figure2Config,
    on_network_done: F,
    tele: Option<&Telemetry>,
) -> Figure2Result
where
    F: Fn(u64) + Sync,
{
    assert!(config.networks > 0 && config.rounds > 0);
    struct PerNet {
        nonfading: Vec<usize>,
        rayleigh: Vec<usize>,
        optimum: Option<usize>,
        regret_nf: f64,
        regret_ray: f64,
    }
    let network_seconds = tele.map(|t| t.registry().histogram("rayfade_fig2_network_seconds"));
    let network_sketch = tele.map(|_| Mutex::new(QuantileSketch::new(0.01)));
    let tracer = tele.and_then(Telemetry::tracer);
    let network_span = tracer.map(|tr| tr.span_id("fig2/network"));
    let runs: Vec<PerNet> = (0..config.networks)
        .into_par_iter()
        .map(|net_idx| {
            let _net_span = rayfade_telemetry::trace::guard(tracer, network_span);
            let net_start = network_seconds.as_ref().map(|_| Instant::now());
            let net = config.topology.generate(config.seed.wrapping_add(net_idx));
            let gain = GainMatrix::from_geometry(
                &net,
                &PowerAssignment::Uniform(config.power),
                config.params.alpha,
            );
            let game_cfg = GameConfig {
                rounds: config.rounds,
                seed: mix_seed2(config.seed, GAME_STREAM, net_idx),
            };
            let mut nf_model = NonFadingModel::new(gain.clone(), config.params);
            let nf = run_game_with_beta(&mut nf_model, config.params.beta, &game_cfg);
            let mut ray_model = RayleighModel::new(
                gain.clone(),
                config.params,
                mix_seed2(config.seed, FADING_STREAM, net_idx),
            );
            let ray = run_game_with_beta(&mut ray_model, config.params.beta, &game_cfg);
            let optimum = (config.optimum_restarts > 0).then(|| {
                LocalSearchCapacity {
                    restarts: config.optimum_restarts,
                    seed: config.seed.wrapping_add(net_idx),
                    max_sweeps: 30,
                }
                .select(&CapacityInstance::unweighted(&gain, &config.params))
                .len()
            });
            if let (Some(hist), Some(t0)) = (&network_seconds, net_start) {
                let elapsed = t0.elapsed();
                hist.observe_duration(elapsed);
                if let Some(sketch) = &network_sketch {
                    sketch
                        .lock()
                        .expect("sketch mutex poisoned")
                        .observe(elapsed.as_secs_f64());
                }
            }
            if let Some(t) = tele {
                let reg = t.registry();
                reg.counter("rayfade_fig2_networks_total").inc();
                reg.counter("rayfade_fig2_games_total").add(2);
                reg.counter("rayfade_fig2_successes_total").add(
                    (nf.successes_per_round.iter().sum::<usize>()
                        + ray.successes_per_round.iter().sum::<usize>()) as u64,
                );
            }
            on_network_done(net_idx);
            PerNet {
                nonfading: nf.successes_per_round.clone(),
                rayleigh: ray.successes_per_round.clone(),
                optimum,
                regret_nf: nf.regret.max_average_regret(config.rounds),
                regret_ray: ray.regret.max_average_regret(config.rounds),
            }
        })
        .collect();

    if let (Some(t), Some(sketch)) = (tele, &network_sketch) {
        export_duration_quantiles(
            t.registry(),
            "rayfade_fig2_network",
            &sketch.lock().expect("sketch mutex poisoned"),
        );
    }
    let rounds = config.rounds;
    let average_series = |select: &dyn Fn(&PerNet) -> &Vec<usize>| -> Vec<f64> {
        (0..rounds)
            .map(|t| runs.iter().map(|r| select(r)[t] as f64).sum::<f64>() / runs.len() as f64)
            .collect()
    };
    let nonfading = average_series(&|r: &PerNet| &r.nonfading);
    let rayleigh = average_series(&|r: &PerNet| &r.rayleigh);
    let optimum = if config.optimum_restarts > 0 {
        Some(
            runs.iter()
                .map(|r| r.optimum.unwrap_or(0) as f64)
                .sum::<f64>()
                / runs.len() as f64,
        )
    } else {
        None
    };
    let result = Figure2Result {
        config: config.clone(),
        nonfading,
        rayleigh,
        optimum,
        mean_max_regret_nonfading: runs.iter().map(|r| r.regret_nf).sum::<f64>()
            / runs.len() as f64,
        mean_max_regret_rayleigh: runs.iter().map(|r| r.regret_ray).sum::<f64>()
            / runs.len() as f64,
    };
    if let Some(t) = tele.filter(|t| t.journal().is_some()) {
        t.event("fig2_config")
            .expect("journal present")
            .int("networks", config.networks as i64)
            .int("links", config.topology.links as i64)
            .int("rounds", config.rounds as i64)
            .str("seed", &format!("{:#x}", config.seed))
            .str(
                "config_hash",
                &format!("{:016x}", rayfade_telemetry::config_hash(config)),
            )
            .write();
        for t_round in 0..config.rounds {
            t.event("fig2_round")
                .expect("journal present")
                .int("round", t_round as i64)
                .num("nonfading", result.nonfading[t_round])
                .num("rayleigh", result.rayleigh[t_round])
                .write();
        }
        let mut ev = t
            .event("fig2_summary")
            .expect("journal present")
            .num(
                "mean_max_regret_nonfading",
                result.mean_max_regret_nonfading,
            )
            .num("mean_max_regret_rayleigh", result.mean_max_regret_rayleigh);
        if let Some(opt) = result.optimum {
            ev = ev.num("optimum", opt);
        }
        ev.write();
        t.flush();
    }
    result
}

/// Computes the paper's Sec. 7 scalar: the mean size of the (reference)
/// optimal feasible set under uniform powers on Figure 1 networks
/// ("we reach on average 49.75 successful transmissions").
pub fn optimum_statistic(config: &Figure1Config, restarts: usize) -> RunningStats {
    (0..config.networks)
        .into_par_iter()
        .map(|net_idx| {
            let net = config.topology.generate(config.seed.wrapping_add(net_idx));
            let gain = GainMatrix::from_geometry(
                &net,
                &PowerAssignment::figure1_uniform(),
                config.params.alpha,
            );
            LocalSearchCapacity {
                restarts,
                seed: config.seed.wrapping_add(net_idx),
                max_sweeps: 50,
            }
            .select(&CapacityInstance::unweighted(&gain, &config.params))
            .len() as f64
        })
        .fold(RunningStats::new, |mut acc, x| {
            acc.push(x);
            acc
        })
        .reduce(RunningStats::new, |mut a, b| {
            a.merge(&b);
            a
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_smoke_has_four_curves() {
        let res = run_figure1(&Figure1Config::smoke());
        assert_eq!(res.curves.len(), 4);
        for c in &res.curves {
            assert_eq!(c.points.len(), 3);
            for p in &c.points {
                assert!(p.mean >= 0.0 && p.mean <= 20.0, "{}: {p:?}", c.label());
            }
            assert!(c.argmax().is_some());
        }
        let labels: Vec<String> = res.curves.iter().map(Curve::label).collect();
        assert!(labels.contains(&"uniform/rayleigh".to_string()));
        assert!(labels.contains(&"square-root/non-fading".to_string()));
    }

    #[test]
    fn figure1_deterministic() {
        let cfg = Figure1Config::smoke();
        assert_eq!(run_figure1(&cfg), run_figure1(&cfg));
    }

    #[test]
    fn figure2_smoke_series_lengths() {
        let res = run_figure2(&Figure2Config::smoke());
        assert_eq!(res.nonfading.len(), 40);
        assert_eq!(res.rayleigh.len(), 40);
        assert!(res.optimum.unwrap() > 0.0);
        assert!(res.mean_max_regret_nonfading >= 0.0);
        // Learning should reach nontrivial throughput by the end.
        let tail_nf: f64 = res.nonfading[30..].iter().sum::<f64>() / 10.0;
        assert!(tail_nf > 0.0);
    }

    #[test]
    fn analytic_curve_matches_monte_carlo() {
        // The Theorem 1 curve must agree with the sampled Rayleigh curve
        // within Monte Carlo error.
        let mut cfg = Figure1Config::smoke();
        cfg.tx_seeds = 40;
        cfg.fading_seeds = 15;
        let mc = run_figure1(&cfg);
        let analytic = run_figure1_analytic(&cfg, PowerFamily::Uniform);
        let mc_uniform_ray = mc
            .curves
            .iter()
            .find(|c| c.power == PowerFamily::Uniform && c.rayleigh)
            .expect("curve exists");
        for (a, b) in analytic.points.iter().zip(&mc_uniform_ray.points) {
            assert_eq!(a.q, b.q);
            assert!(
                (a.mean - b.mean).abs() < 0.5,
                "q={}: analytic {} vs MC {}",
                a.q,
                a.mean,
                b.mean
            );
        }
    }

    #[test]
    fn telemetry_figures_match_plain_runs() {
        let cfg1 = Figure1Config::smoke();
        let dir = std::env::temp_dir().join("rayfade-sim-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("fig1-{}.jsonl", std::process::id()));
        let tele = Telemetry::with_journal(&path).unwrap().with_tracing();
        let instrumented = run_figure1_with_telemetry(&cfg1, |_| {}, Some(&tele));
        assert_eq!(run_figure1(&cfg1), instrumented);
        let reg = tele.registry();
        assert_eq!(reg.counter("rayfade_fig1_networks_total").get(), 3);
        // 2 families × 2 models × 3 q values × 3 networks.
        assert_eq!(reg.counter("rayfade_fig1_points_total").get(), 36);
        assert_eq!(reg.histogram("rayfade_fig1_point_seconds").count(), 36);
        let trace = tele.tracer().unwrap().snapshot();
        let spans = |name: &str| trace.records.iter().filter(|r| r.name == name).count();
        assert_eq!(spans("fig1/network"), 3);
        assert_eq!(spans("fig1/point"), 36);
        rayfade_telemetry::trace::validate_chrome_trace(&trace.to_chrome_json())
            .expect("fig1 trace must validate");
        let events = rayfade_telemetry::read_jsonl(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let count = |kind: &str| {
            events
                .iter()
                .filter(|e| e.get("kind").and_then(|k| k.as_str()) == Some(kind))
                .count()
        };
        assert_eq!(count("fig1_config"), 1);
        assert_eq!(count("fig1_point"), 12, "4 curves × 3 q points");
        assert_eq!(count("fig1_argmax"), 4);

        let cfg2 = Figure2Config::smoke();
        let tele2 = Telemetry::new().with_tracing();
        let instrumented2 = run_figure2_with_telemetry(&cfg2, |_| {}, Some(&tele2));
        assert_eq!(run_figure2(&cfg2), instrumented2);
        assert_eq!(
            tele2
                .registry()
                .counter("rayfade_fig2_networks_total")
                .get(),
            2
        );
        assert_eq!(
            tele2.registry().counter("rayfade_fig2_games_total").get(),
            4
        );
        let trace2 = tele2.tracer().unwrap().snapshot();
        assert_eq!(
            trace2
                .records
                .iter()
                .filter(|r| r.name == "fig2/network")
                .count(),
            2
        );
    }

    #[test]
    fn optimum_statistic_positive() {
        let mut cfg = Figure1Config::smoke();
        cfg.networks = 2;
        let stats = optimum_statistic(&cfg, 2);
        assert_eq!(stats.count(), 2);
        assert!(stats.mean() > 0.0);
    }
}
