//! Streaming progress reporting for long-running sweeps.
//!
//! The full Figure 1 run evaluates 40 networks × 4 curves × 20 grid points
//! × 250 seeded slots; on slower machines that's minutes of silence
//! without feedback. [`ProgressSink`] decouples the hot rayon workers from
//! terminal I/O: workers send lightweight ticks over a crossbeam channel,
//! a dedicated thread renders them (rate-limited) to any `Write` sink
//! guarded by a `parking_lot` mutex.
//!
//! Ticks are advisory — [`ProgressHandle::tick`] never blocks a worker —
//! but dropped ticks are no longer invisible: every unit that fails to
//! enqueue is tallied in an atomic ([`ProgressHandle::dropped_units`]),
//! [`ProgressSink::finish`] prints the drop total when it is nonzero, and
//! a bridged telemetry [`Counter`](rayfade_telemetry::Counter) (see
//! [`ProgressSink::bridge_counter`]) observes every unit regardless of
//! channel pressure.
//!
//! Shutdown is by explicit sentinel, **not** by channel closure: handles
//! are freely cloneable and may outlive the sink, so `finish()` must not
//! wait for every clone to drop.

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Channel capacity used by [`ProgressSink::new`].
const DEFAULT_CAPACITY: usize = 1024;

enum Msg {
    Tick(u64),
    Done,
}

/// A handle workers use to report completed units. Cloneable; may outlive
/// the sink (late ticks are counted as dropped, never blocked on).
#[derive(Debug, Clone)]
pub struct ProgressHandle {
    tx: Sender<Msg>,
    dropped: Arc<AtomicU64>,
    bridge: Option<Arc<rayfade_telemetry::Counter>>,
}

impl ProgressHandle {
    /// Reports `units` newly completed work items. Never blocks the
    /// caller: if the channel is full or closed the units are dropped
    /// from *rendering* (and tallied in [`Self::dropped_units`]); a
    /// bridged telemetry counter still sees them.
    pub fn tick(&self, units: u64) {
        if let Some(counter) = &self.bridge {
            counter.add(units);
        }
        if self.tx.try_send(Msg::Tick(units)).is_err() {
            self.dropped.fetch_add(units, Ordering::Relaxed);
        }
    }

    /// Total units dropped so far (shared across all clones and the
    /// sink).
    pub fn dropped_units(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Aggregates ticks and renders progress lines to a sink.
pub struct ProgressSink {
    tx: Sender<Msg>,
    worker: Option<JoinHandle<u64>>,
    dropped: Arc<AtomicU64>,
    bridge: Option<Arc<rayfade_telemetry::Counter>>,
    /// Shared with the render thread so `shutdown` can append the
    /// dropped-units warning after the worker has drained.
    out: Arc<Mutex<Box<dyn Write + Send>>>,
    label: String,
}

impl ProgressSink {
    /// Creates a sink expecting `total` units, labelled `label`, writing
    /// to `out`. A line is emitted at most every `report_every` units.
    pub fn new<W: Write + Send + 'static>(
        total: u64,
        label: &str,
        report_every: u64,
        out: W,
    ) -> Self {
        Self::with_capacity(total, label, report_every, out, DEFAULT_CAPACITY)
    }

    /// [`ProgressSink::new`] with an explicit channel capacity. Small
    /// capacities drop ticks under pressure sooner; the drop tally keeps
    /// that visible.
    pub fn with_capacity<W: Write + Send + 'static>(
        total: u64,
        label: &str,
        report_every: u64,
        out: W,
        capacity: usize,
    ) -> Self {
        assert!(report_every > 0, "report_every must be positive");
        assert!(capacity > 0, "channel capacity must be positive");
        let (tx, rx) = bounded::<Msg>(capacity);
        let label = label.to_string();
        let sink: Arc<Mutex<Box<dyn Write + Send>>> = Arc::new(Mutex::new(Box::new(out)));
        let thread_label = label.clone();
        let thread_sink = Arc::clone(&sink);
        let worker = std::thread::spawn(move || {
            let mut done = 0u64;
            let mut last_reported = 0u64;
            for msg in rx {
                match msg {
                    Msg::Tick(units) => {
                        done += units;
                        if done - last_reported >= report_every || done >= total {
                            last_reported = done;
                            let mut w = thread_sink.lock();
                            let _ = writeln!(w, "{thread_label}: {done}/{total}");
                        }
                    }
                    Msg::Done => break,
                }
            }
            done
        });
        ProgressSink {
            tx,
            worker: Some(worker),
            dropped: Arc::new(AtomicU64::new(0)),
            bridge: None,
            out: sink,
            label,
        }
    }

    /// A sink writing to stderr.
    pub fn stderr(total: u64, label: &str, report_every: u64) -> Self {
        Self::new(total, label, report_every, std::io::stderr())
    }

    /// Bridges ticks into a telemetry counter: every unit reported through
    /// handles created *after* this call is added to `counter` even when
    /// the rendering channel is saturated. Returns `self` for chaining.
    pub fn bridge_counter(mut self, counter: Arc<rayfade_telemetry::Counter>) -> Self {
        self.bridge = Some(counter);
        self
    }

    /// The cloneable handle to hand to workers.
    pub fn handle(&self) -> ProgressHandle {
        ProgressHandle {
            tx: self.tx.clone(),
            dropped: Arc::clone(&self.dropped),
            bridge: self.bridge.clone(),
        }
    }

    /// Total units dropped so far.
    pub fn dropped_units(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Shuts the renderer down (outstanding queued ticks are processed
    /// first), prints the drop total if any ticks were lost, and returns
    /// the total units observed by the renderer.
    pub fn finish(mut self) -> u64 {
        self.shutdown()
    }

    fn shutdown(&mut self) -> u64 {
        let Some(worker) = self.worker.take() else {
            return 0;
        };
        // `send` (blocking) guarantees the sentinel is enqueued behind all
        // ticks already in the channel; the worker drains them in order.
        let _ = self.tx.send(Msg::Done);
        let seen = worker.join().expect("progress thread panicked");
        let dropped = self.dropped.load(Ordering::Relaxed);
        if dropped > 0 {
            let mut w = self.out.lock();
            let _ = writeln!(
                w,
                "{}: warning: {dropped} progress unit(s) dropped (channel full); \
                 rendered count {seen} undercounts by that amount",
                self.label
            );
        }
        seen
    }
}

impl Drop for ProgressSink {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::Receiver;

    /// A Write implementation collecting into a shared buffer.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn counts_all_ticks_even_with_live_handles() {
        let buf = SharedBuf::default();
        let sink = ProgressSink::new(10, "work", 1, buf.clone());
        let h = sink.handle();
        for _ in 0..10 {
            h.tick(1);
        }
        // `h` is still alive here — finish must not deadlock.
        let seen = sink.finish();
        assert_eq!(seen, 10);
        let text = String::from_utf8(buf.0.lock().clone()).unwrap();
        assert!(text.contains("work: 10/10"), "{text}");
        // Late ticks on the surviving handle are dropped, and counted.
        h.tick(5);
        assert_eq!(h.dropped_units(), 5);
    }

    #[test]
    fn rate_limiting_reduces_lines() {
        let buf = SharedBuf::default();
        let sink = ProgressSink::new(100, "w", 50, buf.clone());
        let h = sink.handle();
        for _ in 0..100 {
            h.tick(1);
        }
        sink.finish();
        let text = String::from_utf8(buf.0.lock().clone()).unwrap();
        let lines = text.lines().count();
        assert!(lines <= 4, "expected few lines, got {lines}: {text}");
    }

    #[test]
    fn concurrent_ticks_from_many_threads() {
        let sink = ProgressSink::new(400, "par", 100, std::io::sink());
        let h = sink.handle();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        h.tick(1);
                    }
                });
            }
        });
        let dropped = sink.dropped_units();
        let seen = sink.finish();
        // try_send may drop ticks under extreme pressure — but now every
        // drop is accounted for, so the books must balance exactly.
        assert_eq!(seen + dropped, 400, "seen {seen} + dropped {dropped}");
    }

    /// A writer that blocks until the paired gate receives a release,
    /// pinning the render thread mid-write so the channel backs up; the
    /// bytes still land in the shared buffer once released.
    struct GatedWriter {
        gate: Receiver<()>,
        inner: SharedBuf,
    }

    impl Write for GatedWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let _ = self.gate.recv();
            self.inner.write(buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn full_channel_drops_are_counted_and_reported() {
        let buf = SharedBuf::default();
        let (release, gate) = bounded::<()>(16_384);
        let writer = GatedWriter {
            gate,
            inner: buf.clone(),
        };
        let sink = ProgressSink::with_capacity(1_000, "full", 1, writer, 1);
        let h = sink.handle();
        // The render thread blocks inside `write` on the first tick it
        // pulls; with capacity 1 the channel then fills and further ticks
        // must drop. Loop until the tally proves a drop happened.
        let mut sent = 0u64;
        while h.dropped_units() == 0 {
            h.tick(1);
            sent += 1;
            assert!(sent < 10_000, "drops never registered");
        }
        assert!(sink.dropped_units() > 0);
        // Release the writer generously and shut down.
        for _ in 0..16_000 {
            let _ = release.try_send(());
        }
        drop(release);
        let seen = sink.finish();
        let dropped = h.dropped_units();
        assert_eq!(
            seen + dropped,
            sent,
            "every tick is either rendered or counted as dropped"
        );
        let text = String::from_utf8(buf.0.lock().clone()).unwrap();
        assert!(
            text.contains(&format!(
                "full: warning: {dropped} progress unit(s) dropped"
            )),
            "finish must report the drop total: {text}"
        );
    }

    #[test]
    fn bridged_counter_sees_every_unit_despite_drops() {
        let counter = Arc::new(rayfade_telemetry::Counter::new());
        let (release, gate) = bounded::<()>(16_384);
        let writer = GatedWriter {
            gate,
            inner: SharedBuf::default(),
        };
        let sink = ProgressSink::with_capacity(100, "bridge", 1, writer, 1)
            .bridge_counter(Arc::clone(&counter));
        let h = sink.handle();
        let mut sent = 0u64;
        while h.dropped_units() == 0 {
            h.tick(2);
            sent += 2;
            assert!(sent < 20_000, "drops never registered");
        }
        for _ in 0..16_000 {
            let _ = release.try_send(());
        }
        drop(release);
        let seen = sink.finish();
        assert_eq!(counter.get(), sent, "bridge counts dropped units too");
        assert!(
            seen < sent,
            "some units must have been dropped from rendering"
        );
    }

    #[test]
    fn drop_without_finish_does_not_hang() {
        let sink = ProgressSink::new(5, "x", 1, std::io::sink());
        let h = sink.handle();
        h.tick(3);
        drop(sink);
        h.tick(1); // channel closed; dropped and counted
        assert_eq!(h.dropped_units(), 1);
    }

    #[test]
    #[should_panic(expected = "report_every must be positive")]
    fn zero_report_interval_rejected() {
        let _ = ProgressSink::new(1, "x", 0, std::io::sink());
    }
}
