//! Streaming progress reporting for long-running sweeps.
//!
//! The full Figure 1 run evaluates 40 networks × 4 curves × 20 grid points
//! × 250 seeded slots; on slower machines that's minutes of silence
//! without feedback. [`ProgressSink`] decouples the hot rayon workers from
//! terminal I/O: workers send lightweight ticks over a crossbeam channel,
//! a dedicated thread renders them (rate-limited) to any `Write` sink
//! guarded by a `parking_lot` mutex.
//!
//! Shutdown is by explicit sentinel, **not** by channel closure: handles
//! are freely cloneable and may outlive the sink, so `finish()` must not
//! wait for every clone to drop.

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use std::io::Write;
use std::sync::Arc;
use std::thread::JoinHandle;

enum Msg {
    Tick(u64),
    Done,
}

/// A handle workers use to report completed units. Cloneable; may outlive
/// the sink (late ticks are silently dropped).
#[derive(Debug, Clone)]
pub struct ProgressHandle {
    tx: Sender<Msg>,
}

impl ProgressHandle {
    /// Reports `units` newly completed work items. Never blocks the
    /// caller: if the channel is full or closed the tick is dropped
    /// (progress is advisory).
    pub fn tick(&self, units: u64) {
        let _ = self.tx.try_send(Msg::Tick(units));
    }
}

/// Aggregates ticks and renders progress lines to a sink.
pub struct ProgressSink {
    tx: Sender<Msg>,
    worker: Option<JoinHandle<u64>>,
}

impl ProgressSink {
    /// Creates a sink expecting `total` units, labelled `label`, writing
    /// to `out`. A line is emitted at most every `report_every` units.
    pub fn new<W: Write + Send + 'static>(
        total: u64,
        label: &str,
        report_every: u64,
        out: W,
    ) -> Self {
        assert!(report_every > 0, "report_every must be positive");
        let (tx, rx) = bounded::<Msg>(1024);
        let label = label.to_string();
        let sink = Arc::new(Mutex::new(out));
        let worker = std::thread::spawn(move || {
            let mut done = 0u64;
            let mut last_reported = 0u64;
            for msg in rx {
                match msg {
                    Msg::Tick(units) => {
                        done += units;
                        if done - last_reported >= report_every || done >= total {
                            last_reported = done;
                            let mut w = sink.lock();
                            let _ = writeln!(w, "{label}: {done}/{total}");
                        }
                    }
                    Msg::Done => break,
                }
            }
            done
        });
        ProgressSink {
            tx,
            worker: Some(worker),
        }
    }

    /// A sink writing to stderr.
    pub fn stderr(total: u64, label: &str, report_every: u64) -> Self {
        Self::new(total, label, report_every, std::io::stderr())
    }

    /// The cloneable handle to hand to workers.
    pub fn handle(&self) -> ProgressHandle {
        ProgressHandle {
            tx: self.tx.clone(),
        }
    }

    /// Shuts the renderer down (outstanding queued ticks are processed
    /// first) and returns the total units observed.
    pub fn finish(mut self) -> u64 {
        self.shutdown()
    }

    fn shutdown(&mut self) -> u64 {
        let Some(worker) = self.worker.take() else {
            return 0;
        };
        // `send` (blocking) guarantees the sentinel is enqueued behind all
        // ticks already in the channel; the worker drains them in order.
        let _ = self.tx.send(Msg::Done);
        worker.join().expect("progress thread panicked")
    }
}

impl Drop for ProgressSink {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Write implementation collecting into a shared buffer.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn counts_all_ticks_even_with_live_handles() {
        let buf = SharedBuf::default();
        let sink = ProgressSink::new(10, "work", 1, buf.clone());
        let h = sink.handle();
        for _ in 0..10 {
            h.tick(1);
        }
        // `h` is still alive here — finish must not deadlock.
        let seen = sink.finish();
        assert_eq!(seen, 10);
        let text = String::from_utf8(buf.0.lock().clone()).unwrap();
        assert!(text.contains("work: 10/10"), "{text}");
        // Late ticks on the surviving handle are dropped silently.
        h.tick(5);
    }

    #[test]
    fn rate_limiting_reduces_lines() {
        let buf = SharedBuf::default();
        let sink = ProgressSink::new(100, "w", 50, buf.clone());
        let h = sink.handle();
        for _ in 0..100 {
            h.tick(1);
        }
        sink.finish();
        let text = String::from_utf8(buf.0.lock().clone()).unwrap();
        let lines = text.lines().count();
        assert!(lines <= 4, "expected few lines, got {lines}: {text}");
    }

    #[test]
    fn concurrent_ticks_from_many_threads() {
        let sink = ProgressSink::new(400, "par", 100, std::io::sink());
        let h = sink.handle();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        h.tick(1);
                    }
                });
            }
        });
        let seen = sink.finish();
        // try_send may drop ticks under extreme pressure; most must land.
        assert!(seen >= 300, "seen {seen}");
    }

    #[test]
    fn drop_without_finish_does_not_hang() {
        let sink = ProgressSink::new(5, "x", 1, std::io::sink());
        let h = sink.handle();
        h.tick(3);
        drop(sink);
        h.tick(1); // channel closed; silently dropped
    }

    #[test]
    #[should_panic(expected = "report_every must be positive")]
    fn zero_report_interval_rejected() {
        let _ = ProgressSink::new(1, "x", 0, std::io::sink());
    }
}
