//! Property-based tests for the geometric substrate.

use proptest::prelude::*;
use rayfade_geometry::{
    EuclideanPlane, ExplicitLinkGeometry, ExplicitMetric, LinkGeometry, Metric, PaperTopology,
    Point,
};

fn finite_coord() -> impl Strategy<Value = f64> {
    -1.0e4..1.0e4
}

fn point() -> impl Strategy<Value = Point> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn distance_symmetry(a in point(), b in point()) {
        prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-9);
    }

    #[test]
    fn distance_triangle(a in point(), b in point(), c in point()) {
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-6);
    }

    #[test]
    fn distance_nonnegative_and_identity(a in point()) {
        prop_assert!(a.distance(&a) == 0.0);
    }

    #[test]
    fn polar_offset_distance(a in point(), r in 0.0..1.0e3f64, theta in 0.0..std::f64::consts::TAU) {
        let p = a.offset_polar(r, theta);
        prop_assert!((a.distance(&p) - r).abs() < 1e-6);
    }

    #[test]
    fn plane_metric_passes_checker(pts in prop::collection::vec(point(), 0..8)) {
        let m = EuclideanPlane::new(pts);
        prop_assert!(m.check_triangle_inequality(1e-6).is_ok());
    }

    #[test]
    fn explicit_metric_snapshot_agrees(pts in prop::collection::vec(point(), 1..8)) {
        let m = EuclideanPlane::new(pts);
        let e = ExplicitMetric::from_metric(&m);
        for a in 0..m.len() {
            for b in 0..m.len() {
                prop_assert!((m.dist(a, b) - e.dist(a, b)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn generator_lengths_in_interval(
        seed in any::<u64>(),
        n in 1usize..40,
        lo in 1.0..50.0f64,
        extra in 0.0..50.0f64,
    ) {
        let cfg = PaperTopology { links: n, side: 500.0, min_length: lo, max_length: lo + extra };
        let net = cfg.generate(seed);
        prop_assert_eq!(net.len(), n);
        for l in net.links() {
            let len = l.length();
            prop_assert!(len >= lo - 1e-6 && len <= lo + extra + 1e-6);
        }
    }

    #[test]
    fn generator_deterministic(seed in any::<u64>()) {
        let cfg = PaperTopology { links: 10, side: 100.0, min_length: 1.0, max_length: 2.0 };
        prop_assert_eq!(cfg.generate(seed), cfg.generate(seed));
    }

    #[test]
    fn link_geometry_snapshot(seed in any::<u64>()) {
        let net = PaperTopology { links: 12, side: 200.0, min_length: 5.0, max_length: 10.0 }
            .generate(seed);
        let snap = ExplicitLinkGeometry::from_geometry(&net);
        for j in 0..net.len() {
            for i in 0..net.len() {
                prop_assert!((snap.cross_dist(j, i) - net.cross_dist(j, i)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn indices_by_length_is_sorted(seed in any::<u64>()) {
        let net = PaperTopology { links: 20, side: 300.0, min_length: 1.0, max_length: 100.0 }
            .generate(seed);
        let order = net.indices_by_length();
        for w in order.windows(2) {
            prop_assert!(net.link(w[0]).length() <= net.link(w[1]).length() + 1e-12);
        }
    }
}
