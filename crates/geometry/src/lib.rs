//! # rayfade-geometry
//!
//! Geometric substrate for the `rayfade` workspace — the reproduction of
//! *"Scheduling in Wireless Networks with Rayleigh-Fading Interference"*
//! (Dams, Hoefer, Kesselheim; SPAA 2012).
//!
//! This crate knows nothing about SINR or fading; it provides
//!
//! * [`point`] — planar points and bounding boxes,
//! * [`metric`] — abstract finite metrics ([`metric::Metric`]) with a planar
//!   and an explicit-matrix implementation,
//! * [`link`] — communication links, networks, and the [`link::LinkGeometry`]
//!   cross-distance abstraction the SINR layer is built on,
//! * [`generator`] — random/deterministic topology generators, including the
//!   paper's Sec. 7 generator ([`generator::PaperTopology`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod generator;
pub mod link;
pub mod metric;
pub mod point;

pub use generator::{
    topology_stats, ClusteredTopology, ExponentialChain, GridTopology, PaperTopology, RandomPairs,
    TopologyStats, MIN_SEPARATION,
};
pub use link::{ExplicitLinkGeometry, Link, LinkGeometry, Network};
pub use metric::{EuclideanPlane, ExplicitMetric, Metric, MetricViolation};
pub use point::{BoundingBox, Point};
