//! Abstract metric spaces over node identifiers.
//!
//! The paper's reduction (Sec. 2) is stated for *arbitrary* expected signal
//! strengths; only the transferred algorithms require distances to come from
//! a metric space. We therefore separate the metric abstraction from the
//! planar case: algorithms take any [`Metric`], and the plane is just one
//! implementation. An [`ExplicitMetric`] backed by a distance matrix lets
//! users model arbitrary (even non-geometric) propagation environments.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// A finite (pseudo-)metric on node indices `0..len()`.
///
/// Implementations must be symmetric with zero self-distance. The triangle
/// inequality is expected by the scheduling algorithms' guarantees but is
/// not enforced at runtime (checking is `O(n³)`); use
/// [`Metric::check_triangle_inequality`] in tests.
pub trait Metric {
    /// Number of indexed nodes.
    fn len(&self) -> usize;

    /// Distance between nodes `a` and `b`.
    fn dist(&self, a: usize, b: usize) -> f64;

    /// Whether the space contains no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exhaustively verifies symmetry, zero self-distance, non-negativity
    /// and the triangle inequality, up to additive slack `eps`.
    ///
    /// Runs in `O(n³)`; intended for tests and debug assertions only.
    fn check_triangle_inequality(&self, eps: f64) -> Result<(), MetricViolation> {
        let n = self.len();
        for a in 0..n {
            if self.dist(a, a).abs() > eps {
                return Err(MetricViolation::NonZeroSelfDistance { node: a });
            }
            for b in 0..n {
                let dab = self.dist(a, b);
                if dab < -eps {
                    return Err(MetricViolation::Negative { a, b });
                }
                if (dab - self.dist(b, a)).abs() > eps {
                    return Err(MetricViolation::Asymmetric { a, b });
                }
            }
        }
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    if self.dist(a, c) > self.dist(a, b) + self.dist(b, c) + eps {
                        return Err(MetricViolation::Triangle { a, b, c });
                    }
                }
            }
        }
        Ok(())
    }
}

/// A violation detected by [`Metric::check_triangle_inequality`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricViolation {
    /// `d(a, a) != 0`.
    NonZeroSelfDistance {
        /// Offending node.
        node: usize,
    },
    /// `d(a, b) < 0`.
    Negative {
        /// First node.
        a: usize,
        /// Second node.
        b: usize,
    },
    /// `d(a, b) != d(b, a)`.
    Asymmetric {
        /// First node.
        a: usize,
        /// Second node.
        b: usize,
    },
    /// `d(a, c) > d(a, b) + d(b, c)`.
    Triangle {
        /// Endpoint.
        a: usize,
        /// Midpoint.
        b: usize,
        /// Endpoint.
        c: usize,
    },
}

impl std::fmt::Display for MetricViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricViolation::NonZeroSelfDistance { node } => {
                write!(f, "d({node},{node}) != 0")
            }
            MetricViolation::Negative { a, b } => write!(f, "d({a},{b}) < 0"),
            MetricViolation::Asymmetric { a, b } => write!(f, "d({a},{b}) != d({b},{a})"),
            MetricViolation::Triangle { a, b, c } => {
                write!(f, "triangle inequality violated on ({a},{b},{c})")
            }
        }
    }
}

impl std::error::Error for MetricViolation {}

/// The Euclidean plane restricted to a finite list of node positions.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EuclideanPlane {
    positions: Vec<Point>,
}

impl EuclideanPlane {
    /// Wraps a list of positions.
    pub fn new(positions: Vec<Point>) -> Self {
        assert!(
            positions.iter().all(Point::is_finite),
            "positions must be finite"
        );
        EuclideanPlane { positions }
    }

    /// Position of node `i`.
    #[inline]
    pub fn position(&self, i: usize) -> Point {
        self.positions[i]
    }

    /// All positions, in index order.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Appends a node, returning its index.
    pub fn push(&mut self, p: Point) -> usize {
        assert!(p.is_finite(), "positions must be finite");
        self.positions.push(p);
        self.positions.len() - 1
    }
}

impl Metric for EuclideanPlane {
    #[inline]
    fn len(&self) -> usize {
        self.positions.len()
    }

    #[inline]
    fn dist(&self, a: usize, b: usize) -> f64 {
        self.positions[a].distance(&self.positions[b])
    }
}

/// A metric given by an explicit (dense, row-major) distance matrix.
///
/// Useful for measured propagation environments, unit-disk-like synthetic
/// topologies, and adversarial test instances. Symmetry and zero diagonal
/// are enforced at construction; the triangle inequality is the caller's
/// responsibility (checkable via [`Metric::check_triangle_inequality`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplicitMetric {
    n: usize,
    // Row-major n×n matrix.
    d: Vec<f64>,
}

impl ExplicitMetric {
    /// Builds a metric from a row-major `n×n` matrix.
    ///
    /// # Panics
    /// If the matrix is not `n×n`, not symmetric, has a non-zero diagonal,
    /// or contains negative/non-finite entries.
    pub fn from_matrix(n: usize, d: Vec<f64>) -> Self {
        assert_eq!(d.len(), n * n, "matrix must be n*n");
        for i in 0..n {
            assert_eq!(d[i * n + i], 0.0, "diagonal must be zero at {i}");
            for j in 0..n {
                let v = d[i * n + j];
                assert!(v.is_finite() && v >= 0.0, "entries must be finite and >= 0");
                assert_eq!(v, d[j * n + i], "matrix must be symmetric at ({i},{j})");
            }
        }
        ExplicitMetric { n, d }
    }

    /// Derives an explicit matrix from any other metric (a snapshot).
    pub fn from_metric<M: Metric>(m: &M) -> Self {
        let n = m.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] = m.dist(i, j);
            }
        }
        ExplicitMetric { n, d }
    }
}

impl Metric for ExplicitMetric {
    #[inline]
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn dist(&self, a: usize, b: usize) -> f64 {
        self.d[a * self.n + b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_plane() -> EuclideanPlane {
        EuclideanPlane::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 4.0),
            Point::new(-1.0, -1.0),
        ])
    }

    #[test]
    fn plane_distances() {
        let m = small_plane();
        assert_eq!(m.len(), 4);
        assert_eq!(m.dist(0, 1), 3.0);
        assert_eq!(m.dist(1, 2), 4.0);
        assert_eq!(m.dist(0, 2), 5.0);
    }

    #[test]
    fn plane_is_a_metric() {
        small_plane().check_triangle_inequality(1e-9).unwrap();
    }

    #[test]
    fn plane_push_returns_index() {
        let mut m = EuclideanPlane::default();
        assert!(m.is_empty());
        assert_eq!(m.push(Point::new(1.0, 1.0)), 0);
        assert_eq!(m.push(Point::new(2.0, 2.0)), 1);
        assert_eq!(m.len(), 2);
        assert_eq!(m.position(1), Point::new(2.0, 2.0));
    }

    #[test]
    fn explicit_metric_round_trips_plane() {
        let m = small_plane();
        let e = ExplicitMetric::from_metric(&m);
        for a in 0..m.len() {
            for b in 0..m.len() {
                assert!((m.dist(a, b) - e.dist(a, b)).abs() < 1e-12);
            }
        }
        e.check_triangle_inequality(1e-9).unwrap();
    }

    #[test]
    fn triangle_check_catches_violation() {
        // d(0,2)=10 but d(0,1)+d(1,2)=2: not a metric.
        let e = ExplicitMetric::from_matrix(3, vec![0.0, 1.0, 10.0, 1.0, 0.0, 1.0, 10.0, 1.0, 0.0]);
        assert!(matches!(
            e.check_triangle_inequality(1e-9),
            Err(MetricViolation::Triangle { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn explicit_metric_rejects_asymmetry() {
        let _ = ExplicitMetric::from_matrix(2, vec![0.0, 1.0, 2.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn explicit_metric_rejects_nonzero_diagonal() {
        let _ = ExplicitMetric::from_matrix(2, vec![0.5, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn violation_display() {
        let v = MetricViolation::Triangle { a: 0, b: 1, c: 2 };
        assert!(v.to_string().contains("triangle"));
        let v = MetricViolation::Asymmetric { a: 0, b: 1 };
        assert!(v.to_string().contains("d(0,1)"));
    }
}
