//! Random network generators.
//!
//! [`PaperTopology`] reproduces the generator of Sec. 7 of the paper:
//! receivers placed uniformly at random on an `L × L` plane, each sender at
//! a uniform-random angle and uniform-random distance (from a configurable
//! interval) from its receiver. Additional generators (clustered, grid,
//! line) provide harder and more structured instances for tests, examples
//! and ablations.
//!
//! All generators are deterministic given their seed: the same
//! configuration and seed always yield the same [`Network`].

use crate::link::{Link, Network};
use crate::point::{BoundingBox, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;

/// Minimum distance the random generators guarantee between any sender
/// and any receiver (own link or cross link, up to a factor 2 of
/// floating-point slack on cross pairs).
///
/// Path-loss gains are `P/d^α`: a zero distance is a panic in
/// `GainMatrix::from_geometry`, and a near-zero one produces gains large
/// enough to drown every other entry in roundoff. The clustered and
/// random-pair generators could both emit such instances (a zero-width
/// length interval at 0, or a sender landing on another link's
/// receiver); they now clamp link lengths to at least this value and
/// redraw placements whose *cross* sender–receiver distance falls below
/// `MIN_SEPARATION / 2` — the halved threshold keeps a clamped-length
/// link from re-tripping the guard through rounding alone.
pub const MIN_SEPARATION: f64 = 1e-9;

/// Redraw attempts per link before a generator gives up; hitting it
/// means the configuration is saturated (e.g. a zero-spread cluster
/// denser than the separation guard allows), not bad luck.
const MAX_PLACEMENT_ATTEMPTS: usize = 10_000;

/// True when placing `sender → receiver` would violate the cross-link
/// separation guard against any already-placed link.
fn violates_separation(links: &[Link], sender: &Point, receiver: &Point) -> bool {
    let guard = MIN_SEPARATION / 2.0;
    links
        .iter()
        .any(|l| sender.distance(&l.receiver) < guard || l.sender.distance(receiver) < guard)
}

/// One uniform sender angle (shared by the random generators).
fn theta_draw(rng: &mut StdRng) -> f64 {
    rng.gen_range(0.0..TAU)
}

/// Configuration for the paper's random topology (Sec. 7).
///
/// Defaults match Figure 1: 100 links on a 1000×1000 plane with
/// sender–receiver distances uniform in `[20, 40]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperTopology {
    /// Number of links `n`.
    pub links: usize,
    /// Side length of the square deployment region.
    pub side: f64,
    /// Minimum sender–receiver distance.
    pub min_length: f64,
    /// Maximum sender–receiver distance.
    pub max_length: f64,
}

impl Default for PaperTopology {
    fn default() -> Self {
        PaperTopology {
            links: 100,
            side: 1000.0,
            min_length: 20.0,
            max_length: 40.0,
        }
    }
}

impl PaperTopology {
    /// The Figure 1 configuration (100 links, lengths in `[20, 40]`).
    pub fn figure1() -> Self {
        Self::default()
    }

    /// The Figure 2 configuration: 200 links with lengths drawn from
    /// `(0, 100]` ("distances between 0 and 100").
    ///
    /// A tiny positive lower bound keeps link gains finite; a literal
    /// zero-length link would have infinite received power under the
    /// path-loss law.
    pub fn figure2() -> Self {
        PaperTopology {
            links: 200,
            side: 1000.0,
            min_length: 1e-3,
            max_length: 100.0,
        }
    }

    /// Generates a network from the given seed.
    ///
    /// Receivers are uniform on the square; each sender sits at a uniform
    /// angle and uniform `[min_length, max_length]` distance from its
    /// receiver (senders may fall outside the square, as in the paper,
    /// which only constrains receiver placement).
    ///
    /// # Panics
    /// If the length interval is empty, negative, or non-finite.
    pub fn generate(&self, seed: u64) -> Network {
        assert!(
            self.min_length >= 0.0
                && self.max_length >= self.min_length
                && self.max_length.is_finite(),
            "invalid length interval [{}, {}]",
            self.min_length,
            self.max_length
        );
        assert!(self.side > 0.0 && self.side.is_finite(), "invalid side");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut links = Vec::with_capacity(self.links);
        for _ in 0..self.links {
            let receiver = Point::new(
                rng.gen_range(0.0..=self.side),
                rng.gen_range(0.0..=self.side),
            );
            let r = if self.max_length > self.min_length {
                rng.gen_range(self.min_length..=self.max_length)
            } else {
                self.min_length
            };
            let theta = rng.gen_range(0.0..TAU);
            let sender = receiver.offset_polar(r, theta);
            links.push(Link::new(sender, receiver));
        }
        Network::new(links)
    }
}

/// Clustered topology: receivers gathered around `clusters` random cluster
/// centres — a high-contention stress instance where capacity maximization
/// must leave most links of a cluster unscheduled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusteredTopology {
    /// Number of links `n`.
    pub links: usize,
    /// Number of cluster centres.
    pub clusters: usize,
    /// Side length of the deployment square.
    pub side: f64,
    /// Standard deviation of the (isotropic, approximately normal) scatter
    /// of receivers around their cluster centre.
    pub spread: f64,
    /// Minimum sender–receiver distance.
    pub min_length: f64,
    /// Maximum sender–receiver distance.
    pub max_length: f64,
}

impl Default for ClusteredTopology {
    fn default() -> Self {
        ClusteredTopology {
            links: 100,
            clusters: 5,
            side: 1000.0,
            spread: 30.0,
            min_length: 20.0,
            max_length: 40.0,
        }
    }
}

impl ClusteredTopology {
    /// Generates a clustered network from the given seed.
    ///
    /// Receiver scatter uses a sum of three uniforms (Irwin–Hall), which is
    /// close enough to normal for topology purposes and keeps the generator
    /// dependency-free.
    ///
    /// Link lengths are clamped to at least [`MIN_SEPARATION`], and a
    /// placement whose sender lands on another link's receiver (closer
    /// than `MIN_SEPARATION / 2`) is redrawn — both guards only consume
    /// extra randomness when a violation actually occurs, so output for
    /// healthy configurations is unchanged.
    ///
    /// # Panics
    /// If the length interval is empty, negative, or non-finite; if the
    /// spread is negative or non-finite; or if a link cannot be placed
    /// within the separation guard (zero-spread clusters denser than the
    /// guard allows).
    pub fn generate(&self, seed: u64) -> Network {
        assert!(self.clusters > 0, "need at least one cluster");
        assert!(
            self.min_length >= 0.0
                && self.max_length >= self.min_length
                && self.max_length.is_finite(),
            "invalid length interval [{}, {}]",
            self.min_length,
            self.max_length
        );
        assert!(
            self.spread >= 0.0 && self.spread.is_finite(),
            "invalid spread"
        );
        assert!(self.side > 0.0 && self.side.is_finite(), "invalid side");
        let mut rng = StdRng::seed_from_u64(seed);
        let centres: Vec<Point> = (0..self.clusters)
            .map(|_| {
                Point::new(
                    rng.gen_range(0.0..=self.side),
                    rng.gen_range(0.0..=self.side),
                )
            })
            .collect();
        let approx_gauss = |rng: &mut StdRng| -> f64 {
            // Irwin–Hall(3), centred and scaled to unit variance: var of one
            // U(−0.5,0.5) is 1/12, of the sum 1/4, so scale by 2.
            let s: f64 = (0..3).map(|_| rng.gen_range(-0.5..0.5)).sum();
            s * 2.0
        };
        let mut links = Vec::with_capacity(self.links);
        for i in 0..self.links {
            let c = centres[i % self.clusters];
            for attempt in 0.. {
                assert!(
                    attempt < MAX_PLACEMENT_ATTEMPTS,
                    "could not place link {i} within the minimum-separation guard \
                     after {MAX_PLACEMENT_ATTEMPTS} attempts (config {self:?})"
                );
                let receiver = Point::new(
                    c.x + approx_gauss(&mut rng) * self.spread,
                    c.y + approx_gauss(&mut rng) * self.spread,
                );
                let r = if self.max_length > self.min_length {
                    rng.gen_range(self.min_length..=self.max_length)
                } else {
                    self.min_length
                };
                let sender = receiver.offset_polar(r.max(MIN_SEPARATION), theta_draw(&mut rng));
                if !violates_separation(&links, &sender, &receiver) {
                    links.push(Link::new(sender, receiver));
                    break;
                }
            }
        }
        Network::new(links)
    }
}

/// Gupta–Kumar-style random pairs: both senders and receivers placed
/// independently and uniformly on the square (paper's reference \[12\]
/// setting), so link lengths follow the full uniform-in-square distance
/// distribution rather than a fixed interval.
///
/// Lengths can then span the whole diagonal, which makes the length
/// diversity `Δ` large — a harder regime for uniform power assignments
/// than [`PaperTopology`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomPairs {
    /// Number of links.
    pub links: usize,
    /// Side length of the deployment square.
    pub side: f64,
    /// Reject (and redraw) pairs closer than this, keeping gains finite.
    pub min_length: f64,
}

impl Default for RandomPairs {
    fn default() -> Self {
        RandomPairs {
            links: 100,
            side: 1000.0,
            min_length: 1.0,
        }
    }
}

impl RandomPairs {
    /// Generates a network from the given seed.
    ///
    /// The rejection loop enforces the *effective* length floor
    /// `max(min_length, MIN_SEPARATION)` — so `min_length = 0` can no
    /// longer emit a coincident sender–receiver pair — and additionally
    /// redraws pairs violating the cross-link guard of
    /// [`MIN_SEPARATION`] against already-placed links.
    ///
    /// # Panics
    /// If a pair cannot be placed within the redraw-attempt cap
    /// (practically unreachable for continuous draws on a positive-side
    /// square).
    pub fn generate(&self, seed: u64) -> Network {
        assert!(self.side > 0.0 && self.side.is_finite(), "invalid side");
        assert!(
            self.min_length >= 0.0 && self.min_length < self.side,
            "min_length must be small relative to the square"
        );
        let floor = self.min_length.max(MIN_SEPARATION);
        let mut rng = StdRng::seed_from_u64(seed);
        let uniform_point = |rng: &mut StdRng| {
            Point::new(
                rng.gen_range(0.0..=self.side),
                rng.gen_range(0.0..=self.side),
            )
        };
        let mut links = Vec::with_capacity(self.links);
        for i in 0..self.links {
            for attempt in 0.. {
                assert!(
                    attempt < MAX_PLACEMENT_ATTEMPTS,
                    "could not place pair {i} within the minimum-separation guard \
                     after {MAX_PLACEMENT_ATTEMPTS} attempts (config {self:?})"
                );
                let sender = uniform_point(&mut rng);
                let receiver = uniform_point(&mut rng);
                if sender.distance(&receiver) >= floor
                    && !violates_separation(&links, &sender, &receiver)
                {
                    links.push(Link::new(sender, receiver));
                    break;
                }
            }
        }
        Network::new(links)
    }
}

/// Deterministic grid topology: receivers on a `rows × cols` lattice with
/// spacing `spacing`; every sender at distance `length` due east.
///
/// Regular instances like this are the classical setting of Liu & Haenggi
/// (paper's ref. \[18\]) whose closed-form success probability the Rayleigh
/// model builds on; they make analytic spot-checks easy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridTopology {
    /// Number of lattice rows.
    pub rows: usize,
    /// Number of lattice columns.
    pub cols: usize,
    /// Lattice spacing.
    pub spacing: f64,
    /// Sender–receiver distance for every link.
    pub length: f64,
}

impl GridTopology {
    /// Generates the deterministic grid network.
    pub fn generate(&self) -> Network {
        assert!(self.spacing > 0.0 && self.length > 0.0, "invalid grid");
        let mut links = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let receiver = Point::new(c as f64 * self.spacing, r as f64 * self.spacing);
                let sender = Point::new(receiver.x + self.length, receiver.y);
                links.push(Link::new(sender, receiver));
            }
        }
        Network::new(links)
    }
}

/// Exponential line ("chain") topology: link `i` has length `base · g^i`
/// and consecutive links are separated so that nearest-neighbour
/// interference dominates.
///
/// This is the classical worst-case family for uniform power assignments
/// (length diversity `Δ = g^(n−1)`), exercising the `O(log Δ)` regime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExponentialChain {
    /// Number of links.
    pub links: usize,
    /// Length of the shortest link.
    pub base: f64,
    /// Geometric growth factor `g > 1`.
    pub growth: f64,
}

impl Default for ExponentialChain {
    fn default() -> Self {
        ExponentialChain {
            links: 16,
            base: 1.0,
            growth: 2.0,
        }
    }
}

impl ExponentialChain {
    /// Generates the deterministic chain network.
    ///
    /// Link `i` spans `[x_i, x_i + base·g^i]` on the x-axis with the
    /// receiver on the left; links are laid out left to right with a gap
    /// equal to the next link's length, so interference decays along the
    /// chain but never vanishes.
    pub fn generate(&self) -> Network {
        assert!(self.base > 0.0 && self.growth >= 1.0, "invalid chain");
        let mut links = Vec::with_capacity(self.links);
        let mut x = 0.0;
        for i in 0..self.links {
            let len = self.base * self.growth.powi(i as i32);
            let receiver = Point::new(x, 0.0);
            let sender = Point::new(x + len, 0.0);
            links.push(Link::new(sender, receiver));
            x += 2.0 * len;
        }
        Network::new(links)
    }
}

/// Summary statistics of a generated topology, used by tests and reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologyStats {
    /// Number of links.
    pub links: usize,
    /// Minimum link length.
    pub min_length: f64,
    /// Maximum link length.
    pub max_length: f64,
    /// Mean link length.
    pub mean_length: f64,
    /// Bounding box of all nodes.
    pub bounding_box: Option<BoundingBox>,
}

/// Computes [`TopologyStats`] for a network.
pub fn topology_stats(net: &Network) -> TopologyStats {
    let mut min_length = f64::INFINITY;
    let mut max_length: f64 = 0.0;
    let mut sum = 0.0;
    for l in net.links() {
        let len = l.length();
        min_length = min_length.min(len);
        max_length = max_length.max(len);
        sum += len;
    }
    TopologyStats {
        links: net.len(),
        min_length: if net.is_empty() { 0.0 } else { min_length },
        max_length,
        mean_length: if net.is_empty() {
            0.0
        } else {
            sum / net.len() as f64
        },
        bounding_box: net.bounding_box(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkGeometry;

    #[test]
    fn paper_topology_is_deterministic() {
        let cfg = PaperTopology::figure1();
        let a = cfg.generate(42);
        let b = cfg.generate(42);
        assert_eq!(a, b);
        let c = cfg.generate(43);
        assert_ne!(a, c);
    }

    #[test]
    fn paper_topology_respects_bounds() {
        let cfg = PaperTopology::figure1();
        let net = cfg.generate(7);
        assert_eq!(net.len(), 100);
        let region = BoundingBox::square(cfg.side);
        for l in net.links() {
            assert!(region.contains(&l.receiver), "receiver inside region");
            let len = l.length();
            assert!(
                len >= cfg.min_length - 1e-9 && len <= cfg.max_length + 1e-9,
                "length {len} outside [{}, {}]",
                cfg.min_length,
                cfg.max_length
            );
        }
    }

    #[test]
    fn figure2_config_matches_paper() {
        let cfg = PaperTopology::figure2();
        assert_eq!(cfg.links, 200);
        assert!(cfg.max_length == 100.0);
        let net = cfg.generate(1);
        assert_eq!(net.len(), 200);
        for l in net.links() {
            assert!(l.length() <= 100.0 + 1e-9 && l.length() > 0.0);
        }
    }

    #[test]
    fn degenerate_length_interval_is_allowed() {
        let cfg = PaperTopology {
            links: 10,
            side: 100.0,
            min_length: 5.0,
            max_length: 5.0,
        };
        let net = cfg.generate(0);
        for l in net.links() {
            assert!((l.length() - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "invalid length interval")]
    fn inverted_interval_rejected() {
        let cfg = PaperTopology {
            min_length: 10.0,
            max_length: 5.0,
            ..PaperTopology::default()
        };
        let _ = cfg.generate(0);
    }

    #[test]
    fn clustered_topology_generates_requested_links() {
        let cfg = ClusteredTopology::default();
        let net = cfg.generate(3);
        assert_eq!(net.len(), cfg.links);
        assert_eq!(net, cfg.generate(3));
        for l in net.links() {
            let len = l.length();
            assert!(len >= cfg.min_length - 1e-9 && len <= cfg.max_length + 1e-9);
        }
    }

    #[test]
    fn random_pairs_respects_bounds() {
        let cfg = RandomPairs {
            links: 50,
            side: 500.0,
            min_length: 5.0,
        };
        let net = cfg.generate(4);
        assert_eq!(net.len(), 50);
        assert_eq!(net, cfg.generate(4));
        let region = BoundingBox::square(cfg.side);
        for l in net.links() {
            assert!(region.contains(&l.sender));
            assert!(region.contains(&l.receiver));
            assert!(l.length() >= cfg.min_length);
        }
        // Lengths should vary widely (that's the point of this family).
        let stats = topology_stats(&net);
        assert!(stats.max_length / stats.min_length > 5.0);
    }

    #[test]
    fn clustered_topology_survives_degenerate_config() {
        // Regression: a zero-width length interval at 0 with zero spread
        // produced coincident sender–receiver pairs (r = 0) for *every*
        // seed — `GainMatrix::from_geometry` then panics on the zero
        // distance. The separation guard must clamp the length instead.
        let cfg = ClusteredTopology {
            links: 40,
            clusters: 1,
            side: 10.0,
            spread: 0.0,
            min_length: 0.0,
            max_length: 0.0,
        };
        for seed in 0..3 {
            let net = cfg.generate(seed);
            assert_eq!(net.len(), 40);
            for (i, l) in net.iter() {
                // 0.99: the clamp is exact in polar space, but realizing
                // the offset near coordinate ~10 rounds the length by a
                // few ulps of the *coordinate*, i.e. ~1e-6 relative here.
                assert!(
                    l.length() >= MIN_SEPARATION * 0.99,
                    "seed {seed} link {i}: length {} below the floor",
                    l.length()
                );
                for (j, m) in net.iter() {
                    if i != j {
                        assert!(
                            l.sender.distance(&m.receiver) >= MIN_SEPARATION / 2.0,
                            "seed {seed}: sender {i} sits on receiver {j}"
                        );
                    }
                }
            }
            assert_eq!(net, cfg.generate(seed), "still deterministic");
        }
    }

    #[test]
    fn clustered_topology_guards_only_fire_on_degenerate_draws() {
        // Healthy configurations must generate byte-identical networks to
        // the pre-guard code: the redraw loop consumes extra randomness
        // only on an actual violation, never speculatively.
        let cfg = ClusteredTopology::default();
        let net = cfg.generate(3);
        for l in net.links() {
            assert!(l.length() >= cfg.min_length - 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "invalid length interval")]
    fn clustered_inverted_interval_rejected() {
        let cfg = ClusteredTopology {
            min_length: 10.0,
            max_length: 5.0,
            ..ClusteredTopology::default()
        };
        let _ = cfg.generate(0);
    }

    #[test]
    fn random_pairs_zero_min_length_gets_the_separation_floor() {
        // Regression companion: min_length = 0 used to accept coincident
        // pairs outright; the effective floor is now MIN_SEPARATION.
        let cfg = RandomPairs {
            links: 30,
            side: 200.0,
            min_length: 0.0,
        };
        let net = cfg.generate(9);
        assert_eq!(net.len(), 30);
        for l in net.links() {
            assert!(l.length() >= MIN_SEPARATION);
        }
        assert_eq!(net, cfg.generate(9));
    }

    #[test]
    fn grid_topology_shape() {
        let net = GridTopology {
            rows: 3,
            cols: 4,
            spacing: 10.0,
            length: 2.0,
        }
        .generate();
        assert_eq!(net.len(), 12);
        for l in net.links() {
            assert!((l.length() - 2.0).abs() < 1e-12);
        }
        // Receivers form the lattice.
        assert_eq!(net.link(0).receiver, Point::new(0.0, 0.0));
        assert_eq!(net.link(11).receiver, Point::new(30.0, 20.0));
    }

    #[test]
    fn exponential_chain_lengths_grow_geometrically() {
        let net = ExponentialChain {
            links: 5,
            base: 1.0,
            growth: 2.0,
        }
        .generate();
        for (i, l) in net.iter() {
            assert!((l.length() - 2f64.powi(i as i32)).abs() < 1e-9);
        }
        assert_eq!(net.length_diversity(), Some(16.0));
    }

    #[test]
    fn stats_summarize_network() {
        let net = GridTopology {
            rows: 2,
            cols: 2,
            spacing: 5.0,
            length: 1.0,
        }
        .generate();
        let s = topology_stats(&net);
        assert_eq!(s.links, 4);
        assert!((s.min_length - 1.0).abs() < 1e-12);
        assert!((s.max_length - 1.0).abs() < 1e-12);
        assert!((s.mean_length - 1.0).abs() < 1e-12);
        assert!(s.bounding_box.is_some());
        let empty = topology_stats(&Network::default());
        assert_eq!(empty.links, 0);
        assert_eq!(empty.mean_length, 0.0);
    }
}
