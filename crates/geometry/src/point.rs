//! Points in the Euclidean plane.
//!
//! The paper's simulations (Sec. 7) place nodes on a 1000×1000 plane, so the
//! planar case is the workhorse. All higher-level code is written against
//! the [`crate::metric::Metric`] trait, which this module's [`Point`] feeds
//! through [`crate::metric::EuclideanPlane`].

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point in the two-dimensional Euclidean plane.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Cheaper than [`Point::distance`]; prefer it for comparisons.
    #[inline]
    pub fn distance_squared(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// The point at distance `r` and angle `theta` (radians, measured from
    /// the positive x-axis) from `self`.
    ///
    /// This is exactly how the paper places each sender relative to its
    /// receiver: "choosing the angle and the distance to the receiver
    /// uniformly at random from a fixed interval".
    #[inline]
    pub fn offset_polar(&self, r: f64, theta: f64) -> Point {
        Point::new(self.x + r * theta.cos(), self.y + r * theta.sin())
    }

    /// Euclidean norm of the point interpreted as a vector.
    #[inline]
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Componentwise minimum.
    #[inline]
    pub fn min(&self, other: &Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Componentwise maximum.
    #[inline]
    pub fn max(&self, other: &Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Whether both coordinates are finite (not NaN/∞).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

/// An axis-aligned bounding box, used to describe deployment regions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Lower-left corner.
    pub lo: Point,
    /// Upper-right corner.
    pub hi: Point,
}

impl BoundingBox {
    /// Creates a box from two opposite corners (in any order).
    pub fn new(a: Point, b: Point) -> Self {
        BoundingBox {
            lo: a.min(&b),
            hi: a.max(&b),
        }
    }

    /// The square `[0, side] × [0, side]` — the paper uses `side = 1000`.
    pub fn square(side: f64) -> Self {
        assert!(
            side >= 0.0 && side.is_finite(),
            "side must be finite and non-negative"
        );
        BoundingBox::new(Point::ORIGIN, Point::new(side, side))
    }

    /// Width of the box.
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi.x - self.lo.x
    }

    /// Height of the box.
    #[inline]
    pub fn height(&self) -> f64 {
        self.hi.y - self.lo.y
    }

    /// Length of the box diagonal — an upper bound on any pairwise distance.
    #[inline]
    pub fn diameter(&self) -> f64 {
        self.lo.distance(&self.hi)
    }

    /// Whether `p` lies inside the box (boundary inclusive).
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// The smallest box containing `self` and `p`.
    pub fn expand_to(&self, p: &Point) -> BoundingBox {
        BoundingBox {
            lo: self.lo.min(p),
            hi: self.hi.max(p),
        }
    }

    /// Smallest bounding box of a non-empty point set.
    ///
    /// Returns `None` for an empty iterator.
    pub fn of_points<I: IntoIterator<Item = Point>>(points: I) -> Option<BoundingBox> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = BoundingBox::new(first, first);
        for p in it {
            bb = bb.expand_to(&p);
        }
        Some(bb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(&b), b.distance(&a));
        assert_eq!(a.distance(&a), 0.0);
        assert_eq!(a.distance(&b), 5.0);
    }

    #[test]
    fn distance_squared_matches_distance() {
        let a = Point::new(-3.0, 0.5);
        let b = Point::new(2.0, -7.0);
        let d = a.distance(&b);
        assert!((a.distance_squared(&b) - d * d).abs() < 1e-12);
    }

    #[test]
    fn polar_offset_has_requested_distance() {
        let c = Point::new(10.0, -3.0);
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let p = c.offset_polar(7.5, theta);
            assert!((c.distance(&p) - 7.5).abs() < 1e-9, "angle {theta}");
        }
    }

    #[test]
    fn polar_offset_zero_radius_is_identity() {
        let c = Point::new(1.0, 1.0);
        let p = c.offset_polar(0.0, 1.234);
        assert!((p.x - c.x).abs() < 1e-12 && (p.y - c.y).abs() < 1e-12);
    }

    #[test]
    fn vector_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, 5.0);
        assert_eq!(a + b, Point::new(4.0, 7.0));
        assert_eq!(b - a, Point::new(2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert!((Point::new(3.0, 4.0).norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn bounding_box_orders_corners() {
        let bb = BoundingBox::new(Point::new(5.0, -1.0), Point::new(-2.0, 3.0));
        assert_eq!(bb.lo, Point::new(-2.0, -1.0));
        assert_eq!(bb.hi, Point::new(5.0, 3.0));
        assert_eq!(bb.width(), 7.0);
        assert_eq!(bb.height(), 4.0);
    }

    #[test]
    fn bounding_box_contains_and_expand() {
        let bb = BoundingBox::square(10.0);
        assert!(bb.contains(&Point::new(0.0, 0.0)));
        assert!(bb.contains(&Point::new(10.0, 10.0)));
        assert!(!bb.contains(&Point::new(10.0, 10.1)));
        let bigger = bb.expand_to(&Point::new(-5.0, 3.0));
        assert!(bigger.contains(&Point::new(-5.0, 3.0)));
        assert!(bigger.contains(&Point::new(10.0, 10.0)));
    }

    #[test]
    fn bounding_box_of_points() {
        assert!(BoundingBox::of_points(std::iter::empty()).is_none());
        let pts = vec![
            Point::new(1.0, 1.0),
            Point::new(-2.0, 5.0),
            Point::new(3.0, 0.0),
        ];
        let bb = BoundingBox::of_points(pts).unwrap();
        assert_eq!(bb.lo, Point::new(-2.0, 0.0));
        assert_eq!(bb.hi, Point::new(3.0, 5.0));
    }

    #[test]
    fn diameter_bounds_pairwise_distances() {
        let bb = BoundingBox::square(1000.0);
        assert!((bb.diameter() - 1000.0 * 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "side must be finite")]
    fn square_rejects_negative_side() {
        let _ = BoundingBox::square(-1.0);
    }
}
