//! Communication links and networks.
//!
//! A *link* is a sender–receiver pair `(s_i, r_i)`; a *network* is the
//! indexed collection of `n` links the scheduling problems operate on
//! (Sec. 2 of the paper). Interference couples link `j`'s sender to link
//! `i`'s receiver, so the quantity every model consumes is the cross
//! distance `d(s_j, r_i)`. The [`LinkGeometry`] trait exposes exactly that,
//! letting gain-matrix construction work for planar networks and for
//! explicitly measured cross-distance tables alike.

use crate::point::{BoundingBox, Point};
use serde::{Deserialize, Serialize};

/// A single communication request: one sender and one receiver in the plane,
/// with an optional non-negative weight for weighted capacity maximization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Sender position `s_i`.
    pub sender: Point,
    /// Receiver position `r_i`.
    pub receiver: Point,
    /// Weight `w_i ≥ 0` used by weighted utilities; `1.0` for unweighted.
    pub weight: f64,
}

impl Link {
    /// Creates an unweighted link.
    pub fn new(sender: Point, receiver: Point) -> Self {
        Link {
            sender,
            receiver,
            weight: 1.0,
        }
    }

    /// Creates a weighted link.
    ///
    /// # Panics
    /// If `weight` is negative or non-finite.
    pub fn weighted(sender: Point, receiver: Point, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weight must be finite and non-negative"
        );
        Link {
            sender,
            receiver,
            weight,
        }
    }

    /// Sender–receiver distance `d(s_i, r_i)` — the link's *length*.
    #[inline]
    pub fn length(&self) -> f64 {
        self.sender.distance(&self.receiver)
    }
}

/// Cross-distance geometry of a set of links.
///
/// `cross_dist(j, i)` is the distance from link `j`'s **sender** to link
/// `i`'s **receiver** — the distance a signal from `s_j` travels before
/// arriving (as interference, unless `j == i`) at `r_i`. Note the argument
/// order matches the paper's `S̄_{j,i}` subscripts.
pub trait LinkGeometry {
    /// Number of links.
    fn len(&self) -> usize;

    /// Distance from sender `j` to receiver `i`.
    fn cross_dist(&self, j: usize, i: usize) -> f64;

    /// Length of link `i` (`cross_dist(i, i)`).
    fn length(&self, i: usize) -> f64 {
        self.cross_dist(i, i)
    }

    /// Weight of link `i`; defaults to `1.0` (unweighted).
    fn weight(&self, _i: usize) -> f64 {
        1.0
    }

    /// Whether the network has no links.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ratio `Δ` of the longest to the shortest link length.
    ///
    /// Appears in the approximation factors for uniform power (`O(log Δ)`,
    /// \[5\]). Returns `None` for empty networks or zero-length links.
    fn length_diversity(&self) -> Option<f64> {
        let n = self.len();
        if n == 0 {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        for i in 0..n {
            let l = self.length(i);
            lo = lo.min(l);
            hi = hi.max(l);
        }
        if lo <= 0.0 {
            None
        } else {
            Some(hi / lo)
        }
    }
}

/// A planar wireless network: an indexed list of [`Link`]s.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Network {
    links: Vec<Link>,
}

impl Network {
    /// Wraps a list of links.
    pub fn new(links: Vec<Link>) -> Self {
        Network { links }
    }

    /// The links, in index order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Link `i`.
    #[inline]
    pub fn link(&self, i: usize) -> &Link {
        &self.links[i]
    }

    /// Appends a link, returning its index.
    pub fn push(&mut self, link: Link) -> usize {
        self.links.push(link);
        self.links.len() - 1
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the network has no links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Iterates over links with their indices.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Link)> {
        self.links.iter().enumerate()
    }

    /// Smallest bounding box containing every sender and receiver.
    pub fn bounding_box(&self) -> Option<BoundingBox> {
        BoundingBox::of_points(self.links.iter().flat_map(|l| [l.sender, l.receiver]))
    }

    /// Indices sorted by non-decreasing link length.
    ///
    /// Ties broken by index so the order is deterministic — several
    /// scheduling algorithms process links shortest-first.
    pub fn indices_by_length(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.links.len()).collect();
        idx.sort_by(|&a, &b| {
            self.links[a]
                .length()
                .partial_cmp(&self.links[b].length())
                .expect("link lengths must not be NaN")
                .then(a.cmp(&b))
        });
        idx
    }

    /// Restriction of the network to a subset of link indices.
    ///
    /// Returns the sub-network and the mapping from new to original indices.
    pub fn subnetwork(&self, indices: &[usize]) -> (Network, Vec<usize>) {
        let links = indices.iter().map(|&i| self.links[i]).collect();
        (Network::new(links), indices.to_vec())
    }
}

impl LinkGeometry for Network {
    #[inline]
    fn len(&self) -> usize {
        self.links.len()
    }

    #[inline]
    fn cross_dist(&self, j: usize, i: usize) -> f64 {
        self.links[j].sender.distance(&self.links[i].receiver)
    }

    #[inline]
    fn length(&self, i: usize) -> f64 {
        self.links[i].length()
    }

    #[inline]
    fn weight(&self, i: usize) -> f64 {
        self.links[i].weight
    }
}

/// Link geometry given by an explicit cross-distance matrix.
///
/// Entry `(j, i)` (row-major) is `d(s_j, r_i)`; the diagonal holds link
/// lengths. Unlike a point metric this matrix need not be symmetric — the
/// distance from `s_j` to `r_i` generally differs from `s_i` to `r_j`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplicitLinkGeometry {
    n: usize,
    d: Vec<f64>,
    weights: Vec<f64>,
}

impl ExplicitLinkGeometry {
    /// Builds link geometry from a node [`crate::metric::Metric`] and a
    /// list of `(sender, receiver)` node-index pairs — the bridge from
    /// abstract metric spaces (which the paper's algorithms are stated
    /// over) to the cross-distance form the SINR layer consumes.
    ///
    /// # Panics
    /// If any node index is out of range.
    pub fn from_metric<M: crate::metric::Metric>(metric: &M, pairs: &[(usize, usize)]) -> Self {
        let nodes = metric.len();
        for &(s, r) in pairs {
            assert!(s < nodes && r < nodes, "node index out of range");
        }
        let n = pairs.len();
        let mut d = vec![0.0; n * n];
        for (j, &(s_j, _)) in pairs.iter().enumerate() {
            for (i, &(_, r_i)) in pairs.iter().enumerate() {
                d[j * n + i] = metric.dist(s_j, r_i);
            }
        }
        ExplicitLinkGeometry {
            n,
            d,
            weights: vec![1.0; n],
        }
    }

    /// Builds from a row-major `n×n` cross-distance matrix, unweighted.
    ///
    /// # Panics
    /// If dimensions mismatch or any entry is negative/non-finite.
    pub fn from_matrix(n: usize, d: Vec<f64>) -> Self {
        Self::from_matrix_weighted(n, d, vec![1.0; n])
    }

    /// Builds from a cross-distance matrix with per-link weights.
    pub fn from_matrix_weighted(n: usize, d: Vec<f64>, weights: Vec<f64>) -> Self {
        assert_eq!(d.len(), n * n, "matrix must be n*n");
        assert_eq!(weights.len(), n, "need one weight per link");
        assert!(
            d.iter().all(|v| v.is_finite() && *v >= 0.0),
            "entries must be finite and >= 0"
        );
        assert!(
            weights.iter().all(|v| v.is_finite() && *v >= 0.0),
            "weights must be finite and >= 0"
        );
        ExplicitLinkGeometry { n, d, weights }
    }

    /// Snapshot of any other link geometry into an explicit matrix.
    pub fn from_geometry<G: LinkGeometry>(g: &G) -> Self {
        let n = g.len();
        let mut d = vec![0.0; n * n];
        for j in 0..n {
            for i in 0..n {
                d[j * n + i] = g.cross_dist(j, i);
            }
        }
        let weights = (0..n).map(|i| g.weight(i)).collect();
        ExplicitLinkGeometry { n, d, weights }
    }
}

impl LinkGeometry for ExplicitLinkGeometry {
    #[inline]
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn cross_dist(&self, j: usize, i: usize) -> f64 {
        self.d[j * self.n + i]
    }

    #[inline]
    fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_link_net() -> Network {
        // Link 0: (0,0)->(1,0), link 1: (10,0)->(10,2).
        Network::new(vec![
            Link::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
            Link::new(Point::new(10.0, 0.0), Point::new(10.0, 2.0)),
        ])
    }

    #[test]
    fn link_length() {
        let l = Link::new(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        assert_eq!(l.length(), 5.0);
        assert_eq!(l.weight, 1.0);
    }

    #[test]
    fn weighted_link() {
        let l = Link::weighted(Point::ORIGIN, Point::new(1.0, 0.0), 2.5);
        assert_eq!(l.weight, 2.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let _ = Link::weighted(Point::ORIGIN, Point::ORIGIN, -1.0);
    }

    #[test]
    fn cross_distance_order_matters() {
        let net = two_link_net();
        // Sender 0 at (0,0) to receiver 1 at (10,2).
        assert!((net.cross_dist(0, 1) - (104.0f64).sqrt()).abs() < 1e-12);
        // Sender 1 at (10,0) to receiver 0 at (1,0).
        assert_eq!(net.cross_dist(1, 0), 9.0);
        assert_eq!(net.length(0), 1.0);
        assert_eq!(net.length(1), 2.0);
    }

    #[test]
    fn indices_by_length_sorts_with_stable_ties() {
        let mut net = two_link_net();
        net.push(Link::new(Point::new(0.0, 5.0), Point::new(1.0, 5.0))); // length 1 again
        let order = net.indices_by_length();
        assert_eq!(order, vec![0, 2, 1]);
    }

    #[test]
    fn length_diversity() {
        let net = two_link_net();
        assert_eq!(net.length_diversity(), Some(2.0));
        assert_eq!(Network::default().length_diversity(), None);
        // Zero-length link makes diversity undefined.
        let degenerate = Network::new(vec![Link::new(Point::ORIGIN, Point::ORIGIN)]);
        assert_eq!(degenerate.length_diversity(), None);
    }

    #[test]
    fn bounding_box_covers_all_nodes() {
        let net = two_link_net();
        let bb = net.bounding_box().unwrap();
        assert!(bb.contains(&Point::new(0.0, 0.0)));
        assert!(bb.contains(&Point::new(10.0, 2.0)));
        assert!(Network::default().bounding_box().is_none());
    }

    #[test]
    fn subnetwork_preserves_links() {
        let net = two_link_net();
        let (sub, map) = net.subnetwork(&[1]);
        assert_eq!(sub.len(), 1);
        assert_eq!(map, vec![1]);
        assert_eq!(sub.link(0).length(), 2.0);
    }

    #[test]
    fn explicit_geometry_round_trip() {
        let net = two_link_net();
        let e = ExplicitLinkGeometry::from_geometry(&net);
        for j in 0..2 {
            for i in 0..2 {
                assert!((e.cross_dist(j, i) - net.cross_dist(j, i)).abs() < 1e-12);
            }
        }
        assert_eq!(e.weight(0), 1.0);
    }

    #[test]
    fn metric_bridge_matches_planar_distances() {
        use crate::metric::{EuclideanPlane, Metric};
        use crate::point::Point;
        // Four nodes; two links: node0 -> node1, node2 -> node3.
        let plane = EuclideanPlane::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(0.0, 4.0),
            Point::new(3.0, 4.0),
        ]);
        let geom = ExplicitLinkGeometry::from_metric(&plane, &[(0, 1), (2, 3)]);
        assert_eq!(geom.len(), 2);
        assert_eq!(geom.length(0), 3.0);
        assert_eq!(geom.length(1), 3.0);
        // Cross: sender 0 (node 0) to receiver 1 (node 3): distance 5.
        assert_eq!(geom.cross_dist(0, 1), 5.0);
        assert_eq!(geom.cross_dist(1, 0), plane.dist(2, 1));
    }

    #[test]
    #[should_panic(expected = "node index out of range")]
    fn metric_bridge_checks_indices() {
        use crate::metric::EuclideanPlane;
        use crate::point::Point;
        let plane = EuclideanPlane::new(vec![Point::new(0.0, 0.0)]);
        let _ = ExplicitLinkGeometry::from_metric(&plane, &[(0, 1)]);
    }

    #[test]
    fn explicit_geometry_can_be_asymmetric() {
        let e = ExplicitLinkGeometry::from_matrix(2, vec![1.0, 5.0, 3.0, 2.0]);
        assert_eq!(e.cross_dist(0, 1), 5.0);
        assert_eq!(e.cross_dist(1, 0), 3.0);
        assert_eq!(e.length(0), 1.0);
        assert_eq!(e.length(1), 2.0);
    }

    #[test]
    #[should_panic(expected = "n*n")]
    fn explicit_geometry_rejects_bad_shape() {
        let _ = ExplicitLinkGeometry::from_matrix(2, vec![0.0; 3]);
    }

    #[test]
    fn network_iter_and_push() {
        let mut net = Network::default();
        assert!(net.is_empty());
        let id = net.push(Link::new(Point::ORIGIN, Point::new(1.0, 0.0)));
        assert_eq!(id, 0);
        let collected: Vec<usize> = net.iter().map(|(i, _)| i).collect();
        assert_eq!(collected, vec![0]);
    }
}
