//! Every committed repro case under `repros/` must parse and replay
//! green on a normal (un-injected) build. Cases land there when the fuzz
//! sweep catches a divergence — e.g. the `inject-bug` CI sentinel — and
//! stay as regression tests once the underlying bug is fixed (or, for
//! sentinel-generated cases, as proof the harness catches it).

use rayfade_conformance::ReproCase;

#[test]
fn committed_repro_cases_replay_green() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/repros");
    let mut count = 0;
    for entry in std::fs::read_dir(dir).expect("repros directory") {
        let path = entry.expect("directory entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("toml") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("read repro case");
        let case = ReproCase::from_toml(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        case.replay()
            .unwrap_or_else(|e| panic!("{} regressed: {e}", path.display()));
        count += 1;
    }
    assert!(count >= 1, "expected at least one committed repro case");
}
