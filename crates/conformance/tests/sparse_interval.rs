//! Property tests for the ε-truncated sparse evaluation path.
//!
//! Across every adversarial fuzz [`Regime`] and arbitrary seeds, the
//! certified interval `[p·e^{−τᵢ}, p]` of the sparse accumulator must
//! contain the dense `SuccessEvaluator` value — for every truncation
//! bound δ, including `δ = 0` (where sparse and dense must agree
//! outright) and δ close to 1 (where almost everything is truncated and
//! only the certificate keeps the answer honest).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayfade_conformance::fuzz::Regime;
use rayfade_core::SuccessEvaluator;
use rayfade_sinr::{SparseInterferenceRatios, SparseSuccessAccumulator};

/// Truncation bounds under test: exact, tiny, moderate, and extreme.
const DELTAS: [f64; 5] = [0.0, 1e-9, 1e-3, 0.5, 0.99];

/// A probability vector mixing interior draws with the boundary extremes
/// (mirrors the adversarial mix the conformance checks use).
fn probs_for(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_5eed_5eed_5eed);
    (0..n)
        .map(|_| match rng.gen_range(0usize..6) {
            0 => 0.0,
            1 => 1.0,
            2 => 1e-12,
            3 => 1.0 - 1e-12,
            _ => rng.gen_range(0.0..=1.0),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The dense Theorem 1 value always lies inside the sparse certified
    /// interval, for every regime × seed × δ.
    #[test]
    fn dense_value_lies_in_certified_interval(
        regime_idx in 0usize..Regime::ALL.len(),
        seed in any::<u64>(),
        delta_idx in 0usize..DELTAS.len(),
    ) {
        let regime = Regime::ALL[regime_idx];
        let delta = DELTAS[delta_idx];
        let inst = regime.instance(seed);
        let n = inst.gain.len();
        let probs = probs_for(n, seed);

        let mut dense = SuccessEvaluator::new(&inst.gain, &inst.params);
        dense.set_probs(&probs);
        let sparse = SparseInterferenceRatios::from_gain(&inst.gain, &inst.params, delta);
        let mut acc = SparseSuccessAccumulator::new(n);
        acc.set_probs(&sparse, &probs);

        for i in 0..n {
            let d = dense.success_probability(i);
            let (lo, hi) = acc.success_interval(&sparse, i);
            prop_assert!(lo.is_finite() && hi.is_finite() && lo <= hi,
                "regime {} seed {seed} delta {delta}: malformed interval [{lo:e}, {hi:e}]",
                regime.name());
            let slack = 1e-12 + 1e-9 * d.abs();
            prop_assert!(lo - slack <= d && d <= hi + slack,
                "regime {} seed {seed} delta {delta}: dense Q[{i}] = {d:e} \
                 outside [{lo:e}, {hi:e}]", regime.name());
        }
        let (lo, hi) = acc.expected_successes_interval(&sparse);
        let total = dense.expected_successes();
        let slack = 1e-12 + 1e-9 * total.abs();
        prop_assert!(lo - slack <= total && total <= hi + slack,
            "regime {} seed {seed} delta {delta}: dense E[successes] = {total:e} \
             outside [{lo:e}, {hi:e}]", regime.name());
    }

    /// At δ = 0 nothing is truncated: the sparse path must reproduce the
    /// dense value (up to accumulation-order roundoff) with a collapsed
    /// interval.
    #[test]
    fn delta_zero_is_exact(
        regime_idx in 0usize..Regime::ALL.len(),
        seed in any::<u64>(),
    ) {
        let regime = Regime::ALL[regime_idx];
        let inst = regime.instance(seed);
        let n = inst.gain.len();
        let probs = probs_for(n, seed.wrapping_add(1));

        let mut dense = SuccessEvaluator::new(&inst.gain, &inst.params);
        dense.set_probs(&probs);
        let sparse = SparseInterferenceRatios::from_gain(&inst.gain, &inst.params, 0.0);
        prop_assert_eq!(sparse.tau_max(), 0.0, "delta 0 must truncate nothing");
        let mut acc = SparseSuccessAccumulator::new(n);
        acc.set_probs(&sparse, &probs);

        for i in 0..n {
            let d = dense.success_probability(i);
            let (lo, hi) = acc.success_interval(&sparse, i);
            prop_assert_eq!(lo, hi, "regime {} seed {seed}: interval did not collapse",
                regime.name());
            prop_assert!((hi - d).abs() <= 1e-12 + 1e-9 * d.abs(),
                "regime {} seed {seed}: sparse Q[{i}] = {hi:e} vs dense {d:e}",
                regime.name());
        }
    }

    /// Large δ truncates aggressively but the interval stays sound and
    /// the upper end never exceeds the no-interference ceiling.
    #[test]
    fn extreme_delta_stays_sound(
        regime_idx in 0usize..Regime::ALL.len(),
        seed in any::<u64>(),
    ) {
        let regime = Regime::ALL[regime_idx];
        let inst = regime.instance(seed);
        let n = inst.gain.len();
        let sparse = SparseInterferenceRatios::from_gain(&inst.gain, &inst.params, 0.99);
        let mut acc = SparseSuccessAccumulator::new(n);
        acc.set_uniform(&sparse, 1.0);
        for i in 0..n {
            let (lo, hi) = acc.success_interval(&sparse, i);
            prop_assert!((0.0..=1.0).contains(&hi) && (0.0..=hi).contains(&lo),
                "regime {} seed {seed}: interval [{lo:e}, {hi:e}] escapes [0, 1]",
                regime.name());
            prop_assert!(hi <= sparse.noise_factor(i) + 1e-15,
                "regime {} seed {seed}: Q[{i}] = {hi:e} exceeds its \
                 no-interference ceiling {:e}", regime.name(), sparse.noise_factor(i));
        }
    }
}
