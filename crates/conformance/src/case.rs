//! Committed repro cases: a self-contained TOML snapshot of a failing
//! instance.
//!
//! A [`ReproCase`] pins everything needed to replay one conformance check
//! deterministically: the check name, the regime and seed that produced
//! the instance (provenance), the SINR parameters and the raw gain
//! matrix. Floats are serialized with Rust's shortest round-trip
//! formatting (`{:?}`), so a parsed case is **bit-identical** to the one
//! that failed.
//!
//! The build environment is hermetic (no registry crates), so this module
//! hand-rolls the tiny TOML subset the format needs — comments,
//! `key = value` scalars, `[section]` headers and single-line float
//! arrays — rather than depending on a TOML crate. Files it writes are
//! valid TOML; the parser rejects anything outside the subset loudly.

use crate::checks::{Check, Instance};
use rayfade_sinr::{GainMatrix, SinrParams};

/// Format version written to every case; bumped on incompatible changes.
pub const SCHEMA_VERSION: u64 = 1;

/// A replayable minimal failing instance (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct ReproCase {
    /// Which conformance check failed (see [`Check::name`]).
    pub check: Check,
    /// Name of the fuzz regime that generated the original instance.
    pub regime: String,
    /// Seed of the original instance; replays drive per-check randomness
    /// (probability vectors, op sequences) from it.
    pub seed: u64,
    /// Human-readable divergence description, written as comments.
    pub message: String,
    /// Model parameters of the failing instance.
    pub params: SinrParams,
    /// The (shrunk) gain matrix of the failing instance.
    pub gain: GainMatrix,
}

impl ReproCase {
    /// The instance this case replays.
    pub fn instance(&self) -> Instance {
        Instance {
            gain: self.gain.clone(),
            params: self.params,
            seed: self.seed,
        }
    }

    /// Re-runs the recorded check on the recorded instance.
    pub fn replay(&self) -> Result<(), String> {
        self.check.run(&self.instance())
    }

    /// Serializes to the committed TOML format.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str("# rayfade conformance repro case (replay: cargo run -p rayfade-bench \\\n");
        out.push_str("#   --release --bin conformance -- --replay <this file>; see TESTING.md)\n");
        for line in self.message.lines() {
            out.push_str("# ");
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(&format!("schema = {}\n", SCHEMA_VERSION));
        out.push_str(&format!("check = \"{}\"\n", self.check.name()));
        out.push_str(&format!("regime = \"{}\"\n", self.regime));
        out.push_str(&format!("seed = {}\n", self.seed));
        out.push_str(&format!("links = {}\n", self.gain.len()));
        out.push_str("\n[params]\n");
        out.push_str(&format!("alpha = {:?}\n", self.params.alpha));
        out.push_str(&format!("beta = {:?}\n", self.params.beta));
        out.push_str(&format!("noise = {:?}\n", self.params.noise));
        out.push_str("\n[gain]\n");
        for i in 0..self.gain.len() {
            let row: Vec<String> = self
                .gain
                .at_receiver(i)
                .iter()
                .map(|v| format!("{v:?}"))
                .collect();
            out.push_str(&format!("row_{i} = [{}]\n", row.join(", ")));
        }
        out
    }

    /// Parses a case previously written by [`Self::to_toml`].
    pub fn from_toml(text: &str) -> Result<ReproCase, String> {
        let mut section = String::new();
        let mut schema = None;
        let mut check = None;
        let mut regime = None;
        let mut seed = None;
        let mut links: Option<usize> = None;
        let mut alpha = None;
        let mut beta = None;
        let mut noise = None;
        let mut rows: Vec<(usize, Vec<f64>)> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let ctx = |e: String| format!("line {}: {e}", lineno + 1);
            match (section.as_str(), key) {
                ("", "schema") => schema = Some(parse_u64(value).map_err(ctx)?),
                ("", "check") => {
                    let name = parse_string(value).map_err(ctx)?;
                    check =
                        Some(Check::from_name(&name).ok_or_else(|| {
                            format!("line {}: unknown check {name:?}", lineno + 1)
                        })?);
                }
                ("", "regime") => regime = Some(parse_string(value).map_err(ctx)?),
                ("", "seed") => seed = Some(parse_u64(value).map_err(ctx)?),
                ("", "links") => links = Some(parse_u64(value).map_err(ctx)? as usize),
                ("params", "alpha") => alpha = Some(parse_f64(value).map_err(ctx)?),
                ("params", "beta") => beta = Some(parse_f64(value).map_err(ctx)?),
                ("params", "noise") => noise = Some(parse_f64(value).map_err(ctx)?),
                ("gain", k) if k.starts_with("row_") => {
                    let idx: usize = k[4..]
                        .parse()
                        .map_err(|_| format!("line {}: bad row index {k:?}", lineno + 1))?;
                    rows.push((idx, parse_f64_array(value).map_err(ctx)?));
                }
                (s, k) => {
                    return Err(format!(
                        "line {}: unexpected key {k:?} in section {s:?}",
                        lineno + 1
                    ))
                }
            }
        }
        let schema = schema.ok_or("missing `schema`")?;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema {schema} (this build reads {SCHEMA_VERSION})"
            ));
        }
        let n = links.ok_or("missing `links`")?;
        if rows.len() != n {
            return Err(format!("expected {n} gain rows, found {}", rows.len()));
        }
        rows.sort_by_key(|(i, _)| *i);
        let mut g = Vec::with_capacity(n * n);
        for (expect, (idx, row)) in rows.into_iter().enumerate() {
            if idx != expect {
                return Err(format!("missing or duplicate gain row_{expect}"));
            }
            if row.len() != n {
                return Err(format!("row_{idx} has {} entries, expected {n}", row.len()));
            }
            g.extend(row);
        }
        Ok(ReproCase {
            check: check.ok_or("missing `check`")?,
            regime: regime.ok_or("missing `regime`")?,
            seed: seed.ok_or("missing `seed`")?,
            message: String::new(),
            params: SinrParams::new(
                alpha.ok_or("missing `params.alpha`")?,
                beta.ok_or("missing `params.beta`")?,
                noise.ok_or("missing `params.noise`")?,
            ),
            gain: GainMatrix::from_raw(n, g),
        })
    }
}

fn parse_u64(v: &str) -> Result<u64, String> {
    v.parse()
        .map_err(|_| format!("expected integer, got {v:?}"))
}

fn parse_f64(v: &str) -> Result<f64, String> {
    v.parse().map_err(|_| format!("expected float, got {v:?}"))
}

fn parse_string(v: &str) -> Result<String, String> {
    v.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected quoted string, got {v:?}"))
}

fn parse_f64_array(v: &str) -> Result<Vec<f64>, String> {
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected [array], got {v:?}"))?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner.split(',').map(|e| parse_f64(e.trim())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReproCase {
        ReproCase {
            check: Check::EvaluatorSetProbs,
            regime: "huge-dynamic-range".into(),
            seed: 0xdead_beef,
            message: "fast 0.5 vs oracle 0.25\nsecond line".into(),
            params: SinrParams::new(2.75, 1.5, 1e-3),
            gain: GainMatrix::from_raw(2, vec![1.0, 2.5e-30, 0.125, 9.9e200]),
        }
    }

    #[test]
    fn toml_round_trip_is_bit_exact() {
        let case = sample();
        let text = case.to_toml();
        let back = ReproCase::from_toml(&text).unwrap();
        assert_eq!(back.check, case.check);
        assert_eq!(back.regime, case.regime);
        assert_eq!(back.seed, case.seed);
        assert_eq!(back.params, case.params);
        assert_eq!(back.gain, case.gain); // bit-exact via {:?} round-trip
                                          // Message is carried as comments and intentionally not parsed back.
        assert!(back.message.is_empty());
        assert!(text.contains("fast 0.5 vs oracle 0.25"));
    }

    #[test]
    fn round_trip_survives_awkward_floats() {
        for v in [
            f64::MIN_POSITIVE,
            5e-324, // smallest subnormal
            0.1,
            1.0 / 3.0,
            1.7976931348623157e308,
            0.0,
        ] {
            let case = ReproCase {
                gain: GainMatrix::from_raw(1, vec![v]),
                ..sample()
            };
            let back = ReproCase::from_toml(&case.to_toml()).unwrap();
            assert_eq!(back.gain.signal(0).to_bits(), v.to_bits(), "{v:e}");
        }
    }

    #[test]
    fn parser_rejects_malformed_cases() {
        assert!(ReproCase::from_toml("").is_err());
        let text = sample().to_toml();
        assert!(ReproCase::from_toml(&text.replace("schema = 1", "schema = 99")).is_err());
        assert!(ReproCase::from_toml(&text.replace("row_1", "row_7")).is_err());
        assert!(ReproCase::from_toml(&text.replace("links = 2", "links = 3")).is_err());
        assert!(ReproCase::from_toml(&text.replace(
            "check = \"evaluator-set-probs\"",
            "check = \"no-such-check\""
        ))
        .is_err());
    }

    #[test]
    fn empty_instance_round_trips() {
        let case = ReproCase {
            gain: GainMatrix::from_raw(0, vec![]),
            ..sample()
        };
        let back = ReproCase::from_toml(&case.to_toml()).unwrap();
        assert_eq!(back.gain.len(), 0);
    }
}
