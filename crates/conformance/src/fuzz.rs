//! Seeded differential fuzz loop.
//!
//! Draws instances from a catalogue of adversarial [`Regime`]s, runs the
//! full [`Check`] catalogue on each, and — on any divergence — shrinks
//! the instance with [`crate::shrink`] and packages it as a replayable
//! [`ReproCase`]. Everything is driven by one base seed: re-running with
//! the same seed reproduces the exact sweep, instance by instance.
//!
//! q→0/1 adversarial coverage lives inside the checks themselves (every
//! per-check probability vector mixes exact 0/1 and `1e-12`-from-boundary
//! draws, see `Instance::random_probs`); the regimes below stress the
//! *instance* axes: geometry, gain dynamic range, sparsity and the
//! placement of β relative to achieved SINRs.

use crate::case::ReproCase;
use crate::checks::{Check, Instance};
use crate::shrink::shrink_instance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayfade_core::mix_seed2;
use rayfade_geometry::{
    ClusteredTopology, ExponentialChain, GridTopology, PaperTopology, RandomPairs,
};
use rayfade_sinr::{mask_from_set, sinr, GainMatrix, PowerAssignment, SinrParams};

/// One adversarial instance-generation regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Regime {
    /// The paper's own experimental topology (uniform receivers, bounded
    /// link lengths) with randomized parameters — the "normal" baseline.
    Paper,
    /// Receivers gathered in tight clusters: heavy mutual interference.
    Clustered,
    /// Unconstrained sender/receiver pairs, including very short and very
    /// long links in one instance.
    RandomPairs,
    /// β planted at a link's achieved SINR times `1 ± 10^-u`, `u ≤ 12`:
    /// feasibility decisions a hair from the boundary.
    NearThreshold,
    /// Raw gain matrices log-uniform over `10^±150`, noise likewise:
    /// stresses overflow/underflow handling in products and logs.
    HugeDynamicRange,
    /// Sparse matrices where most entries — sometimes whole own-gain
    /// diagonals — are exactly zero, with occasional zero noise.
    ZeroGains,
    /// Ordinary geometry under extreme parameters: β from `10^-6` to
    /// `10^6`, noise from 0 to `10^6`.
    ExtremeParams,
    /// Degenerate shapes: `n ∈ {0, 1}`, all-equal gains, exact duplicate
    /// links, grids and exponential chains.
    Degenerate,
}

impl Regime {
    /// All regimes, in sweep order.
    pub const ALL: &'static [Regime] = &[
        Regime::Paper,
        Regime::Clustered,
        Regime::RandomPairs,
        Regime::NearThreshold,
        Regime::HugeDynamicRange,
        Regime::ZeroGains,
        Regime::ExtremeParams,
        Regime::Degenerate,
    ];

    /// Stable kebab-case name (used in repro files and reports).
    pub fn name(self) -> &'static str {
        match self {
            Regime::Paper => "paper",
            Regime::Clustered => "clustered",
            Regime::RandomPairs => "random-pairs",
            Regime::NearThreshold => "near-threshold",
            Regime::HugeDynamicRange => "huge-dynamic-range",
            Regime::ZeroGains => "zero-gains",
            Regime::ExtremeParams => "extreme-params",
            Regime::Degenerate => "degenerate",
        }
    }

    /// Generates the regime's instance for a seed. Deterministic: the
    /// same `(regime, seed)` always yields the same instance.
    pub fn instance(self, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0f0_44a7_9c58_21d3);
        match self {
            Regime::Paper => geometric_instance(self, seed, &mut rng),
            Regime::Clustered => geometric_instance(self, seed, &mut rng),
            Regime::RandomPairs => geometric_instance(self, seed, &mut rng),
            Regime::NearThreshold => {
                let base = geometric_instance(Regime::Paper, seed, &mut rng);
                plant_near_threshold(base, &mut rng)
            }
            Regime::HugeDynamicRange => {
                let n = rng.gen_range(1usize..=10);
                let g: Vec<f64> = (0..n * n).map(|_| log_uniform(&mut rng, 150.0)).collect();
                Instance {
                    gain: GainMatrix::from_raw(n, g),
                    params: SinrParams::new(
                        rng.gen_range(2.0..4.0),
                        log_uniform(&mut rng, 3.0),
                        log_uniform(&mut rng, 150.0),
                    ),
                    seed,
                }
            }
            Regime::ZeroGains => {
                let n = rng.gen_range(1usize..=12);
                let g: Vec<f64> = (0..n * n)
                    .map(|_| {
                        if rng.gen_range(0u32..2) == 0 {
                            0.0
                        } else {
                            log_uniform(&mut rng, 20.0)
                        }
                    })
                    .collect();
                let noise = if rng.gen_range(0u32..4) == 0 {
                    0.0
                } else {
                    log_uniform(&mut rng, 6.0)
                };
                Instance {
                    gain: GainMatrix::from_raw(n, g),
                    params: SinrParams::new(
                        rng.gen_range(2.0..4.0),
                        log_uniform(&mut rng, 2.0),
                        noise,
                    ),
                    seed,
                }
            }
            Regime::ExtremeParams => {
                let base = geometric_instance(Regime::Paper, seed, &mut rng);
                let beta = [1e-6, 1e-3, 1.0, 1e3, 1e6][rng.gen_range(0usize..5)];
                let noise = [0.0, 1e-12, 1.0, 1e6][rng.gen_range(0usize..4)];
                Instance {
                    params: SinrParams::new(base.params.alpha, beta, noise),
                    ..base
                }
            }
            Regime::Degenerate => degenerate_instance(seed, &mut rng),
        }
    }
}

/// Log-uniform draw over `10^[-mag, mag]`.
fn log_uniform(rng: &mut StdRng, mag: f64) -> f64 {
    10f64.powf(rng.gen_range(-mag..=mag))
}

fn random_params(rng: &mut StdRng) -> SinrParams {
    if rng.gen_range(0u32..4) == 0 {
        SinrParams::figure1()
    } else {
        SinrParams::new(
            rng.gen_range(2.1..4.0),
            rng.gen_range(0.5..3.0),
            log_uniform(rng, 6.0),
        )
    }
}

fn geometric_instance(regime: Regime, seed: u64, rng: &mut StdRng) -> Instance {
    let n = rng.gen_range(2usize..=14);
    let net = match regime {
        Regime::Clustered => ClusteredTopology {
            links: n,
            clusters: rng.gen_range(1usize..=3),
            side: rng.gen_range(200.0..1000.0),
            spread: rng.gen_range(5.0..50.0),
            min_length: 10.0,
            max_length: 40.0,
        }
        .generate(seed),
        Regime::RandomPairs => RandomPairs {
            links: n,
            side: rng.gen_range(100.0..2000.0),
            min_length: 1e-3,
        }
        .generate(seed),
        _ => {
            let min_length = rng.gen_range(5.0..30.0);
            PaperTopology {
                links: n,
                side: rng.gen_range(100.0..1000.0),
                min_length,
                max_length: min_length + rng.gen_range(1.0..40.0),
            }
            .generate(seed)
        }
    };
    let params = random_params(rng);
    let power = if rng.gen_range(0u32..2) == 0 {
        PowerAssignment::figure1_uniform()
    } else {
        PowerAssignment::figure1_square_root()
    };
    Instance {
        gain: GainMatrix::from_geometry(&net, &power, params.alpha),
        params,
        seed,
    }
}

/// Moves β to a random link's achieved SINR under a random transmit set,
/// within a factor `1 ± 10^-u` — so feasibility hangs on the last bits.
fn plant_near_threshold(base: Instance, rng: &mut StdRng) -> Instance {
    let n = base.gain.len();
    let set: Vec<usize> = (0..n).filter(|_| rng.gen_range(0u32..2) == 0).collect();
    if set.is_empty() {
        return base;
    }
    let i = set[rng.gen_range(0..set.len())];
    let mask = mask_from_set(n, &set);
    let achieved = sinr(&base.gain, &base.params, &mask, i);
    if !achieved.is_finite() || achieved <= 0.0 {
        return base;
    }
    let u = rng.gen_range(3i32..=12);
    let sign = if rng.gen_range(0u32..2) == 0 {
        1.0
    } else {
        -1.0
    };
    let beta = achieved * (1.0 + sign * 10f64.powi(-u));
    if !(beta.is_finite() && beta > 0.0) {
        return base;
    }
    Instance {
        params: SinrParams::new(base.params.alpha, beta, base.params.noise),
        ..base
    }
}

fn degenerate_instance(seed: u64, rng: &mut StdRng) -> Instance {
    let params = random_params(rng);
    let gain = match rng.gen_range(0u32..6) {
        0 => GainMatrix::from_raw(0, Vec::new()),
        1 => GainMatrix::from_raw(1, vec![log_uniform(rng, 6.0)]),
        2 => {
            // All entries identical: every link is every other link's twin.
            let n = rng.gen_range(2usize..=8);
            let v = log_uniform(rng, 6.0);
            GainMatrix::from_raw(n, vec![v; n * n])
        }
        3 => {
            // Exact duplicate block: links i and i+k are indistinguishable.
            let k = rng.gen_range(2usize..=5);
            let base: Vec<f64> = (0..k * k).map(|_| log_uniform(rng, 6.0)).collect();
            let n = 2 * k;
            let mut g = vec![0.0; n * n];
            for i in 0..n {
                for j in 0..n {
                    g[i * n + j] = base[(i % k) * k + (j % k)];
                }
            }
            GainMatrix::from_raw(n, g)
        }
        4 => {
            let net = GridTopology {
                rows: rng.gen_range(1usize..=3),
                cols: rng.gen_range(1usize..=4),
                spacing: rng.gen_range(10.0..100.0),
                length: rng.gen_range(1.0..9.0),
            }
            .generate();
            GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha)
        }
        _ => {
            let net = ExponentialChain {
                links: rng.gen_range(2usize..=12),
                base: 1.0,
                growth: 2.0,
            }
            .generate();
            GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha)
        }
    };
    Instance { gain, params, seed }
}

/// Configuration of one fuzz sweep.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Base seed; the per-instance seed is `mix_seed2(base, regime, k)`.
    pub base_seed: u64,
    /// Instances generated per regime.
    pub instances_per_regime: usize,
    /// Checks to run (defaults to the full catalogue).
    pub checks: Vec<Check>,
    /// Stop after this many failures (each failure costs a shrink).
    pub max_failures: usize,
}

impl FuzzConfig {
    /// The CI `--quick` sweep: fixed seed, 30 instances × 8 regimes = 240
    /// instances (the acceptance floor is 200), full catalogue.
    pub fn quick() -> Self {
        FuzzConfig {
            base_seed: 0xc04f_0420_2012_5a1d,
            instances_per_regime: 30,
            checks: Check::ALL.to_vec(),
            max_failures: 8,
        }
    }

    /// A deeper sweep for local soak runs.
    pub fn thorough(base_seed: u64) -> Self {
        FuzzConfig {
            base_seed,
            instances_per_regime: 200,
            ..FuzzConfig::quick()
        }
    }
}

/// One divergence found by the sweep, already shrunk.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The shrunk, replayable case.
    pub case: ReproCase,
    /// Links in the instance before shrinking.
    pub original_links: usize,
}

/// Outcome of a sweep.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Instances generated and checked.
    pub instances: usize,
    /// Individual check executions (instances × catalogue size).
    pub checks_run: usize,
    /// All divergences, shrunk and packaged.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// True when the sweep found no divergence.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs a sweep; `progress` is called once per regime with
/// `(regime, instances_done_so_far, failures_so_far)`.
pub fn run_sweep_with(
    config: &FuzzConfig,
    mut progress: impl FnMut(Regime, usize, usize),
) -> FuzzReport {
    let mut report = FuzzReport::default();
    'outer: for (r, &regime) in Regime::ALL.iter().enumerate() {
        for k in 0..config.instances_per_regime {
            let seed = mix_seed2(config.base_seed, r as u64, k as u64);
            let inst = regime.instance(seed);
            report.instances += 1;
            for &check in &config.checks {
                report.checks_run += 1;
                if let Err(message) = check.run(&inst) {
                    let original_links = inst.gain.len();
                    let (shrunk, message) = shrink_instance(check, &inst, message);
                    report.failures.push(FuzzFailure {
                        case: ReproCase {
                            check,
                            regime: regime.name().to_string(),
                            seed,
                            message,
                            params: shrunk.params,
                            gain: shrunk.gain,
                        },
                        original_links,
                    });
                    if report.failures.len() >= config.max_failures {
                        break 'outer;
                    }
                }
            }
        }
        progress(regime, report.instances, report.failures.len());
    }
    report
}

/// [`run_sweep_with`] without progress reporting.
pub fn run_sweep(config: &FuzzConfig) -> FuzzReport {
    run_sweep_with(config, |_, _, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes_are_deterministic() {
        for &regime in Regime::ALL {
            let a = regime.instance(42);
            let b = regime.instance(42);
            assert_eq!(a, b, "{} not deterministic", regime.name());
            assert!(a.gain.len() <= 14, "{} too large", regime.name());
        }
    }

    #[test]
    fn near_threshold_plants_beta_on_the_boundary() {
        // At least one seed must land β within 10^-3 of an achieved SINR.
        let mut planted = 0;
        for seed in 0..20 {
            let inst = Regime::NearThreshold.instance(seed);
            let base = Regime::Paper.instance(seed);
            if inst.params.beta != base.params.beta {
                planted += 1;
            }
        }
        assert!(planted > 10, "only {planted}/20 seeds planted a boundary β");
    }

    #[test]
    fn zero_gains_regime_actually_produces_zeros() {
        let inst = Regime::ZeroGains.instance(3);
        let n = inst.gain.len();
        let zeros = (0..n)
            .flat_map(|i| inst.gain.at_receiver(i).iter())
            .filter(|&&v| v == 0.0)
            .count();
        assert!(n == 0 || zeros > 0);
    }

    #[test]
    fn tiny_sweep_runs_clean() {
        let config = FuzzConfig {
            base_seed: 7,
            instances_per_regime: 2,
            checks: Check::ALL.to_vec(),
            max_failures: 1,
        };
        let report = run_sweep(&config);
        assert_eq!(report.instances, 2 * Regime::ALL.len());
        assert!(
            report.passed(),
            "sweep diverged: {}",
            report.failures[0].case.message
        );
    }
}
