//! The conformance check catalogue.
//!
//! Each [`Check`] compares one optimized path against the independent
//! oracles in [`crate::oracle`] (differential checks) or asserts an
//! invariant the paper guarantees with no oracle at all (metamorphic
//! checks). Checks are pure functions of an [`Instance`] — the per-check
//! randomness (probability vectors, subsets, op sequences) is derived
//! deterministically from the instance seed, so a failure replays
//! bit-identically from its committed [`crate::case::ReproCase`].
//!
//! Tolerances follow one scheme, documented per check in TESTING.md's
//! table: `|fast − oracle| ≤ ABS_TOL + rel·|oracle|` with
//! [`ABS_TOL`] `= 1e-12` absorbing underflow-scale noise. Comparisons
//! treat NaN as an automatic failure. Decision checks (feasibility,
//! exhaustive cardinality) skip knife-edge instances whose scaled slack
//! is below [`KNIFE_EDGE`] — at the boundary the fast path and the
//! oracle may legitimately round opposite ways.

use crate::oracle;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rayfade_core::evaluator::{
    batch_expected_successes, batch_expected_successes_of_sets, batch_success_probabilities,
};
use rayfade_core::optimum::{compare_optima, rayleigh_optimum_exhaustive};
use rayfade_core::success::{expected_successes_of_set, success_probability_of_set};
use rayfade_core::transfer::transfer_set;
use rayfade_core::{log_star, simulation_rounds, SuccessEvaluator};
use rayfade_sched::{
    CapacityAlgorithm, CapacityInstance, ExactCapacity, GreedyCapacity, RayleighGreedy,
    RayleighLocalSearch,
};
use rayfade_sinr::{
    spectral_report, AccumMode, Affectance, AmortizedAccumulator, GainMatrix, SinrParams,
    SparseInterferenceRatios, SparseSuccessAccumulator,
};

/// Absolute tolerance floor of every comparison (see module docs).
pub const ABS_TOL: f64 = 1e-12;

/// Scaled-slack band around feasibility boundaries inside which decision
/// checks skip the instance instead of asserting agreement.
pub const KNIFE_EDGE: f64 = 1e-9;

/// Enumeration cap for the `O(2ⁿ)` oracle comparisons; larger instances
/// are truncated to their first `EXHAUSTIVE_LIMIT` links.
pub const EXHAUSTIVE_LIMIT: usize = 10;

/// One instance under test: a gain matrix, model parameters and the seed
/// that drives all per-check randomness.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Expected-gain matrix of the network.
    pub gain: GainMatrix,
    /// SINR model parameters.
    pub params: SinrParams,
    /// Seed for per-check randomness (derived, deterministic).
    pub seed: u64,
}

impl Instance {
    fn rng(&self, salt: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17))
    }

    /// A probability vector mixing interior draws with the adversarial
    /// extremes `{0, 1, 1e-12, 1 − 1e-12, ~1e-6}` (the q→0/1 regimes).
    fn random_probs(&self, salt: u64) -> Vec<f64> {
        let mut rng = self.rng(salt);
        (0..self.gain.len())
            .map(|_| match rng.gen_range(0usize..8) {
                0 => 0.0,
                1 => 1.0,
                2 => 1e-12,
                3 => 1.0 - 1e-12,
                4 => rng.gen_range(0.0..=1.0) * 1e-6,
                _ => rng.gen_range(0.0..=1.0),
            })
            .collect()
    }

    /// A sorted random subset of links (each kept with probability ~1/2).
    fn random_subset(&self, salt: u64) -> Vec<usize> {
        let mut rng = self.rng(salt);
        (0..self.gain.len())
            .filter(|_| rng.gen_range(0u32..2) == 0)
            .collect()
    }
}

/// Scaled closeness: `|fast − oracle| ≤ ABS_TOL + rel·|oracle|`; NaN or
/// infinity on either side fails (oracle quantities here are finite).
fn close(fast: f64, reference: f64, rel: f64) -> bool {
    fast.is_finite()
        && reference.is_finite()
        && (fast - reference).abs() <= ABS_TOL + rel * reference.abs()
}

/// Scaled one-sided bound: `a ≥ b` up to `ABS_TOL + rel·|b|` slack.
fn at_least(a: f64, b: f64, rel: f64) -> bool {
    a.is_finite() && b.is_finite() && a + ABS_TOL + rel * b.abs() >= b
}

macro_rules! ensure {
    ($cond:expr, $($msg:tt)*) => {
        // `if cond {} else { .. }` rather than `if !cond` so float
        // comparisons passed as `$cond` don't trip
        // clippy::neg_cmp_op_on_partial_ord at every call site.
        if $cond {
        } else {
            return Err(format!($($msg)*));
        }
    };
}

/// Every conformance check, differential and metamorphic (see module
/// docs and the TESTING.md catalogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Check {
    /// `SuccessEvaluator::set_probs` (both accumulation modes) vs the
    /// direct Theorem 1 product oracle.
    EvaluatorSetProbs,
    /// Incremental `set_prob`/`insert`/`remove` sequences vs the oracle
    /// at the final probability vector.
    EvaluatorIncremental,
    /// `success_probability_of_set` / `expected_successes_of_set` vs the
    /// oracle on fixed transmit sets.
    SetProbability,
    /// The rayon batch evaluators vs per-item oracle evaluation.
    BatchEvaluators,
    /// `rayleigh_optimum_exhaustive` vs the oracle's own `O(2ⁿ)`
    /// enumeration (value comparison, tie-robust).
    ExhaustiveOptimum,
    /// `RayleighGreedy` / `RayleighLocalSearch`: determinism, oracle
    /// re-scoring of the claimed objective, local-search dominance, and
    /// soundness against the exhaustive oracle optimum.
    Selectors,
    /// `Affectance` entries and feasibility vs the Lemma 6 formulas.
    AffectanceMatrix,
    /// Non-fading SINR predicates and exact/greedy capacity vs direct
    /// definition-level evaluation (knife-edge aware).
    NonfadingFeasibility,
    /// Transfer machinery (Lemma 2) and `compare_optima`/log* bounds.
    TransferLogstar,
    /// `spectral_report` vs the dense Gelfand matrix-squaring oracle.
    SpectralRadius,
    /// ε-truncated `SparseInterferenceRatios` vs the dense evaluator and
    /// the oracle: at every `δ` the certified interval `[p·e^{−τᵢ}, p]`
    /// must contain both, and at `δ = 0` the sparse value must agree
    /// outright.
    SparseTruncation,
    /// The churn-amortized quantized-log accumulator: a persistent
    /// instance driven through a random `set_prob`/`insert`/`remove`
    /// script must be *bit-equal* to a from-scratch `set_probs` rebuild
    /// at every step, and its Theorem 1 probabilities must match the
    /// oracle at the catalogue tolerance.
    AmortizedRatios,
    /// Metamorphic: relabeling links permutes success probabilities.
    Permutation,
    /// Metamorphic: removing a transmitter never hurts the others.
    RemovalMonotonicity,
    /// Metamorphic: scaling all gains and the noise by `c > 0` leaves
    /// every success probability unchanged.
    PowerScaling,
    /// Metamorphic: a silent duplicate link changes nothing; a
    /// transmitting duplicate mirrors its twin.
    DuplicateLink,
}

impl Check {
    /// All checks, in catalogue order.
    pub const ALL: &'static [Check] = &[
        Check::EvaluatorSetProbs,
        Check::EvaluatorIncremental,
        Check::SetProbability,
        Check::BatchEvaluators,
        Check::ExhaustiveOptimum,
        Check::Selectors,
        Check::AffectanceMatrix,
        Check::NonfadingFeasibility,
        Check::TransferLogstar,
        Check::SpectralRadius,
        Check::SparseTruncation,
        Check::AmortizedRatios,
        Check::Permutation,
        Check::RemovalMonotonicity,
        Check::PowerScaling,
        Check::DuplicateLink,
    ];

    /// Stable kebab-case name (used in repro files and reports).
    pub fn name(self) -> &'static str {
        match self {
            Check::EvaluatorSetProbs => "evaluator-set-probs",
            Check::EvaluatorIncremental => "evaluator-incremental",
            Check::SetProbability => "set-probability",
            Check::BatchEvaluators => "batch-evaluators",
            Check::ExhaustiveOptimum => "exhaustive-optimum",
            Check::Selectors => "selectors",
            Check::AffectanceMatrix => "affectance",
            Check::NonfadingFeasibility => "nonfading-feasibility",
            Check::TransferLogstar => "transfer-logstar",
            Check::SpectralRadius => "spectral-radius",
            Check::SparseTruncation => "sparse-truncation",
            Check::AmortizedRatios => "amortized-ratios",
            Check::Permutation => "permutation",
            Check::RemovalMonotonicity => "removal-monotonicity",
            Check::PowerScaling => "power-scaling",
            Check::DuplicateLink => "duplicate-link",
        }
    }

    /// Inverse of [`Self::name`].
    pub fn from_name(name: &str) -> Option<Check> {
        Check::ALL.iter().copied().find(|c| c.name() == name)
    }

    /// Runs the check; `Err` carries a human-readable divergence report.
    pub fn run(self, inst: &Instance) -> Result<(), String> {
        match self {
            Check::EvaluatorSetProbs => evaluator_set_probs(inst),
            Check::EvaluatorIncremental => evaluator_incremental(inst),
            Check::SetProbability => set_probability(inst),
            Check::BatchEvaluators => batch_evaluators(inst),
            Check::ExhaustiveOptimum => exhaustive_optimum(inst),
            Check::Selectors => selectors(inst),
            Check::AffectanceMatrix => affectance_matrix(inst),
            Check::NonfadingFeasibility => nonfading_feasibility(inst),
            Check::TransferLogstar => transfer_logstar(inst),
            Check::SpectralRadius => spectral_radius(inst),
            Check::SparseTruncation => sparse_truncation(inst),
            Check::AmortizedRatios => amortized_ratios(inst),
            Check::Permutation => permutation(inst),
            Check::RemovalMonotonicity => removal_monotonicity(inst),
            Check::PowerScaling => power_scaling(inst),
            Check::DuplicateLink => duplicate_link(inst),
        }
    }
}

fn evaluator_set_probs(inst: &Instance) -> Result<(), String> {
    let n = inst.gain.len();
    let probs = inst.random_probs(1);
    let oracle_q: Vec<f64> = (0..n)
        .map(|i| oracle::success_probability(&inst.gain, &inst.params, &probs, i))
        .collect();
    let oracle_total = oracle::expected_successes(&inst.gain, &inst.params, &probs);
    for mode in [AccumMode::LogDomain, AccumMode::Product] {
        let mut ev = SuccessEvaluator::with_mode(&inst.gain, &inst.params, mode);
        ev.set_probs(&probs);
        for (i, &want) in oracle_q.iter().enumerate() {
            let got = ev.success_probability(i);
            ensure!(
                close(got, want, 1e-9),
                "{mode:?} Q[{i}] fast {got:e} vs oracle {want:e} (probs {probs:?})"
            );
        }
        let got = ev.expected_successes();
        ensure!(
            close(got, oracle_total, 1e-9),
            "{mode:?} E[successes] fast {got:e} vs oracle {oracle_total:e}"
        );
    }
    Ok(())
}

fn evaluator_incremental(inst: &Instance) -> Result<(), String> {
    let n = inst.gain.len();
    if n == 0 {
        return Ok(());
    }
    for mode in [AccumMode::LogDomain, AccumMode::Product] {
        let mut rng = inst.rng(2);
        let mut ev = SuccessEvaluator::with_mode(&inst.gain, &inst.params, mode);
        let mut shadow = inst.random_probs(3);
        ev.set_probs(&shadow);
        for _ in 0..(3 * n + 4) {
            let j = rng.gen_range(0..n);
            match rng.gen_range(0u32..4) {
                0 => {
                    ev.insert(j);
                    shadow[j] = 1.0;
                }
                1 => {
                    ev.remove(j);
                    shadow[j] = 0.0;
                }
                2 => {
                    let q = [0.0, 1.0, 1e-12, 1.0 - 1e-12][rng.gen_range(0usize..4)];
                    ev.set_prob(j, q);
                    shadow[j] = q;
                }
                _ => {
                    let q = rng.gen_range(0.0..=1.0);
                    ev.set_prob(j, q);
                    shadow[j] = q;
                }
            }
        }
        for i in 0..n {
            let want = oracle::success_probability(&inst.gain, &inst.params, &shadow, i);
            let got = ev.success_probability(i);
            ensure!(
                close(got, want, 1e-9),
                "{mode:?} incremental Q[{i}] fast {got:e} vs oracle {want:e} after op \
                 sequence (final probs {shadow:?})"
            );
        }
    }
    Ok(())
}

fn set_probability(inst: &Instance) -> Result<(), String> {
    let n = inst.gain.len();
    let all: Vec<usize> = (0..n).collect();
    for (tag, set) in [
        ("empty", Vec::new()),
        ("full", all),
        ("random", inst.random_subset(4)),
    ] {
        for i in 0..n {
            let want = oracle::success_probability_of_set(&inst.gain, &inst.params, &set, i);
            let got = success_probability_of_set(&inst.gain, &inst.params, &set, i);
            ensure!(
                close(got, want, 1e-12),
                "{tag} set {set:?}: Q[{i}] fast {got:e} vs oracle {want:e}"
            );
        }
        let want = oracle::expected_successes_of_set(&inst.gain, &inst.params, &set);
        let got = expected_successes_of_set(&inst.gain, &inst.params, &set);
        ensure!(
            close(got, want, 1e-9),
            "{tag} set {set:?}: E[successes] fast {got:e} vs oracle {want:e}"
        );
    }
    Ok(())
}

fn batch_evaluators(inst: &Instance) -> Result<(), String> {
    let n = inst.gain.len();
    let prob_sets = vec![
        inst.random_probs(5),
        inst.random_probs(6),
        vec![0.0; n],
        vec![1.0; n],
    ];
    let totals = batch_expected_successes(&inst.gain, &inst.params, &prob_sets);
    let vectors = batch_success_probabilities(&inst.gain, &inst.params, &prob_sets);
    for (k, probs) in prob_sets.iter().enumerate() {
        let want = oracle::expected_successes(&inst.gain, &inst.params, probs);
        ensure!(
            close(totals[k], want, 1e-9),
            "batch E[successes][{k}] fast {:e} vs oracle {want:e}",
            totals[k]
        );
        for (i, &got) in vectors[k].iter().enumerate() {
            let want = oracle::success_probability(&inst.gain, &inst.params, probs, i);
            ensure!(
                close(got, want, 1e-9),
                "batch Q[{k}][{i}] fast {got:e} vs oracle {want:e}"
            );
        }
    }
    let sets = vec![Vec::new(), inst.random_subset(7), (0..n).collect()];
    let set_totals = batch_expected_successes_of_sets(&inst.gain, &inst.params, &sets);
    for (k, set) in sets.iter().enumerate() {
        let want = oracle::expected_successes_of_set(&inst.gain, &inst.params, set);
        ensure!(
            close(set_totals[k], want, 1e-9),
            "batch set E[successes][{k}] (set {set:?}) fast {:e} vs oracle {want:e}",
            set_totals[k]
        );
    }
    Ok(())
}

/// Truncation of the instance to the exhaustive-oracle size cap.
fn truncated(inst: &Instance) -> GainMatrix {
    let keep: Vec<usize> = (0..inst.gain.len().min(EXHAUSTIVE_LIMIT)).collect();
    inst.gain.submatrix(&keep)
}

fn exhaustive_optimum(inst: &Instance) -> Result<(), String> {
    let sub = truncated(inst);
    let (fast_set, fast_val) = rayleigh_optimum_exhaustive(&sub, &inst.params, EXHAUSTIVE_LIMIT);
    let (_, oracle_val) = oracle::exhaustive_optimum(&sub, &inst.params, EXHAUSTIVE_LIMIT);
    // Compare by value, not set: ties between distinct argmax sets are
    // legitimate and enumeration order dependent.
    ensure!(
        close(fast_val, oracle_val, 1e-9),
        "exhaustive optimum value fast {fast_val:e} vs oracle {oracle_val:e}"
    );
    let rescored = oracle::expected_successes_of_set(&sub, &inst.params, &fast_set);
    ensure!(
        close(fast_val, rescored, 1e-9),
        "fast optimum claims {fast_val:e} for set {fast_set:?} but oracle re-scores {rescored:e}"
    );
    Ok(())
}

fn selectors(inst: &Instance) -> Result<(), String> {
    let cap_inst = CapacityInstance::unweighted(&inst.gain, &inst.params);
    let greedy = RayleighGreedy::new().select(&cap_inst);
    let greedy_again = RayleighGreedy::new().select(&cap_inst);
    ensure!(
        greedy == greedy_again,
        "RayleighGreedy is non-deterministic: {greedy:?} vs {greedy_again:?}"
    );
    let greedy_fast = expected_successes_of_set(&inst.gain, &inst.params, &greedy);
    let greedy_oracle = oracle::expected_successes_of_set(&inst.gain, &inst.params, &greedy);
    ensure!(
        close(greedy_fast, greedy_oracle, 1e-9),
        "greedy set {greedy:?} scores fast {greedy_fast:e} vs oracle {greedy_oracle:e}"
    );
    let local = RayleighLocalSearch::new().select(&cap_inst);
    let local_oracle = oracle::expected_successes_of_set(&inst.gain, &inst.params, &local);
    ensure!(
        at_least(local_oracle, greedy_oracle, 1e-9),
        "local search {local:?} ({local_oracle:e}) lost to its own greedy start \
         {greedy:?} ({greedy_oracle:e})"
    );
    if inst.gain.len() <= EXHAUSTIVE_LIMIT {
        let (_, opt) = oracle::exhaustive_optimum(&inst.gain, &inst.params, EXHAUSTIVE_LIMIT);
        ensure!(
            at_least(opt, greedy_oracle, 1e-9),
            "greedy value {greedy_oracle:e} exceeds the exhaustive optimum {opt:e}"
        );
        ensure!(
            at_least(opt, local_oracle, 1e-9),
            "local-search value {local_oracle:e} exceeds the exhaustive optimum {opt:e}"
        );
    }
    Ok(())
}

fn affectance_matrix(inst: &Instance) -> Result<(), String> {
    let n = inst.gain.len();
    let aff = Affectance::new(&inst.gain, &inst.params);
    for i in 0..n {
        for j in 0..n {
            let want = oracle::affectance(&inst.gain, &inst.params, j, i);
            let got = aff.get(j, i);
            ensure!(
                close(got, want, 1e-12),
                "a({j},{i}) fast {got:e} vs oracle {want:e}"
            );
            let want_raw = oracle::affectance_unclipped(&inst.gain, &inst.params, j, i);
            let got_raw = aff.get_unclipped(j, i);
            let raw_ok = if want_raw.is_infinite() {
                got_raw == want_raw
            } else {
                close(got_raw, want_raw, 1e-12)
            };
            ensure!(
                raw_ok,
                "raw a({j},{i}) fast {got_raw:e} vs oracle {want_raw:e}"
            );
        }
    }
    for salt in [8u64, 9] {
        let set = inst.random_subset(salt);
        if oracle::feasibility_margin(&inst.gain, &inst.params, &set) < KNIFE_EDGE {
            continue;
        }
        let want = oracle::set_is_feasible(&inst.gain, &inst.params, &set);
        let got = aff.is_feasible(&set);
        ensure!(
            got == want,
            "Affectance::is_feasible({set:?}) = {got} but the SINR definition says {want}"
        );
    }
    Ok(())
}

fn nonfading_feasibility(inst: &Instance) -> Result<(), String> {
    let n = inst.gain.len();
    for salt in [10u64, 11] {
        let set = inst.random_subset(salt);
        let mask = rayfade_sinr::mask_from_set(n, &set);
        for &i in &set {
            let slack = oracle::nonfading_slack(&inst.gain, &inst.params, &set, i);
            let scale = inst.gain.signal(i).max(1e-300);
            if (slack / scale).abs() < KNIFE_EDGE {
                continue;
            }
            let got = rayfade_sinr::succeeds(&inst.gain, &inst.params, &mask, i);
            ensure!(
                got == (slack >= 0.0),
                "succeeds({i}) in {set:?} = {got}, but definition slack is {slack:e}"
            );
        }
        if oracle::feasibility_margin(&inst.gain, &inst.params, &set) >= KNIFE_EDGE {
            let got = rayfade_sinr::is_feasible(&inst.gain, &inst.params, &set);
            let want = oracle::set_is_feasible(&inst.gain, &inst.params, &set);
            ensure!(
                got == want,
                "is_feasible({set:?}) = {got} but the SINR definition says {want}"
            );
        }
    }
    // Exact branch-and-bound capacity against the oracle's exhaustive
    // enumeration, bracketed by tightened/loosened feasibility so the
    // comparison never hinges on boundary rounding.
    let sub = truncated(inst);
    let exact = ExactCapacity::default()
        .select(&CapacityInstance::unweighted(&sub, &inst.params))
        .len();
    let tight =
        oracle::exhaustive_nonfading_optimum(&sub, &inst.params, EXHAUSTIVE_LIMIT, KNIFE_EDGE);
    let loose =
        oracle::exhaustive_nonfading_optimum(&sub, &inst.params, EXHAUSTIVE_LIMIT, -KNIFE_EDGE);
    ensure!(
        (tight..=loose).contains(&exact),
        "ExactCapacity found {exact} links; oracle brackets [{tight}, {loose}]"
    );
    // Greedy capacity promises feasible output.
    let greedy =
        GreedyCapacity::new().select(&CapacityInstance::unweighted(&inst.gain, &inst.params));
    let ok = greedy.iter().all(|&i| {
        let scale = inst.gain.signal(i).max(1e-300);
        oracle::nonfading_slack(&inst.gain, &inst.params, &greedy, i) / scale >= -KNIFE_EDGE
    });
    ensure!(
        ok,
        "GreedyCapacity output {greedy:?} violates the SINR definition"
    );
    Ok(())
}

fn transfer_logstar(inst: &Instance) -> Result<(), String> {
    let feas =
        GreedyCapacity::new().select(&CapacityInstance::unweighted(&inst.gain, &inst.params));
    if oracle::set_is_feasible(&inst.gain, &inst.params, &feas)
        && oracle::feasibility_margin(&inst.gain, &inst.params, &feas) >= KNIFE_EDGE
    {
        let rep = transfer_set(&inst.gain, &inst.params, &feas);
        ensure!(
            rep.nonfading_successes == feas.len(),
            "transfer of feasible set {feas:?}: {} non-fading successes, expected {}",
            rep.nonfading_successes,
            feas.len()
        );
        let want = oracle::expected_successes_of_set(&inst.gain, &inst.params, &feas);
        ensure!(
            close(rep.rayleigh_expected_successes, want, 1e-9),
            "transfer E[successes] fast {:e} vs oracle {want:e}",
            rep.rayleigh_expected_successes
        );
        // Lemma 2, per link: a feasible link keeps Q ≥ 1/e under Rayleigh.
        let floor = 1.0 / std::f64::consts::E;
        for (k, &q) in rep.per_link_probability.iter().enumerate() {
            ensure!(
                at_least(q, floor, 1e-9),
                "Lemma 2 violated: link {} of feasible {feas:?} has Q = {q:e} < 1/e",
                rep.set[k]
            );
        }
        ensure!(
            rep.meets_guarantee(),
            "TransferReport::meets_guarantee() is false on a feasible set"
        );
        ensure!(!rep.ratio().is_nan(), "transfer ratio is NaN");
    }
    // compare_optima: well-defined ratio, oracle-checked Rayleigh value,
    // and the Lemma 2 lower bound on the Theorem 2 gap.
    let sub = truncated(inst);
    let cmp = compare_optima(&sub, &inst.params, EXHAUSTIVE_LIMIT);
    ensure!(!cmp.ratio().is_nan(), "compare_optima ratio is NaN");
    let (_, oracle_opt) = oracle::exhaustive_optimum(&sub, &inst.params, EXHAUSTIVE_LIMIT);
    ensure!(
        close(cmp.rayleigh_value, oracle_opt, 1e-9),
        "compare_optima Rayleigh value {:e} vs oracle {oracle_opt:e}",
        cmp.rayleigh_value
    );
    if cmp.nonfading_value > 0
        && oracle::feasibility_margin(&sub, &inst.params, &cmp.nonfading_set) >= KNIFE_EDGE
    {
        ensure!(
            at_least(cmp.ratio(), 1.0 / std::f64::consts::E, 1e-9),
            "Theorem 2 gap {} fell below the Lemma 2 floor 1/e",
            cmp.ratio()
        );
    }
    // log* machinery invariants: monotone, and the simulation round count
    // matches the sequence length definition.
    let n = inst.gain.len() as f64;
    for (lo, hi) in [(n, n + 1.0), (n, 2.0 * n + 1.0), (16.0, 65536.0)] {
        ensure!(
            log_star(lo) <= log_star(hi),
            "log* not monotone: log*({lo}) > log*({hi})"
        );
    }
    let rounds = simulation_rounds(inst.gain.len());
    let rounds_next = simulation_rounds(inst.gain.len() + 1);
    ensure!(
        rounds <= rounds_next,
        "simulation_rounds not monotone: {rounds} > {rounds_next}"
    );
    Ok(())
}

fn spectral_radius(inst: &Instance) -> Result<(), String> {
    let alive: Vec<usize> = (0..inst.gain.len())
        .filter(|&i| inst.gain.signal(i) > 0.0)
        .collect();
    let mut rng = inst.rng(12);
    let set: Vec<usize> = alive
        .into_iter()
        .filter(|_| rng.gen_range(0u32..4) != 0)
        .collect();
    let rep = spectral_report(&inst.gain, &set);
    ensure!(
        rep.rho.is_finite() && rep.rho >= 0.0,
        "spectral radius of {set:?} is not a finite non-negative number: {:e}",
        rep.rho
    );
    // max_threshold is defined as 1/ρ of the *reported* ρ — an internal
    // consistency contract that holds converged or not.
    if rep.rho > 0.0 {
        ensure!(
            close(rep.max_threshold, 1.0 / rep.rho, 1e-12),
            "max threshold {:e} inconsistent with reported 1/rho = {:e}",
            rep.max_threshold,
            1.0 / rep.rho
        );
    } else {
        ensure!(
            rep.max_threshold == f64::INFINITY,
            "rho = 0 but max threshold is {:e}, not infinity",
            rep.max_threshold
        );
    }
    let f = oracle::normalized_interference_matrix(&inst.gain, &set);
    let want = oracle::spectral_radius_dense(&f, set.len());
    ensure!(want.is_finite(), "dense oracle produced {want:e}");
    // The certified Collatz–Wielandt bracket must contain the true ρ
    // regardless of convergence (tolerance covers the oracle's own
    // squaring roundoff, relative to the shifted eigenvalue 1 + ρ the
    // power method works on).
    let slack = ABS_TOL + 1e-10 * (1.0 + want);
    ensure!(
        rep.rho_lower - slack <= want && want <= rep.rho_upper + slack,
        "dense oracle rho {want:e} outside the certified bracket [{:e}, {:e}] ({} iters)",
        rep.rho_lower,
        rep.rho_upper,
        rep.iterations
    );
    ensure!(
        rep.rho_lower <= rep.rho && rep.rho <= rep.rho_upper,
        "reported rho {:e} outside its own bracket [{:e}, {:e}]",
        rep.rho,
        rep.rho_lower,
        rep.rho_upper
    );
    // When the bracket closed (normal convergence), the point estimate
    // must agree with the oracle to 1e-8 of the shifted eigenvalue. At
    // the iteration cap (spectral gap of I + F pathologically small —
    // e.g. nilpotent F, where convergence is only algebraic) the wide
    // bracket is the honest answer and the point comparison is skipped.
    if rep.rho_upper - rep.rho_lower <= 1e-9 * (1.0 + rep.rho_lower) {
        ensure!(
            (rep.rho - want).abs() <= ABS_TOL + 1e-8 * (1.0 + want),
            "spectral radius of {set:?}: power iteration {:e} ({} iters) vs dense oracle {want:e}",
            rep.rho,
            rep.iterations
        );
    }
    Ok(())
}

fn sparse_truncation(inst: &Instance) -> Result<(), String> {
    let n = inst.gain.len();
    let probs = inst.random_probs(20);
    let oracle_q: Vec<f64> = (0..n)
        .map(|i| oracle::success_probability(&inst.gain, &inst.params, &probs, i))
        .collect();
    let oracle_total = oracle::expected_successes(&inst.gain, &inst.params, &probs);
    let mut dense = SuccessEvaluator::new(&inst.gain, &inst.params);
    dense.set_probs(&probs);
    for delta in [0.0, 1e-6, 0.5] {
        let sparse = SparseInterferenceRatios::from_gain(&inst.gain, &inst.params, delta);
        ensure!(
            sparse.len() == n,
            "delta {delta}: sparse cache has {} links, instance has {n}",
            sparse.len()
        );
        let mut acc = SparseSuccessAccumulator::new(n);
        acc.set_probs(&sparse, &probs);
        for (i, &want) in oracle_q.iter().enumerate() {
            let (lo, hi) = acc.success_interval(&sparse, i);
            ensure!(
                lo.is_finite() && hi.is_finite() && lo <= hi,
                "delta {delta}: interval [{lo:e}, {hi:e}] of Q[{i}] is malformed"
            );
            // Certified containment of both references, up to the
            // catalogue's evaluation-roundoff tolerance.
            let slack = ABS_TOL + 1e-9 * want.abs();
            ensure!(
                lo - slack <= want && want <= hi + slack,
                "delta {delta}: oracle Q[{i}] = {want:e} outside certified \
                 interval [{lo:e}, {hi:e}] (probs {probs:?})"
            );
            let d = dense.success_probability(i);
            let slack_d = ABS_TOL + 1e-9 * d.abs();
            ensure!(
                lo - slack_d <= d && d <= hi + slack_d,
                "delta {delta}: dense Q[{i}] = {d:e} outside certified \
                 interval [{lo:e}, {hi:e}]"
            );
            if delta == 0.0 {
                ensure!(
                    close(hi, want, 1e-9),
                    "delta 0 must be exact: sparse Q[{i}] = {hi:e} vs oracle {want:e}"
                );
                ensure!(
                    lo == hi,
                    "delta 0: interval [{lo:e}, {hi:e}] of Q[{i}] did not collapse"
                );
            }
        }
        let (lo, hi) = acc.expected_successes_interval(&sparse);
        let slack = ABS_TOL + 1e-9 * oracle_total.abs();
        ensure!(
            lo - slack <= oracle_total && oracle_total <= hi + slack,
            "delta {delta}: oracle E[successes] = {oracle_total:e} outside \
             certified interval [{lo:e}, {hi:e}]"
        );
        ensure!(
            close(acc.expected_successes(&sparse), hi, 1e-12),
            "delta {delta}: expected_successes {:e} disagrees with its own \
             interval top {hi:e}",
            acc.expected_successes(&sparse)
        );
    }
    Ok(())
}

fn amortized_ratios(inst: &Instance) -> Result<(), String> {
    let n = inst.gain.len();
    if n == 0 {
        return Ok(());
    }
    let (ratios, mut churned) = AmortizedAccumulator::from_gain(&inst.gain, &inst.params);
    let mut shadow = vec![0.0; n];
    let mut rng = inst.rng(21);
    for step in 0..(3 * n + 8) {
        let j = rng.gen_range(0..n);
        match rng.gen_range(0u32..4) {
            0 => {
                churned.insert(&ratios, j);
                shadow[j] = 1.0;
            }
            1 => {
                churned.remove(&ratios, j);
                shadow[j] = 0.0;
            }
            2 => {
                let q = [0.0, 1.0, 1e-12, 1.0 - 1e-12][rng.gen_range(0usize..4)];
                churned.set_prob(&ratios, j, q);
                shadow[j] = q;
            }
            _ => {
                let q = rng.gen_range(0.0..=1.0);
                churned.set_prob(&ratios, j, q);
                shadow[j] = q;
            }
        }
        // The exactness contract: any churn history landing on `shadow`
        // occupies the same bits as a from-scratch rebuild. `==` compares
        // the full semantic state (probabilities, integer log sums, zero
        // counts), so this is bitwise, not tolerance-based.
        let mut rebuilt = AmortizedAccumulator::new(&ratios);
        rebuilt.set_probs(&ratios, &shadow);
        ensure!(
            churned == rebuilt,
            "step {step}: churned accumulator diverged bitwise from a from-scratch \
             rebuild (probs {shadow:?})"
        );
    }
    // Differential leg against the oracle at the final vector — this is
    // what turns the check red when the shared ratio cache is corrupted
    // (churn and rebuild both read the same cache, so bit-equality alone
    // cannot see an `inject-bug` style fault).
    for i in 0..n {
        let want = oracle::success_probability(&inst.gain, &inst.params, &shadow, i);
        let got = churned.success_probability(&ratios, i);
        ensure!(
            close(got, want, 1e-9),
            "amortized Q[{i}] fast {got:e} vs oracle {want:e} (probs {shadow:?})"
        );
        // Conditional (q_i read as 1): the analytic slot resolver's
        // Bernoulli parameter, for idle links included.
        let mut conditioned = shadow.clone();
        conditioned[i] = 1.0;
        let want = oracle::success_probability(&inst.gain, &inst.params, &conditioned, i);
        let got = churned.conditional_success_probability(&ratios, i);
        ensure!(
            close(got, want, 1e-9),
            "amortized conditional Q[{i}] fast {got:e} vs oracle {want:e} (probs {shadow:?})"
        );
    }
    Ok(())
}

fn permutation(inst: &Instance) -> Result<(), String> {
    let n = inst.gain.len();
    if n == 0 {
        return Ok(());
    }
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut inst.rng(13));
    // submatrix(perm) *is* the relabeled instance: entry (a, b) of the
    // result is S̄(perm[b] → perm[a]).
    let relabeled = inst.gain.submatrix(&perm);
    let probs = inst.random_probs(14);
    let probs_p: Vec<f64> = perm.iter().map(|&j| probs[j]).collect();
    let mut ev = SuccessEvaluator::new(&inst.gain, &inst.params);
    ev.set_probs(&probs);
    let mut ev_p = SuccessEvaluator::new(&relabeled, &inst.params);
    ev_p.set_probs(&probs_p);
    for a in 0..n {
        let original = ev.success_probability(perm[a]);
        let relabeled_q = ev_p.success_probability(a);
        ensure!(
            close(relabeled_q, original, 1e-9),
            "permutation {perm:?}: Q[{}] = {original:e} became {relabeled_q:e} at position {a}",
            perm[a]
        );
    }
    Ok(())
}

fn removal_monotonicity(inst: &Instance) -> Result<(), String> {
    let set = inst.random_subset(15);
    if set.is_empty() {
        return Ok(());
    }
    let removed = set[inst.rng(16).gen_range(0..set.len())];
    let smaller: Vec<usize> = set.iter().copied().filter(|&i| i != removed).collect();
    for &i in &smaller {
        let with = success_probability_of_set(&inst.gain, &inst.params, &set, i);
        let without = success_probability_of_set(&inst.gain, &inst.params, &smaller, i);
        ensure!(
            at_least(without, with, 1e-12),
            "removing link {removed} from {set:?} dropped Q[{i}] from {with:e} to {without:e}"
        );
    }
    Ok(())
}

fn power_scaling(inst: &Instance) -> Result<(), String> {
    let n = inst.gain.len();
    if n == 0 {
        return Ok(());
    }
    // Pick a power-of-two scale that keeps every entry normal, so scaling
    // is exact and invariance is checked at near-bit precision.
    let max = (0..n)
        .flat_map(|i| inst.gain.at_receiver(i).iter().copied())
        .fold(inst.params.noise, f64::max);
    let c = if max < 1e300 { 256.0 } else { 1.0 / 256.0 };
    let min_nonzero = (0..n)
        .flat_map(|i| inst.gain.at_receiver(i).iter().copied())
        .filter(|&v| v > 0.0)
        .fold(f64::INFINITY, f64::min);
    if c < 1.0 && min_nonzero.is_finite() && min_nonzero < 1e-290 {
        return Ok(()); // both ends extreme: scaling would denormalize
    }
    let scaled_entries: Vec<f64> = (0..n)
        .flat_map(|i| inst.gain.at_receiver(i).iter().map(|&v| v * c))
        .collect();
    let scaled = GainMatrix::from_raw(n, scaled_entries);
    let scaled_params = SinrParams::new(inst.params.alpha, inst.params.beta, inst.params.noise * c);
    let probs = inst.random_probs(17);
    for i in 0..n {
        let base = oracle::success_probability(&inst.gain, &inst.params, &probs, i);
        let after = oracle::success_probability(&scaled, &scaled_params, &probs, i);
        ensure!(
            close(after, base, 1e-12),
            "scaling gains and noise by {c}: Q[{i}] moved {base:e} -> {after:e} (oracle)"
        );
        let mut ev = SuccessEvaluator::new(&scaled, &scaled_params);
        ev.set_probs(&probs);
        ensure!(
            close(ev.success_probability(i), base, 1e-9),
            "scaling gains and noise by {c}: fast Q[{i}] moved {base:e} -> {:e}",
            ev.success_probability(i)
        );
    }
    Ok(())
}

fn duplicate_link(inst: &Instance) -> Result<(), String> {
    let n = inst.gain.len();
    if n == 0 {
        return Ok(());
    }
    let d = inst.rng(18).gen_range(0..n);
    // Append a clone of link d: same sender and receiver, so every cross
    // gain copies d's row/column and all four mutual entries are S̄(d→d).
    let m = n + 1;
    let mut g = vec![0.0; m * m];
    for i in 0..n {
        for j in 0..n {
            g[i * m + j] = inst.gain.gain(j, i);
        }
        g[i * m + n] = inst.gain.gain(d, i);
    }
    for j in 0..n {
        g[n * m + j] = inst.gain.gain(j, d);
    }
    g[n * m + n] = inst.gain.signal(d);
    g[n * m + d] = inst.gain.signal(d);
    let d_col = d; // clone interferes with d exactly like d's own signal
    g[d * m + n] = inst.gain.signal(d_col);
    let bigger = GainMatrix::from_raw(m, g);
    let probs = inst.random_probs(19);
    // Silent duplicate: nothing changes for the original links.
    let mut silent = probs.clone();
    silent.push(0.0);
    for i in 0..n {
        let base = oracle::success_probability(&inst.gain, &inst.params, &probs, i);
        let with_clone = oracle::success_probability(&bigger, &inst.params, &silent, i);
        ensure!(
            close(with_clone, base, 1e-12),
            "silent duplicate of {d} changed Q[{i}]: {base:e} -> {with_clone:e}"
        );
    }
    // Transmitting duplicate: the twins are exchangeable.
    let mut twins = probs;
    twins[d] = 0.5;
    twins.push(0.5);
    let q_d = oracle::success_probability(&bigger, &inst.params, &twins, d);
    let q_clone = oracle::success_probability(&bigger, &inst.params, &twins, n);
    ensure!(
        close(q_clone, q_d, 1e-9),
        "duplicate of {d} is not exchangeable with it: {q_d:e} vs {q_clone:e}"
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayfade_geometry::PaperTopology;
    use rayfade_sinr::PowerAssignment;

    fn paper_instance(seed: u64, n: usize) -> Instance {
        let net = PaperTopology {
            links: n,
            side: 400.0,
            min_length: 20.0,
            max_length: 40.0,
        }
        .generate(seed);
        let params = SinrParams::figure1();
        let gain =
            GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha);
        Instance { gain, params, seed }
    }

    #[test]
    fn all_checks_pass_on_paper_instances() {
        for seed in 0..3 {
            let inst = paper_instance(seed, 9);
            for &check in Check::ALL {
                check
                    .run(&inst)
                    .unwrap_or_else(|e| panic!("{} failed on seed {seed}: {e}", check.name()));
            }
        }
    }

    #[test]
    fn all_checks_handle_empty_and_singleton_instances() {
        for n in [0usize, 1] {
            let inst = Instance {
                gain: GainMatrix::from_raw(n, vec![2.0; n * n]),
                params: SinrParams::new(2.0, 2.0, 0.5),
                seed: 7,
            };
            for &check in Check::ALL {
                check
                    .run(&inst)
                    .unwrap_or_else(|e| panic!("{} failed on n={n}: {e}", check.name()));
            }
        }
    }

    #[test]
    fn names_round_trip() {
        for &check in Check::ALL {
            assert_eq!(Check::from_name(check.name()), Some(check));
        }
        assert_eq!(Check::from_name("nope"), None);
    }

    #[test]
    fn checks_are_deterministic_in_the_seed() {
        let a = paper_instance(3, 8);
        let probs1 = a.random_probs(1);
        let probs2 = a.random_probs(1);
        assert_eq!(probs1, probs2);
        assert_ne!(a.random_probs(2), probs1);
    }

    #[test]
    fn a_planted_divergence_is_caught() {
        // Sanity-check the harness itself: corrupt link 0's own gain
        // between the fast evaluation and the oracle by comparing
        // different instances — the evaluator check must notice.
        let inst = paper_instance(5, 6);
        let mut g: Vec<f64> = (0..6)
            .flat_map(|i| inst.gain.at_receiver(i).iter().copied())
            .collect();
        g[0] *= 1.001; // diagonal entry: S̄(0 → 0)
        let corrupted = Instance {
            gain: GainMatrix::from_raw(6, g),
            ..inst.clone()
        };
        let probs = vec![0.5; 6];
        let fast = {
            let mut ev = SuccessEvaluator::new(&corrupted.gain, &corrupted.params);
            ev.set_probs(&probs);
            ev.success_probability(0)
        };
        let want = oracle::success_probability(&inst.gain, &inst.params, &probs, 0);
        assert!(
            !close(fast, want, 1e-9),
            "planted 0.1% corruption went unnoticed: {fast:e} vs {want:e}"
        );
    }
}
