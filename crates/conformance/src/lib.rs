//! Differential-oracle conformance harness for the rayfade workspace.
//!
//! The optimized paths in `rayfade-core`, `rayfade-sinr` and
//! `rayfade-sched` (log-domain accumulation, cached interference ratios,
//! incremental evaluators, branch-and-bound) are all *derived* from the
//! formulas of Dams, Hoefer & Kesselheim (SPAA 2012). This crate checks
//! them against oracles *re-derived independently from the paper alone*:
//!
//! - [`oracle`] — naive transcriptions of Theorem 1, affectance, the
//!   non-fading SINR predicate, `O(2ⁿ)` exhaustive optima and a dense
//!   matrix-squaring spectral radius. No code shared with the fast paths:
//!   direct products instead of log-domain accumulation, re-summation
//!   instead of caching, `O(n²)` per probability instead of `O(1)`.
//! - [`checks`] — the check catalogue: differential comparisons (fast ≡
//!   oracle within documented tolerances) plus metamorphic properties
//!   that need no oracle at all (permutation invariance, link-removal
//!   monotonicity, power-scaling invariance, duplicate-link degeneracy).
//! - [`fuzz`] — a seeded sweep over adversarial regimes: near-threshold
//!   β, zero and astronomically large gains, degenerate geometry.
//! - [`shrink`] — a ddmin delta-debugger that cuts a failing instance to
//!   a 1-minimal core.
//! - [`case`] — replayable TOML repro files with bit-exact floats,
//!   committed under `repros/` and replayed by
//!   `cargo run -p rayfade-bench --release --bin conformance -- --replay`.
//!
//! See TESTING.md at the workspace root for the oracle catalogue, the
//! tolerance table and operating instructions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod checks;
pub mod fuzz;
pub mod oracle;
pub mod shrink;

pub use case::{ReproCase, SCHEMA_VERSION};
pub use checks::{Check, Instance, ABS_TOL, EXHAUSTIVE_LIMIT, KNIFE_EDGE};
pub use fuzz::{run_sweep, run_sweep_with, FuzzConfig, FuzzFailure, FuzzReport, Regime};
pub use shrink::shrink_instance;
