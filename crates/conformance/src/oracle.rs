//! Independent brute-force oracles, transcribed from the paper's formulas.
//!
//! Every function here is a *deliberately naive* reimplementation of a
//! quantity the fast paths in `rayfade-core` / `rayfade-sinr` compute with
//! caches, log-domain accumulation, compensated summation, incremental
//! updates or branch-and-bound. The oracles share **no code** with those
//! paths: they read raw matrix entries through [`GainMatrix`]'s accessors
//! (used purely as a data container) and evaluate each formula by direct
//! products, plain `+=` summation and exhaustive enumeration. Their only
//! job is to be obviously correct; the differential fuzz loop
//! ([`crate::fuzz`]) then asserts fast ≡ oracle within the tolerances
//! documented in TESTING.md.

use rayfade_sinr::{GainMatrix, SinrParams};

/// Theorem 1 success probability, by direct product:
///
/// ```text
/// Q_i(q, β) = q_i · exp(−β·ν/S̄ii) · Π_{j≠i} (1 − β·q_j/(β + S̄ii/S̄ji))
/// ```
///
/// No log-domain, no caching, no factor skipping: `S̄ji = 0` yields
/// `S̄ii/S̄ji = ∞` and a factor of exactly 1, so the formula needs no
/// special cases beyond a dead own-signal (probability 0).
pub fn success_probability(gain: &GainMatrix, params: &SinrParams, probs: &[f64], i: usize) -> f64 {
    assert_eq!(probs.len(), gain.len(), "one probability per link");
    let s_ii = gain.signal(i);
    if s_ii == 0.0 {
        return 0.0;
    }
    let beta = params.beta;
    let mut q = probs[i] * (-beta * params.noise / s_ii).exp();
    for (j, &q_j) in probs.iter().enumerate() {
        if j == i {
            continue;
        }
        q *= 1.0 - beta * q_j / (beta + s_ii / gain.gain(j, i));
    }
    q
}

/// Expected successes `Σ_i Q_i` by direct (uncompensated) summation.
pub fn expected_successes(gain: &GainMatrix, params: &SinrParams, probs: &[f64]) -> f64 {
    let mut total = 0.0;
    for i in 0..gain.len() {
        total += success_probability(gain, params, probs, i);
    }
    total
}

/// Theorem 1 specialized to a deterministic transmit set (`q ∈ {0,1}ⁿ`):
/// 0 when `i ∉ set`, else the direct product with `q_j = 1` for `j ∈ set`.
pub fn success_probability_of_set(
    gain: &GainMatrix,
    params: &SinrParams,
    set: &[usize],
    i: usize,
) -> f64 {
    if !set.contains(&i) {
        return 0.0;
    }
    let mut probs = vec![0.0; gain.len()];
    for &j in set {
        probs[j] = 1.0;
    }
    success_probability(gain, params, &probs, i)
}

/// Expected successes of a fixed transmit set, by direct summation.
pub fn expected_successes_of_set(gain: &GainMatrix, params: &SinrParams, set: &[usize]) -> f64 {
    let mut total = 0.0;
    for &i in set {
        total += success_probability_of_set(gain, params, set, i);
    }
    total
}

/// Unclipped affectance `a(j,i) = β·S̄ji / (S̄ii − β·ν)` (Lemma 6 / the
/// Halldórsson–Wattenhofer normalization): `∞` when the noise margin is
/// non-positive, 0 on the diagonal.
pub fn affectance_unclipped(gain: &GainMatrix, params: &SinrParams, j: usize, i: usize) -> f64 {
    if j == i {
        return 0.0;
    }
    let margin = gain.signal(i) - params.beta * params.noise;
    if margin <= 0.0 {
        return f64::INFINITY;
    }
    params.beta * gain.gain(j, i) / margin
}

/// Clipped affectance `min{1, a(j,i)}` — the paper's form.
pub fn affectance(gain: &GainMatrix, params: &SinrParams, j: usize, i: usize) -> f64 {
    if j == i {
        0.0
    } else {
        affectance_unclipped(gain, params, j, i).min(1.0)
    }
}

/// Non-fading slack of link `i` inside `set`: `S̄ii − β·(I_i + ν)` with
/// `I_i = Σ_{j∈set, j≠i} S̄ji` by plain summation. Positive means `i`
/// meets its SINR constraint with margin; the magnitude tells a
/// differential check how far the instance is from the decision boundary
/// (knife-edge instances are skipped, see TESTING.md).
pub fn nonfading_slack(gain: &GainMatrix, params: &SinrParams, set: &[usize], i: usize) -> f64 {
    let mut interference = 0.0;
    for &j in set {
        if j != i {
            interference += gain.gain(j, i);
        }
    }
    gain.signal(i) - params.beta * (interference + params.noise)
}

/// Direct non-fading feasibility of a transmit set: every member's SINR
/// constraint `S̄ii ≥ β·(I_i + ν)`, straight from the definition.
pub fn set_is_feasible(gain: &GainMatrix, params: &SinrParams, set: &[usize]) -> bool {
    set.iter()
        .all(|&i| nonfading_slack(gain, params, set, i) >= 0.0)
}

/// Smallest absolute distance of any member's constraint from the
/// feasible/infeasible boundary, scaled by that member's own signal
/// (`∞` for the empty set). Checks use this to skip knife-edge sets.
pub fn feasibility_margin(gain: &GainMatrix, params: &SinrParams, set: &[usize]) -> f64 {
    set.iter()
        .map(|&i| {
            let scale = gain.signal(i).max(1e-300);
            (nonfading_slack(gain, params, set, i) / scale).abs()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Exhaustive `O(2ⁿ)` Rayleigh capacity optimum by direct enumeration:
/// the multilinearity of `E[#successes]` in `q` (see
/// `rayfade-core::optimum`) makes the best *subset* the true optimum over
/// `q ∈ [0,1]ⁿ`. Returns the best set and its oracle value.
///
/// # Panics
/// If `gain.len() > limit` (enumeration guard).
pub fn exhaustive_optimum(
    gain: &GainMatrix,
    params: &SinrParams,
    limit: usize,
) -> (Vec<usize>, f64) {
    let n = gain.len();
    assert!(n <= limit, "oracle enumeration limited to {limit} links");
    let mut best_set = Vec::new();
    let mut best_val = 0.0f64;
    for mask in 0u64..(1u64 << n) {
        let set: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
        let v = expected_successes_of_set(gain, params, &set);
        if v > best_val {
            best_val = v;
            best_set = set;
        }
    }
    (best_set, best_val)
}

/// Exhaustive `O(2ⁿ)` non-fading capacity optimum (maximum-cardinality
/// feasible set), with the feasibility test tightened or loosened by
/// `slack`: a set counts as feasible iff every member's scaled slack is
/// at least `slack` (pass a small negative value to loosen).
///
/// Comparing a fast solver's cardinality against the interval
/// `[optimum(+ε), optimum(−ε)]` makes the differential check immune to
/// knife-edge rounding differences in the feasibility predicate.
///
/// # Panics
/// If `gain.len() > limit`.
pub fn exhaustive_nonfading_optimum(
    gain: &GainMatrix,
    params: &SinrParams,
    limit: usize,
    slack: f64,
) -> usize {
    let n = gain.len();
    assert!(n <= limit, "oracle enumeration limited to {limit} links");
    let mut best = 0usize;
    for mask in 0u64..(1u64 << n) {
        let set: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
        if set.len() <= best {
            continue;
        }
        let ok = set.iter().all(|&i| {
            let scale = gain.signal(i).max(1e-300);
            nonfading_slack(gain, params, &set, i) / scale >= slack
        });
        if ok {
            best = set.len();
        }
    }
    best
}

/// Dense spectral radius of an `n×n` non-negative matrix by normalized
/// matrix squaring (Gelfand's formula, `ρ = lim ‖A^{2ᵏ}‖^{1/2ᵏ}`):
/// repeatedly set `s = ‖B‖_∞`, `B ← (B/s)²` and accumulate
/// `Σ log(sᵢ)/2ⁱ`; the tail error decays like `2⁻ᵏ`, so 80 squarings
/// reach far below 1e-12 relative. `O(n³)` per squaring, no eigensolver,
/// no shift — nothing in common with the power iteration under test.
///
/// Extreme dynamic range (the fuzz regimes reach `10^±150` entries) is
/// handled structurally rather than hoping the arithmetic survives:
/// the spectrum of a non-negative matrix is the union over the strongly
/// connected components of its support graph (the Frobenius normal form
/// is block triangular, and inter-component couplings — the entries
/// whose products overflow or underflow — contribute nothing to `ρ`),
/// so each component block is extracted and Osborne-balanced with
/// *exact* power-of-two diagonal similarities before squaring.
///
/// Entries are row-major: `f[i*n + j]` is the `(i,j)` entry.
pub fn spectral_radius_dense(f: &[f64], n: usize) -> f64 {
    assert_eq!(f.len(), n * n, "matrix must be n*n");
    assert!(
        f.iter().all(|v| v.is_finite() && *v >= 0.0),
        "entries must be finite and non-negative"
    );
    let mut rho = 0.0f64;
    for component in strongly_connected_components(f, n) {
        let m = component.len();
        if m == 1 {
            let i = component[0];
            rho = rho.max(f[i * n + i]);
            continue;
        }
        let mut b: Vec<f64> = Vec::with_capacity(m * m);
        for &i in &component {
            for &j in &component {
                b.push(f[i * n + j]);
            }
        }
        balance(&mut b, m);
        rho = rho.max(squared_norm_limit(b, m));
    }
    rho
}

/// Strongly connected components of the support graph (`i → j` when
/// `f[i][j] > 0`), by Kosaraju's two-pass DFS. Singleton components
/// without a self-loop are nilpotent blocks with `ρ = 0` — the caller's
/// `f[i][i]` max handles them uniformly.
fn strongly_connected_components(f: &[f64], n: usize) -> Vec<Vec<usize>> {
    fn dfs(
        adj: &dyn Fn(usize, usize) -> bool,
        n: usize,
        v: usize,
        seen: &mut [bool],
        out: &mut Vec<usize>,
    ) {
        // Iterative DFS: (node, next neighbour to try).
        let mut stack = vec![(v, 0usize)];
        seen[v] = true;
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            if let Some(w) = (*next..n).find(|&w| adj(u, w) && !seen[w]) {
                *next = w + 1;
                seen[w] = true;
                stack.push((w, 0));
            } else {
                out.push(u);
                stack.pop();
            }
        }
    }
    let forward = |i: usize, j: usize| f[i * n + j] > 0.0;
    let backward = |i: usize, j: usize| f[j * n + i] > 0.0;
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for v in 0..n {
        if !seen[v] {
            dfs(&forward, n, v, &mut seen, &mut order);
        }
    }
    let mut components = Vec::new();
    let mut seen = vec![false; n];
    for &v in order.iter().rev() {
        if !seen[v] {
            let mut comp = Vec::new();
            dfs(&backward, n, v, &mut seen, &mut comp);
            comp.sort_unstable();
            components.push(comp);
        }
    }
    components
}

/// Osborne balancing restricted to powers of two: repeatedly replaces
/// `B` with `D⁻¹BD` (same spectrum) choosing `D` diagonal so each
/// index's off-diagonal row and column sums roughly match. Power-of-two
/// factors make every scaling exact, and on an irreducible block the
/// result's dynamic range is tamed enough for plain squaring.
fn balance(b: &mut [f64], m: usize) {
    for _ in 0..100 {
        let mut changed = false;
        for i in 0..m {
            let mut row = 0.0;
            let mut col = 0.0;
            for j in 0..m {
                if j != i {
                    row += b[i * m + j];
                    col += b[j * m + i];
                }
            }
            if row <= 0.0 || col <= 0.0 {
                continue;
            }
            // Exact power of two nearest sqrt(row/col).
            let exp = (0.5 * (row.log2() - col.log2())).round();
            if exp == 0.0 || !exp.is_finite() {
                continue;
            }
            let scale = 2.0f64.powi(exp.clamp(-500.0, 500.0) as i32);
            for j in 0..m {
                if j != i {
                    b[i * m + j] /= scale;
                    b[j * m + i] *= scale;
                }
            }
            changed = true;
        }
        if !changed {
            break;
        }
    }
}

/// The normalized-squaring loop of Gelfand's formula (see
/// [`spectral_radius_dense`]), on an already-balanced block.
fn squared_norm_limit(mut b: Vec<f64>, n: usize) -> f64 {
    let mut log_rho = 0.0f64;
    let mut weight = 1.0f64;
    for _ in 0..80 {
        let mut s = 0.0f64;
        for i in 0..n {
            let mut row = 0.0;
            for j in 0..n {
                row += b[i * n + j];
            }
            if row > s {
                s = row;
            }
        }
        if s == 0.0 {
            // Nilpotent iterate: the true spectral radius is exactly 0.
            return 0.0;
        }
        log_rho += weight * s.ln();
        weight *= 0.5;
        let mut next = vec![0.0; n * n];
        for i in 0..n {
            for k in 0..n {
                let v = b[i * n + k] / s;
                if v == 0.0 {
                    continue;
                }
                for j in 0..n {
                    next[i * n + j] += v * (b[k * n + j] / s);
                }
            }
        }
        b = next;
    }
    log_rho.exp()
}

/// The normalized interference matrix `F_ab = S̄(set[b] → set[a]) /
/// S̄(set[a] → set[a])` (zero diagonal) the spectral feasibility theory is
/// stated over, built by direct indexing. Panics if a member has zero
/// own-gain (normalization undefined), matching the fast path's contract.
pub fn normalized_interference_matrix(gain: &GainMatrix, set: &[usize]) -> Vec<f64> {
    let m = set.len();
    let mut f = vec![0.0; m * m];
    for (a, &i) in set.iter().enumerate() {
        let own = gain.signal(i);
        assert!(own > 0.0, "link {i} has zero own-gain");
        for (b, &j) in set.iter().enumerate() {
            if a != b {
                f[a * m + b] = gain.gain(j, i) / own;
            }
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gain2() -> GainMatrix {
        GainMatrix::from_raw(2, vec![10.0, 2.0, 2.0, 10.0])
    }

    #[test]
    fn lone_link_matches_hand_computation() {
        let gm = GainMatrix::from_raw(1, vec![10.0]);
        let params = SinrParams::new(2.0, 2.0, 1.0);
        let q = success_probability(&gm, &params, &[0.7], 0);
        assert!((q - 0.7 * (-0.2f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn pair_interference_factor_by_hand() {
        let params = SinrParams::new(2.0, 2.0, 0.0);
        let q0 = success_probability(&gain2(), &params, &[1.0, 1.0], 0);
        let expected = 1.0 - 2.0 / (2.0 + 10.0 / 2.0);
        assert!((q0 - expected).abs() < 1e-15);
    }

    #[test]
    fn zero_cross_gain_contributes_factor_one() {
        let gm = GainMatrix::from_raw(2, vec![10.0, 0.0, 0.0, 10.0]);
        let params = SinrParams::new(2.0, 2.0, 0.0);
        assert_eq!(success_probability(&gm, &params, &[1.0, 1.0], 0), 1.0);
    }

    #[test]
    fn dead_link_has_zero_probability_everywhere() {
        let gm = GainMatrix::from_raw(2, vec![0.0, 1.0, 1.0, 1.0]);
        let params = SinrParams::new(2.0, 2.0, 0.5);
        assert_eq!(success_probability(&gm, &params, &[1.0, 1.0], 0), 0.0);
        assert_eq!(success_probability_of_set(&gm, &params, &[0, 1], 0), 0.0);
    }

    #[test]
    fn set_specialization_matches_general_form() {
        let params = SinrParams::new(2.0, 1.5, 0.3);
        let via_set = success_probability_of_set(&gain2(), &params, &[0, 1], 0);
        let via_probs = success_probability(&gain2(), &params, &[1.0, 1.0], 0);
        assert_eq!(via_set, via_probs);
        assert_eq!(success_probability_of_set(&gain2(), &params, &[1], 0), 0.0);
    }

    #[test]
    fn feasibility_from_the_definition() {
        // Slack of link 0 in {0,1}: 10 - 2*(2 + 0) = 6 > 0.
        let params = SinrParams::new(2.0, 2.0, 0.0);
        assert!(set_is_feasible(&gain2(), &params, &[0, 1]));
        assert!((nonfading_slack(&gain2(), &params, &[0, 1], 0) - 6.0).abs() < 1e-15);
        // Raise beta until infeasible: beta = 6 gives 10 - 12 < 0.
        let hard = SinrParams::new(2.0, 6.0, 0.0);
        assert!(!set_is_feasible(&gain2(), &hard, &[0, 1]));
        assert!(set_is_feasible(&gain2(), &hard, &[0]));
    }

    #[test]
    fn exhaustive_optimum_finds_hand_checked_best() {
        // Two nearly-independent links: both transmitting is best.
        let gm = GainMatrix::from_raw(2, vec![10.0, 1e-9, 1e-9, 10.0]);
        let params = SinrParams::new(2.0, 2.0, 0.0);
        let (set, val) = exhaustive_optimum(&gm, &params, 10);
        assert_eq!(set, vec![0, 1]);
        assert!((val - 2.0).abs() < 1e-8);
    }

    #[test]
    fn exhaustive_nonfading_interval_brackets() {
        let params = SinrParams::new(2.0, 2.0, 0.0);
        let tight = exhaustive_nonfading_optimum(&gain2(), &params, 10, 1e-9);
        let loose = exhaustive_nonfading_optimum(&gain2(), &params, 10, -1e-9);
        assert_eq!(tight, 2);
        assert_eq!(loose, 2);
    }

    #[test]
    fn dense_spectral_radius_known_cases() {
        // Periodic 2-cycle [[0,1],[1,0]]: rho = 1.
        let r = spectral_radius_dense(&[0.0, 1.0, 1.0, 0.0], 2);
        assert!((r - 1.0).abs() < 1e-12, "{r}");
        // Nilpotent [[0,1],[0,0]]: rho = 0.
        assert_eq!(spectral_radius_dense(&[0.0, 1.0, 0.0, 0.0], 2), 0.0);
        // Reducible diag(1, 2): rho = 2.
        let r = spectral_radius_dense(&[1.0, 0.0, 0.0, 2.0], 2);
        assert!((r - 2.0).abs() < 1e-12, "{r}");
        // Defective [[1, 1000], [0, 1]]: rho = 1 despite huge norm.
        let r = spectral_radius_dense(&[1.0, 1000.0, 0.0, 1.0], 2);
        assert!((r - 1.0).abs() < 1e-10, "{r}");
        // Asymmetric coupling: rho = sqrt(a*b).
        let r = spectral_radius_dense(&[0.0, 0.4, 0.1, 0.0], 2);
        assert!((r - (0.4f64 * 0.1).sqrt()).abs() < 1e-12, "{r}");
        // Empty and 1x1.
        assert_eq!(spectral_radius_dense(&[], 0), 0.0);
        assert!((spectral_radius_dense(&[3.5], 1) - 3.5).abs() < 1e-12);
        assert_eq!(spectral_radius_dense(&[0.0], 1), 0.0);
    }

    #[test]
    fn dense_spectral_radius_survives_extreme_dynamic_range() {
        // 2-cycle with gains spanning 290 orders of magnitude: the naive
        // squaring of [[0, a],[b, 0]]/s underflows the product (a/s)(b/s)
        // to zero and misreports nilpotency; balancing makes both entries
        // sqrt(a·b) and the exact rho = sqrt(1e150 · 1e-140) = 1e5.
        let r = spectral_radius_dense(&[0.0, 1e150, 1e-140, 0.0], 2);
        assert!((r - 1e5).abs() < 1e-7, "{r:e}");
        // Reducible coupling entry of 1e300 between two self-loops: the
        // coupling is outside every strongly connected component and must
        // not overflow the answer, rho = max(0.5, 0.25).
        let r = spectral_radius_dense(&[0.5, 1e300, 0.0, 0.25], 2);
        assert!((r - 0.5).abs() < 1e-12, "{r:e}");
        // Three-cycle with wildly uneven arcs: rho = (abc)^(1/3).
        let (a, b, c) = (1e120, 1e-90, 1e30);
        let want = 1e20; // (a*b*c)^(1/3) computed in exponents
        let f = [0.0, a, 0.0, 0.0, 0.0, b, c, 0.0, 0.0];
        let r = spectral_radius_dense(&f, 3);
        assert!((r - want).abs() < 1e8, "{r:e}");
        // Two components at opposite extremes, plus an isolated link.
        let f = [
            0.0, 1e-120, 0.0, 0.0, 0.0, //
            1e-121, 0.0, 0.0, 0.0, 0.0, //
            0.0, 0.0, 0.0, 2e140, 0.0, //
            0.0, 0.0, 3e139, 0.0, 0.0, //
            0.0, 0.0, 0.0, 0.0, 0.0,
        ];
        let want = (2e140f64 * 3e139).sqrt();
        let r = spectral_radius_dense(&f, 5);
        assert!((r - want).abs() < want * 1e-10, "{r:e} vs {want:e}");
    }

    #[test]
    fn scc_decomposition_matches_hand_analysis() {
        // 0 <-> 1 cycle, 2 -> 0 coupling, 3 isolated.
        let f = [
            0.0, 1.0, 0.0, 0.0, //
            1.0, 0.0, 0.0, 0.0, //
            1.0, 0.0, 0.0, 0.0, //
            0.0, 0.0, 0.0, 0.0,
        ];
        let mut sccs = strongly_connected_components(&f, 4);
        sccs.sort();
        assert_eq!(sccs, vec![vec![0, 1], vec![2], vec![3]]);
    }

    #[test]
    fn normalized_matrix_by_hand() {
        let f = normalized_interference_matrix(&gain2(), &[0, 1]);
        assert_eq!(f, vec![0.0, 0.2, 0.2, 0.0]);
    }
}
