//! Delta-debugging shrinker for failing instances.
//!
//! Given a check that fails on an instance, [`shrink_instance`] removes
//! links while the failure persists, using the classic ddmin strategy
//! (try dropping large complements first, halve the granularity when
//! stuck) followed by a 1-minimality pass that retries every single-link
//! removal. The result is a *1-minimal* failing instance: removing any
//! one further link makes the check pass. Shrinking only deletes links —
//! it never perturbs gains or parameters — so the shrunk case stays
//! inside the regime that produced it and replays with the original
//! per-check randomness (the seed is preserved; `GainMatrix::submatrix`
//! keeps relative order, so surviving links keep their roles).

use crate::checks::{Check, Instance};

/// Result of re-running the check on a candidate subset.
fn failure(check: Check, inst: &Instance, keep: &[usize]) -> Option<String> {
    let candidate = Instance {
        gain: inst.gain.submatrix(keep),
        params: inst.params,
        seed: inst.seed,
    };
    check.run(&candidate).err()
}

/// Shrinks `inst` to a 1-minimal failing sub-instance of `check`.
///
/// `original_message` is the divergence report from the full instance;
/// the returned message is the report from the *shrunk* instance (they
/// can differ — shrinking keeps "some failure", not "that failure" —
/// which is the standard ddmin trade-off and fine for a repro).
/// If the check unexpectedly passes on the full instance (flaky inputs
/// cannot happen here — checks are seed-deterministic — but defensive),
/// the instance is returned unshrunk with the original message.
pub fn shrink_instance(
    check: Check,
    inst: &Instance,
    original_message: String,
) -> (Instance, String) {
    let mut keep: Vec<usize> = (0..inst.gain.len()).collect();
    let mut message = match failure(check, inst, &keep) {
        Some(m) => m,
        None => return (inst.clone(), original_message),
    };

    // ddmin over the kept-link list.
    let mut chunks = 2usize;
    while keep.len() >= 2 {
        chunks = chunks.min(keep.len());
        let chunk_len = keep.len().div_ceil(chunks);
        let mut reduced = false;
        // Try each complement (drop one chunk) — the high-leverage moves.
        let mut start = 0;
        while start < keep.len() {
            let end = (start + chunk_len).min(keep.len());
            let candidate: Vec<usize> = keep[..start].iter().chain(&keep[end..]).copied().collect();
            if !candidate.is_empty() || check_accepts_empty(check, inst) {
                if let Some(m) = failure(check, inst, &candidate) {
                    keep = candidate;
                    message = m;
                    chunks = (chunks - 1).max(2);
                    reduced = true;
                    break;
                }
            }
            start = end;
        }
        if !reduced {
            if chunks >= keep.len() {
                break;
            }
            chunks = (2 * chunks).min(keep.len());
        }
    }

    // 1-minimality: retry every single-link removal until none succeeds.
    loop {
        let mut removed = false;
        for drop in 0..keep.len() {
            let candidate: Vec<usize> = keep
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != drop)
                .map(|(_, &i)| i)
                .collect();
            if candidate.is_empty() && !check_accepts_empty(check, inst) {
                continue;
            }
            if let Some(m) = failure(check, inst, &candidate) {
                keep = candidate;
                message = m;
                removed = true;
                break;
            }
        }
        if !removed {
            break;
        }
    }

    let shrunk = Instance {
        gain: inst.gain.submatrix(&keep),
        params: inst.params,
        seed: inst.seed,
    };
    (shrunk, message)
}

/// Whether shrinking may try the empty instance at all (always true —
/// every check accepts n = 0; kept as a function so a future
/// size-constrained check can opt out in one place).
fn check_accepts_empty(_check: Check, _inst: &Instance) -> bool {
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayfade_sinr::{GainMatrix, SinrParams};

    /// A stand-in failing predicate built from a real check would need a
    /// real divergence; instead exercise the machinery with the
    /// RemovalMonotonicity check on passing instances (no shrink happens)
    /// and with a synthetic harness below.
    #[test]
    fn passing_instance_is_returned_unchanged() {
        let inst = Instance {
            gain: GainMatrix::from_raw(3, vec![1.0; 9]),
            params: SinrParams::new(2.5, 1.5, 0.1),
            seed: 11,
        };
        let (shrunk, msg) =
            shrink_instance(Check::RemovalMonotonicity, &inst, "original".to_string());
        assert_eq!(shrunk.gain.len(), 3);
        assert_eq!(msg, "original");
    }

    /// ddmin itself, tested against a synthetic oracle: "fails iff links
    /// {2, 5} both present". The production path shares `failure()` with
    /// this logic via `shrink_instance`; here we mirror its loop shape on
    /// the synthetic predicate to pin the 1-minimality contract.
    #[test]
    fn ddmin_logic_finds_a_minimal_core() {
        let fails = |keep: &[usize]| keep.contains(&2) && keep.contains(&5);
        let mut keep: Vec<usize> = (0..12).collect();
        assert!(fails(&keep));
        loop {
            let mut removed = false;
            for drop in 0..keep.len() {
                let candidate: Vec<usize> = keep
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| k != drop)
                    .map(|(_, &i)| i)
                    .collect();
                if fails(&candidate) {
                    keep = candidate;
                    removed = true;
                    break;
                }
            }
            if !removed {
                break;
            }
        }
        assert_eq!(keep, vec![2, 5]);
    }
}
