//! End-to-end approximation pipelines for the Rayleigh model.
//!
//! The paper's recipe (Sec. 4–5) in executable form:
//!
//! 1. run any non-fading capacity algorithm (its output is feasible);
//! 2. transmit the same set under Rayleigh fading (Lemma 2: lose ≤ `1/e`);
//! 3. compare against the Rayleigh optimum via the `O(log* n)` simulation
//!    bound (Theorem 2).
//!
//! The pipeline evaluates everything analytically where a closed form
//! exists (Theorem 1) and reports the certified approximation data.

use crate::simulation::SimulationPlan;
use crate::success::expected_successes_of_set;
use crate::transfer::{transfer_set, TransferReport};
use rayfade_sched::{CapacityAlgorithm, CapacityInstance};
use rayfade_sinr::{GainMatrix, SinrParams};
use serde::{Deserialize, Serialize};

/// Certified output of the Rayleigh capacity pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RayleighCapacityResult {
    /// The transmitting set chosen by the non-fading algorithm.
    pub set: Vec<usize>,
    /// Name of the non-fading algorithm used.
    pub algorithm: String,
    /// Transfer evaluation (non-fading vs Rayleigh, Lemma 2).
    pub transfer: TransferReport,
    /// Number of simulation rounds the Theorem 2 bound needs at this
    /// instance size — the `O(log* n)` factor's concrete value.
    pub logstar_rounds: usize,
    /// Attempts per round (19 in the paper).
    pub attempts_per_round: usize,
}

impl RayleighCapacityResult {
    /// Expected number of successful transmissions under Rayleigh fading
    /// when transmitting the selected set — the pipeline's objective
    /// value (exact, via Theorem 1).
    pub fn expected_successes(&self) -> f64 {
        self.transfer.rayleigh_expected_successes
    }

    /// The certified approximation factor against the *Rayleigh optimum*:
    /// `e · (attempts)` — the Lemma 2 constant times the Theorem 2
    /// simulation length — divided by any additional slack of the
    /// non-fading algorithm itself (not known here, so this is the
    /// reduction overhead alone).
    pub fn reduction_overhead(&self) -> f64 {
        std::f64::consts::E * (self.logstar_rounds * self.attempts_per_round).max(1) as f64
    }
}

/// Runs a non-fading capacity algorithm and transfers its output to the
/// Rayleigh model, returning the full certificate.
pub fn rayleigh_capacity<A: CapacityAlgorithm>(
    gain: &GainMatrix,
    params: &SinrParams,
    alg: &A,
) -> RayleighCapacityResult {
    let inst = CapacityInstance::unweighted(gain, params);
    let set = alg.select(&inst);
    let transfer = transfer_set(gain, params, &set);
    let plan = SimulationPlan::build(&vec![1.0; gain.len()]);
    RayleighCapacityResult {
        set,
        algorithm: alg.name().to_string(),
        transfer,
        logstar_rounds: plan.rounds(),
        attempts_per_round: crate::simulation::PAPER_ATTEMPTS_PER_ROUND,
    }
}

/// Compares a list of candidate transmitting sets by their *exact*
/// expected Rayleigh successes and returns the best `(index, value)`.
///
/// Useful for picking among the outputs of several non-fading algorithms —
/// the comparison itself costs only `O(n²)` per candidate thanks to
/// Theorem 1.
pub fn pick_best_set(
    gain: &GainMatrix,
    params: &SinrParams,
    candidates: &[Vec<usize>],
) -> Option<(usize, f64)> {
    candidates
        .iter()
        .enumerate()
        .map(|(k, set)| (k, expected_successes_of_set(gain, params, set)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayfade_geometry::PaperTopology;
    use rayfade_sched::{GreedyCapacity, LocalSearchCapacity};
    use rayfade_sinr::PowerAssignment;

    fn paper_gain(seed: u64, n: usize) -> (GainMatrix, SinrParams) {
        let net = PaperTopology {
            links: n,
            side: 600.0,
            min_length: 20.0,
            max_length: 40.0,
        }
        .generate(seed);
        let params = SinrParams::figure1();
        let gm = GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha);
        (gm, params)
    }

    #[test]
    fn pipeline_produces_certified_result() {
        let (gm, params) = paper_gain(4, 50);
        let res = rayleigh_capacity(&gm, &params, &GreedyCapacity::new());
        assert_eq!(res.algorithm, "greedy-affectance");
        assert!(!res.set.is_empty());
        assert!(res.transfer.meets_guarantee());
        assert!(res.expected_successes() > res.set.len() as f64 / std::f64::consts::E);
        assert!(res.logstar_rounds >= 6 && res.logstar_rounds <= 9);
        assert!(res.reduction_overhead() >= std::f64::consts::E);
    }

    #[test]
    fn pick_best_set_orders_candidates() {
        let (gm, params) = paper_gain(5, 30);
        let greedy = GreedyCapacity::new().select(&CapacityInstance::unweighted(&gm, &params));
        let ls = LocalSearchCapacity {
            restarts: 3,
            seed: 1,
            max_sweeps: 20,
        }
        .select(&CapacityInstance::unweighted(&gm, &params));
        let single = vec![greedy[0]];
        let candidates = vec![single, greedy.clone(), ls.clone()];
        let (best_idx, best_val) = pick_best_set(&gm, &params, &candidates).expect("non-empty");
        // The singleton can never win against the full greedy set.
        assert!(best_idx != 0);
        assert!(best_val >= greedy.len() as f64 / std::f64::consts::E);
        assert!(pick_best_set(&gm, &params, &[]).is_none());
    }

    #[test]
    fn empty_instance_pipeline() {
        let gm = GainMatrix::from_raw(0, vec![]);
        let params = SinrParams::new(2.0, 1.0, 0.0);
        let res = rayleigh_capacity(&gm, &params, &GreedyCapacity::new());
        assert!(res.set.is_empty());
        assert_eq!(res.expected_successes(), 0.0);
        assert_eq!(res.logstar_rounds, 0);
    }
}
