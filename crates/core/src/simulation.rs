//! The `O(log* n)` simulation of the Rayleigh optimum
//! (Theorem 2 / Algorithm 1).
//!
//! Theorem 2 is the half of the reduction that bounds how much better the
//! Rayleigh optimum can be: **at most `O(log* n)`**. Its proof simulates a
//! single Rayleigh slot with transmission probabilities `q` by a short
//! series of *non-fading* slots: for every `k ≥ 0` with `b_k < n`
//! (`b_0 = 1/4`, `b_{k+1} = exp(b_k/2)`), transmit 19 times independently
//! with probabilities `q_i / (4·b_k)`. Lemma 3 then shows every link's
//! probability of reaching threshold `β ≤ S̄ii/(2ν)` in *some* simulation
//! attempt is at least its Rayleigh success probability `Q_i`.
//!
//! This module materializes the simulation plan, executes it in the
//! non-fading model, and estimates the coverage probabilities so the
//! analytic claim can be validated empirically (ablation A3).

use crate::logstar::simulation_sequence;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayfade_sinr::{sinr, GainMatrix, SinrParams};
use serde::{Deserialize, Serialize};

/// The paper's per-round repetition count: 19.
pub const PAPER_ATTEMPTS_PER_ROUND: usize = 19;

/// One round of Algorithm 1: `repeats` independent attempts with the
/// given per-link transmission probabilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationStep {
    /// Round index `k`.
    pub round: usize,
    /// The damping value `b_k`.
    pub b_k: f64,
    /// Per-link transmission probabilities `q_i / (4·b_k)`, clamped to 1.
    pub probs: Vec<f64>,
    /// Independent attempts in this round (19 in the paper).
    pub repeats: usize,
}

/// The full simulation plan for one Rayleigh slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationPlan {
    /// The rounds, in execution order.
    pub steps: Vec<SimulationStep>,
}

impl SimulationPlan {
    /// Builds Algorithm 1's plan for Rayleigh transmission probabilities
    /// `q` (one entry per link).
    ///
    /// # Panics
    /// If any probability lies outside `[0, 1]`.
    pub fn build(q: &[f64]) -> Self {
        Self::build_with_repeats(q, PAPER_ATTEMPTS_PER_ROUND)
    }

    /// Plan with a custom per-round repetition count (for ablations).
    pub fn build_with_repeats(q: &[f64], repeats: usize) -> Self {
        assert!(
            q.iter().all(|p| (0.0..=1.0).contains(p)),
            "probabilities must lie in [0, 1]"
        );
        assert!(repeats >= 1, "need at least one attempt per round");
        let n = q.len();
        let steps = simulation_sequence(n as f64)
            .into_iter()
            .enumerate()
            .map(|(round, b_k)| SimulationStep {
                round,
                b_k,
                probs: q.iter().map(|&p| (p / (4.0 * b_k)).min(1.0)).collect(),
                repeats,
            })
            .collect();
        SimulationPlan { steps }
    }

    /// Total number of transmission attempts (`Σ repeats`), the paper's
    /// `O(log* n)` quantity.
    pub fn total_attempts(&self) -> usize {
        self.steps.iter().map(|s| s.repeats).sum()
    }

    /// Number of rounds (`|{k : b_k < n}|`).
    pub fn rounds(&self) -> usize {
        self.steps.len()
    }
}

/// Result of executing a plan once in the non-fading model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationRun {
    /// Best non-fading SINR each link achieved over all attempts in which
    /// it transmitted (`max_t γ_i^{nf,t}`); `-∞` if it never transmitted.
    pub best_sinr: Vec<f64>,
    /// Attempts actually executed.
    pub attempts: usize,
}

impl SimulationRun {
    /// Whether link `i` reached threshold `beta` in some attempt.
    pub fn reached(&self, i: usize, beta: f64) -> bool {
        self.best_sinr[i] >= beta
    }

    /// Number of links that reached `beta`.
    pub fn count_reached(&self, beta: f64) -> usize {
        self.best_sinr.iter().filter(|&&s| s >= beta).count()
    }
}

/// Executes the plan once in the non-fading model: every attempt draws an
/// independent transmit set from the step's probabilities and records the
/// achieved SINRs of the transmitting links.
pub fn execute_plan(
    gain: &GainMatrix,
    params: &SinrParams,
    plan: &SimulationPlan,
    seed: u64,
) -> SimulationRun {
    let n = gain.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = vec![f64::NEG_INFINITY; n];
    let mut active = vec![false; n];
    let mut attempts = 0;
    for step in &plan.steps {
        debug_assert_eq!(step.probs.len(), n);
        for _ in 0..step.repeats {
            for (slot, &p) in active.iter_mut().zip(&step.probs) {
                *slot = p > 0.0 && rng.gen_bool(p);
            }
            for i in 0..n {
                if active[i] {
                    let g = sinr(gain, params, &active, i);
                    if g > best[i] {
                        best[i] = g;
                    }
                }
            }
            attempts += 1;
        }
    }
    SimulationRun {
        best_sinr: best,
        attempts,
    }
}

/// Monte Carlo estimate of the per-link coverage probability
/// `Pr[max_t γ_i^{nf,t} ≥ β]` over `trials` executions of the plan.
///
/// Lemma 3 asserts these are at least the Rayleigh probabilities
/// `Q_i(q, β)` whenever `β ≤ S̄ii/(2ν)`.
pub fn coverage_probability(
    gain: &GainMatrix,
    params: &SinrParams,
    plan: &SimulationPlan,
    trials: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(trials > 0, "need at least one trial");
    let n = gain.len();
    let mut hits = vec![0usize; n];
    for t in 0..trials {
        let run = execute_plan(gain, params, plan, seed.wrapping_add(t as u64));
        for (i, h) in hits.iter_mut().enumerate() {
            if run.reached(i, params.beta) {
                *h += 1;
            }
        }
    }
    hits.iter().map(|&h| h as f64 / trials as f64).collect()
}

/// Expected number of non-fading successes of a *single* simulation step,
/// estimated by Monte Carlo — used to pick "the best one of these steps"
/// as in the proof of Theorem 2.
pub fn step_expected_successes(
    gain: &GainMatrix,
    params: &SinrParams,
    step: &SimulationStep,
    trials: usize,
    seed: u64,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let n = gain.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0usize;
    let mut active = vec![false; n];
    for _ in 0..trials {
        for (slot, &p) in active.iter_mut().zip(&step.probs) {
            *slot = p > 0.0 && rng.gen_bool(p);
        }
        total += rayfade_sinr::count_successes(gain, params, &active);
    }
    total as f64 / trials as f64
}

/// Picks the simulation step with the highest estimated expected
/// non-fading success count; returns `(step index, estimate)`.
///
/// This is the constructive content of Theorem 2: the returned step is a
/// *non-fading* probability assignment whose expected capacity is within
/// a constant of the Rayleigh assignment's — establishing that the
/// Rayleigh optimum exceeds the non-fading optimum by at most the number
/// of steps, `O(log* n)`.
pub fn best_step(
    gain: &GainMatrix,
    params: &SinrParams,
    plan: &SimulationPlan,
    trials: usize,
    seed: u64,
) -> Option<(usize, f64)> {
    plan.steps
        .iter()
        .enumerate()
        .map(|(k, s)| {
            (
                k,
                step_expected_successes(gain, params, s, trials, seed.wrapping_add(k as u64)),
            )
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("estimates are finite"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::success::success_probabilities;
    use rayfade_geometry::PaperTopology;
    use rayfade_sinr::PowerAssignment;

    fn paper_gain(seed: u64, n: usize) -> (GainMatrix, SinrParams) {
        let net = PaperTopology {
            links: n,
            side: 400.0,
            min_length: 20.0,
            max_length: 40.0,
        }
        .generate(seed);
        let params = SinrParams::figure1();
        let gm = GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha);
        (gm, params)
    }

    #[test]
    fn plan_structure_follows_algorithm1() {
        let q = vec![0.8; 100];
        let plan = SimulationPlan::build(&q);
        assert!(
            plan.rounds() >= 6 && plan.rounds() <= 9,
            "{}",
            plan.rounds()
        );
        assert_eq!(plan.total_attempts(), plan.rounds() * 19);
        // First round: b_0 = 1/4 -> probs = q / 1 = q... q/(4*0.25) = q.
        assert!((plan.steps[0].probs[0] - 0.8).abs() < 1e-12);
        // Probabilities shrink with k.
        for w in plan.steps.windows(2) {
            assert!(w[1].probs[0] < w[0].probs[0]);
        }
    }

    #[test]
    fn attempts_grow_like_log_star() {
        let small = SimulationPlan::build(&[1.0; 4]).total_attempts();
        let big = SimulationPlan::build(&[1.0; 4096]).total_attempts();
        assert!(small <= big);
        // Even at n = 4096 the plan stays tiny — the "almost constant".
        assert!(big <= 9 * 19);
    }

    #[test]
    fn execute_plan_is_deterministic_per_seed() {
        let (gm, params) = paper_gain(1, 12);
        let plan = SimulationPlan::build(&[0.6; 12]);
        let a = execute_plan(&gm, &params, &plan, 5);
        let b = execute_plan(&gm, &params, &plan, 5);
        assert_eq!(a, b);
        assert_eq!(a.attempts, plan.total_attempts());
    }

    #[test]
    fn lemma3_coverage_dominates_rayleigh_probability() {
        // Empirical check of Lemma 3 on a paper-style instance: the
        // simulation's coverage probability must be at least Q_i (up to
        // Monte Carlo error). Noise is tiny, so beta <= S/(2 nu) holds.
        let (gm, params) = paper_gain(2, 8);
        let q = vec![0.7; 8];
        let plan = SimulationPlan::build(&q);
        let trials = 1500;
        let coverage = coverage_probability(&gm, &params, &plan, trials, 99);
        let rayleigh = success_probabilities(&gm, &params, &q);
        for i in 0..8 {
            assert!(
                coverage[i] + 0.03 >= rayleigh[i],
                "link {i}: coverage {} vs Q_i {}",
                coverage[i],
                rayleigh[i]
            );
        }
    }

    #[test]
    fn best_step_exists_and_is_positive_on_paper_instances() {
        let (gm, params) = paper_gain(3, 10);
        let plan = SimulationPlan::build(&[0.9; 10]);
        let (k, v) = best_step(&gm, &params, &plan, 400, 7).expect("non-empty plan");
        assert!(k < plan.rounds());
        assert!(v > 0.0);
    }

    #[test]
    fn empty_instance_has_empty_plan() {
        let plan = SimulationPlan::build(&[]);
        assert_eq!(plan.rounds(), 0);
        assert_eq!(plan.total_attempts(), 0);
        let gm = GainMatrix::from_raw(0, vec![]);
        let params = SinrParams::new(2.0, 1.0, 0.0);
        assert!(best_step(&gm, &params, &plan, 10, 0).is_none());
        let run = execute_plan(&gm, &params, &plan, 0);
        assert_eq!(run.attempts, 0);
    }

    #[test]
    fn custom_repeats() {
        let plan = SimulationPlan::build_with_repeats(&[0.5; 16], 3);
        assert_eq!(plan.total_attempts(), plan.rounds() * 3);
    }

    #[test]
    #[should_panic(expected = "probabilities must lie in [0, 1]")]
    fn invalid_probabilities_rejected() {
        let _ = SimulationPlan::build(&[1.5]);
    }
}
