//! The full distribution of the Rayleigh SINR, and exact expected
//! utilities.
//!
//! Theorem 1 is stated for a fixed threshold `β`, but nothing pins `β`:
//! sweeping it yields the complete complementary CDF of link `i`'s SINR
//! against a fixed transmitting set,
//!
//! ```text
//! P[γ_i ≥ x] = exp(−x·ν/S̄ii) · Π_{j∈S, j≠i} 1 / (1 + x·S̄ji/S̄ii)
//! ```
//!
//! With the CCDF in hand, the expected value of *any* monotone utility —
//! Shannon rates included — follows from the Riemann–Stieltjes identity
//! `E[u(γ)] = u(0) + ∫₀^∞ CCDF(x) du(x)`, evaluated numerically on a
//! geometric grid. This upgrades the paper's general-utility setting
//! (Sec. 2) from Monte Carlo estimation to deterministic quadrature.

use rayfade_sinr::{GainMatrix, UtilityFunction};
use serde::{Deserialize, Serialize};

/// CCDF of link `i`'s Rayleigh SINR when exactly `set` transmits:
/// `P[γ_i ≥ x]`. Link `i` itself need not be in `set` (its own entry is
/// ignored); the value is the distribution it *would* see transmitting
/// alongside `set`.
///
/// Noise `ν ≥ 0` is passed explicitly (the threshold from `SinrParams` is
/// irrelevant here).
pub fn sinr_ccdf(gain: &GainMatrix, noise: f64, set: &[usize], i: usize, x: f64) -> f64 {
    assert!(noise >= 0.0, "noise must be non-negative");
    assert!(x >= 0.0, "SINR levels are non-negative");
    let s_ii = gain.signal(i);
    if s_ii == 0.0 {
        return if x == 0.0 { 1.0 } else { 0.0 };
    }
    let mut p = (-x * noise / s_ii).exp();
    for &j in set {
        if j == i {
            continue;
        }
        let s_ji = gain.gain(j, i);
        if s_ji > 0.0 {
            p /= 1.0 + x * s_ji / s_ii;
        }
    }
    p
}

/// Quadrature configuration for [`expected_utility_exact`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuadratureConfig {
    /// Smallest positive SINR level of the geometric grid.
    pub x_min: f64,
    /// Largest SINR level; the integral is truncated where the CCDF or
    /// the utility increment has died out, whichever comes first.
    pub x_max: f64,
    /// Grid points (geometric spacing between `x_min` and `x_max`).
    pub points: usize,
}

impl Default for QuadratureConfig {
    fn default() -> Self {
        QuadratureConfig {
            x_min: 1e-6,
            x_max: 1e9,
            points: 4000,
        }
    }
}

/// Exact (quadrature) expected utility `E[u_i(γ_i)]` of link `i` when
/// `set` transmits, for a non-decreasing utility.
///
/// Uses the Stieltjes form `u(0) + Σ CCDF(mid) · (u(x_{k+1}) − u(x_k))`
/// over a geometric grid, which is exact in the limit for monotone `u`
/// and needs no derivative. Returns `f64::INFINITY` if the utility grows
/// unboundedly while the CCDF has not decayed at `x_max` (e.g. uncapped
/// Shannon with zero noise and no interferers).
pub fn expected_utility_exact<U: UtilityFunction>(
    gain: &GainMatrix,
    noise: f64,
    set: &[usize],
    i: usize,
    u: &U,
    config: &QuadratureConfig,
) -> f64 {
    assert!(config.points >= 2, "need at least two grid points");
    assert!(
        config.x_min > 0.0 && config.x_max > config.x_min,
        "invalid grid range"
    );
    let mut total = u.value(i, 0.0);
    let ratio = (config.x_max / config.x_min).powf(1.0 / (config.points as f64 - 1.0));
    let mut x_lo = 0.0f64;
    let mut u_lo = u.value(i, 0.0);
    let mut x = config.x_min;
    for _ in 0..config.points {
        let u_hi = u.value(i, x);
        let du = u_hi - u_lo;
        debug_assert!(du >= -1e-9, "utility must be non-decreasing");
        if du > 0.0 {
            let mid = 0.5 * (x_lo + x);
            total += sinr_ccdf(gain, noise, set, i, mid) * du;
        }
        x_lo = x;
        u_lo = u_hi;
        x *= ratio;
    }
    // Tail: if u keeps growing past x_max while mass remains, report the
    // divergence honestly.
    let tail_ccdf = sinr_ccdf(gain, noise, set, i, config.x_max);
    let u_end = u.value(i, config.x_max);
    let u_far = u.value(i, config.x_max * 1e6);
    if tail_ccdf > 1e-12 && u_far > u_end + 1e-9 {
        let u_sup = u.value(i, f64::INFINITY);
        if u_sup.is_infinite() {
            return f64::INFINITY;
        }
        // Bounded utility: close the tail with its supremum.
        total += tail_ccdf * (u_sup - u_end);
    }
    total
}

/// Exact expected *total* utility of a transmitting set:
/// `Σ_{i∈set} E[u_i(γ_i)]`.
pub fn expected_total_utility_exact<U: UtilityFunction>(
    gain: &GainMatrix,
    noise: f64,
    set: &[usize],
    u: &U,
    config: &QuadratureConfig,
) -> f64 {
    set.iter()
        .map(|&i| expected_utility_exact(gain, noise, set, i, u, config))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::success::success_probability_of_set;
    use crate::transfer::transfer_utility_mc;
    use rayfade_geometry::PaperTopology;
    use rayfade_sinr::{BinaryUtility, PowerAssignment, ShannonUtility, SinrParams};

    fn paper_case(seed: u64, n: usize) -> (GainMatrix, SinrParams) {
        let net = PaperTopology {
            links: n,
            side: 500.0,
            min_length: 20.0,
            max_length: 40.0,
        }
        .generate(seed);
        let params = SinrParams::figure1();
        let gm = GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha);
        (gm, params)
    }

    #[test]
    fn ccdf_at_beta_matches_theorem1() {
        let (gm, params) = paper_case(1, 10);
        let set: Vec<usize> = (0..10).collect();
        for i in 0..10 {
            let ccdf = sinr_ccdf(&gm, params.noise, &set, i, params.beta);
            let q = success_probability_of_set(&gm, &params, &set, i);
            assert!((ccdf - q).abs() < 1e-12, "link {i}: {ccdf} vs {q}");
        }
    }

    #[test]
    fn ccdf_properties() {
        let (gm, params) = paper_case(2, 8);
        let set: Vec<usize> = (0..8).collect();
        // Monotone decreasing in x, starts at 1 (zero level always met).
        for i in 0..8 {
            assert!((sinr_ccdf(&gm, params.noise, &set, i, 0.0) - 1.0).abs() < 1e-12);
            let mut prev = 1.0;
            for k in 1..=30 {
                let x = 1e-3 * 2f64.powi(k);
                let c = sinr_ccdf(&gm, params.noise, &set, i, x);
                assert!(c <= prev + 1e-12);
                assert!((0.0..=1.0).contains(&c));
                prev = c;
            }
        }
    }

    #[test]
    fn binary_utility_expectation_recovers_q() {
        // E[1{gamma >= beta}] must equal the Theorem 1 probability.
        let (gm, params) = paper_case(3, 8);
        let set: Vec<usize> = (0..8).collect();
        let u = BinaryUtility::new(params.beta);
        for i in 0..8 {
            let exact = expected_utility_exact(
                &gm,
                params.noise,
                &set,
                i,
                &u,
                &QuadratureConfig::default(),
            );
            let q = success_probability_of_set(&gm, &params, &set, i);
            // Step utilities are the worst case for the grid; the CCDF is
            // evaluated at the midpoint of the straddling cell.
            assert!((exact - q).abs() < 5e-3, "link {i}: {exact} vs {q}");
        }
    }

    #[test]
    fn shannon_quadrature_matches_monte_carlo() {
        let (gm, params) = paper_case(4, 10);
        let set: Vec<usize> = (0..10).collect();
        let u = ShannonUtility::capped(20.0);
        let exact =
            expected_total_utility_exact(&gm, params.noise, &set, &u, &QuadratureConfig::default());
        let (_, mc) = transfer_utility_mc(&gm, &params, &set, &u, 30_000, 9);
        assert!(
            (exact - mc).abs() < 0.15 * exact.max(1.0),
            "quadrature {exact} vs MC {mc}"
        );
    }

    #[test]
    fn lone_link_zero_noise_uncapped_shannon_diverges() {
        let gm = GainMatrix::from_raw(1, vec![5.0]);
        let u = ShannonUtility::uncapped();
        let e = expected_utility_exact(&gm, 0.0, &[0], 0, &u, &QuadratureConfig::default());
        assert_eq!(e, f64::INFINITY);
        // Capped version is finite (and equals the cap: SINR is a.s. ∞).
        let capped = ShannonUtility::capped(8.0);
        let e = expected_utility_exact(&gm, 0.0, &[0], 0, &capped, &QuadratureConfig::default());
        assert!((e - 8.0).abs() < 1e-6, "{e}");
    }

    #[test]
    fn lone_link_with_noise_matches_closed_form_mean() {
        // gamma = S/nu with S ~ Exp(mean s): E[log2(1+gamma)] has no
        // elementary closed form, but E[1{gamma>=x}] integrates to
        // E[gamma] = s/nu for u(x) = x (capped far above the mass).
        #[derive(Debug)]
        struct Identity;
        impl UtilityFunction for Identity {
            fn value(&self, _i: usize, s: f64) -> f64 {
                s.min(1e12)
            }
        }
        let s = 4.0;
        let nu = 2.0;
        let gm = GainMatrix::from_raw(1, vec![s]);
        let e = expected_utility_exact(
            &gm,
            nu,
            &[0],
            0,
            &Identity,
            &QuadratureConfig {
                x_min: 1e-9,
                x_max: 1e6,
                points: 20_000,
            },
        );
        assert!((e - s / nu).abs() < 0.01, "E[gamma] = {e}, want {}", s / nu);
    }

    #[test]
    fn zero_signal_link() {
        let gm = GainMatrix::from_raw(1, vec![0.0]);
        assert_eq!(sinr_ccdf(&gm, 1.0, &[0], 0, 0.0), 1.0);
        assert_eq!(sinr_ccdf(&gm, 1.0, &[0], 0, 0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid grid range")]
    fn bad_grid_rejected() {
        let gm = GainMatrix::from_raw(1, vec![1.0]);
        let _ = expected_utility_exact(
            &gm,
            0.0,
            &[0],
            0,
            &ShannonUtility::capped(1.0),
            &QuadratureConfig {
                x_min: 1.0,
                x_max: 0.5,
                points: 10,
            },
        );
    }
}
