//! # rayfade-core
//!
//! The primary contribution of *"Scheduling in Wireless Networks with
//! Rayleigh-Fading Interference"* (Dams, Hoefer, Kesselheim; SPAA 2012):
//! a generic reduction from the Rayleigh-fading SINR model to the
//! deterministic non-fading model losing only `O(log* n)`.
//!
//! Module map (paper artifact → code):
//!
//! | Paper | Module |
//! |---|---|
//! | Rayleigh channel, Sec. 2 | [`channel`] ([`channel::RayleighModel`]) |
//! | Theorem 1 (exact success probability) | [`success`] |
//! | Theorem 1, incremental/cached form | [`evaluator`] |
//! | Theorem 1 at scale (ε-truncated sparse) | [`sparse_evaluator`] |
//! | Lemma 1 / Observation 1 (bounds) | [`bounds`] |
//! | Lemma 2 (1/e black-box transfer) | [`transfer`] |
//! | Sec. 4 ALOHA 4× repetition | [`repetition`] |
//! | `b_k` sequence, `log*` | [`logstar`] |
//! | Theorem 2 / Algorithm 1 (simulation) | [`simulation`] |
//! | End-to-end approximation recipe | [`pipeline`] |
//!
//! Everything is analytic where the paper is analytic (Theorem 1 gives
//! closed-form success probabilities) and Monte Carlo where the paper's
//! own argument is probabilistic.
//!
//! # Example
//!
//! Evaluate the exact Rayleigh success probability of a two-link instance
//! and check it against the Lemma 1 sandwich:
//!
//! ```
//! use rayfade_core::{success_probability, success_lower_bound, success_upper_bound};
//! use rayfade_sinr::{GainMatrix, SinrParams};
//!
//! // Receiver-major raw gains: own signals 10, cross gains 2.
//! let gain = GainMatrix::from_raw(2, vec![10.0, 2.0, 2.0, 10.0]);
//! let params = SinrParams::new(2.0, 1.5, 0.1);
//! let probs = [1.0, 0.8];
//!
//! let q = success_probability(&gain, &params, &probs, 0);
//! let lo = success_lower_bound(&gain, &params, &probs, 0);
//! let hi = success_upper_bound(&gain, &params, &probs, 0);
//! assert!(lo <= q && q <= hi);
//! assert!(q > 0.5); // mild interference: the link usually gets through
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod access;
pub mod adaptive_mc;
pub mod bounds;
pub mod channel;
pub mod distribution;
pub mod evaluator;
pub mod logstar;
pub mod nakagami;
pub mod optimum;
pub mod pipeline;
pub mod repetition;
pub mod replay;
pub mod seed;
pub mod shadowing;
pub mod simulation;
pub mod sparse_evaluator;
pub mod success;
pub mod transfer;

pub use access::{optimize_uniform_access, AccessOptimum};
pub use adaptive_mc::{estimate_expected_utility, AdaptiveConfig, AdaptiveEstimate};
pub use bounds::{
    interference_mass, observation1_lhs, observation1_rhs, success_lower_bound, success_upper_bound,
};
pub use channel::{sample_exponential, RayleighModel};
pub use distribution::{
    expected_total_utility_exact, expected_utility_exact, sinr_ccdf, QuadratureConfig,
};
pub use evaluator::{
    batch_expected_successes, batch_expected_successes_of_sets,
    batch_expected_successes_of_sets_traced, batch_expected_successes_traced,
    batch_success_probabilities, batch_success_probabilities_traced, SuccessEvaluator,
};
pub use logstar::{log_star, simulation_rounds, simulation_sequence};
pub use nakagami::{sample_gamma, sample_nakagami_power, NakagamiModel};
pub use optimum::{
    compare_optima, multilinearity_deviation, rayleigh_optimum_exhaustive, OptimumComparison,
};
pub use pipeline::{pick_best_set, rayleigh_capacity, RayleighCapacityResult};
pub use repetition::{
    boosted_probability, min_sufficient_repeats, rayleigh_aloha_config, repetition_recovers,
    PAPER_REPEATS,
};
pub use replay::{replay_until_delivered, ReplayOutcome};
pub use seed::{mix_seed, mix_seed2};
pub use shadowing::apply_lognormal_shadowing;
pub use simulation::{
    best_step, coverage_probability, execute_plan, step_expected_successes, SimulationPlan,
    SimulationRun, SimulationStep, PAPER_ATTEMPTS_PER_ROUND,
};
pub use sparse_evaluator::{
    AmortizedEvaluator, NetworkEvaluator, SparseSuccessEvaluator, DEFAULT_SPARSE_DELTA,
    SPARSE_CROSSOVER,
};
pub use success::{
    expected_successes, expected_successes_of_set, success_probabilities, success_probability,
    success_probability_of_set,
};
pub use transfer::{transfer_multichannel, transfer_set, transfer_utility_mc, TransferReport};
