//! The Rayleigh-fading channel.
//!
//! Under Rayleigh fading the signal transmitted by `s_j` arrives at `r_i`
//! with strength `S_{j,i}`, an **exponentially distributed** random
//! variable with mean `S̄_{j,i}`, independent across pairs `(j, i)` and
//! across time slots (paper Sec. 2). This module samples realizations and
//! implements [`SuccessModel`] so every model-agnostic protocol (ALOHA,
//! regret learning, Monte Carlo slot execution) runs under fading
//! unchanged.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayfade_sinr::{GainMatrix, SinrParams, SuccessModel};

/// Samples one exponential variate with the given mean using inverse-CDF:
/// `-mean · ln(1 − U)`, `U ∈ [0, 1)`. A zero mean yields exactly zero.
#[inline]
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    debug_assert!(mean >= 0.0, "exponential mean must be non-negative");
    if mean == 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen(); // [0, 1)
    -mean * (1.0 - u).ln()
}

/// The stochastic Rayleigh-fading SINR model.
///
/// Each call to [`SuccessModel::resolve_slot`] draws a fresh, independent
/// fading realization — exactly the paper's assumption of independence
/// across time slots. The model is deterministic given its seed.
#[derive(Debug, Clone)]
pub struct RayleighModel {
    gain: GainMatrix,
    params: SinrParams,
    rng: StdRng,
}

impl RayleighModel {
    /// Creates a Rayleigh model over expected gains with a fixed RNG seed.
    pub fn new(gain: GainMatrix, params: SinrParams, seed: u64) -> Self {
        RayleighModel {
            gain,
            params,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The expected-gain matrix.
    pub fn gain(&self) -> &GainMatrix {
        &self.gain
    }

    /// The model parameters.
    pub fn params(&self) -> &SinrParams {
        &self.params
    }

    /// Draws the realized SINR of every link against the active set.
    ///
    /// Only coefficients that matter are sampled: the own-signal of every
    /// link and the interference coefficients of *active* senders. Inactive
    /// senders contribute nothing (their realization is irrelevant), which
    /// keeps a slot at `O(n · |active|)` draws.
    pub fn sample_sinrs(&mut self, active: &[bool]) -> Vec<f64> {
        let n = self.gain.len();
        debug_assert_eq!(active.len(), n);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let row = self.gain.at_receiver(i);
            let mut interference = 0.0;
            for (j, (&mean, &on)) in row.iter().zip(active).enumerate() {
                if on && j != i {
                    interference += sample_exponential(&mut self.rng, mean);
                }
            }
            let signal = sample_exponential(&mut self.rng, row[i]);
            let denom = interference + self.params.noise;
            out.push(if denom == 0.0 {
                if signal > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                }
            } else {
                signal / denom
            });
        }
        out
    }
}

impl SuccessModel for RayleighModel {
    fn len(&self) -> usize {
        self.gain.len()
    }

    fn resolve_slot(&mut self, active: &[bool]) -> Vec<usize> {
        let sinrs = self.sample_sinrs(active);
        sinrs
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| (active[i] && s >= self.params.beta).then_some(i))
            .collect()
    }

    fn resolve_sinrs(&mut self, active: &[bool]) -> Vec<f64> {
        self.sample_sinrs(active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_sampling_mean_and_positivity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mean = 3.0;
        let k = 200_000;
        let mut sum = 0.0;
        for _ in 0..k {
            let x = sample_exponential(&mut rng, mean);
            assert!(x >= 0.0);
            sum += x;
        }
        let emp = sum / k as f64;
        assert!(
            (emp - mean).abs() < 0.05,
            "empirical mean {emp} vs expected {mean}"
        );
    }

    #[test]
    fn exponential_zero_mean_is_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(sample_exponential(&mut rng, 0.0), 0.0);
    }

    #[test]
    fn exponential_memorylessness_quantile() {
        // P[X > mean] should be e^-1 ~ 0.3679.
        let mut rng = StdRng::seed_from_u64(3);
        let k = 200_000;
        let hits = (0..k)
            .filter(|_| sample_exponential(&mut rng, 2.0) > 2.0)
            .count();
        let frac = hits as f64 / k as f64;
        assert!((frac - (-1.0f64).exp()).abs() < 0.01, "{frac}");
    }

    #[test]
    fn model_is_deterministic_per_seed_and_fresh_per_slot() {
        let gm = GainMatrix::from_raw(2, vec![10.0, 1.0, 1.0, 10.0]);
        let params = SinrParams::new(2.0, 1.0, 0.1);
        let mut a = RayleighModel::new(gm.clone(), params, 42);
        let mut b = RayleighModel::new(gm, params, 42);
        let active = vec![true, true];
        let s1a = a.resolve_slot(&active);
        let s1b = b.resolve_slot(&active);
        assert_eq!(s1a, s1b);
        // Different slots draw different coefficients (overwhelmingly).
        let x = a.sample_sinrs(&active);
        let y = a.sample_sinrs(&active);
        assert_ne!(x, y);
    }

    #[test]
    fn inactive_links_never_succeed() {
        let gm = GainMatrix::from_raw(2, vec![10.0, 0.0, 0.0, 10.0]);
        let params = SinrParams::new(2.0, 0.1, 0.1);
        let mut m = RayleighModel::new(gm, params, 7);
        for _ in 0..50 {
            let succ = m.resolve_slot(&[true, false]);
            assert!(!succ.contains(&1));
        }
    }

    #[test]
    fn lone_link_success_rate_matches_exp_formula() {
        // Pr[S >= beta*nu] = exp(-beta*nu/mean): with mean=10, beta=2,
        // nu=1 -> exp(-0.2) ~ 0.8187.
        let gm = GainMatrix::from_raw(1, vec![10.0]);
        let params = SinrParams::new(2.0, 2.0, 1.0);
        let mut m = RayleighModel::new(gm, params, 11);
        let k = 100_000;
        let mut hits = 0;
        for _ in 0..k {
            if !m.resolve_slot(&[true]).is_empty() {
                hits += 1;
            }
        }
        let frac = hits as f64 / k as f64;
        let expected = (-0.2f64).exp();
        assert!((frac - expected).abs() < 0.01, "{frac} vs {expected}");
    }

    #[test]
    fn zero_noise_lone_transmitter_always_succeeds() {
        let gm = GainMatrix::from_raw(1, vec![5.0]);
        let params = SinrParams::new(2.0, 100.0, 0.0);
        let mut m = RayleighModel::new(gm, params, 5);
        for _ in 0..100 {
            assert_eq!(m.resolve_slot(&[true]), vec![0]);
        }
    }

    #[test]
    fn fading_lets_hopeless_links_succeed_sometimes() {
        // Non-fading: signal 0.5 < beta*nu = 1 -> never succeeds.
        // Rayleigh: succeeds with prob exp(-1/0.5) = exp(-2) ~ 0.135.
        let gm = GainMatrix::from_raw(1, vec![0.5]);
        let params = SinrParams::new(2.0, 1.0, 1.0);
        let mut m = RayleighModel::new(gm, params, 13);
        let k = 50_000;
        let hits = (0..k)
            .filter(|_| !m.resolve_slot(&[true]).is_empty())
            .count();
        let frac = hits as f64 / k as f64;
        assert!((frac - (-2.0f64).exp()).abs() < 0.01, "{frac}");
    }
}
