//! Closed-form success probabilities (Theorem 1).
//!
//! With every sender `j` transmitting independently with probability `q_j`
//! and Rayleigh fading on all coefficients, the probability that link `i`
//! transmits *and* reaches SINR `β` is (paper Theorem 1, after Liu &
//! Haenggi \[18\]):
//!
//! ```text
//! Q_i(q, β) = q_i · exp(−β·ν / S̄_{i,i}) · Π_{j≠i} (1 − β·q_j / (β + S̄_{i,i}/S̄_{j,i}))
//! ```
//!
//! This is an *exact* probability — a luxury the non-fading model does not
//! offer — and the analytic backbone of the whole reduction.

use rayfade_sinr::{kahan_sum, GainMatrix, SinrParams};

/// Exact success probability `Q_i(q₁,…,qₙ, β)` of link `i` (Theorem 1).
///
/// `probs[j]` is sender `j`'s independent transmission probability. A link
/// with zero expected own-signal never succeeds. Entries `S̄_{j,i} = 0`
/// contribute no interference (their factor is 1).
///
/// # Panics
/// If `probs` has the wrong length or contains values outside `[0, 1]`.
pub fn success_probability(gain: &GainMatrix, params: &SinrParams, probs: &[f64], i: usize) -> f64 {
    let n = gain.len();
    assert_eq!(probs.len(), n, "one probability per link");
    debug_assert!(
        probs.iter().all(|q| (0.0..=1.0).contains(q)),
        "probabilities must lie in [0, 1]"
    );
    let s_ii = gain.signal(i);
    if s_ii == 0.0 {
        return 0.0;
    }
    let beta = params.beta;
    // Noise factor exp(-beta*nu/S_ii); equals 1 when nu = 0.
    let mut p = probs[i] * (-beta * params.noise / s_ii).exp();
    let row = gain.at_receiver(i);
    for (j, (&s_ji, &q_j)) in row.iter().zip(probs).enumerate() {
        if j == i || q_j == 0.0 || s_ji == 0.0 {
            continue;
        }
        // 1 - beta*q_j / (beta + S_ii/S_ji), written to avoid the
        // intermediate S_ii/S_ji overflowing for tiny S_ji.
        let factor = 1.0 - beta * q_j / (beta + s_ii / s_ji);
        p *= factor;
    }
    p
}

/// Success probabilities of all links under transmission probabilities
/// `probs` (Theorem 1, vectorized).
pub fn success_probabilities(gain: &GainMatrix, params: &SinrParams, probs: &[f64]) -> Vec<f64> {
    (0..gain.len())
        .map(|i| success_probability(gain, params, probs, i))
        .collect()
}

/// Expected number of successful transmissions under `probs` — the
/// Rayleigh capacity objective `E[Σ 1{γᵢᴿ ≥ β}] = Σ Q_i`, exact.
///
/// Uses compensated (Kahan) summation so links with tiny `Q_i` are not
/// absorbed by large ones on big instances.
pub fn expected_successes(gain: &GainMatrix, params: &SinrParams, probs: &[f64]) -> f64 {
    kahan_sum((0..gain.len()).map(|i| success_probability(gain, params, probs, i)))
}

/// Success probability of link `i` when a *fixed set* transmits
/// deterministically (the `q ∈ {0,1}ⁿ` special case of Theorem 1,
/// conditioned on `i ∈ set`):
/// `exp(−βν/S̄ii) · Π_{j∈set, j≠i} β⁻¹-form factor`.
///
/// Returns 0 when `i` is not in the set.
pub fn success_probability_of_set(
    gain: &GainMatrix,
    params: &SinrParams,
    set: &[usize],
    i: usize,
) -> f64 {
    if !set.contains(&i) {
        return 0.0;
    }
    let s_ii = gain.signal(i);
    if s_ii == 0.0 {
        return 0.0;
    }
    let beta = params.beta;
    let mut p = (-beta * params.noise / s_ii).exp();
    let row = gain.at_receiver(i);
    for &j in set {
        let s_ji = row[j];
        if j == i || s_ji == 0.0 {
            continue;
        }
        // q_j = 1: factor is 1 - beta/(beta + S_ii/S_ji), guarded against
        // S_ii/S_ji overflowing for tiny S_ji exactly as in the general
        // form (beta * 1.0 == beta, so this matches it to the ulp).
        p *= 1.0 - beta / (beta + s_ii / s_ji);
    }
    p
}

/// Expected successes when a fixed set transmits: `Σ_{i∈set} Q_i`
/// (compensated summation, no per-call allocation).
pub fn expected_successes_of_set(gain: &GainMatrix, params: &SinrParams, set: &[usize]) -> f64 {
    kahan_sum(
        set.iter()
            .map(|&i| success_probability_of_set(gain, params, set, i)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::RayleighModel;
    use rayfade_sinr::SuccessModel;

    fn gain2() -> GainMatrix {
        GainMatrix::from_raw(2, vec![10.0, 2.0, 2.0, 10.0])
    }

    #[test]
    fn lone_link_formula() {
        // Q = q * exp(-beta*nu/S) with no interferers.
        let gm = GainMatrix::from_raw(1, vec![10.0]);
        let params = SinrParams::new(2.0, 2.0, 1.0);
        let q = success_probability(&gm, &params, &[0.7], 0);
        let expected = 0.7 * (-0.2f64).exp();
        assert!((q - expected).abs() < 1e-12);
    }

    #[test]
    fn interference_factor() {
        // Two links, q = (1, 1), nu = 0:
        // Q_0 = 1 * (1 - beta/(beta + S00/S10)).
        let gm = gain2();
        let params = SinrParams::new(2.0, 2.0, 0.0);
        let q0 = success_probability(&gm, &params, &[1.0, 1.0], 0);
        let expected = 1.0 - 2.0 / (2.0 + 10.0 / 2.0);
        assert!((q0 - expected).abs() < 1e-12, "{q0} vs {expected}");
        // Symmetric instance: same for link 1.
        let q1 = success_probability(&gm, &params, &[1.0, 1.0], 1);
        assert!((q0 - q1).abs() < 1e-12);
    }

    #[test]
    fn zero_probability_sender_contributes_nothing() {
        let gm = gain2();
        let params = SinrParams::new(2.0, 2.0, 0.0);
        let with_silent = success_probability(&gm, &params, &[1.0, 0.0], 0);
        assert!(
            (with_silent - 1.0).abs() < 1e-12,
            "no noise, no interference"
        );
    }

    #[test]
    fn own_probability_scales_linearly() {
        let gm = gain2();
        let params = SinrParams::new(2.0, 2.0, 0.1);
        let full = success_probability(&gm, &params, &[1.0, 0.5], 0);
        let half = success_probability(&gm, &params, &[0.5, 0.5], 0);
        assert!((half - 0.5 * full).abs() < 1e-12);
    }

    #[test]
    fn matches_monte_carlo() {
        // Validate Theorem 1 against the sampled channel.
        let gm = gain2();
        let params = SinrParams::new(2.0, 1.5, 0.3);
        let probs = [0.8, 0.6];
        let analytic = success_probability(&gm, &params, &probs, 0);
        let mut model = RayleighModel::new(gm.clone(), params, 99);
        use rand::{Rng, SeedableRng};
        let mut rng_tx = rand::rngs::StdRng::seed_from_u64(5);
        let trials = 200_000;
        let mut hits = 0usize;
        for _ in 0..trials {
            let active = [rng_tx.gen_bool(probs[0]), rng_tx.gen_bool(probs[1])];
            if model.resolve_slot(&active).contains(&0) {
                hits += 1;
            }
        }
        let emp = hits as f64 / trials as f64;
        assert!(
            (emp - analytic).abs() < 0.005,
            "Monte Carlo {emp} vs Theorem 1 {analytic}"
        );
    }

    #[test]
    fn expected_successes_sums_q() {
        let gm = gain2();
        let params = SinrParams::new(2.0, 2.0, 0.0);
        let probs = [1.0, 1.0];
        let total = expected_successes(&gm, &params, &probs);
        let per_link: f64 = (0..2)
            .map(|i| success_probability(&gm, &params, &probs, i))
            .sum();
        assert!((total - per_link).abs() < 1e-12);
    }

    #[test]
    fn fixed_set_variants() {
        let gm = gain2();
        let params = SinrParams::new(2.0, 2.0, 0.1);
        // i not in set -> 0.
        assert_eq!(success_probability_of_set(&gm, &params, &[1], 0), 0.0);
        let q0 = success_probability_of_set(&gm, &params, &[0, 1], 0);
        let direct = success_probability(&gm, &params, &[1.0, 1.0], 0);
        assert!((q0 - direct).abs() < 1e-12);
        let total = expected_successes_of_set(&gm, &params, &[0, 1]);
        assert!((total - 2.0 * direct).abs() < 1e-12, "symmetric instance");
    }

    #[test]
    fn hopeless_nonfading_link_has_positive_rayleigh_probability() {
        // The paper's motivating observation (Sec. 2): large noise kills
        // the non-fading model but not the Rayleigh one.
        let gm = GainMatrix::from_raw(1, vec![0.5]);
        let params = SinrParams::new(2.0, 1.0, 1.0); // S < beta*nu
        assert!(!gm.feasible_alone(0, &params));
        let q = success_probability(&gm, &params, &[1.0], 0);
        assert!((q - (-2.0f64).exp()).abs() < 1e-12);
        assert!(q > 0.0);
    }

    #[test]
    fn zero_signal_means_zero_probability() {
        let gm = GainMatrix::from_raw(1, vec![0.0]);
        let params = SinrParams::new(2.0, 1.0, 0.0);
        assert_eq!(success_probability(&gm, &params, &[1.0], 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "one probability per link")]
    fn wrong_prob_length_rejected() {
        let gm = gain2();
        let params = SinrParams::new(2.0, 2.0, 0.0);
        let _ = success_probability(&gm, &params, &[1.0], 0);
    }

    #[test]
    fn compensated_expected_successes_beats_naive_on_adversarial_ordering() {
        // 10^4 summands: one Q near 1 followed by 10^4 - 1 values of
        // 1e-16 — each tiny term individually vanishes against the
        // running naive sum, so the naive result is exactly the first
        // term while the compensated sum recovers all of them.
        let mut values = vec![1.0f64];
        values.extend(std::iter::repeat_n(1e-16, 9_999));
        let naive: f64 = values.iter().sum();
        let compensated = rayfade_sinr::kahan_sum(values.iter().copied());
        let exact = 1.0 + 9_999.0 * 1e-16;
        assert_eq!(naive, 1.0, "naive summation drops every tiny term");
        assert!(
            (compensated - exact).abs() < 1e-28,
            "compensated sum {compensated} vs exact {exact}"
        );
        // And the public entry point agrees with an explicitly
        // compensated per-link sum on a real instance.
        let gm = gain2();
        let params = SinrParams::new(2.0, 2.0, 0.1);
        let probs = [0.9, 0.4];
        let total = expected_successes(&gm, &params, &probs);
        let reference =
            rayfade_sinr::kahan_sum((0..2).map(|i| success_probability(&gm, &params, &probs, i)));
        assert_eq!(total, reference);
    }
}
