//! Incremental Theorem 1 evaluator.
//!
//! [`SuccessEvaluator`] bundles the precomputed [`InterferenceRatios`]
//! cache with an incremental [`SuccessAccumulator`]: construction pays
//! the O(n²) ratio precomputation once per `(GainMatrix, SinrParams)`
//! pair, after which
//!
//! * changing one transmission probability (or toggling one link in a
//!   transmit set) updates every affected `Q_i` in **O(n)**,
//! * reading one `Q_i` is **O(1)**,
//! * scoring a candidate activation
//!   ([`activation_gain`](SuccessEvaluator::activation_gain)) is
//!   **O(n)** — versus the O(n²) from-scratch evaluation of
//!   [`success_probability`](crate::success_probability) per candidate.
//!
//! This is the intended engine for greedy capacity re-scoring, RWM/Exp3
//! reward computation, and the dynamic slot loop, all of which mutate one
//! link at a time.
//!
//! # Log-domain vs. product accumulation
//!
//! [`AccumMode::LogDomain`] (the default) keeps per-receiver sums
//! `Σ ln(1 − ρ·q_j)`: updates are additions, so the accumulator cannot
//! underflow no matter how many near-zero factors pile up, at the cost of
//! one `exp` per probability query and ~1 ulp of the running sum of
//! rounding drift per update. [`AccumMode::Product`] keeps the raw product
//! and multiplies/divides single factors: queries are cheapest and short
//! sequences are bit-faithful, but dividing by tiny factors loses
//! precision and long products can underflow, so it re-derives a
//! receiver's product from scratch (exact, O(n)) whenever a guard trips.
//! Both stay within 1e-12 of the closed form on realistic instances; the
//! property suite in `tests/evaluator_equivalence.rs` pins this.
//!
//! For embarrassingly parallel workloads (Monte Carlo replications,
//! probability-grid sweeps) the free functions
//! [`batch_expected_successes`] and [`batch_success_probabilities`]
//! evaluate many probability vectors against one shared ratio cache with
//! rayon.

use rayfade_sinr::{
    kahan_sum, AccumMode, GainMatrix, InterferenceRatios, SinrParams, SuccessAccumulator,
};
use rayfade_telemetry::{trace, Telemetry};
use rayon::prelude::*;

/// Incremental Theorem 1 evaluator: a ratio cache plus an O(n)-update
/// success-probability accumulator (see the [module docs](self) for the
/// complexity model and the log-domain vs product trade-off).
#[derive(Debug, Clone, PartialEq)]
pub struct SuccessEvaluator {
    ratios: InterferenceRatios,
    acc: SuccessAccumulator,
}

impl SuccessEvaluator {
    /// Builds the evaluator (O(n²) precomputation) with the default
    /// log-domain accumulator; all probabilities start at 0.
    pub fn new(gain: &GainMatrix, params: &SinrParams) -> Self {
        Self::with_mode(gain, params, AccumMode::default())
    }

    /// Builds the evaluator with an explicit accumulation mode.
    pub fn with_mode(gain: &GainMatrix, params: &SinrParams, mode: AccumMode) -> Self {
        let ratios = InterferenceRatios::new(gain, params);
        let acc = SuccessAccumulator::new(ratios.len(), mode);
        SuccessEvaluator { ratios, acc }
    }

    /// Wraps an existing ratio cache (shared caches can be cloned in).
    pub fn from_ratios(ratios: InterferenceRatios, mode: AccumMode) -> Self {
        let acc = SuccessAccumulator::new(ratios.len(), mode);
        SuccessEvaluator { ratios, acc }
    }

    /// Number of links.
    #[inline]
    pub fn len(&self) -> usize {
        self.ratios.len()
    }

    /// Whether the instance has no links.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ratios.is_empty()
    }

    /// The underlying ratio cache.
    #[inline]
    pub fn ratios(&self) -> &InterferenceRatios {
        &self.ratios
    }

    /// Lifetime number of underflow/precision-guard trips in the
    /// underlying accumulator — each one an O(n) from-scratch product
    /// re-derivation (always 0 in log-domain mode). Telemetry reads this
    /// to expose how often the product-mode fast path degraded.
    #[inline]
    pub fn rederivations(&self) -> u64 {
        self.acc.rederivations()
    }

    /// Current transmission probabilities.
    #[inline]
    pub fn probs(&self) -> &[f64] {
        self.acc.probs()
    }

    /// Current transmission probability of link `j`.
    #[inline]
    pub fn prob(&self, j: usize) -> f64 {
        self.acc.prob(j)
    }

    /// Resets every probability to 0 — O(n), no reallocation.
    pub fn reset(&mut self) {
        self.acc.reset();
    }

    /// Replaces the whole probability vector — O(n²) rebuild.
    pub fn set_probs(&mut self, probs: &[f64]) {
        self.acc.set_probs(&self.ratios, probs);
    }

    /// Sets every probability to the same `q` — O(n²) rebuild.
    pub fn set_uniform(&mut self, q: f64) {
        self.acc.set_uniform(&self.ratios, q);
    }

    /// Changes one probability, updating all affected `Q_i` in O(n).
    pub fn set_prob(&mut self, j: usize, q: f64) {
        self.acc.set_prob(&self.ratios, j, q);
    }

    /// Sets `q_j = 1` (link joins the transmit set) — O(n).
    pub fn insert(&mut self, j: usize) {
        self.acc.insert(&self.ratios, j);
    }

    /// Sets `q_j = 0` (link leaves the transmit set) — O(n).
    pub fn remove(&mut self, j: usize) {
        self.acc.remove(&self.ratios, j);
    }

    /// Exact Theorem 1 success probability `Q_i` under the current
    /// probabilities — O(1).
    #[inline]
    pub fn success_probability(&self, i: usize) -> f64 {
        self.acc.success_probability(&self.ratios, i)
    }

    /// `Q_i` conditioned on link `i` transmitting (`q_i` read as 1,
    /// interference unchanged) — O(1). The Sec. 6 expected send reward is
    /// `2·Q̃_i − 1` with this `Q̃_i`.
    #[inline]
    pub fn conditional_success_probability(&self, i: usize) -> f64 {
        self.acc.conditional_success_probability(&self.ratios, i)
    }

    /// All success probabilities — O(n).
    pub fn success_probabilities(&self) -> Vec<f64> {
        self.acc.success_probabilities(&self.ratios)
    }

    /// Expected successes `Σ_i Q_i` — O(n), compensated summation.
    pub fn expected_successes(&self) -> f64 {
        self.acc.expected_successes(&self.ratios)
    }

    /// Change in (optionally weighted) expected successes if silent link
    /// `j` were activated — O(n), does not mutate the evaluator.
    ///
    /// # Panics
    /// If `q_j ≠ 0`.
    pub fn activation_gain(&self, weights: Option<&[f64]>, j: usize) -> f64 {
        self.acc.activation_gain(&self.ratios, weights, j)
    }
}

/// Evaluates `Σ_i Q_i` for many probability vectors against one shared
/// ratio cache, in parallel (rayon). The per-vector cost is O(n²) — the
/// win over calling [`expected_successes`](crate::expected_successes) per
/// vector is the shared O(n²) ratio precomputation and the parallelism
/// across vectors (Monte Carlo replications, `q`-grid sweeps).
pub fn batch_expected_successes(
    gain: &GainMatrix,
    params: &SinrParams,
    prob_sets: &[Vec<f64>],
) -> Vec<f64> {
    batch_expected_successes_traced(gain, params, prob_sets, None)
}

/// [`batch_expected_successes`] with optional span tracing: the shared
/// ratio precomputation runs under an `evaluator/ratios` span and the
/// parallel sweep under `evaluator/batch` (one span per call — a batch
/// is a chunky unit of work, so tracing is never sampled here).
pub fn batch_expected_successes_traced(
    gain: &GainMatrix,
    params: &SinrParams,
    prob_sets: &[Vec<f64>],
    tele: Option<&Telemetry>,
) -> Vec<f64> {
    let (tracer, ratios_span, batch_span) = evaluator_spans(tele);
    let ratios = {
        let _g = trace::guard(tracer, ratios_span);
        InterferenceRatios::new(gain, params)
    };
    let _g = trace::guard(tracer, batch_span);
    prob_sets
        .into_par_iter()
        .map(|probs| {
            let mut acc = SuccessAccumulator::new(ratios.len(), AccumMode::LogDomain);
            acc.set_probs(&ratios, probs);
            acc.expected_successes(&ratios)
        })
        .collect()
}

/// Evaluates the full success-probability vector for many probability
/// vectors against one shared ratio cache, in parallel (rayon).
pub fn batch_success_probabilities(
    gain: &GainMatrix,
    params: &SinrParams,
    prob_sets: &[Vec<f64>],
) -> Vec<Vec<f64>> {
    batch_success_probabilities_traced(gain, params, prob_sets, None)
}

/// [`batch_success_probabilities`] with optional span tracing (same span
/// names as [`batch_expected_successes_traced`]).
pub fn batch_success_probabilities_traced(
    gain: &GainMatrix,
    params: &SinrParams,
    prob_sets: &[Vec<f64>],
    tele: Option<&Telemetry>,
) -> Vec<Vec<f64>> {
    let (tracer, ratios_span, batch_span) = evaluator_spans(tele);
    let ratios = {
        let _g = trace::guard(tracer, ratios_span);
        InterferenceRatios::new(gain, params)
    };
    let _g = trace::guard(tracer, batch_span);
    prob_sets
        .into_par_iter()
        .map(|probs| {
            let mut acc = SuccessAccumulator::new(ratios.len(), AccumMode::LogDomain);
            acc.set_probs(&ratios, probs);
            acc.success_probabilities(&ratios)
        })
        .collect()
}

/// Evaluates `Σ_{i∈S} Q_i` for many fixed transmit sets against one
/// shared ratio cache, in parallel (rayon) — the batch counterpart of
/// [`expected_successes_of_set`](crate::expected_successes_of_set).
pub fn batch_expected_successes_of_sets(
    gain: &GainMatrix,
    params: &SinrParams,
    sets: &[Vec<usize>],
) -> Vec<f64> {
    batch_expected_successes_of_sets_traced(gain, params, sets, None)
}

/// [`batch_expected_successes_of_sets`] with optional span tracing (same
/// span names as [`batch_expected_successes_traced`]).
pub fn batch_expected_successes_of_sets_traced(
    gain: &GainMatrix,
    params: &SinrParams,
    sets: &[Vec<usize>],
    tele: Option<&Telemetry>,
) -> Vec<f64> {
    let (tracer, ratios_span, batch_span) = evaluator_spans(tele);
    let ratios = {
        let _g = trace::guard(tracer, ratios_span);
        InterferenceRatios::new(gain, params)
    };
    let _g = trace::guard(tracer, batch_span);
    sets.into_par_iter()
        .map(|set| {
            let mut acc = SuccessAccumulator::new(ratios.len(), AccumMode::LogDomain);
            for &j in set {
                acc.insert(&ratios, j);
            }
            kahan_sum(set.iter().map(|&i| acc.success_probability(&ratios, i)))
        })
        .collect()
}

type EvaluatorSpans<'a> = (
    Option<&'a trace::Tracer>,
    Option<trace::SpanId>,
    Option<trace::SpanId>,
);

fn evaluator_spans(tele: Option<&Telemetry>) -> EvaluatorSpans<'_> {
    let tracer = tele.and_then(Telemetry::tracer);
    let ratios_span = tracer.map(|tr| tr.span_id("evaluator/ratios"));
    let batch_span = tracer.map(|tr| tr.span_id("evaluator/batch"));
    (tracer, ratios_span, batch_span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::success::{
        expected_successes, expected_successes_of_set, success_probabilities, success_probability,
    };

    fn paper_gain() -> GainMatrix {
        GainMatrix::from_raw(
            3,
            vec![
                10.0, 2.0, 1.0, //
                2.0, 8.0, 0.5, //
                1.0, 0.5, 12.0,
            ],
        )
    }

    #[test]
    fn evaluator_matches_scratch_closed_form() {
        let gm = paper_gain();
        let params = SinrParams::new(2.0, 1.5, 0.2);
        let probs = [0.9, 0.3, 0.6];
        for mode in [AccumMode::LogDomain, AccumMode::Product] {
            let mut ev = SuccessEvaluator::with_mode(&gm, &params, mode);
            ev.set_probs(&probs);
            let got = ev.success_probabilities();
            let want = success_probabilities(&gm, &params, &probs);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-12, "{mode:?}: {g} vs {w}");
            }
            let total = ev.expected_successes();
            let want_total = expected_successes(&gm, &params, &probs);
            assert!((total - want_total).abs() < 1e-12);
        }
    }

    #[test]
    fn incremental_sequence_tracks_scratch() {
        let gm = paper_gain();
        let params = SinrParams::new(2.0, 1.5, 0.0);
        let mut ev = SuccessEvaluator::new(&gm, &params);
        ev.insert(0);
        ev.insert(2);
        ev.set_prob(1, 0.4);
        ev.remove(0);
        ev.set_prob(2, 0.75);
        let probs = [0.0, 0.4, 0.75];
        assert_eq!(ev.probs(), &probs);
        for i in 0..3 {
            let want = success_probability(&gm, &params, &probs, i);
            assert!((ev.success_probability(i) - want).abs() < 1e-12);
        }
        assert_eq!(ev.prob(1), 0.4);
        assert_eq!(ev.len(), 3);
        assert!(!ev.is_empty());
    }

    #[test]
    fn activation_gain_matches_set_difference() {
        let gm = paper_gain();
        let params = SinrParams::new(2.0, 1.5, 0.1);
        let mut ev = SuccessEvaluator::new(&gm, &params);
        ev.insert(0);
        let before = expected_successes(&gm, &params, &[1.0, 0.0, 0.0]);
        let after = expected_successes(&gm, &params, &[1.0, 1.0, 0.0]);
        let gain = ev.activation_gain(None, 1);
        assert!((gain - (after - before)).abs() < 1e-12, "{gain}");
    }

    #[test]
    fn reset_and_uniform() {
        let gm = paper_gain();
        let params = SinrParams::new(2.0, 1.5, 0.0);
        let mut ev = SuccessEvaluator::new(&gm, &params);
        ev.set_uniform(0.5);
        let want = expected_successes(&gm, &params, &[0.5, 0.5, 0.5]);
        assert!((ev.expected_successes() - want).abs() < 1e-12);
        ev.reset();
        assert_eq!(ev.expected_successes(), 0.0);
    }

    #[test]
    fn batch_entry_points_match_sequential() {
        let gm = paper_gain();
        let params = SinrParams::new(2.0, 1.5, 0.2);
        let prob_sets = vec![
            vec![1.0, 1.0, 1.0],
            vec![0.5, 0.0, 0.9],
            vec![0.0, 0.0, 0.0],
        ];
        let totals = batch_expected_successes(&gm, &params, &prob_sets);
        let vectors = batch_success_probabilities(&gm, &params, &prob_sets);
        for (k, probs) in prob_sets.iter().enumerate() {
            let want = expected_successes(&gm, &params, probs);
            assert!((totals[k] - want).abs() < 1e-12);
            let want_vec = success_probabilities(&gm, &params, probs);
            for (g, w) in vectors[k].iter().zip(&want_vec) {
                assert!((g - w).abs() < 1e-12);
            }
        }
        let sets = vec![vec![0], vec![0, 2], vec![0, 1, 2], vec![]];
        let set_totals = batch_expected_successes_of_sets(&gm, &params, &sets);
        for (k, set) in sets.iter().enumerate() {
            let want = expected_successes_of_set(&gm, &params, set);
            assert!((set_totals[k] - want).abs() < 1e-12, "set {set:?}");
        }
    }

    #[test]
    fn traced_batches_match_untraced_and_emit_spans() {
        let gm = paper_gain();
        let params = SinrParams::new(2.0, 1.5, 0.2);
        let prob_sets = vec![vec![1.0, 1.0, 1.0], vec![0.5, 0.0, 0.9]];
        let sets = vec![vec![0, 2], vec![1]];
        let tele = Telemetry::new().with_tracing();
        let totals = batch_expected_successes_traced(&gm, &params, &prob_sets, Some(&tele));
        let vectors = batch_success_probabilities_traced(&gm, &params, &prob_sets, Some(&tele));
        let set_totals = batch_expected_successes_of_sets_traced(&gm, &params, &sets, Some(&tele));
        assert_eq!(totals, batch_expected_successes(&gm, &params, &prob_sets));
        assert_eq!(
            vectors,
            batch_success_probabilities(&gm, &params, &prob_sets)
        );
        assert_eq!(
            set_totals,
            batch_expected_successes_of_sets(&gm, &params, &sets)
        );
        let trace = tele.tracer().unwrap().snapshot();
        assert_eq!(trace.dropped, 0);
        let count = |name: &str| trace.records.iter().filter(|r| r.name == name).count();
        assert_eq!(count("evaluator/ratios"), 3, "one ratio build per batch");
        assert_eq!(count("evaluator/batch"), 3, "one batch span per call");
    }

    #[test]
    fn from_ratios_shares_cache() {
        let gm = paper_gain();
        let params = SinrParams::new(2.0, 1.5, 0.0);
        let ratios = InterferenceRatios::new(&gm, &params);
        let mut ev = SuccessEvaluator::from_ratios(ratios.clone(), AccumMode::Product);
        ev.insert(1);
        assert_eq!(ev.ratios(), &ratios);
        let want = success_probability(&gm, &params, &[0.0, 1.0, 0.0], 1);
        assert!((ev.success_probability(1) - want).abs() < 1e-12);
    }
}
