//! Optimal uniform spectrum-access probability.
//!
//! Figure 1 of the paper sweeps a *uniform* transmission probability `q`
//! and eyeballs the peak. Thanks to Theorem 1 the Rayleigh objective
//! `E(q) = Σ_i Q_i(q·1, β)` is smooth and cheap to evaluate (`O(n²)` per
//! point), so the peak can be located numerically rather than by grid
//! inspection. This module does exactly that with golden-section search,
//! after bracketing the (empirically unimodal) maximum on a coarse grid —
//! and falls back to the best grid point if the function turns out not to
//! be unimodal on the instance.

use crate::success::expected_successes;
use rayfade_sinr::{GainMatrix, SinrParams};
use serde::{Deserialize, Serialize};

/// Result of the access-probability optimization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessOptimum {
    /// The maximizing uniform probability `q*`.
    pub q: f64,
    /// The achieved expected number of successes `E(q*)` (exact).
    pub expected_successes: f64,
    /// Objective evaluations spent.
    pub evaluations: usize,
}

/// Maximizes `E(q) = Σ_i Q_i(q·1, β)` over `q ∈ [0, 1]`.
///
/// Strategy: evaluate a coarse grid (`grid` points) to bracket the best
/// region, then refine with golden-section search to absolute tolerance
/// `tol` on `q`. The objective is exact (Theorem 1), so the result is
/// deterministic.
pub fn optimize_uniform_access(
    gain: &GainMatrix,
    params: &SinrParams,
    grid: usize,
    tol: f64,
) -> AccessOptimum {
    assert!(grid >= 3, "need at least three grid points");
    assert!(tol > 0.0 && tol < 1.0, "tolerance must lie in (0, 1)");
    let n = gain.len();
    let mut evals = 0usize;
    let mut probs = vec![0.0; n];
    let mut value = |q: f64, evals: &mut usize| -> f64 {
        *evals += 1;
        probs.iter_mut().for_each(|p| *p = q);
        expected_successes(gain, params, &probs)
    };
    // Coarse bracket.
    let mut best_k = 0usize;
    let mut best_v = f64::NEG_INFINITY;
    let grid_q: Vec<f64> = (0..=grid).map(|k| k as f64 / grid as f64).collect();
    let grid_v: Vec<f64> = grid_q.iter().map(|&q| value(q, &mut evals)).collect();
    for (k, &v) in grid_v.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best_k = k;
        }
    }
    let mut lo = grid_q[best_k.saturating_sub(1)];
    let mut hi = grid_q[(best_k + 1).min(grid)];
    // Golden-section refinement inside [lo, hi].
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let mut c = hi - INV_PHI * (hi - lo);
    let mut d = lo + INV_PHI * (hi - lo);
    let mut fc = value(c, &mut evals);
    let mut fd = value(d, &mut evals);
    while hi - lo > tol {
        if fc >= fd {
            hi = d;
            d = c;
            fd = fc;
            c = hi - INV_PHI * (hi - lo);
            fc = value(c, &mut evals);
        } else {
            lo = c;
            c = d;
            fc = fd;
            d = lo + INV_PHI * (hi - lo);
            fd = value(d, &mut evals);
        }
    }
    let q_star = 0.5 * (lo + hi);
    let v_star = value(q_star, &mut evals);
    // Defensive: never return worse than the best grid point (covers
    // non-unimodal instances where the bracket missed the true peak).
    if v_star >= best_v {
        AccessOptimum {
            q: q_star,
            expected_successes: v_star,
            evaluations: evals,
        }
    } else {
        AccessOptimum {
            q: grid_q[best_k],
            expected_successes: best_v,
            evaluations: evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayfade_geometry::PaperTopology;
    use rayfade_sinr::PowerAssignment;

    fn paper_gain(seed: u64, n: usize) -> (GainMatrix, SinrParams) {
        let net = PaperTopology {
            links: n,
            ..PaperTopology::figure1()
        }
        .generate(seed);
        let params = SinrParams::figure1();
        let gm = GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha);
        (gm, params)
    }

    #[test]
    fn beats_every_grid_point() {
        let (gm, params) = paper_gain(1, 60);
        let opt = optimize_uniform_access(&gm, &params, 20, 1e-4);
        assert!((0.0..=1.0).contains(&opt.q));
        for k in 0..=40 {
            let q = k as f64 / 40.0;
            let v = expected_successes(&gm, &params, &vec![q; 60]);
            assert!(
                opt.expected_successes >= v - 1e-6,
                "grid point q={q} ({v}) beats optimizer ({} at {})",
                opt.expected_successes,
                opt.q
            );
        }
    }

    #[test]
    fn sparse_network_wants_full_access() {
        // Far-apart links: E(q) is increasing, q* = 1.
        let net = PaperTopology {
            links: 5,
            side: 100_000.0,
            ..PaperTopology::figure1()
        }
        .generate(2);
        let params = SinrParams::figure1();
        let gm = GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha);
        let opt = optimize_uniform_access(&gm, &params, 10, 1e-4);
        assert!(opt.q > 0.99, "q* = {}", opt.q);
        assert!(opt.expected_successes > 4.5);
    }

    #[test]
    fn dense_network_throttles_access() {
        // Everyone on top of everyone: the optimum backs off sharply.
        let (gm, params) = paper_gain(3, 100);
        // Shrink the plane to jam the links together.
        let net = PaperTopology {
            links: 100,
            side: 150.0,
            ..PaperTopology::figure1()
        }
        .generate(3);
        let dense =
            GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha);
        let dense_opt = optimize_uniform_access(&dense, &params, 20, 1e-4);
        let sparse_opt = optimize_uniform_access(&gm, &params, 20, 1e-4);
        assert!(
            dense_opt.q < sparse_opt.q,
            "denser instance must throttle more: {} vs {}",
            dense_opt.q,
            sparse_opt.q
        );
    }

    #[test]
    fn deterministic() {
        let (gm, params) = paper_gain(4, 30);
        let a = optimize_uniform_access(&gm, &params, 12, 1e-5);
        let b = optimize_uniform_access(&gm, &params, 12, 1e-5);
        assert_eq!(a, b);
        assert!(a.evaluations > 12);
    }

    #[test]
    fn empty_instance() {
        let gm = GainMatrix::from_raw(0, vec![]);
        let params = SinrParams::new(2.0, 1.0, 0.0);
        let opt = optimize_uniform_access(&gm, &params, 5, 1e-3);
        assert_eq!(opt.expected_successes, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least three grid points")]
    fn tiny_grid_rejected() {
        let (gm, params) = paper_gain(0, 5);
        let _ = optimize_uniform_access(&gm, &params, 2, 1e-3);
    }
}
