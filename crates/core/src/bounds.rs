//! Upper and lower bounds on the success probability (Lemma 1 and
//! Observation 1).
//!
//! The closed form of Theorem 1 is exact but hard to compare against the
//! non-fading model directly; the paper sandwiches it between two
//! exponential bounds:
//!
//! ```text
//! q_i · exp(−β/S̄ii · (ν + Σ_{j≠i} S̄ji·q_j))                    ≤ Q_i
//! Q_i ≤ q_i · exp(−βν/S̄ii − Σ_{j≠i} min{1/2, β·S̄ji/(2·S̄ii)}·q_j)
//! ```
//!
//! The lower bound is what powers the `1/e` transfer (Lemma 2); the upper
//! bound drives the `O(log* n)` simulation (Theorem 2).

use rayfade_sinr::{GainMatrix, SinrParams};

/// Observation 1, first inequality: `exp(−x·q) ≤ 1 − q/(1/x + 1)` for
/// `x > 0`, `q ∈ [0, 1]`.
///
/// (The paper states "for all x ∈ ℝ", but its proof divides by `1/x + 1`
/// assuming positivity, and the lemma only ever instantiates
/// `x = β·S̄ji/S̄ii ≥ 0`.) Exposed for tests and didactic use; the bounds
/// below inline the math.
pub fn observation1_lhs(x: f64, q: f64) -> (f64, f64) {
    ((-x * q).exp(), 1.0 - q / (1.0 / x + 1.0))
}

/// Observation 1, second inequality: `1 − q/(1/x + 1) ≤ exp(−x·q/2)` for
/// `x ∈ (0, 1]`, `q ∈ [0, 1]`.
pub fn observation1_rhs(x: f64, q: f64) -> (f64, f64) {
    (1.0 - q / (1.0 / x + 1.0), (-0.5 * x * q).exp())
}

/// Lemma 1 lower bound on `Q_i`.
pub fn success_lower_bound(gain: &GainMatrix, params: &SinrParams, probs: &[f64], i: usize) -> f64 {
    let n = gain.len();
    assert_eq!(probs.len(), n, "one probability per link");
    let s_ii = gain.signal(i);
    if s_ii == 0.0 {
        return 0.0;
    }
    let row = gain.at_receiver(i);
    let mut weighted_interference = params.noise;
    for (j, (&s_ji, &q_j)) in row.iter().zip(probs).enumerate() {
        if j != i {
            weighted_interference += s_ji * q_j;
        }
    }
    probs[i] * (-params.beta / s_ii * weighted_interference).exp()
}

/// Lemma 1 upper bound on `Q_i`.
pub fn success_upper_bound(gain: &GainMatrix, params: &SinrParams, probs: &[f64], i: usize) -> f64 {
    let n = gain.len();
    assert_eq!(probs.len(), n, "one probability per link");
    let s_ii = gain.signal(i);
    if s_ii == 0.0 {
        return 0.0;
    }
    let row = gain.at_receiver(i);
    let mut exponent = -params.beta * params.noise / s_ii;
    for (j, (&s_ji, &q_j)) in row.iter().zip(probs).enumerate() {
        if j != i {
            exponent -= (0.5f64).min(params.beta * s_ji / (2.0 * s_ii)) * q_j;
        }
    }
    probs[i] * exponent.exp()
}

/// The interference mass `A_i = Σ_{j≠i} min{1, β·S̄ji/S̄ii}·q_j` from the
/// proof of Theorem 2 (Lemma 3). Determines which simulation round covers
/// link `i`.
pub fn interference_mass(gain: &GainMatrix, params: &SinrParams, probs: &[f64], i: usize) -> f64 {
    let n = gain.len();
    assert_eq!(probs.len(), n, "one probability per link");
    let s_ii = gain.signal(i);
    if s_ii == 0.0 {
        return n as f64; // maximal mass: the link is unservable anyway
    }
    let row = gain.at_receiver(i);
    let mut a = 0.0;
    for (j, (&s_ji, &q_j)) in row.iter().zip(probs).enumerate() {
        if j != i {
            a += (1.0f64).min(params.beta * s_ji / s_ii) * q_j;
        }
    }
    a
}

/// The `1/e` constant of Lemma 2: for a set feasible in the non-fading
/// model (each member's SINR ≥ its evaluation threshold), the lower bound
/// evaluates to at least `exp(−1) ≈ 0.3679` of the member's transmission
/// probability.
pub const TRANSFER_CONSTANT: f64 = std::f64::consts::E;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::success::success_probability;
    use rayfade_geometry::PaperTopology;
    use rayfade_sinr::PowerAssignment;

    fn paper_gain(seed: u64, n: usize) -> (GainMatrix, SinrParams) {
        let net = PaperTopology {
            links: n,
            side: 500.0,
            min_length: 20.0,
            max_length: 40.0,
        }
        .generate(seed);
        let params = SinrParams::figure1();
        let gm = GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha);
        (gm, params)
    }

    #[test]
    fn observation1_first_inequality_holds() {
        for &x in &[0.01, 0.1, 0.5, 1.0, 3.0, 10.0, 100.0] {
            for &q in &[0.0, 0.1, 0.5, 0.9, 1.0] {
                let (lhs, rhs) = observation1_lhs(x, q);
                assert!(lhs <= rhs + 1e-12, "x={x}, q={q}: {lhs} > {rhs}");
            }
        }
    }

    #[test]
    fn observation1_second_inequality_holds() {
        for &x in &[0.01, 0.1, 0.5, 0.9, 1.0] {
            for &q in &[0.0, 0.1, 0.5, 0.9, 1.0] {
                let (lhs, rhs) = observation1_rhs(x, q);
                assert!(lhs <= rhs + 1e-12, "x={x}, q={q}: {lhs} > {rhs}");
            }
        }
    }

    #[test]
    fn bounds_sandwich_exact_probability_on_paper_instances() {
        for seed in 0..5 {
            let (gm, params) = paper_gain(seed, 30);
            for &p in &[0.1, 0.3, 0.7, 1.0] {
                let probs = vec![p; 30];
                for i in 0..30 {
                    let exact = success_probability(&gm, &params, &probs, i);
                    let lo = success_lower_bound(&gm, &params, &probs, i);
                    let hi = success_upper_bound(&gm, &params, &probs, i);
                    assert!(
                        lo <= exact + 1e-12,
                        "seed {seed} p {p} link {i}: lower {lo} > exact {exact}"
                    );
                    assert!(
                        exact <= hi + 1e-12,
                        "seed {seed} p {p} link {i}: exact {exact} > upper {hi}"
                    );
                }
            }
        }
    }

    #[test]
    fn bounds_tight_for_lone_link() {
        // With no interferers all three expressions coincide.
        let gm = GainMatrix::from_raw(1, vec![4.0]);
        let params = SinrParams::new(2.0, 2.0, 1.0);
        let probs = [0.9];
        let exact = success_probability(&gm, &params, &probs, 0);
        let lo = success_lower_bound(&gm, &params, &probs, 0);
        let hi = success_upper_bound(&gm, &params, &probs, 0);
        assert!((exact - lo).abs() < 1e-12);
        assert!((exact - hi).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_at_nonfading_feasibility_is_one_over_e() {
        // Lemma 2's punchline: if the set reaches SINR exactly gamma in the
        // non-fading model (interference + noise = S_ii / gamma), then
        // evaluating the lower bound at beta = gamma gives q_i / e.
        let gm = GainMatrix::from_raw(2, vec![10.0, 4.0, 4.0, 10.0]);
        let nu = 1.0;
        // gamma^nf for link 0 with both transmitting: 10 / (4 + 1) = 2.
        let gamma = 2.0;
        let params = SinrParams::new(2.0, gamma, nu);
        let lo = success_lower_bound(&gm, &params, &[1.0, 1.0], 0);
        assert!(
            (lo - (-1.0f64).exp()).abs() < 1e-12,
            "expected exactly 1/e, got {lo}"
        );
    }

    #[test]
    fn interference_mass_properties() {
        let (gm, params) = paper_gain(1, 20);
        let probs = vec![1.0; 20];
        for i in 0..20 {
            let a = interference_mass(&gm, &params, &probs, i);
            assert!((0.0..=20.0).contains(&a), "A_{i} = {a}");
        }
        // Scaling all probabilities scales the mass linearly.
        let half: Vec<f64> = probs.iter().map(|q| q / 2.0).collect();
        for i in 0..20 {
            let a1 = interference_mass(&gm, &params, &probs, i);
            let a2 = interference_mass(&gm, &params, &half, i);
            assert!((a2 - a1 / 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn upper_bound_dominates_mass_form() {
        // The proof of Lemma 3 uses Q_i <= q_i * exp(-beta*nu/S - A_i/2);
        // check that our upper bound implies that form.
        let (gm, params) = paper_gain(2, 15);
        let probs = vec![0.8; 15];
        for i in 0..15 {
            let hi = success_upper_bound(&gm, &params, &probs, i);
            let a = interference_mass(&gm, &params, &probs, i);
            let mass_form = probs[i] * (-params.beta * params.noise / gm.signal(i) - a / 2.0).exp();
            assert!(
                (hi - mass_form).abs() < 1e-12,
                "upper bound should equal the A_i/2 form, {hi} vs {mass_form}"
            );
        }
    }
}
