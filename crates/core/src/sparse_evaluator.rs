//! Sparse Theorem 1 evaluation and the dense/sparse routing facade.
//!
//! [`SparseSuccessEvaluator`] mirrors [`SuccessEvaluator`]
//! on top of the ε-truncated
//! [`SparseInterferenceRatios`] cache: construction is near-linear when built from geometry, one
//! probability change costs O(deg) instead of O(n), and every query
//! additionally exposes the certified error interval `[p·e^{−τᵢ}, p]`
//! around the exact dense value (see `rayfade_sinr::sparse`).
//!
//! [`NetworkEvaluator`] is the routing facade: below
//! [`SPARSE_CROSSOVER`] links it builds the exact dense evaluator
//! (keeping small instances bit-identical to the historical path); at or
//! above it, the sparse path with [`DEFAULT_SPARSE_DELTA`]. Consumers
//! (`sim` probability-grid sweeps, `dynamic` policies) route through this
//! facade and scale transparently.

use crate::evaluator::SuccessEvaluator;
use rayfade_geometry::Network;
use rayfade_sinr::{
    GainMatrix, PowerAssignment, SinrParams, SparseInterferenceRatios, SparseSuccessAccumulator,
};
use rayfade_telemetry::Telemetry;

/// Instance size at which [`NetworkEvaluator`] switches from the exact
/// dense evaluator to the certified sparse one. Below this the dense
/// O(n²) build costs single-digit milliseconds and stays bit-identical
/// to the historical path; above it the dense cache grows unaffordable
/// (n = 10⁵ would need ~160 GB) while the sparse build stays near-linear.
pub const SPARSE_CROSSOVER: usize = 2048;

/// Truncation bound `δ` used when [`NetworkEvaluator`] routes to the
/// sparse path: success probabilities are certified to a relative error
/// of at most 0.1%, far below the Monte Carlo noise of the workloads
/// that run at these sizes.
pub const DEFAULT_SPARSE_DELTA: f64 = 1e-3;

/// Incremental sparse Theorem 1 evaluator with certified error intervals
/// (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseSuccessEvaluator {
    ratios: SparseInterferenceRatios,
    acc: SparseSuccessAccumulator,
}

impl SparseSuccessEvaluator {
    /// Builds the evaluator from a dense gain matrix with truncation
    /// bound `delta` (O(n²) build, O(nnz) evaluation). `delta = 0`
    /// reproduces the dense ratios exactly.
    pub fn new(gain: &GainMatrix, params: &SinrParams, delta: f64) -> Self {
        Self::from_ratios(SparseInterferenceRatios::from_gain(gain, params, delta))
    }

    /// Builds the evaluator directly from geometry via the spatial-grid
    /// builder — near-linear, never materializes a dense structure.
    pub fn for_network(
        network: &Network,
        power: &PowerAssignment,
        params: &SinrParams,
        delta: f64,
        tele: Option<&Telemetry>,
    ) -> Self {
        Self::from_ratios(rayfade_spatial::build_sparse_ratios(
            network, power, params, delta, tele,
        ))
    }

    /// Wraps an existing sparse ratio cache.
    pub fn from_ratios(ratios: SparseInterferenceRatios) -> Self {
        let acc = SparseSuccessAccumulator::new(ratios.len());
        SparseSuccessEvaluator { ratios, acc }
    }

    /// Number of links.
    #[inline]
    pub fn len(&self) -> usize {
        self.ratios.len()
    }

    /// Whether the instance has no links.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ratios.is_empty()
    }

    /// The underlying sparse ratio cache.
    #[inline]
    pub fn ratios(&self) -> &SparseInterferenceRatios {
        &self.ratios
    }

    /// The truncation bound `δ` the cache was built for.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.ratios.delta()
    }

    /// Current transmission probabilities.
    #[inline]
    pub fn probs(&self) -> &[f64] {
        self.acc.probs()
    }

    /// Current transmission probability of link `j`.
    #[inline]
    pub fn prob(&self, j: usize) -> f64 {
        self.acc.prob(j)
    }

    /// Resets every probability to 0 — O(n).
    pub fn reset(&mut self) {
        self.acc.reset();
    }

    /// Replaces the whole probability vector — O(nnz) rebuild.
    pub fn set_probs(&mut self, probs: &[f64]) {
        self.acc.set_probs(&self.ratios, probs);
    }

    /// Sets every probability to the same value — O(nnz).
    pub fn set_uniform(&mut self, q: f64) {
        self.acc.set_uniform(&self.ratios, q);
    }

    /// Changes one probability — O(deg j).
    pub fn set_prob(&mut self, j: usize, q: f64) {
        self.acc.set_prob(&self.ratios, j, q);
    }

    /// Sets `q_j = 1` (link joins the transmit set).
    pub fn insert(&mut self, j: usize) {
        self.acc.insert(&self.ratios, j);
    }

    /// Sets `q_j = 0` (link leaves the transmit set).
    pub fn remove(&mut self, j: usize) {
        self.acc.remove(&self.ratios, j);
    }

    /// Sparse success probability of link `i` — the upper end of the
    /// certified interval.
    #[inline]
    pub fn success_probability(&self, i: usize) -> f64 {
        self.acc.success_probability(&self.ratios, i)
    }

    /// Success probability of link `i` conditioned on transmitting.
    #[inline]
    pub fn conditional_success_probability(&self, i: usize) -> f64 {
        self.acc.conditional_success_probability(&self.ratios, i)
    }

    /// Certified interval `[p·e^{−τᵢ}, p]` containing the dense Theorem 1
    /// probability of link `i`.
    #[inline]
    pub fn success_interval(&self, i: usize) -> (f64, f64) {
        self.acc.success_interval(&self.ratios, i)
    }

    /// All sparse success probabilities — O(n).
    pub fn success_probabilities(&self) -> Vec<f64> {
        self.acc.success_probabilities(&self.ratios)
    }

    /// Expected number of successes (upper end of the certified
    /// interval) — O(n).
    pub fn expected_successes(&self) -> f64 {
        self.acc.expected_successes(&self.ratios)
    }

    /// Certified interval containing the dense expected number of
    /// successes.
    pub fn expected_successes_interval(&self) -> (f64, f64) {
        self.acc.expected_successes_interval(&self.ratios)
    }

    /// Change in weighted expected successes if the silent link `j` were
    /// activated — O(deg j).
    ///
    /// # Panics
    /// If link `j` is not currently silent.
    pub fn activation_gain(&self, weights: Option<&[f64]>, j: usize) -> f64 {
        self.acc.activation_gain(&self.ratios, weights, j)
    }
}

/// Size-routing facade over the dense and sparse Theorem 1 evaluators
/// (see the [module docs](self) for the crossover policy).
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkEvaluator {
    /// Exact dense evaluation (small instances).
    Dense(SuccessEvaluator),
    /// Certified ε-truncated sparse evaluation (large instances).
    Sparse(SparseSuccessEvaluator),
}

impl NetworkEvaluator {
    /// Builds from a dense gain matrix: dense below
    /// [`SPARSE_CROSSOVER`], sparse with [`DEFAULT_SPARSE_DELTA`] at or
    /// above it.
    pub fn from_gain(gain: &GainMatrix, params: &SinrParams) -> Self {
        if gain.len() < SPARSE_CROSSOVER {
            NetworkEvaluator::Dense(SuccessEvaluator::new(gain, params))
        } else {
            NetworkEvaluator::Sparse(SparseSuccessEvaluator::new(
                gain,
                params,
                DEFAULT_SPARSE_DELTA,
            ))
        }
    }

    /// Builds from geometry: dense (via `GainMatrix::from_geometry`)
    /// below [`SPARSE_CROSSOVER`]; at or above it, the near-linear
    /// spatial-grid builder — no dense structure is ever materialized.
    pub fn for_network(
        network: &Network,
        power: &PowerAssignment,
        params: &SinrParams,
        tele: Option<&Telemetry>,
    ) -> Self {
        if network.len() < SPARSE_CROSSOVER {
            let gain = GainMatrix::from_geometry(network, power, params.alpha);
            NetworkEvaluator::Dense(SuccessEvaluator::new(&gain, params))
        } else {
            NetworkEvaluator::Sparse(SparseSuccessEvaluator::for_network(
                network,
                power,
                params,
                DEFAULT_SPARSE_DELTA,
                tele,
            ))
        }
    }

    /// Whether the sparse path was selected.
    #[inline]
    pub fn is_sparse(&self) -> bool {
        matches!(self, NetworkEvaluator::Sparse(_))
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        match self {
            NetworkEvaluator::Dense(ev) => ev.len(),
            NetworkEvaluator::Sparse(ev) => ev.len(),
        }
    }

    /// Whether the instance has no links.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resets every probability to 0.
    pub fn reset(&mut self) {
        match self {
            NetworkEvaluator::Dense(ev) => ev.reset(),
            NetworkEvaluator::Sparse(ev) => ev.reset(),
        }
    }

    /// Replaces the whole probability vector.
    pub fn set_probs(&mut self, probs: &[f64]) {
        match self {
            NetworkEvaluator::Dense(ev) => ev.set_probs(probs),
            NetworkEvaluator::Sparse(ev) => ev.set_probs(probs),
        }
    }

    /// Sets every probability to the same value.
    pub fn set_uniform(&mut self, q: f64) {
        match self {
            NetworkEvaluator::Dense(ev) => ev.set_uniform(q),
            NetworkEvaluator::Sparse(ev) => ev.set_uniform(q),
        }
    }

    /// Changes one probability.
    pub fn set_prob(&mut self, j: usize, q: f64) {
        match self {
            NetworkEvaluator::Dense(ev) => ev.set_prob(j, q),
            NetworkEvaluator::Sparse(ev) => ev.set_prob(j, q),
        }
    }

    /// Success probability of link `i` (dense: exact; sparse: certified
    /// upper end).
    pub fn success_probability(&self, i: usize) -> f64 {
        match self {
            NetworkEvaluator::Dense(ev) => ev.success_probability(i),
            NetworkEvaluator::Sparse(ev) => ev.success_probability(i),
        }
    }

    /// All success probabilities.
    pub fn success_probabilities(&self) -> Vec<f64> {
        match self {
            NetworkEvaluator::Dense(ev) => ev.success_probabilities(),
            NetworkEvaluator::Sparse(ev) => ev.success_probabilities(),
        }
    }

    /// Expected number of successes.
    pub fn expected_successes(&self) -> f64 {
        match self {
            NetworkEvaluator::Dense(ev) => ev.expected_successes(),
            NetworkEvaluator::Sparse(ev) => ev.expected_successes(),
        }
    }

    /// Certified interval containing the exact expected number of
    /// successes (degenerate `[v, v]` on the dense path).
    pub fn expected_successes_interval(&self) -> (f64, f64) {
        match self {
            NetworkEvaluator::Dense(ev) => {
                let v = ev.expected_successes();
                (v, v)
            }
            NetworkEvaluator::Sparse(ev) => ev.expected_successes_interval(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gain3() -> GainMatrix {
        GainMatrix::from_raw(
            3,
            vec![
                10.0, 2.0, 1.0, //
                2.0, 8.0, 0.5, //
                1.0, 0.5, 12.0,
            ],
        )
    }

    #[test]
    fn sparse_evaluator_mirrors_dense_at_delta_zero() {
        let gm = gain3();
        let params = SinrParams::new(2.0, 1.5, 0.2);
        let mut dense = SuccessEvaluator::new(&gm, &params);
        let mut sparse = SparseSuccessEvaluator::new(&gm, &params, 0.0);
        for ev in [0.7, 0.0, 1.0] {
            dense.set_uniform(ev);
            sparse.set_uniform(ev);
            for i in 0..3 {
                let d = dense.success_probability(i);
                let s = sparse.success_probability(i);
                assert!((d - s).abs() < 1e-14, "q={ev} link {i}");
                let (lo, hi) = sparse.success_interval(i);
                assert_eq!(lo, hi, "delta = 0 collapses the interval");
            }
        }
        dense.insert(0);
        sparse.insert(0);
        dense.set_prob(1, 0.3);
        sparse.set_prob(1, 0.3);
        dense.remove(2);
        sparse.remove(2);
        assert!((dense.expected_successes() - sparse.expected_successes()).abs() < 1e-14);
        assert!((dense.activation_gain(None, 2) - sparse.activation_gain(None, 2)).abs() < 1e-14);
    }

    #[test]
    fn interval_contains_dense_value_for_positive_delta() {
        let gm = gain3();
        let params = SinrParams::new(2.0, 1.5, 0.2);
        let mut dense = SuccessEvaluator::new(&gm, &params);
        let mut sparse = SparseSuccessEvaluator::new(&gm, &params, 0.4);
        let probs = [0.9, 0.5, 1.0];
        dense.set_probs(&probs);
        sparse.set_probs(&probs);
        for i in 0..3 {
            let d = dense.success_probability(i);
            let (lo, hi) = sparse.success_interval(i);
            assert!(lo - 1e-12 <= d && d <= hi + 1e-12, "link {i}");
        }
        let (lo, hi) = sparse.expected_successes_interval();
        let d = dense.expected_successes();
        assert!(lo - 1e-12 <= d && d <= hi + 1e-12);
    }

    #[test]
    fn facade_routes_small_instances_dense() {
        let gm = gain3();
        let params = SinrParams::new(2.0, 1.5, 0.2);
        let mut ev = NetworkEvaluator::from_gain(&gm, &params);
        assert!(!ev.is_sparse());
        assert_eq!(ev.len(), 3);
        ev.set_uniform(0.5);
        let mut dense = SuccessEvaluator::new(&gm, &params);
        dense.set_uniform(0.5);
        assert_eq!(ev.expected_successes(), dense.expected_successes());
        let (lo, hi) = ev.expected_successes_interval();
        assert_eq!(lo, hi, "dense interval is degenerate");
    }

    #[test]
    fn facade_routes_large_instances_sparse() {
        // A block-diagonal raw gain matrix above the crossover: cheap to
        // build, exercises the sparse route end to end.
        let n = SPARSE_CROSSOVER;
        let mut g = vec![0.0; n * n];
        for i in 0..n {
            g[i * n + i] = 10.0;
            let j = i ^ 1; // pair (2k, 2k+1)
            if j < n {
                g[i * n + j] = 2.0;
            }
        }
        let gm = GainMatrix::from_raw(n, g);
        let params = SinrParams::new(2.0, 1.5, 0.1);
        let mut ev = NetworkEvaluator::from_gain(&gm, &params);
        assert!(ev.is_sparse());
        ev.set_uniform(1.0);
        let (lo, hi) = ev.expected_successes_interval();
        // Paired links: ρ = β/(β + s_ii/s_ji) = 1.5/6.5, so per-link
        // Q = e^{−βν/s_ii}·(1 − ρ) = e^{−0.015}·10/13.
        let per_link = (-1.5f64 * 0.1 / 10.0).exp() * (10.0 / 13.0);
        let want = per_link * n as f64;
        assert!(lo <= want + 1e-9 && want <= hi + 1e-9, "{lo} {want} {hi}");
        ev.reset();
        assert_eq!(ev.expected_successes(), 0.0);
    }

    #[test]
    fn facade_for_network_matches_grid_path_on_small_instances() {
        use rayfade_geometry::generator::PaperTopology;
        let net = PaperTopology {
            links: 12,
            side: 400.0,
            min_length: 20.0,
            max_length: 40.0,
        }
        .generate(3);
        let power = PowerAssignment::figure1_uniform();
        let params = SinrParams::figure1();
        let mut ev = NetworkEvaluator::for_network(&net, &power, &params, None);
        assert!(!ev.is_sparse());
        ev.set_uniform(0.4);
        let gain = GainMatrix::from_geometry(&net, &power, params.alpha);
        let mut dense = SuccessEvaluator::new(&gain, &params);
        dense.set_uniform(0.4);
        assert_eq!(ev.expected_successes(), dense.expected_successes());
    }
}
