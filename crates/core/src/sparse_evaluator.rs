//! Sparse Theorem 1 evaluation and the dense/sparse routing facade.
//!
//! [`SparseSuccessEvaluator`] mirrors [`SuccessEvaluator`]
//! on top of the ε-truncated
//! [`SparseInterferenceRatios`] cache: construction is near-linear when built from geometry, one
//! probability change costs O(deg) instead of O(n), and every query
//! additionally exposes the certified error interval `[p·e^{−τᵢ}, p]`
//! around the exact dense value (see `rayfade_sinr::sparse`).
//!
//! [`NetworkEvaluator`] is the routing facade: below
//! [`SPARSE_CROSSOVER`] links it builds the exact dense evaluator
//! (keeping small instances bit-identical to the historical path); at or
//! above it, the sparse path with [`DEFAULT_SPARSE_DELTA`]. Consumers
//! (`sim` probability-grid sweeps, `dynamic` policies) route through this
//! facade and scale transparently.

use crate::evaluator::SuccessEvaluator;
use rayfade_geometry::Network;
use rayfade_sinr::{
    AmortizedAccumulator, GainMatrix, InterferenceRatios, PowerAssignment, SinrParams,
    SparseInterferenceRatios, SparseSuccessAccumulator,
};
use rayfade_telemetry::Telemetry;

/// Instance size at which [`NetworkEvaluator`] switches from the exact
/// dense evaluator to the certified sparse one. Below this the dense
/// O(n²) build costs single-digit milliseconds and stays bit-identical
/// to the historical path; above it the dense cache grows unaffordable
/// (n = 10⁵ would need ~160 GB) while the sparse build stays near-linear.
pub const SPARSE_CROSSOVER: usize = 2048;

/// Truncation bound `δ` used when [`NetworkEvaluator`] routes to the
/// sparse path: success probabilities are certified to a relative error
/// of at most 0.1%, far below the Monte Carlo noise of the workloads
/// that run at these sizes.
pub const DEFAULT_SPARSE_DELTA: f64 = 1e-3;

/// Incremental sparse Theorem 1 evaluator with certified error intervals
/// (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseSuccessEvaluator {
    ratios: SparseInterferenceRatios,
    acc: SparseSuccessAccumulator,
}

impl SparseSuccessEvaluator {
    /// Builds the evaluator from a dense gain matrix with truncation
    /// bound `delta` (O(n²) build, O(nnz) evaluation). `delta = 0`
    /// reproduces the dense ratios exactly.
    pub fn new(gain: &GainMatrix, params: &SinrParams, delta: f64) -> Self {
        Self::from_ratios(SparseInterferenceRatios::from_gain(gain, params, delta))
    }

    /// Builds the evaluator directly from geometry via the spatial-grid
    /// builder — near-linear, never materializes a dense structure.
    pub fn for_network(
        network: &Network,
        power: &PowerAssignment,
        params: &SinrParams,
        delta: f64,
        tele: Option<&Telemetry>,
    ) -> Self {
        Self::from_ratios(rayfade_spatial::build_sparse_ratios(
            network, power, params, delta, tele,
        ))
    }

    /// Wraps an existing sparse ratio cache.
    pub fn from_ratios(ratios: SparseInterferenceRatios) -> Self {
        let acc = SparseSuccessAccumulator::new(ratios.len());
        SparseSuccessEvaluator { ratios, acc }
    }

    /// Number of links.
    #[inline]
    pub fn len(&self) -> usize {
        self.ratios.len()
    }

    /// Whether the instance has no links.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ratios.is_empty()
    }

    /// The underlying sparse ratio cache.
    #[inline]
    pub fn ratios(&self) -> &SparseInterferenceRatios {
        &self.ratios
    }

    /// The truncation bound `δ` the cache was built for.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.ratios.delta()
    }

    /// Current transmission probabilities.
    #[inline]
    pub fn probs(&self) -> &[f64] {
        self.acc.probs()
    }

    /// Current transmission probability of link `j`.
    #[inline]
    pub fn prob(&self, j: usize) -> f64 {
        self.acc.prob(j)
    }

    /// Resets every probability to 0 — O(n).
    pub fn reset(&mut self) {
        self.acc.reset();
    }

    /// Replaces the whole probability vector — O(nnz) rebuild.
    pub fn set_probs(&mut self, probs: &[f64]) {
        self.acc.set_probs(&self.ratios, probs);
    }

    /// Sets every probability to the same value — O(nnz).
    pub fn set_uniform(&mut self, q: f64) {
        self.acc.set_uniform(&self.ratios, q);
    }

    /// Changes one probability — O(deg j).
    pub fn set_prob(&mut self, j: usize, q: f64) {
        self.acc.set_prob(&self.ratios, j, q);
    }

    /// Sets `q_j = 1` (link joins the transmit set).
    pub fn insert(&mut self, j: usize) {
        self.acc.insert(&self.ratios, j);
    }

    /// Sets `q_j = 0` (link leaves the transmit set).
    pub fn remove(&mut self, j: usize) {
        self.acc.remove(&self.ratios, j);
    }

    /// Sparse success probability of link `i` — the upper end of the
    /// certified interval.
    #[inline]
    pub fn success_probability(&self, i: usize) -> f64 {
        self.acc.success_probability(&self.ratios, i)
    }

    /// Success probability of link `i` conditioned on transmitting.
    #[inline]
    pub fn conditional_success_probability(&self, i: usize) -> f64 {
        self.acc.conditional_success_probability(&self.ratios, i)
    }

    /// Certified interval `[p·e^{−τᵢ}, p]` containing the dense Theorem 1
    /// probability of link `i`.
    #[inline]
    pub fn success_interval(&self, i: usize) -> (f64, f64) {
        self.acc.success_interval(&self.ratios, i)
    }

    /// All sparse success probabilities — O(n).
    pub fn success_probabilities(&self) -> Vec<f64> {
        self.acc.success_probabilities(&self.ratios)
    }

    /// Expected number of successes (upper end of the certified
    /// interval) — O(n).
    pub fn expected_successes(&self) -> f64 {
        self.acc.expected_successes(&self.ratios)
    }

    /// Certified interval containing the dense expected number of
    /// successes.
    pub fn expected_successes_interval(&self) -> (f64, f64) {
        self.acc.expected_successes_interval(&self.ratios)
    }

    /// Change in weighted expected successes if the silent link `j` were
    /// activated — O(deg j).
    ///
    /// # Panics
    /// If link `j` is not currently silent.
    pub fn activation_gain(&self, weights: Option<&[f64]>, j: usize) -> f64 {
        self.acc.activation_gain(&self.ratios, weights, j)
    }
}

/// Churn-amortized dense Theorem 1 evaluator: the
/// [`rayfade_sinr::AmortizedAccumulator`] (integer-quantized logs, state
/// bit-equal to a from-scratch rebuild regardless of churn order) bundled
/// with its ratio cache, mirroring [`SuccessEvaluator`]'s shape. This is
/// the persistent per-replication cache of the dynamic engine's analytic
/// slot resolver: the transmit mask flips few links per slot, so slots
/// cost O(flips · n) contiguous row adds instead of an O(n²) rebuild.
#[derive(Debug, Clone, PartialEq)]
pub struct AmortizedEvaluator {
    ratios: InterferenceRatios,
    acc: AmortizedAccumulator,
}

impl AmortizedEvaluator {
    /// Builds the evaluator (O(n²) ratio + log-row precomputation); all
    /// probabilities start at 0.
    pub fn new(gain: &GainMatrix, params: &SinrParams) -> Self {
        Self::from_ratios(InterferenceRatios::new(gain, params))
    }

    /// Wraps an existing ratio cache.
    pub fn from_ratios(ratios: InterferenceRatios) -> Self {
        let acc = AmortizedAccumulator::new(&ratios);
        AmortizedEvaluator { ratios, acc }
    }

    /// Number of links.
    #[inline]
    pub fn len(&self) -> usize {
        self.ratios.len()
    }

    /// Whether the instance has no links.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ratios.is_empty()
    }

    /// The underlying ratio cache.
    #[inline]
    pub fn ratios(&self) -> &InterferenceRatios {
        &self.ratios
    }

    /// Current transmission probabilities.
    #[inline]
    pub fn probs(&self) -> &[f64] {
        self.acc.probs()
    }

    /// Current transmission probability of link `j`.
    #[inline]
    pub fn prob(&self, j: usize) -> f64 {
        self.acc.prob(j)
    }

    /// Resets every probability to 0 — O(n).
    pub fn reset(&mut self) {
        self.acc.reset();
    }

    /// Replaces the whole probability vector — blocked O(n²) rebuild.
    pub fn set_probs(&mut self, probs: &[f64]) {
        self.acc.set_probs(&self.ratios, probs);
    }

    /// Changes one probability — O(n).
    pub fn set_prob(&mut self, j: usize, q: f64) {
        self.acc.set_prob(&self.ratios, j, q);
    }

    /// Sets `q_j = 1` (link joins the transmit set) — one contiguous row
    /// add.
    pub fn insert(&mut self, j: usize) {
        self.acc.insert(&self.ratios, j);
    }

    /// Sets `q_j = 0` (link leaves the transmit set) — one contiguous row
    /// subtract.
    pub fn remove(&mut self, j: usize) {
        self.acc.remove(&self.ratios, j);
    }

    /// Theorem 1 success probability of link `i` (up to the 2⁻³⁸
    /// log-quantization of the accumulator).
    #[inline]
    pub fn success_probability(&self, i: usize) -> f64 {
        self.acc.success_probability(&self.ratios, i)
    }

    /// Success probability of link `i` conditioned on transmitting — the
    /// analytic resolver's Bernoulli parameter.
    #[inline]
    pub fn conditional_success_probability(&self, i: usize) -> f64 {
        self.acc.conditional_success_probability(&self.ratios, i)
    }

    /// All success probabilities — O(n).
    pub fn success_probabilities(&self) -> Vec<f64> {
        self.acc.success_probabilities(&self.ratios)
    }

    /// Sets every probability to the same value — blocked O(n²) rebuild.
    pub fn set_uniform(&mut self, q: f64) {
        let probs = vec![q; self.len()];
        self.set_probs(&probs);
    }

    /// Expected number of successes — O(n), compensated summation.
    pub fn expected_successes(&self) -> f64 {
        rayfade_sinr::kahan_sum(self.success_probabilities())
    }
}

/// Size-routing facade over the dense and sparse Theorem 1 evaluators
/// (see the [module docs](self) for the crossover policy).
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkEvaluator {
    /// Exact dense evaluation (small instances).
    Dense(SuccessEvaluator),
    /// Certified ε-truncated sparse evaluation (large instances).
    Sparse(SparseSuccessEvaluator),
    /// Churn-amortized dense evaluation (small instances on the analytic
    /// slot path).
    Amortized(AmortizedEvaluator),
}

impl NetworkEvaluator {
    /// Builds from a dense gain matrix: dense below
    /// [`SPARSE_CROSSOVER`], sparse with [`DEFAULT_SPARSE_DELTA`] at or
    /// above it.
    pub fn from_gain(gain: &GainMatrix, params: &SinrParams) -> Self {
        if gain.len() < SPARSE_CROSSOVER {
            NetworkEvaluator::Dense(SuccessEvaluator::new(gain, params))
        } else {
            NetworkEvaluator::Sparse(SparseSuccessEvaluator::new(
                gain,
                params,
                DEFAULT_SPARSE_DELTA,
            ))
        }
    }

    /// Builds from geometry: dense (via `GainMatrix::from_geometry`)
    /// below [`SPARSE_CROSSOVER`]; at or above it, the near-linear
    /// spatial-grid builder — no dense structure is ever materialized.
    pub fn for_network(
        network: &Network,
        power: &PowerAssignment,
        params: &SinrParams,
        tele: Option<&Telemetry>,
    ) -> Self {
        if network.len() < SPARSE_CROSSOVER {
            let gain = GainMatrix::from_geometry(network, power, params.alpha);
            NetworkEvaluator::Dense(SuccessEvaluator::new(&gain, params))
        } else {
            NetworkEvaluator::Sparse(SparseSuccessEvaluator::for_network(
                network,
                power,
                params,
                DEFAULT_SPARSE_DELTA,
                tele,
            ))
        }
    }

    /// Builds the *churn-amortized* routing variant: the amortized dense
    /// evaluator below [`SPARSE_CROSSOVER`] (bit-equal incremental state,
    /// contiguous mask-flip row adds), the certified sparse one (already
    /// O(deg) per flip) at or above it. This is the cache the dynamic
    /// engine's analytic slot resolver persists across slots.
    pub fn amortized_from_gain(gain: &GainMatrix, params: &SinrParams) -> Self {
        if gain.len() < SPARSE_CROSSOVER {
            NetworkEvaluator::Amortized(AmortizedEvaluator::new(gain, params))
        } else {
            NetworkEvaluator::Sparse(SparseSuccessEvaluator::new(
                gain,
                params,
                DEFAULT_SPARSE_DELTA,
            ))
        }
    }

    /// Whether the sparse path was selected.
    #[inline]
    pub fn is_sparse(&self) -> bool {
        matches!(self, NetworkEvaluator::Sparse(_))
    }

    /// Whether the churn-amortized dense path was selected.
    #[inline]
    pub fn is_amortized(&self) -> bool {
        matches!(self, NetworkEvaluator::Amortized(_))
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        match self {
            NetworkEvaluator::Dense(ev) => ev.len(),
            NetworkEvaluator::Sparse(ev) => ev.len(),
            NetworkEvaluator::Amortized(ev) => ev.len(),
        }
    }

    /// Whether the instance has no links.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resets every probability to 0.
    pub fn reset(&mut self) {
        match self {
            NetworkEvaluator::Dense(ev) => ev.reset(),
            NetworkEvaluator::Sparse(ev) => ev.reset(),
            NetworkEvaluator::Amortized(ev) => ev.reset(),
        }
    }

    /// Replaces the whole probability vector.
    pub fn set_probs(&mut self, probs: &[f64]) {
        match self {
            NetworkEvaluator::Dense(ev) => ev.set_probs(probs),
            NetworkEvaluator::Sparse(ev) => ev.set_probs(probs),
            NetworkEvaluator::Amortized(ev) => ev.set_probs(probs),
        }
    }

    /// Sets every probability to the same value.
    pub fn set_uniform(&mut self, q: f64) {
        match self {
            NetworkEvaluator::Dense(ev) => ev.set_uniform(q),
            NetworkEvaluator::Sparse(ev) => ev.set_uniform(q),
            NetworkEvaluator::Amortized(ev) => ev.set_uniform(q),
        }
    }

    /// Changes one probability.
    pub fn set_prob(&mut self, j: usize, q: f64) {
        match self {
            NetworkEvaluator::Dense(ev) => ev.set_prob(j, q),
            NetworkEvaluator::Sparse(ev) => ev.set_prob(j, q),
            NetworkEvaluator::Amortized(ev) => ev.set_prob(j, q),
        }
    }

    /// Sets `q_j = 1` (link joins the transmit set) — the slot-churn fast
    /// path on every variant (amortized: contiguous row add; sparse:
    /// O(deg j)).
    pub fn insert(&mut self, j: usize) {
        match self {
            NetworkEvaluator::Dense(ev) => ev.insert(j),
            NetworkEvaluator::Sparse(ev) => ev.insert(j),
            NetworkEvaluator::Amortized(ev) => ev.insert(j),
        }
    }

    /// Sets `q_j = 0` (link leaves the transmit set).
    pub fn remove(&mut self, j: usize) {
        match self {
            NetworkEvaluator::Dense(ev) => ev.remove(j),
            NetworkEvaluator::Sparse(ev) => ev.remove(j),
            NetworkEvaluator::Amortized(ev) => ev.remove(j),
        }
    }

    /// Success probability of link `i` (dense: exact; sparse: certified
    /// upper end).
    pub fn success_probability(&self, i: usize) -> f64 {
        match self {
            NetworkEvaluator::Dense(ev) => ev.success_probability(i),
            NetworkEvaluator::Sparse(ev) => ev.success_probability(i),
            NetworkEvaluator::Amortized(ev) => ev.success_probability(i),
        }
    }

    /// Success probability of link `i` conditioned on transmitting —
    /// the analytic slot resolver's Bernoulli parameter (counterfactual
    /// for idle links, realized for active ones).
    pub fn conditional_success_probability(&self, i: usize) -> f64 {
        match self {
            NetworkEvaluator::Dense(ev) => ev.conditional_success_probability(i),
            NetworkEvaluator::Sparse(ev) => ev.conditional_success_probability(i),
            NetworkEvaluator::Amortized(ev) => ev.conditional_success_probability(i),
        }
    }

    /// All success probabilities.
    pub fn success_probabilities(&self) -> Vec<f64> {
        match self {
            NetworkEvaluator::Dense(ev) => ev.success_probabilities(),
            NetworkEvaluator::Sparse(ev) => ev.success_probabilities(),
            NetworkEvaluator::Amortized(ev) => ev.success_probabilities(),
        }
    }

    /// Expected number of successes.
    pub fn expected_successes(&self) -> f64 {
        match self {
            NetworkEvaluator::Dense(ev) => ev.expected_successes(),
            NetworkEvaluator::Sparse(ev) => ev.expected_successes(),
            NetworkEvaluator::Amortized(ev) => ev.expected_successes(),
        }
    }

    /// Certified interval containing the exact expected number of
    /// successes (degenerate `[v, v]` on the dense paths, which are exact
    /// up to accumulator rounding).
    pub fn expected_successes_interval(&self) -> (f64, f64) {
        match self {
            NetworkEvaluator::Dense(ev) => {
                let v = ev.expected_successes();
                (v, v)
            }
            NetworkEvaluator::Sparse(ev) => ev.expected_successes_interval(),
            NetworkEvaluator::Amortized(ev) => {
                let v = ev.expected_successes();
                (v, v)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gain3() -> GainMatrix {
        GainMatrix::from_raw(
            3,
            vec![
                10.0, 2.0, 1.0, //
                2.0, 8.0, 0.5, //
                1.0, 0.5, 12.0,
            ],
        )
    }

    #[test]
    fn sparse_evaluator_mirrors_dense_at_delta_zero() {
        let gm = gain3();
        let params = SinrParams::new(2.0, 1.5, 0.2);
        let mut dense = SuccessEvaluator::new(&gm, &params);
        let mut sparse = SparseSuccessEvaluator::new(&gm, &params, 0.0);
        for ev in [0.7, 0.0, 1.0] {
            dense.set_uniform(ev);
            sparse.set_uniform(ev);
            for i in 0..3 {
                let d = dense.success_probability(i);
                let s = sparse.success_probability(i);
                assert!((d - s).abs() < 1e-14, "q={ev} link {i}");
                let (lo, hi) = sparse.success_interval(i);
                assert_eq!(lo, hi, "delta = 0 collapses the interval");
            }
        }
        dense.insert(0);
        sparse.insert(0);
        dense.set_prob(1, 0.3);
        sparse.set_prob(1, 0.3);
        dense.remove(2);
        sparse.remove(2);
        assert!((dense.expected_successes() - sparse.expected_successes()).abs() < 1e-14);
        assert!((dense.activation_gain(None, 2) - sparse.activation_gain(None, 2)).abs() < 1e-14);
    }

    #[test]
    fn interval_contains_dense_value_for_positive_delta() {
        let gm = gain3();
        let params = SinrParams::new(2.0, 1.5, 0.2);
        let mut dense = SuccessEvaluator::new(&gm, &params);
        let mut sparse = SparseSuccessEvaluator::new(&gm, &params, 0.4);
        let probs = [0.9, 0.5, 1.0];
        dense.set_probs(&probs);
        sparse.set_probs(&probs);
        for i in 0..3 {
            let d = dense.success_probability(i);
            let (lo, hi) = sparse.success_interval(i);
            assert!(lo - 1e-12 <= d && d <= hi + 1e-12, "link {i}");
        }
        let (lo, hi) = sparse.expected_successes_interval();
        let d = dense.expected_successes();
        assert!(lo - 1e-12 <= d && d <= hi + 1e-12);
    }

    #[test]
    fn facade_routes_small_instances_dense() {
        let gm = gain3();
        let params = SinrParams::new(2.0, 1.5, 0.2);
        let mut ev = NetworkEvaluator::from_gain(&gm, &params);
        assert!(!ev.is_sparse());
        assert_eq!(ev.len(), 3);
        ev.set_uniform(0.5);
        let mut dense = SuccessEvaluator::new(&gm, &params);
        dense.set_uniform(0.5);
        assert_eq!(ev.expected_successes(), dense.expected_successes());
        let (lo, hi) = ev.expected_successes_interval();
        assert_eq!(lo, hi, "dense interval is degenerate");
    }

    #[test]
    fn facade_routes_large_instances_sparse() {
        // A block-diagonal raw gain matrix above the crossover: cheap to
        // build, exercises the sparse route end to end.
        let n = SPARSE_CROSSOVER;
        let mut g = vec![0.0; n * n];
        for i in 0..n {
            g[i * n + i] = 10.0;
            let j = i ^ 1; // pair (2k, 2k+1)
            if j < n {
                g[i * n + j] = 2.0;
            }
        }
        let gm = GainMatrix::from_raw(n, g);
        let params = SinrParams::new(2.0, 1.5, 0.1);
        let mut ev = NetworkEvaluator::from_gain(&gm, &params);
        assert!(ev.is_sparse());
        ev.set_uniform(1.0);
        let (lo, hi) = ev.expected_successes_interval();
        // Paired links: ρ = β/(β + s_ii/s_ji) = 1.5/6.5, so per-link
        // Q = e^{−βν/s_ii}·(1 − ρ) = e^{−0.015}·10/13.
        let per_link = (-1.5f64 * 0.1 / 10.0).exp() * (10.0 / 13.0);
        let want = per_link * n as f64;
        assert!(lo <= want + 1e-9 && want <= hi + 1e-9, "{lo} {want} {hi}");
        ev.reset();
        assert_eq!(ev.expected_successes(), 0.0);
    }

    #[test]
    fn amortized_route_matches_dense_within_quantization() {
        let gm = gain3();
        let params = SinrParams::new(2.0, 1.5, 0.2);
        let mut ev = NetworkEvaluator::amortized_from_gain(&gm, &params);
        assert!(ev.is_amortized() && !ev.is_sparse());
        let mut dense = SuccessEvaluator::new(&gm, &params);
        // Slot-style churn through the shared facade surface.
        for op in [0usize, 2, 1, 0, 2] {
            ev.insert(op);
            dense.insert(op);
        }
        ev.remove(2);
        dense.remove(2);
        ev.set_prob(1, 0.4);
        dense.set_prob(1, 0.4);
        for i in 0..3 {
            let a = ev.success_probability(i);
            let d = dense.success_probability(i);
            assert!(
                (a - d).abs() <= 1e-10 * d.max(1e-12),
                "link {i}: {a} vs {d}"
            );
            let ac = ev.conditional_success_probability(i);
            let dc = dense.conditional_success_probability(i);
            assert!((ac - dc).abs() <= 1e-10 * dc.max(1e-12), "link {i}");
        }
        let (lo, hi) = ev.expected_successes_interval();
        assert_eq!(lo, hi, "amortized interval is degenerate");
        // Churned facade state equals a fresh rebuild bit-for-bit.
        let mut rebuilt = NetworkEvaluator::amortized_from_gain(&gm, &params);
        rebuilt.set_probs(&[1.0, 0.4, 0.0]);
        assert_eq!(ev, rebuilt);
    }

    #[test]
    fn amortized_route_goes_sparse_above_crossover() {
        let n = SPARSE_CROSSOVER;
        let mut g = vec![0.0; n * n];
        for i in 0..n {
            g[i * n + i] = 10.0;
            g[i * n + (i ^ 1)] = 2.0;
        }
        let gm = GainMatrix::from_raw(n, g);
        let params = SinrParams::new(2.0, 1.5, 0.1);
        let mut ev = NetworkEvaluator::amortized_from_gain(&gm, &params);
        assert!(ev.is_sparse() && !ev.is_amortized());
        ev.insert(0);
        ev.insert(1);
        let p = ev.conditional_success_probability(0);
        // Paired links at q = 1: conditional Q = e^{−βν/s}·(1 − ρ).
        let want = (-1.5f64 * 0.1 / 10.0).exp() * (10.0 / 13.0);
        assert!((p - want).abs() < 1e-6, "{p} vs {want}");
        ev.remove(1);
        assert!(ev.conditional_success_probability(0) > p);
    }

    #[test]
    fn facade_for_network_matches_grid_path_on_small_instances() {
        use rayfade_geometry::generator::PaperTopology;
        let net = PaperTopology {
            links: 12,
            side: 400.0,
            min_length: 20.0,
            max_length: 40.0,
        }
        .generate(3);
        let power = PowerAssignment::figure1_uniform();
        let params = SinrParams::figure1();
        let mut ev = NetworkEvaluator::for_network(&net, &power, &params, None);
        assert!(!ev.is_sparse());
        ev.set_uniform(0.4);
        let gain = GainMatrix::from_geometry(&net, &power, params.alpha);
        let mut dense = SuccessEvaluator::new(&gain, &params);
        dense.set_uniform(0.4);
        assert_eq!(ev.expected_successes(), dense.expected_successes());
    }
}
