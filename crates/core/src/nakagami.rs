//! Nakagami-m fading — the paper's "further realistic properties"
//! extension (Sec. 8 raises the hope that the techniques carry over to
//! other interference models; Nakagami-m is the canonical next step).
//!
//! Under Nakagami-m fading the received *power* is Gamma-distributed with
//! shape `m ≥ 1/2` and mean `S̄_{j,i}`; `m = 1` recovers Rayleigh exactly,
//! larger `m` means milder fading (less variance around the mean), and
//! `m → ∞` degenerates to the deterministic non-fading model. The channel
//! implements [`SuccessModel`], so every protocol in the workspace —
//! ALOHA, regret learning, Monte Carlo slot execution — runs under
//! Nakagami unchanged, and ablations can chart how the Rayleigh results
//! deform as `m` grows.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayfade_sinr::{GainMatrix, SinrParams, SuccessModel};

/// Samples a standard normal via Box–Muller (no extra crates).
#[inline]
fn sample_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Samples `Gamma(shape, scale = 1)` for `shape ≥ 1/2` via
/// Marsaglia–Tsang (squeeze method), with the standard boost trick for
/// `shape < 1`.
pub fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape >= 0.5, "shape must be at least 1/2 (Nakagami range)");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) · U^(1/a).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
            return d * v3;
        }
    }
}

/// Samples the Nakagami-m received power: `Gamma(m, mean/m)` (mean-
/// preserving). `m = 1` is exactly the exponential (Rayleigh) law.
#[inline]
pub fn sample_nakagami_power<R: Rng + ?Sized>(rng: &mut R, m: f64, mean: f64) -> f64 {
    debug_assert!(mean >= 0.0);
    if mean == 0.0 {
        return 0.0;
    }
    sample_gamma(rng, m) * (mean / m)
}

/// The Nakagami-m fading SINR model.
#[derive(Debug, Clone)]
pub struct NakagamiModel {
    gain: GainMatrix,
    params: SinrParams,
    /// Shape parameter `m ≥ 1/2`; `1` = Rayleigh.
    m: f64,
    rng: StdRng,
}

impl NakagamiModel {
    /// Creates a Nakagami-m model.
    ///
    /// # Panics
    /// If `m < 1/2`.
    pub fn new(gain: GainMatrix, params: SinrParams, m: f64, seed: u64) -> Self {
        assert!(m >= 0.5, "Nakagami shape m must be at least 1/2");
        NakagamiModel {
            gain,
            params,
            m,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The shape parameter `m`.
    pub fn shape(&self) -> f64 {
        self.m
    }

    /// The model parameters.
    pub fn params(&self) -> &SinrParams {
        &self.params
    }

    /// Draws the realized SINR of every link against the active set.
    pub fn sample_sinrs(&mut self, active: &[bool]) -> Vec<f64> {
        let n = self.gain.len();
        debug_assert_eq!(active.len(), n);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let row = self.gain.at_receiver(i);
            let mut interference = 0.0;
            for (j, (&mean, &on)) in row.iter().zip(active).enumerate() {
                if on && j != i {
                    interference += sample_nakagami_power(&mut self.rng, self.m, mean);
                }
            }
            let signal = sample_nakagami_power(&mut self.rng, self.m, row[i]);
            let denom = interference + self.params.noise;
            out.push(if denom == 0.0 {
                if signal > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                }
            } else {
                signal / denom
            });
        }
        out
    }
}

impl SuccessModel for NakagamiModel {
    fn len(&self) -> usize {
        self.gain.len()
    }

    fn resolve_slot(&mut self, active: &[bool]) -> Vec<usize> {
        let sinrs = self.sample_sinrs(active);
        sinrs
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| (active[i] && s >= self.params.beta).then_some(i))
            .collect()
    }

    fn resolve_sinrs(&mut self, active: &[bool]) -> Vec<f64> {
        self.sample_sinrs(active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::RayleighModel;

    #[test]
    fn gamma_sampler_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        for &shape in &[0.5, 1.0, 2.0, 5.0] {
            let k = 100_000;
            let mut sum = 0.0;
            let mut sq = 0.0;
            for _ in 0..k {
                let x = sample_gamma(&mut rng, shape);
                assert!(x >= 0.0);
                sum += x;
                sq += x * x;
            }
            let mean = sum / k as f64;
            let var = sq / k as f64 - mean * mean;
            assert!(
                (mean - shape).abs() < 0.05 * shape.max(1.0),
                "shape {shape}: mean {mean}"
            );
            assert!(
                (var - shape).abs() < 0.1 * shape.max(1.0),
                "shape {shape}: var {var}"
            );
        }
    }

    #[test]
    fn m_equal_one_matches_rayleigh_statistics() {
        // Lone link: P[success] = P[S >= beta*nu] must match the Rayleigh
        // closed form exp(-beta*nu/mean) at m = 1.
        let gm = GainMatrix::from_raw(1, vec![10.0]);
        let params = SinrParams::new(2.0, 2.0, 1.0);
        let mut model = NakagamiModel::new(gm, params, 1.0, 7);
        let k = 100_000;
        let hits = (0..k)
            .filter(|_| !model.resolve_slot(&[true]).is_empty())
            .count();
        let frac = hits as f64 / k as f64;
        let expected = (-0.2f64).exp();
        assert!((frac - expected).abs() < 0.01, "{frac} vs {expected}");
    }

    #[test]
    fn larger_m_concentrates_toward_nonfading() {
        // A link whose mean SINR is comfortably above beta: under milder
        // fading (large m) it succeeds more often than under Rayleigh.
        let gm = GainMatrix::from_raw(2, vec![10.0, 2.0, 2.0, 10.0]);
        let params = SinrParams::new(2.0, 2.0, 0.1);
        let rate = |m: f64| -> f64 {
            let mut model = NakagamiModel::new(gm.clone(), params, m, 3);
            let k = 30_000;
            (0..k)
                .filter(|_| model.resolve_slot(&[true, true]).contains(&0))
                .count() as f64
                / k as f64
        };
        let r1 = rate(1.0);
        let r4 = rate(4.0);
        let r16 = rate(16.0);
        assert!(r4 > r1 + 0.02, "m=4 ({r4}) should beat m=1 ({r1})");
        assert!(r16 > r4, "m=16 ({r16}) should beat m=4 ({r4})");
        // Non-fading succeeds deterministically here (SINR = 10/2.1 > 2),
        // so the rates should approach 1.
        assert!(r16 > 0.9);
    }

    #[test]
    fn nakagami_one_close_to_rayleigh_model_in_distribution() {
        // Multi-link instance: expected success counts of the two models
        // at m = 1 agree within MC error.
        let gm = GainMatrix::from_raw(
            3,
            vec![
                8.0, 1.0, 0.5, //
                1.0, 8.0, 0.5, //
                0.5, 0.5, 8.0,
            ],
        );
        let params = SinrParams::new(2.0, 1.5, 0.2);
        let active = [true, true, true];
        let k = 40_000;
        let mut naka = NakagamiModel::new(gm.clone(), params, 1.0, 11);
        let naka_total: usize = (0..k).map(|_| naka.resolve_slot(&active).len()).sum();
        let mut ray = RayleighModel::new(gm, params, 13);
        let ray_total: usize = (0..k).map(|_| ray.resolve_slot(&active).len()).sum();
        let diff = (naka_total as f64 - ray_total as f64).abs() / k as f64;
        assert!(diff < 0.03, "mean success gap {diff}");
    }

    #[test]
    fn deterministic_per_seed() {
        let gm = GainMatrix::from_raw(2, vec![5.0, 1.0, 1.0, 5.0]);
        let params = SinrParams::new(2.0, 1.0, 0.1);
        let a = NakagamiModel::new(gm.clone(), params, 2.0, 5).resolve_slot(&[true, true]);
        let b = NakagamiModel::new(gm, params, 2.0, 5).resolve_slot(&[true, true]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least 1/2")]
    fn tiny_shape_rejected() {
        let gm = GainMatrix::from_raw(1, vec![1.0]);
        let _ = NakagamiModel::new(gm, SinrParams::new(2.0, 1.0, 0.0), 0.3, 0);
    }
}
