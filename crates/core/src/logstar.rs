//! The iterated logarithm and the simulation's `b_k` sequence.
//!
//! Theorem 2 "simulates" one Rayleigh slot with `O(log* n)` non-fading
//! slots, driven by the iterated-exponential sequence
//! `b_0 = 1/4`, `b_{k+1} = exp(b_k / 2)`. Because the sequence towers up,
//! only `O(log* n)` rounds are needed before `b_k ≥ n` — about 9 rounds
//! even for astronomically large `n`, which is the paper's point that the
//! loss factor is "almost constant".

/// Iterated logarithm `log* x` (natural-log variant): the number of times
/// `ln` must be applied before the value drops to at most 1.
///
/// `log*(x) = 0` for `x ≤ 1`.
pub fn log_star(mut x: f64) -> u32 {
    assert!(!x.is_nan(), "log* of NaN");
    let mut k = 0;
    while x > 1.0 {
        x = x.ln();
        k += 1;
        // ln never cycles above 1 forever: values above 1 strictly shrink
        // once below e, and the loop terminates in < 10 steps for any f64.
        debug_assert!(k < 64);
    }
    k
}

/// The simulation sequence `b_0 = 1/4`, `b_{k+1} = exp(b_k / 2)`,
/// truncated to entries `b_k < n` — exactly the rounds Algorithm 1
/// executes ("for each k ≥ 0 with b_k < n").
///
/// Returns an empty vector when `n ≤ 1/4` (no rounds needed).
pub fn simulation_sequence(n: f64) -> Vec<f64> {
    assert!(n.is_finite() && n >= 0.0, "n must be finite and >= 0");
    let mut seq = Vec::new();
    let mut b = 0.25;
    while b < n {
        seq.push(b);
        b = (b / 2.0).exp();
        // Guard against pathological float behaviour; the sequence is
        // strictly increasing after b_1 so this cannot loop forever.
        if seq.len() > 64 {
            unreachable!("b_k sequence failed to reach n = {n}");
        }
    }
    seq
}

/// Number of simulation rounds for an `n`-link instance
/// (`|{k : b_k < n}|`), which Theorem 2 shows is `O(log* n)`.
pub fn simulation_rounds(n: usize) -> usize {
    simulation_sequence(n as f64).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(0.5), 0);
        assert_eq!(log_star(1.0), 0);
        assert_eq!(log_star(2.0), 1);
        assert_eq!(log_star(std::f64::consts::E), 1);
        assert_eq!(log_star(std::f64::consts::E + 1e-9), 2);
        assert_eq!(log_star(15.0), 2); // ln 15 = 2.7, ln 2.7 = 0.996
        assert_eq!(log_star(1e10), 4);
        // ln chain from f64::MAX: 709.8 -> 6.57 -> 1.88 -> 0.63.
        assert_eq!(log_star(f64::MAX), 4);
    }

    #[test]
    fn sequence_starts_at_quarter_and_grows() {
        let seq = simulation_sequence(1e6);
        assert!((seq[0] - 0.25).abs() < 1e-12);
        assert!((seq[1] - (0.125f64).exp()).abs() < 1e-12);
        for w in seq.windows(2) {
            assert!(w[1] > w[0], "sequence must increase: {seq:?}");
        }
        assert!(*seq.last().unwrap() < 1e6);
    }

    #[test]
    fn round_counts_are_tiny() {
        // The "almost constant" claim: single-digit rounds at any scale.
        assert_eq!(simulation_rounds(0), 0);
        assert!(simulation_rounds(10) <= 7);
        assert!(simulation_rounds(100) <= 8);
        assert!(simulation_rounds(1_000_000) <= 8);
        assert!(simulation_rounds(usize::MAX) <= 9);
    }

    #[test]
    fn rounds_monotone_in_n() {
        let mut prev = 0;
        for n in [1usize, 2, 4, 16, 256, 65_536, 1 << 40] {
            let r = simulation_rounds(n);
            assert!(r >= prev, "rounds must not decrease with n");
            prev = r;
        }
    }

    #[test]
    fn rounds_track_log_star_asymptotically() {
        // The round count should stay within a small additive band of
        // log*(n) — both are iterated-log growth.
        for n in [4usize, 64, 4096, 1 << 30] {
            let r = simulation_rounds(n) as i64;
            let l = log_star(n as f64) as i64;
            assert!((r - l).abs() <= 5, "n={n}: rounds {r} vs log* {l}");
        }
    }

    #[test]
    fn tiny_n_needs_no_rounds() {
        assert!(simulation_sequence(0.25).is_empty());
        assert_eq!(simulation_sequence(0.26).len(), 1);
    }
}
