//! Replaying non-fading schedules under fading.
//!
//! A schedule computed for the non-fading model is deterministic: every
//! slot's links succeed. Under Rayleigh fading each scheduled transmission
//! only succeeds with its Theorem 1 probability (≥ 1/e for feasible slots,
//! Lemma 2), so delivering *every* link requires cycling through the
//! schedule until the stragglers get through. Because per-slot success
//! probabilities are bounded below by a constant, the expected number of
//! cycles is a constant, and the expected replay length is `O(makespan)` —
//! the latency-transfer argument of Sec. 4 in executable form.

use rayfade_sched::Schedule;
use rayfade_sinr::SuccessModel;
use serde::{Deserialize, Serialize};

/// Outcome of replaying a schedule until delivery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayOutcome {
    /// Physical slots executed.
    pub slots_used: usize,
    /// Full passes over the schedule (the last one may be partial).
    pub cycles: usize,
    /// Per-link slot of first success; `None` if undelivered within the
    /// budget.
    pub delivered_at: Vec<Option<usize>>,
}

impl ReplayOutcome {
    /// Number of delivered links.
    pub fn delivered(&self) -> usize {
        self.delivered_at.iter().filter(|d| d.is_some()).count()
    }

    /// Whether every link of the instance was delivered.
    pub fn all_delivered(&self) -> bool {
        self.delivered_at.iter().all(Option::is_some)
    }
}

/// Cycles through `schedule` under `model` until every link that appears
/// in the schedule has succeeded once (or `max_slots` is exhausted).
/// Slots whose pending links are all delivered are skipped without cost.
pub fn replay_until_delivered<M: SuccessModel>(
    model: &mut M,
    schedule: &Schedule,
    max_slots: usize,
) -> ReplayOutcome {
    let n = model.len();
    let mut pending = vec![false; n];
    for slot in schedule.slots() {
        for &i in slot {
            pending[i] = true;
        }
    }
    let mut delivered_at: Vec<Option<usize>> = pending.iter().map(|&p| (!p).then_some(0)).collect();
    // Links never scheduled are reported as undelivered (None), not as
    // delivered-at-0; fix up the initialization accordingly.
    for (i, d) in delivered_at.iter_mut().enumerate() {
        if !pending[i] {
            *d = None;
        }
    }
    let mut still_pending: usize = pending.iter().filter(|&&p| p).count();
    let mut slots_used = 0usize;
    let mut cycles = 0usize;
    let mut mask = vec![false; n];
    while still_pending > 0 && slots_used < max_slots {
        cycles += 1;
        for slot in schedule.slots() {
            if still_pending == 0 || slots_used >= max_slots {
                break;
            }
            mask.iter_mut().for_each(|m| *m = false);
            let mut any = false;
            for &i in slot {
                if pending[i] {
                    mask[i] = true;
                    any = true;
                }
            }
            if !any {
                continue;
            }
            for i in model.resolve_slot(&mask) {
                if pending[i] {
                    pending[i] = false;
                    still_pending -= 1;
                    delivered_at[i] = Some(slots_used);
                }
            }
            slots_used += 1;
        }
    }
    ReplayOutcome {
        slots_used,
        cycles,
        delivered_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::RayleighModel;
    use rayfade_geometry::PaperTopology;
    use rayfade_sched::{recursive_schedule, GreedyCapacity};
    use rayfade_sinr::{GainMatrix, NonFadingModel, PowerAssignment, SinrParams};

    fn schedule_case(seed: u64, n: usize) -> (GainMatrix, SinrParams, Schedule) {
        let net = PaperTopology {
            links: n,
            side: 600.0,
            min_length: 20.0,
            max_length: 40.0,
        }
        .generate(seed);
        let params = SinrParams::figure1();
        let gm = GainMatrix::from_geometry(&net, &PowerAssignment::figure1_uniform(), params.alpha);
        let sol = recursive_schedule(&gm, &params, &GreedyCapacity::new());
        (gm, params, sol.schedule)
    }

    #[test]
    fn nonfading_replay_needs_exactly_one_cycle() {
        let (gm, params, schedule) = schedule_case(1, 30);
        let mut model = NonFadingModel::new(gm, params);
        let out = replay_until_delivered(&mut model, &schedule, 10_000);
        assert!(out.all_delivered());
        assert_eq!(out.cycles, 1);
        assert_eq!(out.slots_used, schedule.len());
    }

    #[test]
    fn rayleigh_replay_delivers_with_constant_overhead() {
        let (gm, params, schedule) = schedule_case(2, 40);
        let mut model = RayleighModel::new(gm, params, 7);
        let out = replay_until_delivered(&mut model, &schedule, 10_000);
        assert!(out.all_delivered());
        // Lemma 2: per-slot success >= 1/e, so a handful of cycles suffice
        // with overwhelming probability; 15x makespan is a loose cap.
        assert!(
            out.slots_used <= 15 * schedule.len().max(1),
            "used {} slots for makespan {}",
            out.slots_used,
            schedule.len()
        );
    }

    #[test]
    fn unscheduled_links_reported_undelivered() {
        let gm = GainMatrix::from_raw(2, vec![10.0, 0.0, 0.0, 10.0]);
        let params = SinrParams::new(2.0, 1.0, 0.1);
        let schedule = Schedule::from_slots(vec![vec![0]]);
        let mut model = NonFadingModel::new(gm, params);
        let out = replay_until_delivered(&mut model, &schedule, 100);
        assert_eq!(out.delivered(), 1);
        assert!(out.delivered_at[0].is_some());
        assert!(out.delivered_at[1].is_none());
        assert!(!out.all_delivered());
    }

    #[test]
    fn budget_exhaustion_stops_replay() {
        // An undeliverable link (hopeless vs noise) with a tiny budget.
        let gm = GainMatrix::from_raw(1, vec![0.0001]);
        let params = SinrParams::new(2.0, 10.0, 10.0);
        let schedule = Schedule::from_slots(vec![vec![0]]);
        let mut model = RayleighModel::new(gm, params, 3);
        let out = replay_until_delivered(&mut model, &schedule, 50);
        assert_eq!(out.slots_used, 50);
        assert!(!out.all_delivered());
    }

    #[test]
    fn empty_schedule() {
        let gm = GainMatrix::from_raw(1, vec![1.0]);
        let params = SinrParams::new(2.0, 1.0, 0.0);
        let mut model = NonFadingModel::new(gm, params);
        let out = replay_until_delivered(&mut model, &Schedule::new(), 100);
        assert_eq!(out.slots_used, 0);
        assert_eq!(out.delivered(), 0);
    }
}
