//! Seed-stream derivation.
//!
//! Experiments derive many RNG streams from one base seed: one per
//! network, per transmit draw, per fading realization, per policy. The
//! naive derivation `base.wrapping_add(stream)` makes nearby
//! `(base, stream)` pairs collide — `(5, 0)` and `(0, 5)` yield the same
//! `StdRng`, silently correlating streams across experiments that share a
//! seed neighbourhood. [`mix_seed`] avalanches both inputs through the
//! SplitMix64 finalizer so that any change to either input reshuffles the
//! whole output word.

/// Derives an RNG seed for `stream` from `base` with full avalanche.
///
/// Uses the SplitMix64 finalizer over `base + φ·stream` (golden-ratio
/// increment), the standard PRNG seeding recipe: distinct `(base, stream)`
/// pairs that collide under plain `wrapping_add` map to distinct outputs
/// (up to the unavoidable 2⁻⁶⁴ birthday collisions).
#[inline]
#[must_use]
pub fn mix_seed(base: u64, stream: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(stream.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Two-level stream derivation: `mix_seed(mix_seed(base, a), b)`.
///
/// Convenience for nested sweeps (e.g. network index × grid index) where
/// flattening the indices by hand would reintroduce the very collisions
/// [`mix_seed`] exists to avoid.
#[inline]
#[must_use]
pub fn mix_seed2(base: u64, a: u64, b: u64) -> u64 {
    mix_seed(mix_seed(base, a), b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn wrapping_add_collisions_are_separated() {
        // All of these collide under `base.wrapping_add(stream)` (sum 5).
        let pairs = [(0u64, 5u64), (5, 0), (1, 4), (4, 1), (2, 3), (3, 2)];
        let mixed: HashSet<u64> = pairs.iter().map(|&(b, s)| mix_seed(b, s)).collect();
        assert_eq!(mixed.len(), pairs.len(), "mixed seeds must be distinct");
        // Sanity: they really do collide under the old scheme.
        let added: HashSet<u64> = pairs.iter().map(|&(b, s)| b.wrapping_add(s)).collect();
        assert_eq!(added.len(), 1);
    }

    #[test]
    fn deterministic_and_input_sensitive() {
        assert_eq!(mix_seed(42, 7), mix_seed(42, 7));
        assert_ne!(mix_seed(42, 7), mix_seed(42, 8));
        assert_ne!(mix_seed(42, 7), mix_seed(43, 7));
        assert_eq!(mix_seed2(1, 2, 3), mix_seed(mix_seed(1, 2), 3));
        assert_ne!(mix_seed2(1, 2, 3), mix_seed2(1, 3, 2));
    }

    #[test]
    fn no_collisions_over_a_dense_grid() {
        // 64 bases × 64 streams: all 4096 outputs distinct.
        let mut seen = HashSet::new();
        for base in 0..64u64 {
            for stream in 0..64u64 {
                assert!(
                    seen.insert(mix_seed(base, stream)),
                    "collision at ({base}, {stream})"
                );
            }
        }
    }
}
