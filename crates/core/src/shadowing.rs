//! Log-normal shadowing — slow fading of the *expected* gains.
//!
//! Rayleigh fading models fast, per-slot fluctuations; real channels also
//! exhibit *shadowing*: a per-path attenuation from obstacles that is
//! constant over the timescale of a schedule. The standard model is
//! log-normal: each `S̄_{j,i}` is multiplied by `10^(X/10)` with
//! `X ~ N(0, σ_dB²)`, normalized to preserve the mean.
//!
//! Because the paper's reduction works for **arbitrary** gain matrices
//! (Sec. 2 makes no geometric assumption), a shadowed matrix is just
//! another valid instance: all algorithms, transfer lemmas and the
//! Theorem 1 closed form apply unchanged. This module provides the
//! transform so experiments can quantify how shadowing moves the results.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayfade_sinr::GainMatrix;

/// Samples a standard normal via Box–Muller.
#[inline]
fn sample_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Applies independent log-normal shadowing with standard deviation
/// `sigma_db` (in dB) to every entry of the gain matrix, **normalized to
/// preserve expected gains**: the multiplicative factor is
/// `10^(X/10) / E[10^(X/10)]` with `X ~ N(0, σ_dB²)`.
///
/// Deterministic given the seed. `sigma_db = 0` returns the matrix
/// unchanged.
///
/// # Panics
/// If `sigma_db` is negative or non-finite.
pub fn apply_lognormal_shadowing(gain: &GainMatrix, sigma_db: f64, seed: u64) -> GainMatrix {
    assert!(
        sigma_db.is_finite() && sigma_db >= 0.0,
        "sigma_db must be finite and non-negative"
    );
    let n = gain.len();
    if sigma_db == 0.0 || n == 0 {
        return gain.clone();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // ln(10^(X/10)) = X * ln(10)/10 ~ N(0, (sigma_db*ln10/10)^2);
    // E[exp(N(0, s^2))] = exp(s^2 / 2).
    let s = sigma_db * std::f64::consts::LN_10 / 10.0;
    let mean_factor = (s * s / 2.0).exp();
    let mut raw = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            let _ = j;
            let x = sample_normal(&mut rng);
            let factor = (s * x).exp() / mean_factor;
            raw.push(gain.gain(j, i) * factor);
        }
    }
    GainMatrix::from_raw(n, raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> GainMatrix {
        GainMatrix::from_raw(2, vec![10.0, 2.0, 2.0, 10.0])
    }

    #[test]
    fn zero_sigma_is_identity() {
        let g = base();
        assert_eq!(apply_lognormal_shadowing(&g, 0.0, 1), g);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = base();
        let a = apply_lognormal_shadowing(&g, 6.0, 42);
        let b = apply_lognormal_shadowing(&g, 6.0, 42);
        assert_eq!(a, b);
        let c = apply_lognormal_shadowing(&g, 6.0, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn preserves_mean_gain() {
        // Average the shadowed value of one entry over many seeds: the
        // normalization keeps it at the original mean.
        let g = GainMatrix::from_raw(1, vec![5.0]);
        // Moderate sigma: at large sigma the lognormal's skew makes the
        // empirical mean converge very slowly.
        let k = 20_000;
        let mut sum = 0.0;
        for seed in 0..k {
            sum += apply_lognormal_shadowing(&g, 4.0, seed).signal(0);
        }
        let mean = sum / k as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn entries_stay_positive_and_finite() {
        let g = base();
        let shadowed = apply_lognormal_shadowing(&g, 12.0, 7);
        for i in 0..2 {
            for j in 0..2 {
                let v = shadowed.gain(j, i);
                assert!(v.is_finite() && v > 0.0);
            }
        }
    }

    #[test]
    fn larger_sigma_spreads_more() {
        // Empirical spread of the diagonal across seeds grows with sigma.
        let g = GainMatrix::from_raw(1, vec![1.0]);
        let spread = |sigma: f64| -> f64 {
            let mut lo = f64::INFINITY;
            let mut hi = 0.0f64;
            for seed in 0..500 {
                let v = apply_lognormal_shadowing(&g, sigma, seed).signal(0);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            hi / lo
        };
        assert!(spread(12.0) > spread(3.0) * 2.0);
    }

    #[test]
    fn reduction_still_applies_to_shadowed_instances() {
        // A shadowed matrix is just another instance: the transfer
        // guarantee must hold for its feasible sets.
        use rayfade_sched::{CapacityAlgorithm, CapacityInstance, GreedyCapacity};
        use rayfade_sinr::SinrParams;
        let net = rayfade_geometry::PaperTopology {
            links: 30,
            ..rayfade_geometry::PaperTopology::figure1()
        }
        .generate(5);
        let params = SinrParams::figure1();
        let g = GainMatrix::from_geometry(
            &net,
            &rayfade_sinr::PowerAssignment::figure1_uniform(),
            params.alpha,
        );
        let shadowed = apply_lognormal_shadowing(&g, 6.0, 11);
        let set = GreedyCapacity::new().select(&CapacityInstance::unweighted(&shadowed, &params));
        assert!(!set.is_empty());
        let report = crate::transfer::transfer_set(&shadowed, &params, &set);
        assert!(report.meets_guarantee());
    }

    #[test]
    #[should_panic(expected = "sigma_db must be finite")]
    fn negative_sigma_rejected() {
        let _ = apply_lognormal_shadowing(&base(), -1.0, 0);
    }
}
